// Per-lane scratch pools for kernel workspaces (docs/PARALLELISM.md,
// docs/PERFORMANCE.md).
//
// The deterministic engine dispatches metric kernels per-source/per-center
// across pool lanes; the kernels need O(n) workspaces (BFS distance
// stamps, Brandes bitsets, policy automaton state) that must NOT be
// allocated per call -- that allocation was the hottest site in the
// codebase. ScratchPool<T> gives every OS thread (a pool lane, the
// Run() caller, or any external thread) a private free list of T
// workspaces:
//
//   * Acquire() pops a workspace from the current thread's free list,
//     default-constructing one only on that thread's first use. Pool
//     worker threads are long-lived (pool.h), so a lane warms up once
//     and then reuses the same workspace across every chunk of every
//     region it ever executes.
//   * The Lease returns the workspace to the free list on destruction.
//     Nested kernels (a ball metric running BFS inside a ball-growing
//     sweep that still needs its outer distances) simply Acquire() again
//     and get a *different* workspace; the per-thread pool depth matches
//     the deepest kernel nesting, typically 2-3.
//
// Thread-privacy is what keeps this deterministic and race-free: no
// workspace is ever visible to two threads, so pooling cannot leak
// scheduling order into results. Determinism therefore rests entirely on
// the kernels being pure functions of their inputs -- a leased workspace
// may hold stale bytes from a previous chunk, and kernels must treat it
// as uninitialized (epoch stamps, explicit per-sweep resets).
//
// A Lease must be released on the thread that acquired it (stack scope
// inside a chunk body guarantees this).
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace topogen::parallel {

template <typename T>
class ScratchPool {
 public:
  class Lease {
   public:
    Lease() : obj_(ScratchPool::Pop()) {}
    ~Lease() {
      if (obj_ != nullptr) ScratchPool::Push(std::move(obj_));
    }

    Lease(Lease&& other) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_.get(); }

   private:
    std::unique_ptr<T> obj_;
  };

  static Lease Acquire() { return Lease(); }

  // Number of idle workspaces parked on this thread (test introspection).
  static std::size_t IdleCountForTesting() { return FreeList().size(); }

 private:
  static std::vector<std::unique_ptr<T>>& FreeList() {
    static thread_local std::vector<std::unique_ptr<T>> list;
    return list;
  }

  static std::unique_ptr<T> Pop() {
    auto& list = FreeList();
    if (list.empty()) return std::make_unique<T>();
    std::unique_ptr<T> obj = std::move(list.back());
    list.pop_back();
    return obj;
  }

  static void Push(std::unique_ptr<T> obj) {
    FreeList().push_back(std::move(obj));
  }
};

}  // namespace topogen::parallel
