// Cooperative cancellation for parallel regions (docs/PARALLELISM.md).
//
// A CancelToken is a caller-owned stop flag with an optional wall-clock
// deadline. It is *advisory*: nothing preempts a running chunk. Instead,
// ParallelFor/ParallelForEach/ParallelReduce consult the ambient token at
// every chunk boundary -- a chunk either runs to completion or never
// starts, so the work that did happen is always a set of whole chunks
// from the deterministic plan. When any chunk was skipped, the region
// throws fault::Exception(kCancelled) after quiescing, and the caller's
// isolation seam (Session slot, suite batch, topogend request) turns that
// into a degraded result.
//
// The token is passed ambiently: establish a CancelScope on the calling
// thread and every parallel region below it -- including regions inside
// nested library code that never heard of cancellation -- observes the
// token. Pool workers re-establish the scope inside each chunk, so nested
// ParallelFor calls see it too. No token in scope = the zero-overhead
// fast path (one thread_local load per region, nothing per chunk).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "fault/error.h"

namespace topogen::parallel {

class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests stop. Chunks already running finish; no new chunk starts.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // The boundary check: explicit cancel, or deadline passed. Reading the
  // clock only happens when a deadline was set.
  bool ShouldStop() const {
    if (cancelled()) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

namespace detail {
inline thread_local CancelToken* g_ambient_cancel_token = nullptr;
}  // namespace detail

// RAII: makes `token` the ambient cancel token for this thread (restoring
// the previous one on destruction, so scopes nest). Pass nullptr to
// shield a subtree from an outer token.
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token)
      : previous_(detail::g_ambient_cancel_token) {
    detail::g_ambient_cancel_token = token;
  }
  ~CancelScope() { detail::g_ambient_cancel_token = previous_; }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  static CancelToken* Current() { return detail::g_ambient_cancel_token; }

 private:
  CancelToken* previous_;
};

// Thrown by a parallel region that skipped at least one chunk. The code
// is part of the degraded taxonomy (docs/ROBUSTNESS.md): isolation seams
// record it as code "cancelled".
[[noreturn]] inline void ThrowCancelled() {
  throw fault::Exception(fault::ErrorCode::kCancelled,
                         "parallel region stopped at a chunk boundary");
}

}  // namespace topogen::parallel
