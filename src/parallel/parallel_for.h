// ParallelFor / ParallelReduce: the deterministic data-parallel API the
// metric kernels are written against (docs/PARALLELISM.md).
//
// The hard contract: results are bit-identical to serial execution
// regardless of thread count. Three rules enforce it:
//
//   1. Fixed chunking. A range [0, n) is split into chunks whose count
//      and boundaries depend only on n (and the per-call-site grain) --
//      never on the thread count or on scheduling. PlanChunks is the
//      single source of truth.
//   2. Per-chunk partials, ordered reduction. Each chunk writes its own
//      partial slot; the caller folds the slots left-to-right in chunk
//      order after the region quiesces. No atomics-on-doubles, no
//      combine-on-completion: floating-point accumulation order is a
//      pure function of the chunk plan.
//   3. Per-item RNG streams. Kernels that draw randomness derive a
//      stream per logical item from (seed, item index) with
//      graph::DeriveStream, so no item ever observes how much randomness
//      other items consumed.
//
// Serial execution (TOPOGEN_THREADS=1) runs the same chunked code path
// inline, so "serial" is not a second implementation -- it is the same
// plan executed by one lane.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "parallel/cancel.h"
#include "parallel/pool.h"

namespace topogen::parallel {

// Deterministic split of [0, n) into near-equal chunks. The defaults are
// tuned for per-source/per-center graph kernels: at least `min_grain`
// items per chunk (so tiny inputs stay in one chunk and match the
// pre-parallel serial accumulation exactly), at most `max_chunks` chunks
// (bounding both scheduling overhead and the memory held in per-chunk
// partials).
struct ChunkPlan {
  std::size_t n = 0;
  std::size_t chunks = 0;

  std::size_t begin(std::size_t chunk) const {
    const std::size_t base = n / chunks;
    const std::size_t rem = n % chunks;
    return chunk * base + (chunk < rem ? chunk : rem);
  }
  std::size_t end(std::size_t chunk) const { return begin(chunk + 1); }
};

inline ChunkPlan PlanChunks(std::size_t n, std::size_t min_grain = 16,
                            std::size_t max_chunks = 32) {
  ChunkPlan plan;
  plan.n = n;
  if (n == 0) return plan;
  if (min_grain == 0) min_grain = 1;
  std::size_t chunks = n / min_grain;
  if (chunks < 1) chunks = 1;
  if (chunks > max_chunks) chunks = max_chunks;
  plan.chunks = chunks;
  return plan;
}

// Runs body(chunk_index, begin, end) over the plan's chunks. The body
// must only write state owned by its items (slot-per-item writes are the
// canonical pattern); cross-chunk accumulation belongs in ParallelReduce.
//
// Cancellation (cancel.h): when a CancelToken is in ambient scope, it is
// consulted before every chunk. Chunks never stop mid-flight -- each one
// either ran over its full deterministic [begin, end) range or not at
// all -- and if any chunk was skipped the region throws
// fault::Exception(kCancelled) after all running chunks quiesce.
template <typename Body>
void ParallelFor(const ChunkPlan& plan, Body&& body) {
  if (plan.chunks == 0) return;
  CancelToken* token = CancelScope::Current();
  if (token == nullptr) {
    Pool::Get().Run(plan.chunks, [&](std::size_t chunk) {
      body(chunk, plan.begin(chunk), plan.end(chunk));
    });
    return;
  }
  std::atomic<bool> skipped{false};
  Pool::Get().Run(plan.chunks, [&](std::size_t chunk) {
    if (token->ShouldStop()) {
      skipped.store(true, std::memory_order_relaxed);
      return;
    }
    CancelScope nested(token);  // pool workers inherit for inner regions
    body(chunk, plan.begin(chunk), plan.end(chunk));
  });
  if (skipped.load(std::memory_order_relaxed)) ThrowCancelled();
}

// Convenience overload: one chunk per index in [0, n) (per-topology
// fan-out and other coarse loops where every item is heavyweight).
// Cancellation semantics match ParallelFor, with one index per chunk.
template <typename Body>
void ParallelForEach(std::size_t n, Body&& body) {
  if (n == 0) return;
  CancelToken* token = CancelScope::Current();
  if (token == nullptr) {
    Pool::Get().Run(n, [&](std::size_t index) { body(index); });
    return;
  }
  std::atomic<bool> skipped{false};
  Pool::Get().Run(n, [&](std::size_t index) {
    if (token->ShouldStop()) {
      skipped.store(true, std::memory_order_relaxed);
      return;
    }
    CancelScope nested(token);
    body(index);
  });
  if (skipped.load(std::memory_order_relaxed)) ThrowCancelled();
}

// Maps each chunk to a Partial, then folds the partials in ascending
// chunk order on the calling thread:
//
//   Partial map(chunk_index, begin, end);
//   void fold(Partial& accumulator, Partial&& next);
//
// Returns nullopt when the plan is empty. The fold order (and therefore
// every floating-point rounding) is fixed by the plan alone.
//
// Under an ambient CancelToken a skipped chunk leaves a hole no fold
// order could paper over, so the region throws kCancelled before folding
// anything -- a reduce either returns the full deterministic value or
// nothing.
template <typename Partial, typename Map, typename Fold>
std::optional<Partial> ParallelReduce(const ChunkPlan& plan, Map&& map,
                                      Fold&& fold) {
  if (plan.chunks == 0) return std::nullopt;
  CancelToken* token = CancelScope::Current();
  std::vector<std::optional<Partial>> partials(plan.chunks);
  Pool::Get().Run(plan.chunks, [&](std::size_t chunk) {
    if (token != nullptr && token->ShouldStop()) return;
    CancelScope nested(token);
    partials[chunk].emplace(map(chunk, plan.begin(chunk), plan.end(chunk)));
  });
  if (token != nullptr) {
    for (const std::optional<Partial>& partial : partials) {
      if (!partial.has_value()) ThrowCancelled();
    }
  }
  Partial acc = std::move(*partials[0]);
  for (std::size_t chunk = 1; chunk < plan.chunks; ++chunk) {
    fold(acc, std::move(*partials[chunk]));
  }
  return acc;
}

}  // namespace topogen::parallel
