#include "parallel/pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "obs/obs.h"

namespace topogen::parallel {

namespace {

// Depth of chunk bodies on this thread's stack; > 0 routes nested
// parallel regions to the inline serial path.
thread_local int t_region_depth = 0;

struct DepthGuard {
  DepthGuard() { ++t_region_depth; }
  ~DepthGuard() { --t_region_depth; }
};

int ResolveThreadCount(int requested) {
  int n = requested;
  if (n <= 0) n = obs::Env::Get().threads_override();
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  return n;
}

// Progress heartbeats: at most one "progress" event per region per this
// interval, so a million-chunk region costs a handful of log lines while
// still showing liveness under `tail -f events.jsonl`.
constexpr std::int64_t kHeartbeatIntervalUs = 250'000;

// Monotonic id correlating a region's progress events across the log.
std::atomic<std::uint64_t> g_next_region_id{0};

// One in-flight chunked region. Lane l owns chunks l, l + lanes,
// l + 2*lanes, ...; cursor[l] is the next *position* within that
// arithmetic sequence, popped with fetch_add by the owner or a thief.
struct Region {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t num_chunks = 0;
  int lanes = 0;
  std::vector<std::atomic<std::size_t>> cursor;
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::uint64_t id = 0;
  // Next timestamp at which a heartbeat may fire; seeded one interval out
  // so short regions emit nothing.
  std::atomic<std::int64_t> next_heartbeat_us{0};

  Region(const std::function<void(std::size_t)>& f, std::size_t chunks,
         int lane_count)
      : fn(&f), num_chunks(chunks), lanes(lane_count), cursor(lane_count) {
    for (auto& c : cursor) c.store(0, std::memory_order_relaxed);
    if (obs::EventsEnabled()) {
      id = g_next_region_id.fetch_add(1, std::memory_order_relaxed);
      next_heartbeat_us.store(obs::NowMicros() + kHeartbeatIntervalUs,
                              std::memory_order_relaxed);
    }
  }
};

// Emits a throttled items-done/total progress event for the region. The
// CAS arbitrates between lanes: whoever advances the deadline reports.
void MaybeHeartbeat(Region& r, std::size_t done, int lane) {
  const std::int64_t now = obs::NowMicros();
  std::int64_t deadline = r.next_heartbeat_us.load(std::memory_order_relaxed);
  if (now < deadline) return;
  if (r.next_heartbeat_us.compare_exchange_strong(
          deadline, now + kHeartbeatIntervalUs, std::memory_order_relaxed)) {
    obs::Event("progress")
        .U64("region", r.id)
        .U64("done", done)
        .U64("total", r.num_chunks)
        .I64("lane", lane);
  }
}

}  // namespace

struct Pool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers wait for a new region
  std::condition_variable done_cv;   // the caller waits for quiescence
  Region* region = nullptr;          // guarded by mutex
  std::uint64_t generation = 0;      // bumped per region, guarded by mutex
  int active_workers = 0;            // workers inside the current region
  bool stopping = false;
  std::vector<std::thread> workers;

  // Drains the region from `home_lane`: own lane first, then steal from
  // the other lanes round-robin. Returns through counters only.
  void WorkOn(Region& r, int home_lane) {
    std::size_t executed = 0;
    std::size_t stolen = 0;
    auto run_chunk = [&](std::size_t chunk, bool was_steal) {
      {
        DepthGuard depth;
        TOPOGEN_HIST_SCOPE("parallel.chunk_ns");
        try {
          TOPOGEN_FAULT_POINT("parallel.task");
          (*r.fn)(chunk);
        } catch (...) {
          bool expected = false;
          if (r.failed.compare_exchange_strong(expected, true)) {
            std::lock_guard<std::mutex> lock(r.error_mutex);
            r.error = std::current_exception();
          }
        }
      }
      const std::size_t done = r.completed.fetch_add(1) + 1;
      ++executed;
      if (was_steal) ++stolen;
      if (obs::EventsEnabled()) MaybeHeartbeat(r, done, home_lane);
    };
    for (int off = 0; off < r.lanes; ++off) {
      const int lane = (home_lane + off) % r.lanes;
      while (!r.failed.load(std::memory_order_relaxed)) {
        const std::size_t pos = r.cursor[lane].fetch_add(1);
        const std::size_t chunk =
            static_cast<std::size_t>(lane) +
            pos * static_cast<std::size_t>(r.lanes);
        if (chunk >= r.num_chunks) break;
        run_chunk(chunk, off != 0);
      }
    }
    if (executed > 0) TOPOGEN_COUNT_N("parallel.tasks", executed);
    if (stolen > 0) TOPOGEN_COUNT_N("parallel.steals", stolen);
    if (executed > 0 && obs::HistEnabled()) {
      // Per-lane utilization and steal-ratio samples, one per lane per
      // region: a skewed lane_share distribution means chunk sizing is
      // off; a high steal_pct means lanes finish their own work early.
      obs::Stats::GetHistogram("parallel.lane_share_pct")
          .Record(executed * 100 / r.num_chunks);
      obs::Stats::GetHistogram("parallel.steal_pct")
          .Record(stolen * 100 / executed);
    }
  }

  void WorkerLoop(int lane) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      Region* r = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] {
          return stopping || generation != seen_generation;
        });
        if (stopping) return;
        seen_generation = generation;
        r = region;
        if (r == nullptr) continue;  // woke after the region retired
        ++active_workers;
      }
      WorkOn(*r, lane);
      {
        std::lock_guard<std::mutex> lock(mutex);
        --active_workers;
      }
      done_cv.notify_all();
    }
  }
};

Pool::Pool(int threads) : threads_(ResolveThreadCount(threads)) {
  impl_ = threads_ > 1 ? new Impl : nullptr;
  if (impl_ != nullptr) {
    impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
    // The caller of Run() is lane 0; workers take lanes 1..threads-1.
    for (int lane = 1; lane < threads_; ++lane) {
      impl_->workers.emplace_back(
          [this, lane] { impl_->WorkerLoop(lane); });
    }
  }
  if (obs::AnyEnabled()) {
    obs::Stats::GetGauge("parallel.threads").Set(threads_);
  }
  obs::Manifest::SetThreads(threads_);
}

Pool::~Pool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void Pool::SerialRun(std::size_t num_chunks,
                     const std::function<void(std::size_t)>& fn) {
  DepthGuard depth;
  const bool events = obs::EventsEnabled();
  const std::uint64_t region_id =
      events ? g_next_region_id.fetch_add(1, std::memory_order_relaxed) : 0;
  std::int64_t next_heartbeat_us =
      events ? obs::NowMicros() + kHeartbeatIntervalUs : 0;
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    TOPOGEN_FAULT_POINT("parallel.task");
    {
      TOPOGEN_HIST_SCOPE("parallel.chunk_ns");
      fn(chunk);
    }
    if (events) {
      const std::int64_t now = obs::NowMicros();
      if (now >= next_heartbeat_us) {
        next_heartbeat_us = now + kHeartbeatIntervalUs;
        obs::Event("progress")
            .U64("region", region_id)
            .U64("done", chunk + 1)
            .U64("total", num_chunks)
            .I64("lane", 0);
      }
    }
  }
  if (num_chunks > 0) TOPOGEN_COUNT_N("parallel.tasks", num_chunks);
}

void Pool::Run(std::size_t num_chunks,
               const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  TOPOGEN_COUNT("parallel.regions");
  if (impl_ == nullptr || num_chunks == 1 || InRegion()) {
    // Serial fallback and nested regions: same chunks, same order, same
    // code path -- this is what makes TOPOGEN_THREADS=1 the reference
    // execution the determinism tests compare against.
    SerialRun(num_chunks, fn);
    return;
  }
  obs::Span span("parallel.region", "parallel");
  span.Arg("chunks", static_cast<std::uint64_t>(num_chunks))
      .Arg("threads", static_cast<std::uint64_t>(threads_));

  Region r(fn, num_chunks, threads_);
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    if (impl_->region != nullptr) {
      // Another external caller owns the worker fleet (topogend's executor
      // lanes each drive their own regions). The pool holds exactly one
      // region at a time, so the latecomer runs its chunks inline -- same
      // chunk bodies, same order, and cancellation still observed because
      // ParallelFor bakes the token check into each chunk body. The owning
      // region's workers are untouched.
      lock.unlock();
      TOPOGEN_COUNT("parallel.busy_serial");
      SerialRun(num_chunks, fn);
      return;
    }
    impl_->region = &r;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->WorkOn(r, /*home_lane=*/0);
  {
    // Retire the region under the lock: a worker can only enter it (and
    // bump active_workers) while `region` is set, so once the predicate
    // holds and we null the pointer no thread can touch `r` again.
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return impl_->active_workers == 0 &&
             (r.completed.load() == num_chunks || r.failed.load());
    });
    impl_->region = nullptr;
  }
  if (r.failed.load()) {
    std::lock_guard<std::mutex> lock(r.error_mutex);
    if (r.error) std::rethrow_exception(r.error);
  }
}

bool Pool::InRegion() { return t_region_depth > 0; }

namespace {

std::mutex& SingletonMutex() {
  static std::mutex m;
  return m;
}

Pool*& SingletonSlot() {
  static Pool* slot = nullptr;
  return slot;
}

}  // namespace

Pool& Pool::Get() {
  std::lock_guard<std::mutex> lock(SingletonMutex());
  Pool*& slot = SingletonSlot();
  if (slot == nullptr) slot = new Pool(0);
  return *slot;
}

void Pool::SetThreadCountForTesting(int threads) {
  std::lock_guard<std::mutex> lock(SingletonMutex());
  Pool*& slot = SingletonSlot();
  delete slot;
  slot = new Pool(threads);
}

}  // namespace topogen::parallel
