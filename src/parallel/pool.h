// Work-stealing thread pool behind the deterministic parallel engine
// (docs/PARALLELISM.md). The pool executes *chunked regions*: a region is
// `num_chunks` indexed tasks, chunk c is homed on lane `c % lanes`, every
// lane is drained front-to-back by its owner thread, and idle threads
// steal from other lanes' fronts. Chunk->lane homing is fixed, so which
// thread *executes* a chunk never changes what the chunk *computes* --
// determinism lives one level up, in parallel_for.h's fixed chunk
// boundaries, per-chunk partial slots, and ordered reduction.
//
// Sizing: TOPOGEN_THREADS (resolved once via obs::Env). Unset or 0 picks
// std::thread::hardware_concurrency(); 1 runs every region inline on the
// caller with zero worker threads -- the exact serial fallback, through
// the same chunking code path. Nested regions (a parallel kernel called
// from inside another region's chunk) always run inline on the calling
// worker, which keeps the pool deadlock-free without a re-entrant
// scheduler.
//
// Observability: each parallel region opens a `parallel.region` span and
// the pool maintains `parallel.regions` / `parallel.tasks` /
// `parallel.steals` counters plus a `parallel.threads` gauge; the
// effective thread count is stamped into the run manifest.
//
// Scratch reuse: pool workers are long-lived, so per-lane scratch pools
// (parallel/scratch_pool.h) keep their free lists warm across regions --
// a kernel chunk that leases a BFS workspace on lane 3 hands it back to
// lane 3's free list, and the next region's chunk on that lane reuses
// the same allocation.
#pragma once

#include <cstddef>
#include <functional>

namespace topogen::parallel {

class Pool {
 public:
  // The process-wide pool, created on first use and sized from
  // TOPOGEN_THREADS. Never destroyed (worker threads outlive all users).
  static Pool& Get();

  // Total execution lanes, including the caller's (so 1 = serial).
  int threads() const { return threads_; }

  // Runs fn(chunk_index) for every chunk_index in [0, num_chunks),
  // blocking until all chunks finished. Chunks may run on any thread and
  // in any order; each runs exactly once. If one or more chunk bodies
  // throw, the region still quiesces (remaining unclaimed chunks are
  // abandoned) and the first exception is rethrown on the caller.
  // Re-entrant calls (from inside a chunk) run inline and serially.
  //
  // Concurrent external callers are safe but not multiplexed: the pool
  // holds one region at a time, and a caller that finds the workers busy
  // (e.g. a second topogend executor lane) runs its own chunks inline --
  // counted as `parallel.busy_serial`. Each caller thread keeps its own
  // ambient CancelScope, so per-lane cancellation is unaffected by who
  // wins the workers.
  void Run(std::size_t num_chunks, const std::function<void(std::size_t)>& fn);

  // True while the current thread is executing a chunk body; used to
  // route nested parallel regions to the inline serial path.
  static bool InRegion();

  // Tears the pool down and rebuilds it with `threads` lanes (0 = re-read
  // the environment). Test/bench only: callers must guarantee no region
  // is in flight. Lets one process benchmark threads={1,2,N}.
  static void SetThreadCountForTesting(int threads);

 private:
  explicit Pool(int threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  void SerialRun(std::size_t num_chunks,
                 const std::function<void(std::size_t)>& fn);

  int threads_;
  struct Impl;
  Impl* impl_;  // null when threads_ == 1 (no workers at all)
};

}  // namespace topogen::parallel
