// Deterministic fault-injection framework (docs/ROBUSTNESS.md).
//
// Hot seams in the pipeline -- artifact writes, journal appends, CSR
// parsing, generator validation, the parallel pool's task boundary --
// carry *named fail points* compiled in via the TOPOGEN_FAULT_POINT
// macros. With the CMake option TOPOGEN_FAULT_POINTS=OFF (the default
// for Release builds) the macros expand to nothing: zero code, zero
// branches, zero cost. When compiled in but disarmed, a fail point costs
// one relaxed atomic load.
//
// Arming is runtime-only, via the TOPOGEN_FAULTS environment variable (or
// ArmForTesting), with a ';'-separated spec:
//
//   TOPOGEN_FAULTS="store.write.torn@nth=3;gen.retry.exhausted@p=0.01,seed=42"
//
//   point                      fire on every hit
//   point@nth=N                fire on exactly the Nth hit (1-based)
//   point@p=0.5,seed=7         fire each hit with probability p, from a
//                              deterministic per-rule RNG seeded by seed
//   point@kind=K               override the point's default error kind:
//                              throw | short | enospc | corrupt | delay |
//                              abort
//   point@ms=5                 delay duration for kind=delay
//   point@match=S              only hits whose site detail string contains
//                              substring S count (e.g. a topology id)
//
// Every fail point is declared in the catalog below; arming an unknown
// point is reported to stderr and ignored, never fatal. Probability rules
// are seed-reproducible: the per-rule RNG consumes one draw per counted
// hit, so a single-threaded seam replays identically run over run.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "fault/error.h"

namespace topogen::fault {

// How an armed fault manifests at the site that hit it. Sites interpret
// the kinds they understand (a short write needs a write to shorten);
// any kind a site cannot express falls back to kThrow via ThrowInjected.
enum class Kind {
  kThrow,       // throw InjectedFault at the fail point
  kShortWrite,  // truncate the bytes the site is about to write
  kEnospc,      // the site's I/O operation reports no-space failure
  kCorruptByte, // flip one byte of the site's payload
  kDelay,       // sleep `delay_ms`, then continue normally (handled inside
                // Hit(); never returned to the site)
  kAbort,       // _Exit(kCrashExitCode) after the site's partial work --
                // the crash-recovery tests' guillotine
  kReset,       // socket seams: hard-close the peer's connection at the
                // site (mid-read, mid-write, or at accept)
  kStall,       // socket seams: hold the operation for `delay_ms` before
                // letting it proceed -- unlike kDelay the *site* sleeps,
                // so its locks/fds stay held exactly as a real wedge would
};

// Exit code used by kind=abort, distinct from any exit code the benches
// document so a harness can tell an injected crash from a real one.
inline constexpr int kCrashExitCode = 113;

struct Injection {
  Kind kind = Kind::kThrow;
  std::uint32_t delay_ms = 0;
};

struct PointInfo {
  std::string_view name;
  Kind default_kind;
  std::string_view seam;  // one-line description for the catalog dump
};

// The fail-point catalog: the single source of truth for valid names.
// docs/ROBUSTNESS.md mirrors this table; tests/fault_test.cc checks the
// mirror does not drift.
std::span<const PointInfo> RegisteredPoints();

// True when the fail-point macros were compiled in
// (-DTOPOGEN_FAULT_POINTS=ON). Chaos tests skip themselves otherwise.
bool CompiledIn();

// Re-arms from a spec string (replacing any prior arming, including the
// TOPOGEN_FAULTS environment arming). Unknown points and malformed params
// are reported to stderr and skipped.
void ArmForTesting(std::string_view spec);

// Removes all armed rules and zeroes hit/fire counts.
void Disarm();

// Hits and fires observed at `point` since the last (dis)arming, across
// all rules targeting it. A hit only counts while armed (and matching).
std::uint64_t HitCount(std::string_view point);
std::uint64_t FiredCount(std::string_view point);

namespace detail {

// Fast disarmed check shared by every compiled-in fail point.
extern std::atomic<bool> g_armed;

std::optional<Injection> HitSlow(const char* point, std::string_view detail);

}  // namespace detail

// The compiled-in fail point implementation. Returns the Injection when a
// rule fires with a kind the site must interpret (short/enospc/corrupt/
// abort); kThrow throws InjectedFault here and kDelay sleeps here, so
// most sites never see a value.
inline std::optional<Injection> Hit(const char* point,
                                    std::string_view detail = {}) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return std::nullopt;
  return detail::HitSlow(point, detail);
}

// For sites with no I/O to pervert: any fired kind degenerates to throw.
inline void ThrowIfArmed(const char* point, std::string_view detail = {}) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return;
  if (detail::HitSlow(point, detail).has_value()) {
    throw InjectedFault(point);
  }
}

}  // namespace topogen::fault

// --- the zero-cost-when-disabled site macros ---
//
// TOPOGEN_FAULT_POINT(name)            error seam; fires as throw
// TOPOGEN_FAULT_POINT_D(name, detail)  same, with a match= detail string
// TOPOGEN_FAULT_HIT(name, detail)      I/O seam; yields optional<Injection>
//                                      for site-interpreted kinds
#if defined(TOPOGEN_FAULT_POINTS_ENABLED)
#define TOPOGEN_FAULT_POINT(name) ::topogen::fault::ThrowIfArmed(name)
#define TOPOGEN_FAULT_POINT_D(name, detail) \
  ::topogen::fault::ThrowIfArmed(name, detail)
#define TOPOGEN_FAULT_HIT(name, detail) ::topogen::fault::Hit(name, detail)
#else
#define TOPOGEN_FAULT_POINT(name) ((void)0)
#define TOPOGEN_FAULT_POINT_D(name, detail) ((void)0)
#define TOPOGEN_FAULT_HIT(name, detail) \
  (::std::optional<::topogen::fault::Injection>{})
#endif
