#include "fault/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/rng.h"
#include "obs/obs.h"

namespace topogen::fault {

namespace {

constexpr PointInfo kCatalog[] = {
    {"store.write.torn", Kind::kShortWrite,
     "artifact write truncated before the atomic rename"},
    {"store.write.enospc", Kind::kEnospc,
     "artifact temp-file write fails as if the disk were full"},
    {"store.write.corrupt", Kind::kCorruptByte,
     "one payload byte flipped after the checksum was taken"},
    {"store.read.corrupt", Kind::kCorruptByte,
     "one byte of a loaded artifact flipped before validation"},
    {"store.journal.append", Kind::kShortWrite,
     "journal completion record torn mid-line (abort = crash there)"},
    {"store.prune.race", Kind::kThrow,
     "a file delete during cache pruning fails under the iterator"},
    {"graph.csr.parse", Kind::kThrow,
     "binary CSR deserialization rejects the blob"},
    {"gen.validate", Kind::kThrow,
     "a generated topology fails post-generation validation"},
    {"gen.retry.exhausted", Kind::kThrow,
     "every generation attempt fails validation (forces retry exhaustion)"},
    {"gen.realize", Kind::kThrow,
     "a degree-sequence realization fails its sanity checks"},
    {"gen.ts.connect", Kind::kCorruptByte,
     "a Transit-Stub G(n,p) draw is treated as disconnected"},
    {"parallel.task", Kind::kThrow,
     "a parallel-pool chunk fails at the dispatch boundary"},
    {"suite.metrics", Kind::kThrow,
     "the basic-metrics suite fails for one topology"},
    {"svc.accept", Kind::kThrow,
     "topogend rejects an incoming connection at the accept seam"},
    {"svc.parse", Kind::kThrow,
     "topogend fails to parse a request line after reading it"},
    {"svc.respond", Kind::kThrow,
     "topogend fails to write a response (abort = crash mid-request)"},
    {"svc.sock.read", Kind::kReset,
     "topogend's connection read is perverted (short = truncated read, "
     "reset = peer close, stall = held recv)"},
    {"svc.sock.write", Kind::kReset,
     "topogend's response write is perverted (short = torn line + close, "
     "reset = close before write, stall = held send)"},
};

const PointInfo* FindPoint(std::string_view name) {
  for (const PointInfo& p : kCatalog) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kThrow:
      return "throw";
    case Kind::kShortWrite:
      return "short";
    case Kind::kEnospc:
      return "enospc";
    case Kind::kCorruptByte:
      return "corrupt";
    case Kind::kDelay:
      return "delay";
    case Kind::kAbort:
      return "abort";
    case Kind::kReset:
      return "reset";
    case Kind::kStall:
      return "stall";
  }
  return "unknown";
}

std::optional<Kind> ParseKind(std::string_view v) {
  if (v == "throw") return Kind::kThrow;
  if (v == "short") return Kind::kShortWrite;
  if (v == "enospc") return Kind::kEnospc;
  if (v == "corrupt") return Kind::kCorruptByte;
  if (v == "delay") return Kind::kDelay;
  if (v == "abort") return Kind::kAbort;
  if (v == "reset") return Kind::kReset;
  if (v == "stall") return Kind::kStall;
  return std::nullopt;
}

struct Rule {
  std::string point;
  Kind kind = Kind::kThrow;
  std::string match;              // substring filter over the site detail
  std::uint64_t nth = 0;          // fire on exactly this hit (0 = off)
  double p = -1.0;                // per-hit probability (< 0 = off)
  std::uint64_t seed = 0;         // seed for the probability stream
  std::uint32_t delay_ms = 10;    // for kind=delay
  // Mutable state, guarded by Registry::mutex.
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  graph::Rng rng{0};

  bool ShouldFire() {
    ++hits;
    if (nth != 0) return hits == nth;
    if (p >= 0.0) return rng.NextBool(p);
    return true;
  }
};

// One rule from "point@k=v,k=v". Returns false (with a stderr note) when
// the point is unknown or a param is malformed -- arming is best-effort,
// never fatal.
bool ParseRule(std::string_view spec, Rule& rule) {
  const std::size_t at = spec.find('@');
  const std::string_view name = spec.substr(0, at);
  const PointInfo* info = FindPoint(name);
  if (info == nullptr) {
    std::fprintf(stderr, "# fault: unknown fail point '%.*s' (ignored)\n",
                 static_cast<int>(name.size()), name.data());
    return false;
  }
  rule.point = std::string(name);
  rule.kind = info->default_kind;
  if (at == std::string_view::npos) return true;
  std::string_view params = spec.substr(at + 1);
  while (!params.empty()) {
    const std::size_t comma = params.find(',');
    const std::string_view param = params.substr(0, comma);
    params = comma == std::string_view::npos ? std::string_view{}
                                             : params.substr(comma + 1);
    const std::size_t eq = param.find('=');
    if (eq == std::string_view::npos) {
      std::fprintf(stderr, "# fault: malformed param '%.*s' (rule ignored)\n",
                   static_cast<int>(param.size()), param.data());
      return false;
    }
    const std::string_view key = param.substr(0, eq);
    const std::string value(param.substr(eq + 1));
    char* end = nullptr;
    if (key == "nth") {
      rule.nth = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0' || rule.nth == 0) return false;
    } else if (key == "p") {
      rule.p = std::strtod(value.c_str(), &end);
      if (*end != '\0' || rule.p < 0.0 || rule.p > 1.0) return false;
    } else if (key == "seed") {
      rule.seed = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0') return false;
    } else if (key == "ms") {
      rule.delay_ms =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), &end, 10));
      if (*end != '\0') return false;
    } else if (key == "match") {
      rule.match = value;
    } else if (key == "kind") {
      const std::optional<Kind> kind = ParseKind(value);
      if (!kind) {
        std::fprintf(stderr, "# fault: unknown kind '%s' (rule ignored)\n",
                     value.c_str());
        return false;
      }
      rule.kind = *kind;
    } else {
      std::fprintf(stderr, "# fault: unknown param '%.*s' (rule ignored)\n",
                   static_cast<int>(key.size()), key.data());
      return false;
    }
  }
  return true;
}

struct Registry {
  std::mutex mutex;
  std::vector<Rule> rules;

  static Registry& Get() {
    static Registry* r = new Registry;  // leaked: outlives all users
    return *r;
  }

  void Arm(std::string_view spec) {
    std::vector<Rule> parsed;
    while (!spec.empty()) {
      const std::size_t semi = spec.find(';');
      const std::string_view one = spec.substr(0, semi);
      spec = semi == std::string_view::npos ? std::string_view{}
                                            : spec.substr(semi + 1);
      if (one.empty()) continue;
      Rule rule;
      if (ParseRule(one, rule)) {
        // Decorrelate per-rule probability streams by point name so two
        // p-rules with the same seed do not fire in lockstep.
        std::uint64_t h = rule.seed;
        for (const char c : rule.point) {
          h = graph::SplitMix64(h ^ static_cast<std::uint64_t>(c));
        }
        rule.rng = graph::Rng(h);
        parsed.push_back(std::move(rule));
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    rules = std::move(parsed);
    detail::g_armed.store(!rules.empty(), std::memory_order_relaxed);
  }
};

// Resolve TOPOGEN_FAULTS exactly once (ArmForTesting overrides it). Runs
// during this translation unit's dynamic initialization, which is before
// main() and therefore before any fail point can be hit.
bool ArmFromEnvironmentOnce() {
  static const bool armed = [] {
    const char* spec = std::getenv("TOPOGEN_FAULTS");
    if (spec != nullptr && *spec != '\0') Registry::Get().Arm(spec);
    return true;
  }();
  return armed;
}

[[maybe_unused]] const bool g_env_arming = ArmFromEnvironmentOnce();

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

std::optional<Injection> HitSlow(const char* point, std::string_view detail) {
  Registry& registry = Registry::Get();
  std::optional<Injection> injection;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (Rule& rule : registry.rules) {
      if (rule.point != point) continue;
      if (!rule.match.empty() &&
          detail.find(rule.match) == std::string_view::npos) {
        continue;
      }
      if (!rule.ShouldFire()) continue;
      ++rule.fires;
      injection = Injection{rule.kind, rule.delay_ms};
      break;
    }
  }
  if (!injection) return std::nullopt;
  if (obs::AnyEnabled()) {
    // Dynamic names cannot use the TOPOGEN_COUNT macros (they cache one
    // Counter& per call site); register through the Stats API directly.
    obs::Stats::GetCounter("fault.injected").Increment();
    obs::Stats::GetCounter("fault." + std::string(point)).Increment();
  }
  obs::Manifest::AddFaultInjected(point);
  if (obs::EventsEnabled()) {
    obs::Event("fault")
        .Str("point", point)
        .Str("kind", KindName(injection->kind))
        .Str("detail", detail);
  }
  switch (injection->kind) {
    case Kind::kThrow:
      throw InjectedFault(point);
    case Kind::kDelay: {
      // Retry/backoff delays feed the fault.delay_ns histogram, so an
      // injected-latency sweep shows its actual distribution, not just a
      // configured constant.
      TOPOGEN_HIST_SCOPE("fault.delay_ns");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injection->delay_ms));
      return std::nullopt;
    }
    default:
      return injection;
  }
}

}  // namespace detail

std::span<const PointInfo> RegisteredPoints() { return kCatalog; }

bool CompiledIn() {
#if defined(TOPOGEN_FAULT_POINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

void ArmForTesting(std::string_view spec) {
  ArmFromEnvironmentOnce();  // take the env slot so it cannot re-arm later
  Registry::Get().Arm(spec);
}

void Disarm() { ArmForTesting({}); }

std::uint64_t HitCount(std::string_view point) {
  ArmFromEnvironmentOnce();
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::uint64_t total = 0;
  for (const Rule& rule : registry.rules) {
    if (rule.point == point) total += rule.hits;
  }
  return total;
}

std::uint64_t FiredCount(std::string_view point) {
  ArmFromEnvironmentOnce();
  Registry& registry = Registry::Get();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::uint64_t total = 0;
  for (const Rule& rule : registry.rules) {
    if (rule.point == point) total += rule.fires;
  }
  return total;
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown:
      return "unknown";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kIo:
      return "io";
    case ErrorCode::kCorrupt:
      return "corrupt";
    case ErrorCode::kValidationFailed:
      return "validation_failed";
    case ErrorCode::kDegreeRealization:
      return "degree_realization";
    case ErrorCode::kRetryExhausted:
      return "retry_exhausted";
    case ErrorCode::kInjected:
      return "injected";
    case ErrorCode::kTaskFailed:
      return "task_failed";
    case ErrorCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace topogen::fault
