// Typed error taxonomy for the generation->metrics->store pipeline
// (docs/ROBUSTNESS.md).
//
// Every recoverable failure the pipeline can isolate -- a stochastic
// generator draw that fails validation, a corrupt artifact, an injected
// fault -- is described by an Error carrying a machine-readable code, the
// fail point it originated at (empty for organic failures), and the retry
// attempt count at the time it was raised. Exception is the throwing
// carrier for seams that must unwind; Result<T> is the value carrier for
// seams that must not (per-slot suite isolation, degraded bookkeeping).
//
// The taxonomy lives in topogen::fault (the lowest layer above obs) so
// src/gen and src/store can raise typed errors without depending on core;
// core/error.h re-exports it as core::Error / core::Result for callers
// written against the core API.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace topogen::fault {

enum class ErrorCode {
  kUnknown = 0,
  kInvalidArgument,     // caller bug: bad id, bad options
  kIo,                  // filesystem/OS failure (open, write, rename)
  kCorrupt,             // stored bytes failed validation (checksum, shape)
  kValidationFailed,    // generated artifact failed its invariant checks
  kDegreeRealization,   // degree sequence could not be realized as a graph
  kRetryExhausted,      // bounded retry loop ran out of attempts
  kInjected,            // a TOPOGEN_FAULTS fail point fired
  kTaskFailed,          // a parallel task aborted below the isolation seam
  kCancelled,           // cooperative cancellation (deadline or caller stop)
};

const char* ErrorCodeName(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
  // The fail-point name that produced (or injected) this error; empty for
  // organic failures with no fault-injection provenance.
  std::string fail_point;
  // Retry attempts consumed when the error was raised (0 = first try).
  int attempts = 0;
};

// The throwing carrier: unwinds a pipeline stage up to the nearest
// isolation seam (Session slot, suite batch, bench main), which converts
// it back into an Error for degraded bookkeeping.
class Exception : public std::runtime_error {
 public:
  explicit Exception(Error error)
      : std::runtime_error(ErrorCodeName(error.code) +
                           (error.message.empty() ? std::string()
                                                  : ": " + error.message)),
        error_(std::move(error)) {}

  Exception(ErrorCode code, std::string message, std::string fail_point = {},
            int attempts = 0)
      : Exception(Error{code, std::move(message), std::move(fail_point),
                        attempts}) {}

  const Error& error() const { return error_; }

 private:
  Error error_;
};

// Thrown by an armed fail point with kind=throw (fault.h). A distinct
// type so chaos tests can tell injected failures from organic ones.
class InjectedFault : public Exception {
 public:
  explicit InjectedFault(std::string fail_point)
      : Exception(MakeError(std::move(fail_point))) {}

 private:
  // Built in one place so the message reads the name before it is moved
  // into the fail_point field (argument evaluation order would not
  // guarantee that in a ctor-argument expression).
  static Error MakeError(std::string fail_point) {
    Error e;
    e.code = ErrorCode::kInjected;
    e.message = "injected fault at '" + fail_point + "'";
    e.fail_point = std::move(fail_point);
    return e;
  }
};

// Minimal value-or-Error carrier for seams that must not throw.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Error error) : error_(std::move(error)) {}    // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  const Error& error() const { return *error_; }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace topogen::fault
