// Link values: the paper's measure of hierarchy (Section 5).
//
// A link's *traversal set* is the set of node pairs whose shortest-path
// traffic crosses it, weighted by the fraction of each pair's equal-cost
// shortest paths that use the link. The link's *value* is the minimum
// weighted vertex cover of the bipartite graph this traversal set forms,
// with each node weighted by its average pair weight W(u,l) (paper's
// footnote 27). Backbone links cover many pairs on both sides and get
// high values; access links always have value ~1.
//
// Exact computation is infeasible (the paper itself used approximation
// algorithms [30] and pruned the RL graph to its degree->=2 core,
// footnote 29). Our estimator:
//
//   1. For every source u, build the shortest-path DAG; compute, for every
//      link l in the DAG, delta(u,l) = sum over targets v of w(u,v,l)
//      (Brandes edge dependency) and cnt(u,l) = number of targets routed
//      through l (exact DAG-descendant counting with bitsets). Then
//      W(u,l) = delta / cnt, the paper's bipartite node weight.
//   2. Each source belongs to exactly one side of l (the endpoint it is
//      strictly closer to; equidistant sources never route through l).
//      Accumulate W(u,l) into that side's mass.
//   3. value(l) = min(side mass at u-endpoint, side mass at v-endpoint) --
//      the exact minimum weighted vertex cover of a complete bipartite
//      graph, and a natural upper-bound approximation for ours. It
//      reproduces the two calibration cases the paper quotes: access
//      links get exactly 1, and a tree's root link gets min(|A|, |B|).
//
// The policy variant runs the same accumulation on the valley-free
// product automaton so only policy-compliant shortest paths contribute.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "metrics/series.h"
#include "policy/relationships.h"

namespace topogen::hierarchy {

struct LinkValueOptions {
  // Sources used for the accumulation; all nodes when >= n. Link-value
  // analysis is the one place the paper subsamples *graphs* rather than
  // sources (RL -> core), so default to exact.
  std::size_t max_sources = 0;  // 0 = all nodes
  std::uint64_t seed = 23;
};

struct LinkValueResult {
  // Raw (unnormalized) link values, parallel to graph.edges().
  std::vector<double> value;
  graph::NodeId num_nodes = 0;

  // Figure 3/4 series: x = rank / m (descending by value), y = value / N.
  metrics::Series RankDistribution() const;

  // Figure 5: Pearson correlation between a link's value and the lower
  // degree of its endpoints.
  double DegreeCorrelation(const graph::Graph& g) const;

  // Spearman (rank) companion to DegreeCorrelation. Link values span four
  // orders of magnitude, so Pearson is dominated by a handful of backbone
  // links; the rank correlation reads the monotone trend the paper's
  // Section 5.2 argues from ("the only links that have high values are the
  // ones that connect two nodes with high degrees").
  double DegreeRankCorrelation(const graph::Graph& g) const;
};

LinkValueResult ComputeLinkValues(const graph::Graph& g,
                                  const LinkValueOptions& options = {});

LinkValueResult ComputePolicyLinkValues(
    const graph::Graph& g, std::span<const policy::Relationship> rel,
    const LinkValueOptions& options = {});

// Section 5.1's strict / moderate / loose grouping, decided from the
// normalized distribution: strict hierarchies have very high top values
// (Tree/TS/Tiers reach 0.25+); loose ones spread value across most links
// (Mesh/Random/Waxman); everything between is moderate (AS/RL/PLRG).
enum class HierarchyClass { kStrict, kModerate, kLoose };

// Decision order matters: looseness (a flat distribution) is tested first
// because a Random graph's *top* value can rival a strict hierarchy's
// (Figure 3a shows Random starting near 0.2) -- what distinguishes it is
// that the *bulk* of links carry comparable value. Flatness is measured
// scale-free, as the ratio of the median link value to the 1st-percentile
// (near-top) link value: loose graphs keep most links within a factor of
// a few of the backbone (Mesh ~0.4, Random ~0.5, Waxman ~0.55), while
// hierarchical graphs of either kind collapse the median orders of
// magnitude below it (Tree ~0.01, PLRG ~0.03, AS ~0.05).
struct HierarchyClassOptions {
  double strict_top_value = 0.25;  // normalized top value at or above this
  double loose_flatness = 0.25;    // median / 1st-percentile link value
};

HierarchyClass ClassifyHierarchy(const LinkValueResult& result,
                                 const HierarchyClassOptions& options = {});

const char* ToString(HierarchyClass c);

}  // namespace topogen::hierarchy
