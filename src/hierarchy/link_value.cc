#include "hierarchy/link_value.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "obs/obs.h"
#include "graph/rng.h"
#include "parallel/parallel_for.h"
#include "parallel/scratch_pool.h"
#include "policy/paths.h"

namespace topogen::hierarchy {

using graph::Dist;
using graph::EdgeId;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

namespace {

// Fixed-width bitset rows (one per node or per automaton state) used for
// exact DAG-descendant counting.
class BitRows {
 public:
  BitRows() = default;

  // Resizes to the requested shape; returns true when the backing store
  // was reallocated (and therefore zeroed -- callers must reset their
  // dirty-row bookkeeping). Same-shape calls keep the old bits so pooled
  // reuse stays allocation-free and the lazy ClearRow path handles them.
  bool Ensure(std::size_t rows, std::size_t bits) {
    const std::size_t words = (bits + 63) / 64;
    if (rows == rows_ && words == words_) return false;
    rows_ = rows;
    words_ = words;
    data_.assign(rows * words, 0);
    return true;
  }

  std::uint64_t* row(std::size_t r) { return data_.data() + r * words_; }

  void SetBit(std::size_t r, std::size_t bit) {
    row(r)[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  void OrInto(std::size_t dst, std::size_t src) {
    std::uint64_t* d = row(dst);
    const std::uint64_t* s = row(src);
    for (std::size_t w = 0; w < words_; ++w) d[w] |= s[w];
  }
  std::size_t Popcount(std::size_t r) {
    const std::uint64_t* d = row(r);
    std::size_t total = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      total += static_cast<std::size_t>(std::popcount(d[w]));
    }
    return total;
  }
  void ClearRow(std::size_t r) {
    std::memset(row(r), 0, words_ * sizeof(std::uint64_t));
  }

 private:
  std::size_t rows_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> data_;
};

// Per-lane scratch for the plain link-value kernel, pooled across chunks
// and calls (parallel/scratch_pool.h). `dirty` rides along with `reach`:
// rows left dirty by an earlier source -- including a source from a
// previous call on a same-sized graph -- are lazily cleared right before
// their next use, exactly the mechanism the per-chunk version used
// across sources within one chunk.
struct LinkValueScratch {
  BitRows reach;
  std::vector<double> delta;
  std::vector<std::uint8_t> dirty;

  void Ensure(std::size_t n) {
    if (reach.Ensure(n, n)) dirty.assign(n, 0);
    delta.resize(n);
  }
};

// Policy-variant scratch: one row/slot per automaton state (2 per node,
// phase in the LSB), plus the pooled product-automaton BFS itself.
struct PolicyLinkScratch {
  BitRows reach;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<double> sigma_pol;
  std::vector<std::uint8_t> dirty;
  policy::PolicyBfs bfs;

  void Ensure(std::size_t n) {
    const std::size_t states = 2 * n;
    if (reach.Ensure(states, n)) dirty.assign(states, 0);
    sigma.resize(states);
    delta.resize(states);
    sigma_pol.resize(n);
  }
};

std::vector<NodeId> PickSources(NodeId n, std::size_t max_sources,
                                std::uint64_t seed) {
  std::vector<NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  if (max_sources == 0 || max_sources >= n) return sources;
  graph::Rng rng(seed);
  std::shuffle(sources.begin(), sources.end(), rng.engine());
  sources.resize(max_sources);
  return sources;
}

// Per-chunk accumulator for the side masses (one slot per edge). Chunks
// fold left-to-right in chunk order (parallel_for.h), so the summation
// order -- and every floating-point rounding -- depends only on the
// chunk plan, never on the thread count.
struct SideMasses {
  std::vector<double> u, v;

  explicit SideMasses(std::size_t edges) : u(edges, 0.0), v(edges, 0.0) {}

  static void Fold(SideMasses& acc, SideMasses&& next) {
    for (std::size_t e = 0; e < acc.u.size(); ++e) {
      acc.u[e] += next.u[e];
      acc.v[e] += next.v[e];
    }
  }
};

// Source chunking: >= 24 sources per chunk keeps the per-chunk scratch
// (descendant bitsets, O(n^2) bits) amortized across enough BFS DAGs,
// and <= 32 chunks bounds the transient memory in mass partials.
parallel::ChunkPlan SourcePlan(std::size_t num_sources) {
  return parallel::PlanChunks(num_sources, /*min_grain=*/24,
                              /*max_chunks=*/32);
}

}  // namespace

metrics::Series LinkValueResult::RankDistribution() const {
  metrics::Series s;
  s.name = "link-value-rank";
  if (value.empty() || num_nodes == 0) return s;
  std::vector<double> sorted(value);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double m = static_cast<double>(sorted.size());
  const double n = static_cast<double>(num_nodes);
  for (std::size_t rank = 0; rank < sorted.size(); ++rank) {
    s.Add(static_cast<double>(rank + 1) / m, sorted[rank] / n);
  }
  return s;
}

double LinkValueResult::DegreeCorrelation(const Graph& g) const {
  const std::size_t m = value.size();
  if (m < 2) return 0.0;
  double mean_v = 0, mean_d = 0;
  std::vector<double> mind(m);
  for (EdgeId e = 0; e < m; ++e) {
    mind[e] = static_cast<double>(
        std::min(g.degree(g.edges()[e].u), g.degree(g.edges()[e].v)));
    mean_v += value[e];
    mean_d += mind[e];
  }
  mean_v /= static_cast<double>(m);
  mean_d /= static_cast<double>(m);
  double cov = 0, var_v = 0, var_d = 0;
  for (EdgeId e = 0; e < m; ++e) {
    const double dv = value[e] - mean_v;
    const double dd = mind[e] - mean_d;
    cov += dv * dd;
    var_v += dv * dv;
    var_d += dd * dd;
  }
  if (var_v <= 0 || var_d <= 0) return 0.0;
  return cov / std::sqrt(var_v * var_d);
}

double LinkValueResult::DegreeRankCorrelation(const Graph& g) const {
  const std::size_t m = value.size();
  if (m < 2) return 0.0;
  // Fractional ranks (ties get the mean rank of their block).
  auto ranks_of = [m](const std::vector<double>& xs) {
    std::vector<std::size_t> idx(m);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> rank(m);
    std::size_t i = 0;
    while (i < m) {
      std::size_t j = i;
      while (j + 1 < m && xs[idx[j + 1]] == xs[idx[i]]) ++j;
      const double mean_rank = 0.5 * (static_cast<double>(i) +
                                      static_cast<double>(j));
      for (std::size_t k = i; k <= j; ++k) rank[idx[k]] = mean_rank;
      i = j + 1;
    }
    return rank;
  };
  std::vector<double> mind(m);
  for (EdgeId e = 0; e < m; ++e) {
    mind[e] = static_cast<double>(
        std::min(g.degree(g.edges()[e].u), g.degree(g.edges()[e].v)));
  }
  const std::vector<double> rv = ranks_of(value);
  const std::vector<double> rd = ranks_of(mind);
  double mean_v = 0, mean_d = 0;
  for (std::size_t e = 0; e < m; ++e) {
    mean_v += rv[e];
    mean_d += rd[e];
  }
  mean_v /= static_cast<double>(m);
  mean_d /= static_cast<double>(m);
  double cov = 0, var_v = 0, var_d = 0;
  for (std::size_t e = 0; e < m; ++e) {
    const double dv = rv[e] - mean_v;
    const double dd = rd[e] - mean_d;
    cov += dv * dd;
    var_v += dv * dv;
    var_d += dd * dd;
  }
  if (var_v <= 0 || var_d <= 0) return 0.0;
  return cov / std::sqrt(var_v * var_d);
}

LinkValueResult ComputeLinkValues(const Graph& g,
                                  const LinkValueOptions& options) {
  obs::Span span("hierarchy.link_values", "hierarchy");
  const NodeId n = g.num_nodes();
  const std::size_t m = g.num_edges();
  LinkValueResult out;
  out.num_nodes = n;
  out.value.assign(m, 0.0);
  if (n == 0 || m == 0) return out;

  const std::vector<NodeId> sources =
      PickSources(n, options.max_sources, options.seed);
  const parallel::ChunkPlan plan = SourcePlan(sources.size());

  span.Arg("nodes", static_cast<std::uint64_t>(n))
      .Arg("sources", static_cast<std::uint64_t>(sources.size()))
      .Arg("chunks", static_cast<std::uint64_t>(plan.chunks));
  // Per-source accumulation is embarrassingly parallel: each chunk of
  // sources owns its scratch (bitsets, delta) and its SideMasses partial.
  auto map = [&](std::size_t, std::size_t first, std::size_t last) {
    SideMasses masses(m);
    auto scratch = parallel::ScratchPool<LinkValueScratch>::Acquire();
    scratch->Ensure(n);
    BitRows& reach = scratch->reach;
    std::vector<double>& delta = scratch->delta;
    std::vector<std::uint8_t>& dirty = scratch->dirty;
    graph::BfsScratchLease bfs = graph::AcquireBfsScratch();
    for (std::size_t si = first; si < last; ++si) {
      const NodeId src = sources[si];
      TOPOGEN_COUNT("hierarchy.sources_processed");
      graph::BuildShortestPathDagInto(g, src, *bfs);
      const graph::BfsScratch& dag = *bfs;
      const std::span<const NodeId> order = dag.order();
      // Descendant bitsets, farthest nodes first. dist() folds the
      // historical dist != kUnreachable guard into one compare:
      // unvisited reads kUnreachable, which can never equal dy + 1 for a
      // real level (dy < n << kUnreachable).
      for (std::size_t i = order.size(); i-- > 0;) {
        const NodeId y = order[i];
        if (dirty[y]) reach.ClearRow(y);
        dirty[y] = 1;
        reach.SetBit(y, y);
        const Dist dy = dag.dist(y);
        for (const NodeId z : g.neighbors(y)) {
          if (dag.dist(z) == dy + 1) {
            reach.OrInto(y, z);
          }
        }
      }
      // Brandes backward accumulation with per-edge contributions.
      std::fill(delta.begin(), delta.end(), 0.0);
      for (std::size_t i = order.size(); i-- > 0;) {
        const NodeId y = order[i];
        if (y == src) continue;
        const double through = 1.0 + delta[y];
        const std::size_t targets = reach.Popcount(y);
        const Dist dy = dag.dist(y);
        const auto nbrs = g.neighbors(y);
        const auto eids = g.incident_edges(y);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          const NodeId x = nbrs[k];
          // Not a DAG predecessor. Single-compare form: unvisited x reads
          // kUnreachable, which wraps to 0 under + 1 and dy >= 1 here
          // (the source was skipped above).
          if (dag.dist(x) + 1 != dy) continue;
          const double c = dag.sigma_visited(x) / dag.sigma_visited(y) * through;
          delta[x] += c;
          // W(src, l) = delta_edge / |targets through l|; the source sits
          // on x's side of the link (x is strictly closer to src).
          const double w = c / static_cast<double>(targets);
          const EdgeId e = eids[k];
          if (g.edges()[e].u == x) {
            masses.u[e] += w;
          } else {
            masses.v[e] += w;
          }
        }
      }
    }
    return masses;
  };
  const SideMasses total =
      *parallel::ParallelReduce<SideMasses>(plan, map, SideMasses::Fold);

  const double scale =
      static_cast<double>(n) / static_cast<double>(sources.size());
  for (EdgeId e = 0; e < m; ++e) {
    out.value[e] = scale * std::min(total.u[e], total.v[e]);
  }
  return out;
}

LinkValueResult ComputePolicyLinkValues(
    const Graph& g, std::span<const policy::Relationship> rel,
    const LinkValueOptions& options) {
  obs::Span span("hierarchy.policy_link_values", "hierarchy");
  const NodeId n = g.num_nodes();
  const std::size_t m = g.num_edges();
  LinkValueResult out;
  out.num_nodes = n;
  out.value.assign(m, 0.0);
  if (n == 0 || m == 0) return out;

  const std::vector<NodeId> sources =
      PickSources(n, options.max_sources, options.seed);
  const parallel::ChunkPlan plan = SourcePlan(sources.size());
  auto state_of = [](NodeId v, unsigned phase) {
    return (static_cast<std::size_t>(v) << 1) | phase;
  };

  span.Arg("nodes", static_cast<std::uint64_t>(n))
      .Arg("sources", static_cast<std::uint64_t>(sources.size()))
      .Arg("chunks", static_cast<std::uint64_t>(plan.chunks));
  auto map = [&](std::size_t, std::size_t first, std::size_t last) {
    SideMasses masses(m);
    // One bitset row and one sigma/delta slot per automaton state (2 per
    // node; phase in the LSB of the state index), pooled per lane.
    auto scratch = parallel::ScratchPool<PolicyLinkScratch>::Acquire();
    scratch->Ensure(n);
    BitRows& reach = scratch->reach;
    std::vector<double>& sigma = scratch->sigma;
    std::vector<double>& delta = scratch->delta;
    std::vector<double>& sigma_pol = scratch->sigma_pol;
    std::vector<std::uint8_t>& dirty = scratch->dirty;
    for (std::size_t si = first; si < last; ++si) {
      const NodeId src = sources[si];
      TOPOGEN_COUNT("hierarchy.sources_processed");
      policy::RunPolicyBfsInto(g, rel, src, kUnreachable, scratch->bfs);
      const policy::PolicyBfs& bfs = scratch->bfs;
      auto dist_of = [&](NodeId v, unsigned phase) {
        return phase == policy::kPhaseUp ? bfs.dist_up[v] : bfs.dist_down[v];
      };
      // Forward sigma over the state DAG.
      for (const std::uint64_t packed : bfs.order) {
        sigma[packed] = 0.0;
      }
      sigma[state_of(src, policy::kPhaseUp)] = 1.0;
      for (const std::uint64_t packed : bfs.order) {
        const NodeId u = static_cast<NodeId>(packed >> 1);
        const auto phase = static_cast<unsigned>(packed & 1);
        const Dist du = dist_of(u, phase);
        const auto nbrs = g.neighbors(u);
        const auto eids = g.incident_edges(u);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          const policy::Traversal t =
              policy::TraversalFrom(g, rel, eids[k], u);
          unsigned next_phase;
          if (!policy::PolicyStep(phase, t, next_phase)) continue;
          if (dist_of(nbrs[k], next_phase) == du + 1) {
            sigma[state_of(nbrs[k], next_phase)] += sigma[packed];
          }
        }
      }
      // Per-node policy path counts (across optimal states).
      for (const std::uint64_t packed : bfs.order) {
        const NodeId v = static_cast<NodeId>(packed >> 1);
        sigma_pol[v] = 0.0;
      }
      for (const std::uint64_t packed : bfs.order) {
        const NodeId v = static_cast<NodeId>(packed >> 1);
        const auto phase = static_cast<unsigned>(packed & 1);
        const Dist best = std::min(bfs.dist_up[v], bfs.dist_down[v]);
        if (dist_of(v, phase) == best) sigma_pol[v] += sigma[packed];
      }

      // Backward pass: descendant bitsets (seeded at optimal states) and
      // the generalized Brandes dependency with per-target termination
      // mass.
      for (std::size_t i = bfs.order.size(); i-- > 0;) {
        const std::uint64_t packed = bfs.order[i];
        const NodeId y = static_cast<NodeId>(packed >> 1);
        const auto phase = static_cast<unsigned>(packed & 1);
        if (dirty[packed]) reach.ClearRow(packed);
        dirty[packed] = 1;
        delta[packed] = 0.0;
        if (dist_of(y, phase) == std::min(bfs.dist_up[y], bfs.dist_down[y])) {
          reach.SetBit(packed, y);
        }
        const Dist dy = dist_of(y, phase);
        const auto nbrs = g.neighbors(y);
        const auto eids = g.incident_edges(y);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          const policy::Traversal t =
              policy::TraversalFrom(g, rel, eids[k], y);
          unsigned next_phase;
          if (!policy::PolicyStep(phase, t, next_phase)) continue;
          if (dist_of(nbrs[k], next_phase) == dy + 1) {
            reach.OrInto(packed, state_of(nbrs[k], next_phase));
          }
        }
      }
      for (std::size_t i = bfs.order.size(); i-- > 0;) {
        const std::uint64_t packed = bfs.order[i];
        const NodeId y = static_cast<NodeId>(packed >> 1);
        const auto phase = static_cast<unsigned>(packed & 1);
        if (y == src && phase == policy::kPhaseUp) continue;
        const Dist dy = dist_of(y, phase);
        const bool optimal =
            dy == std::min(bfs.dist_up[y], bfs.dist_down[y]);
        const double term =
            optimal && sigma_pol[y] > 0 ? sigma[packed] / sigma_pol[y] : 0.0;
        const double through = term + delta[packed];
        if (through <= 0.0) continue;
        const std::size_t targets = reach.Popcount(packed);
        if (targets == 0) continue;
        // Predecessors: states (x, px) with an allowed transition into
        // this state at distance dy - 1.
        const auto nbrs = g.neighbors(y);
        const auto eids = g.incident_edges(y);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          const NodeId x = nbrs[k];
          const policy::Traversal t_from_x =
              policy::TraversalFrom(g, rel, eids[k], x);
          for (unsigned px : {policy::kPhaseUp, policy::kPhaseDown}) {
            unsigned landed;
            if (!policy::PolicyStep(px, t_from_x, landed) ||
                landed != phase) {
              continue;
            }
            if (dist_of(x, px) == kUnreachable || dist_of(x, px) + 1 != dy) {
              continue;
            }
            const std::size_t sx = state_of(x, px);
            const double c = sigma[sx] / sigma[packed] * through;
            delta[sx] += c;
            const double w = c / static_cast<double>(targets);
            const EdgeId e = eids[k];
            if (g.edges()[e].u == x) {
              masses.u[e] += w;
            } else {
              masses.v[e] += w;
            }
          }
        }
      }
    }
    return masses;
  };
  const SideMasses total =
      *parallel::ParallelReduce<SideMasses>(plan, map, SideMasses::Fold);

  const double scale =
      static_cast<double>(n) / static_cast<double>(sources.size());
  for (EdgeId e = 0; e < m; ++e) {
    out.value[e] = scale * std::min(total.u[e], total.v[e]);
  }
  return out;
}

HierarchyClass ClassifyHierarchy(const LinkValueResult& result,
                                 const HierarchyClassOptions& options) {
  if (result.value.empty() || result.num_nodes == 0) {
    return HierarchyClass::kLoose;
  }
  const double n = static_cast<double>(result.num_nodes);
  std::vector<double> sorted(result.value);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double top = sorted.front() / n;
  const double near_top = sorted[sorted.size() / 100] / n;  // 1st pctile
  const double median = sorted[sorted.size() / 2] / n;
  if (near_top > 0.0 && median / near_top >= options.loose_flatness) {
    return HierarchyClass::kLoose;
  }
  if (top >= options.strict_top_value) return HierarchyClass::kStrict;
  return HierarchyClass::kModerate;
}

const char* ToString(HierarchyClass c) {
  switch (c) {
    case HierarchyClass::kStrict:
      return "strict";
    case HierarchyClass::kModerate:
      return "moderate";
    case HierarchyClass::kLoose:
      return "loose";
  }
  return "?";
}

}  // namespace topogen::hierarchy
