// Shared instrumentation shim for generator entry points: every public
// factory opens an obs::Span and funnels its product through
// RecordGenerated so "edges generated" style counters and per-generator
// phase timings exist for any run, regardless of which bench drives it.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "obs/obs.h"

namespace topogen::gen {

// Stamps a finished generator product: bumps the shared gen counters and
// attaches node/edge counts to the generator's span. Near-free when
// observability is off (one flag load per counter, a Graph move).
inline graph::Graph RecordGenerated(obs::Span& span, graph::Graph g) {
  TOPOGEN_COUNT("gen.graphs_built");
  TOPOGEN_COUNT_N("gen.nodes_generated", g.num_nodes());
  TOPOGEN_COUNT_N("gen.edges_generated", g.num_edges());
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()))
      .Arg("edges", static_cast<std::uint64_t>(g.num_edges()));
  return g;
}

}  // namespace topogen::gen
