#include "gen/geometry.h"

#include <limits>

namespace topogen::gen {

std::vector<Point> HeavyTailPoints(std::size_t n, unsigned grid,
                                   graph::Rng& rng) {
  // Bounded-Pareto cell masses (shape 1, truncated at grid^2).
  const std::size_t cells = static_cast<std::size_t>(grid) * grid;
  std::vector<double> mass(cells);
  double total = 0.0;
  for (double& m : mass) {
    // Inverse-CDF sampling of Pareto(shape=1) truncated to [1, cells].
    const double u = rng.NextDouble();
    const double hi = static_cast<double>(cells);
    m = 1.0 / (1.0 - u * (1.0 - 1.0 / hi));
    total += m;
  }
  std::vector<Point> pts(n);
  for (Point& p : pts) {
    // Roulette-wheel cell choice.
    double pick = rng.NextDouble() * total;
    std::size_t cell = 0;
    while (cell + 1 < cells && pick > mass[cell]) {
      pick -= mass[cell];
      ++cell;
    }
    const double cx = static_cast<double>(cell % grid);
    const double cy = static_cast<double>(cell / grid);
    p.x = (cx + rng.NextDouble()) / grid;
    p.y = (cy + rng.NextDouble()) / grid;
  }
  return pts;
}

std::vector<std::size_t> EuclideanMst(const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  std::vector<std::size_t> parent(n, 0);
  if (n == 0) return parent;
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<bool> in_tree(n, false);
  best[0] = 0.0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    // Cheapest fringe vertex.
    std::size_t u = n;
    double ub = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < ub) {
        ub = best[v];
        u = v;
      }
    }
    if (u == n) break;
    in_tree[u] = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double d = Distance(pts[u], pts[v]);
        if (d < best[v]) {
          best[v] = d;
          parent[v] = u;
        }
      }
    }
  }
  return parent;
}

}  // namespace topogen::gen
