#include "gen/inet.h"

#include "gen/gen_obs.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "fault/fault.h"
#include "gen/degree_seq.h"
#include "graph/components.h"

namespace topogen::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

Graph Inet(const InetParams& params, Rng& rng) {
  obs::Span span("gen.inet", "gen");
  PowerLawDegreeParams dp;
  dp.n = params.n;
  dp.exponent = params.exponent;
  dp.min_degree = params.min_degree;
  dp.max_degree = params.max_degree;
  const std::vector<std::uint32_t> degrees = SamplePowerLawDegrees(dp, rng);
  const NodeId n = params.n;

  std::vector<std::uint32_t> remaining(degrees.begin(), degrees.end());
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> keys;
  auto key = [](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  auto connect = [&](NodeId u, NodeId v) {
    if (u == v || keys.contains(key(u, v))) return false;
    keys.insert(key(u, v));
    b.AddEdge(u, v);
    if (remaining[u] > 0) --remaining[u];
    if (remaining[v] > 0) --remaining[v];
    return true;
  };

  // Stub pool over in-tree nodes for proportional attachment; entries are
  // (node repeated per target-degree unit), filtered by rejection on
  // remaining capacity.
  std::vector<NodeId> pool;
  auto pick_proportional = [&](NodeId self) -> NodeId {
    for (int attempt = 0; attempt < 1024; ++attempt) {
      if (pool.empty()) break;
      const std::size_t idx = rng.NextIndex(pool.size());
      const NodeId cand = pool[idx];
      if (remaining[cand] == 0) {
        pool[idx] = pool.back();
        pool.pop_back();
        continue;
      }
      if (cand != self) return cand;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (v != self && remaining[v] > 0) return v;
    }
    return graph::kInvalidNode;
  };
  auto enter_pool = [&](NodeId v) {
    for (std::uint32_t i = 0; i < degrees[v]; ++i) pool.push_back(v);
  };

  // Phase 1: spanning tree over degree >= 2 nodes, in random order.
  std::vector<NodeId> core;
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v) {
    (degrees[v] >= 2 ? core : leaves).push_back(v);
  }
  std::shuffle(core.begin(), core.end(), rng.engine());
  for (std::size_t i = 0; i < core.size(); ++i) {
    const NodeId v = core[i];
    if (i > 0) {
      const NodeId target = pick_proportional(v);
      if (target != graph::kInvalidNode) connect(v, target);
    }
    enter_pool(v);
  }

  // Phase 2: degree-1 nodes attach proportionally to the tree.
  for (NodeId v : leaves) {
    const NodeId target = pick_proportional(v);
    if (target != graph::kInvalidNode) connect(v, target);
  }

  // Phase 3: satisfy leftover stubs in decreasing degree order.
  std::vector<NodeId> order(core);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId c) {
    return degrees[a] > degrees[c];
  });
  for (NodeId u : order) {
    int stall = 0;
    while (remaining[u] > 0 && stall < 64) {
      const NodeId target = pick_proportional(u);
      if (target == graph::kInvalidNode) break;
      if (!connect(u, target)) ++stall;  // duplicate; try another partner
    }
  }

  Graph g = std::move(b).Build();
  Graph giant = graph::LargestComponent(g).graph;
  // Typed realization check, mirroring RealizeDegreeSequence: the
  // attachment phases above must have produced a usable core.
  TOPOGEN_FAULT_POINT_D("gen.realize", "inet");
  if (n >= 2 && giant.num_edges() == 0) {
    throw fault::Exception(fault::ErrorCode::kDegreeRealization,
                           "Inet realization collapsed: " +
                               std::to_string(n) +
                               " nodes attached into an edgeless graph");
  }
  return RecordGenerated(span, std::move(giant));
}

}  // namespace topogen::gen
