// Canonical calibration networks (paper Section 3.1.3).
//
// The paper anchors its metric methodology on networks whose large-scale
// structure is known analytically: the k-ary Tree, the rectangular Mesh,
// the Erdos-Renyi Random graph, plus the Complete graph and Linear chain
// used in the Section 3.2.1 summary table. The Figure 1 instances are
// Tree(k=3, depth=6) with 1093 nodes, a 30x30 Mesh, and a Random graph
// with 5018 nodes at link probability 0.0008.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

// Complete k-ary tree with the given depth (root at depth 0). Node count is
// (k^(depth+1) - 1) / (k - 1); k = 3, depth = 6 gives the paper's 1093.
graph::Graph KaryTree(unsigned k, unsigned depth);

// rows x cols rectangular grid ("Mesh"); 30x30 in the paper.
graph::Graph Mesh(unsigned rows, unsigned cols);

// Path graph on n nodes ("Linear chain").
graph::Graph Linear(graph::NodeId n);

// Complete graph on n nodes.
graph::Graph Complete(graph::NodeId n);

// Cycle on n nodes (not in the paper's table; used for tests).
graph::Graph Ring(graph::NodeId n);

// Erdos-Renyi G(n, p). When keep_largest_component is true (the paper's
// convention for possibly-disconnected generators) only the largest
// connected component is returned.
graph::Graph ErdosRenyi(graph::NodeId n, double p, graph::Rng& rng,
                        bool keep_largest_component = true);

// Erdos-Renyi G(n, m): exactly m distinct random edges.
graph::Graph ErdosRenyiGnm(graph::NodeId n, std::size_t m, graph::Rng& rng,
                           bool keep_largest_component = true);

}  // namespace topogen::gen
