#include "gen/tiers.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "gen/gen_obs.h"
#include "gen/geometry.h"

namespace topogen::gen {

using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

namespace {

// Lays a geometric network over the given node ids: Euclidean MST plus the
// `redundancy` shortest non-tree pairs, following Tiers' "add links in
// order of increasing inter-node Euclidean distance". Returns the node
// placements so inter-tier attachments can respect geography -- attaching
// child networks to *nearby* parent nodes is what preserves Tiers'
// mesh-like expansion (random attachment would create small-world
// shortcuts across the WAN).
std::vector<Point> AddGeometricNetwork(GraphBuilder& b,
                                       const std::vector<NodeId>& nodes,
                                       unsigned redundancy, Rng& rng) {
  const std::size_t n = nodes.size();
  if (n <= 1) return std::vector<Point>(n);
  const std::vector<Point> pts = UniformPoints(n, rng);
  const std::vector<std::size_t> parent = EuclideanMst(pts);
  std::vector<std::uint8_t> in_mst;
  in_mst.assign(n * n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    b.AddEdge(nodes[i], nodes[parent[i]]);
    in_mst[i * n + parent[i]] = in_mst[parent[i] * n + i] = 1;
  }
  if (redundancy == 0) return pts;
  // All non-tree pairs sorted by distance; take the shortest `redundancy`.
  std::vector<std::pair<double, std::pair<std::size_t, std::size_t>>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!in_mst[i * n + j]) {
        pairs.push_back({Distance(pts[i], pts[j]), {i, j}});
      }
    }
  }
  const std::size_t take = std::min<std::size_t>(redundancy, pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + take, pairs.end());
  for (std::size_t k = 0; k < take; ++k) {
    b.AddEdge(nodes[pairs[k].second.first], nodes[pairs[k].second.second]);
  }
  return pts;
}

// Indices of the `count` nodes nearest to `anchor`.
std::vector<std::size_t> NearestTo(const std::vector<Point>& pts,
                                   const Point& anchor, unsigned count) {
  std::vector<std::size_t> idx(pts.size());
  std::iota(idx.begin(), idx.end(), 0);
  const auto take = std::min<std::size_t>(count, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + take, idx.end(),
                    [&](std::size_t a, std::size_t c) {
                      return Distance(pts[a], anchor) <
                             Distance(pts[c], anchor);
                    });
  idx.resize(take);
  return idx;
}

}  // namespace

graph::Graph Tiers(const TiersParams& p, Rng& rng) {
  obs::Span span("gen.tiers", "gen");
  const unsigned wans = std::max(1u, p.num_wans);
  const NodeId total =
      wans * (p.nodes_per_wan +
              p.mans_per_wan * (p.nodes_per_man +
                                p.lans_per_man * p.nodes_per_lan));
  GraphBuilder b(total);
  NodeId next = 0;
  auto take_block = [&](unsigned count) {
    std::vector<NodeId> block(count);
    for (unsigned i = 0; i < count; ++i) block[i] = next++;
    return block;
  };

  for (unsigned w = 0; w < wans; ++w) {
    const std::vector<NodeId> wan = take_block(p.nodes_per_wan);
    const std::vector<Point> wan_pts =
        AddGeometricNetwork(b, wan, p.wan_redundancy, rng);

    for (unsigned m = 0; m < p.mans_per_wan; ++m) {
      const std::vector<NodeId> man = take_block(p.nodes_per_man);
      const std::vector<Point> man_pts =
          AddGeometricNetwork(b, man, p.man_redundancy, rng);
      // MAN-to-WAN internetwork links: the MAN anchors at a point of the
      // WAN plane and its gateways connect to the nearest WAN nodes.
      const unsigned links = std::max(1u, p.man_wan_redundancy);
      if (!wan.empty() && !man.empty()) {
        if (p.geographic_attachment) {
          const Point anchor{rng.NextDouble(), rng.NextDouble()};
          const auto gateways = NearestTo(wan_pts, anchor, links);
          for (std::size_t e = 0; e < gateways.size(); ++e) {
            b.AddEdge(man[e == 0 ? 0 : rng.NextIndex(man.size())],
                      wan[gateways[e]]);
          }
        } else {
          for (unsigned e = 0; e < links; ++e) {
            b.AddEdge(man[e == 0 ? 0 : rng.NextIndex(man.size())],
                      wan[rng.NextIndex(wan.size())]);
          }
        }
      }

      for (unsigned l = 0; l < p.lans_per_man; ++l) {
        const std::vector<NodeId> lan = take_block(p.nodes_per_lan);
        // Star topology around the hub (first node).
        for (std::size_t i = 1; i < lan.size(); ++i) {
          b.AddEdge(lan[0], lan[i]);
        }
        // LAN-to-MAN internetwork links from the hub to nearby MAN nodes.
        const unsigned up = std::max(1u, p.lan_man_redundancy);
        if (!man.empty()) {
          if (p.geographic_attachment) {
            const Point anchor{rng.NextDouble(), rng.NextDouble()};
            for (const std::size_t g : NearestTo(man_pts, anchor, up)) {
              b.AddEdge(lan[0], man[g]);
            }
          } else {
            for (unsigned e = 0; e < up; ++e) {
              b.AddEdge(lan[0], man[rng.NextIndex(man.size())]);
            }
          }
        }
      }
    }
  }
  return RecordGenerated(span, std::move(b).Build());
}

}  // namespace topogen::gen
