#include "gen/canonical.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "gen/gen_obs.h"
#include "graph/components.h"

namespace topogen::gen {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

Graph KaryTree(unsigned k, unsigned depth) {
  obs::Span span("gen.kary_tree", "gen");
  if (k == 0) throw std::invalid_argument("KaryTree: k must be >= 1");
  // Level sizes k^0, k^1, ..., k^depth; children of node i are contiguous.
  std::uint64_t total = 0, level = 1;
  for (unsigned d = 0; d <= depth; ++d) {
    total += level;
    level *= k;
  }
  GraphBuilder b(static_cast<NodeId>(total));
  // In the breadth-first labeling of a complete k-ary tree, node i's
  // children are k*i + 1 .. k*i + k.
  for (std::uint64_t i = 0; i < total; ++i) {
    for (unsigned c = 1; c <= k; ++c) {
      const std::uint64_t child = k * i + c;
      if (child < total) {
        b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(child));
      }
    }
  }
  return RecordGenerated(span, std::move(b).Build());
}

Graph Mesh(unsigned rows, unsigned cols) {
  obs::Span span("gen.mesh", "gen");
  GraphBuilder b(static_cast<NodeId>(rows) * cols);
  auto id = [cols](unsigned r, unsigned c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return RecordGenerated(span, std::move(b).Build());
}

Graph Linear(NodeId n) {
  obs::Span span("gen.linear", "gen");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return RecordGenerated(span, std::move(b).Build());
}

Graph Complete(NodeId n) {
  obs::Span span("gen.complete", "gen");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) b.AddEdge(i, j);
  }
  return RecordGenerated(span, std::move(b).Build());
}

Graph Ring(NodeId n) {
  obs::Span span("gen.ring", "gen");
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  return RecordGenerated(span, std::move(b).Build());
}

Graph ErdosRenyi(NodeId n, double p, Rng& rng,
                 bool keep_largest_component) {
  obs::Span span("gen.erdos_renyi", "gen");
  GraphBuilder b(n);
  if (p > 0.0) {
    // Geometric skipping (Batagelj-Brandes): O(n + m) instead of O(n^2).
    const double log1mp = std::log1p(-p);
    std::int64_t v = 1, w = -1;
    while (v < static_cast<std::int64_t>(n)) {
      const double r = rng.NextDouble();
      w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / log1mp));
      while (w >= v && v < static_cast<std::int64_t>(n)) {
        w -= v;
        ++v;
      }
      if (v < static_cast<std::int64_t>(n)) {
        b.AddEdge(static_cast<NodeId>(v), static_cast<NodeId>(w));
      }
    }
  }
  Graph g = std::move(b).Build();
  return RecordGenerated(
      span, keep_largest_component ? LargestComponent(g).graph : std::move(g));
}

Graph ErdosRenyiGnm(NodeId n, std::size_t m, Rng& rng,
                    bool keep_largest_component) {
  obs::Span span("gen.erdos_renyi_gnm", "gen");
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  const std::size_t max_edges =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(n));
    NodeId v = static_cast<NodeId>(rng.NextIndex(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) b.AddEdge(u, v);
  }
  Graph g = std::move(b).Build();
  return RecordGenerated(
      span, keep_largest_component ? LargestComponent(g).graph : std::move(g));
}

}  // namespace topogen::gen
