// Plane-placement helpers shared by the geometric generators (Waxman,
// Tiers, BRITE-style placement).
#pragma once

#include <cmath>
#include <vector>

#include "graph/rng.h"

namespace topogen::gen {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// n points uniform in the unit square.
inline std::vector<Point> UniformPoints(std::size_t n, graph::Rng& rng) {
  std::vector<Point> pts(n);
  for (Point& p : pts) {
    p.x = rng.NextDouble();
    p.y = rng.NextDouble();
  }
  return pts;
}

// n points with heavy-tailed clustering (BRITE's "heavy-tailed" placement):
// the unit square is divided into cells and each point picks a cell with
// probability proportional to a bounded-Pareto mass, then lands uniformly
// inside it. High-mass cells become dense clusters.
std::vector<Point> HeavyTailPoints(std::size_t n, unsigned grid,
                                   graph::Rng& rng);

// Euclidean minimum spanning tree over `pts` via Prim's algorithm
// (O(n^2), fine for the network sizes Tiers uses). Returns parent indices;
// parent[0] == 0.
std::vector<std::size_t> EuclideanMst(const std::vector<Point>& pts);

}  // namespace topogen::gen
