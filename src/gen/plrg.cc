#include "gen/plrg.h"

#include "gen/gen_obs.h"

namespace topogen::gen {

graph::Graph Plrg(const PlrgParams& params, graph::Rng& rng) {
  obs::Span span("gen.plrg", "gen");
  PowerLawDegreeParams dp;
  dp.n = params.n;
  dp.exponent = params.exponent;
  dp.min_degree = params.min_degree;
  dp.max_degree = params.max_degree;
  if (params.n >= kParallelGenNodeThreshold) {
    // Million-node regime: per-node degree streams and the sort-based stub
    // shuffle run on the pool. One draw funds both sub-seeds, so the
    // caller's rng advances by a fixed amount either way.
    const std::uint64_t seed = rng.engine()();
    const std::vector<std::uint32_t> degrees =
        SamplePowerLawDegreesParallel(dp, graph::DeriveStream(seed, 1));
    return RecordGenerated(
        span, ConnectPlrgParallel(degrees, graph::DeriveStream(seed, 2),
                                  /*keep_largest_component=*/true));
  }
  const std::vector<std::uint32_t> degrees = SamplePowerLawDegrees(dp, rng);
  return RecordGenerated(
      span, RealizeDegreeSequence(degrees, ConnectMethod::kPlrgMatching, rng,
                                  /*keep_largest_component=*/true, "plrg"));
}

}  // namespace topogen::gen
