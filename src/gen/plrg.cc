#include "gen/plrg.h"

#include "gen/gen_obs.h"

namespace topogen::gen {

graph::Graph Plrg(const PlrgParams& params, graph::Rng& rng) {
  obs::Span span("gen.plrg", "gen");
  PowerLawDegreeParams dp;
  dp.n = params.n;
  dp.exponent = params.exponent;
  dp.min_degree = params.min_degree;
  dp.max_degree = params.max_degree;
  const std::vector<std::uint32_t> degrees = SamplePowerLawDegrees(dp, rng);
  return RecordGenerated(
      span, RealizeDegreeSequence(degrees, ConnectMethod::kPlrgMatching, rng,
                                  /*keep_largest_component=*/true, "plrg"));
}

}  // namespace topogen::gen
