#include "gen/ba.h"

#include "gen/gen_obs.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "graph/components.h"

namespace topogen::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

namespace {

// Growth-process state shared by the three preferential models. Tracks live
// degrees, an edge set (the models forbid duplicate links), and a stub list
// for O(1) degree-proportional sampling. Removals (rewiring) leave stale
// stubs that are filtered by rejection and periodically compacted.
class Growth {
 public:
  explicit Growth(NodeId capacity) : degree_(capacity, 0),
                                     stub_count_(capacity, 0) {}

  void AddNode(NodeId v) { max_node_ = std::max<std::uint64_t>(max_node_, v + 1ull); }

  bool HasEdge(NodeId u, NodeId v) const {
    return edge_keys_.contains(Key(u, v));
  }

  void AddEdge(NodeId u, NodeId v) {
    edge_keys_.insert(Key(u, v));
    edges_.push_back({u, v});
    Bump(u);
    Bump(v);
  }

  // Removes a uniformly random edge and returns it.
  graph::Edge RemoveRandomEdge(Rng& rng) {
    const std::size_t idx = rng.NextIndex(edges_.size());
    const graph::Edge e = edges_[idx];
    edges_[idx] = edges_.back();
    edges_.pop_back();
    edge_keys_.erase(Key(e.u, e.v));
    --degree_[e.u];
    --degree_[e.v];
    stale_ += 2;
    MaybeCompact();
    return e;
  }

  // Node sampled with probability proportional to degree (beta = 0) or to
  // (degree - beta) for the GLP preference. Returns kInvalidNode when no
  // node has positive weight.
  NodeId PickPreferential(Rng& rng, double beta = 0.0) {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      if (stubs_.empty()) break;
      const NodeId cand = stubs_[rng.NextIndex(stubs_.size())];
      // Correct for stale stubs, then apply the GLP shift.
      const double weight =
          (static_cast<double>(degree_[cand]) - beta) /
          static_cast<double>(stub_count_[cand]);
      if (weight > 0.0 && rng.NextBool(std::min(1.0, weight))) return cand;
    }
    return graph::kInvalidNode;
  }

  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<graph::Edge>& edges() const { return edges_; }
  std::uint32_t degree(NodeId v) const { return degree_[v]; }

 private:
  static std::uint64_t Key(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void Bump(NodeId v) {
    ++degree_[v];
    ++stub_count_[v];
    stubs_.push_back(v);
  }

  void MaybeCompact() {
    if (stale_ * 2 < stubs_.size()) return;
    stubs_.clear();
    std::fill(stub_count_.begin(), stub_count_.end(), 0);
    for (const graph::Edge& e : edges_) {
      for (NodeId v : {e.u, e.v}) {
        ++stub_count_[v];
        stubs_.push_back(v);
      }
    }
    stale_ = 0;
  }

  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> stub_count_;
  std::vector<NodeId> stubs_;
  std::vector<graph::Edge> edges_;
  std::unordered_set<std::uint64_t> edge_keys_;
  std::size_t stale_ = 0;
  std::uint64_t max_node_ = 0;
};

// Seed ring of m0 nodes; every preferential model needs a nonempty start
// with positive degrees.
void SeedRing(Growth& growth, unsigned m0) {
  for (NodeId v = 0; v < m0; ++v) growth.AddNode(v);
  if (m0 == 2) {
    growth.AddEdge(0, 1);
    return;
  }
  for (NodeId v = 0; v < m0; ++v) {
    growth.AddEdge(v, static_cast<NodeId>((v + 1) % m0));
  }
}

// Attaches `m` preferential links from `v` to distinct existing targets.
void AttachPreferential(Growth& growth, NodeId v, unsigned m, Rng& rng,
                        double beta = 0.0) {
  for (unsigned i = 0; i < m; ++i) {
    NodeId target = graph::kInvalidNode;
    for (int attempt = 0; attempt < 512; ++attempt) {
      const NodeId cand = growth.PickPreferential(rng, beta);
      if (cand != graph::kInvalidNode && cand != v &&
          !growth.HasEdge(v, cand)) {
        target = cand;
        break;
      }
    }
    if (target == graph::kInvalidNode) return;  // saturated; give up quietly
    growth.AddEdge(v, target);
  }
}

Graph Finish(const Growth& growth, NodeId n) {
  GraphBuilder b(n);
  for (const graph::Edge& e : growth.edges()) b.AddEdge(e.u, e.v);
  Graph g = std::move(b).Build();
  return graph::LargestComponent(g).graph;
}

}  // namespace

Graph BarabasiAlbert(const BaParams& params, Rng& rng) {
  obs::Span span("gen.ba", "gen");
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  Growth growth(params.n);
  SeedRing(growth, m0);
  for (NodeId v = m0; v < params.n; ++v) {
    growth.AddNode(v);
    AttachPreferential(growth, v, params.m, rng);
  }
  return RecordGenerated(span, Finish(growth, params.n));
}

Graph ExtendedBarabasiAlbert(const ExtendedBaParams& params, Rng& rng) {
  obs::Span span("gen.ba_extended", "gen");
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  Growth growth(params.n);
  SeedRing(growth, m0);
  NodeId next = m0;
  while (next < params.n) {
    const double roll = rng.NextDouble();
    if (roll < params.p_add_links) {
      // m new links between existing nodes, both ends preferential.
      for (unsigned i = 0; i < params.m; ++i) {
        const NodeId u = growth.PickPreferential(rng);
        if (u == graph::kInvalidNode) break;
        AttachPreferential(growth, u, 1, rng);
      }
    } else if (roll < params.p_add_links + params.q_rewire &&
               growth.num_edges() > 1) {
      // Rewire m links: detach one endpoint, reattach preferentially.
      for (unsigned i = 0; i < params.m; ++i) {
        const graph::Edge e = growth.RemoveRandomEdge(rng);
        AttachPreferential(growth, e.u, 1, rng);
      }
    } else {
      growth.AddNode(next);
      AttachPreferential(growth, next, params.m, rng);
      ++next;
    }
  }
  return RecordGenerated(span, Finish(growth, params.n));
}

Graph BuTowsleyGlp(const GlpParams& params, Rng& rng) {
  obs::Span span("gen.glp", "gen");
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  Growth growth(params.n);
  SeedRing(growth, m0);
  NodeId next = m0;
  while (next < params.n) {
    if (rng.NextBool(params.p_add_links)) {
      for (unsigned i = 0; i < params.m; ++i) {
        const NodeId u = growth.PickPreferential(rng, params.beta);
        if (u == graph::kInvalidNode) break;
        AttachPreferential(growth, u, 1, rng, params.beta);
      }
    } else {
      growth.AddNode(next);
      AttachPreferential(growth, next, params.m, rng, params.beta);
      ++next;
    }
  }
  return RecordGenerated(span, Finish(growth, params.n));
}

}  // namespace topogen::gen
