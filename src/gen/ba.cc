#include "gen/ba.h"

#include "gen/gen_obs.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "gen/degree_seq.h"
#include "graph/components.h"
#include "parallel/parallel_for.h"

namespace topogen::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

namespace {

// Growth-process state shared by the three preferential models. Tracks live
// degrees, an edge set (the models forbid duplicate links), and a stub list
// for O(1) degree-proportional sampling. Removals (rewiring) leave stale
// stubs that are filtered by rejection and periodically compacted.
class Growth {
 public:
  // `track_edge_keys` funds HasEdge on arbitrary nodes (needed by the
  // link-addition/rewire events of extended BA and GLP). Plain BA only
  // ever checks duplicates among the links a *fresh* node just added, so
  // it opts out and skips the per-edge hashing entirely.
  explicit Growth(NodeId capacity, bool track_edge_keys = true)
      : degree_(capacity, 0), stub_count_(capacity, 0),
        track_edge_keys_(track_edge_keys) {}

  void AddNode(NodeId v) { max_node_ = std::max<std::uint64_t>(max_node_, v + 1ull); }

  bool HasEdge(NodeId u, NodeId v) const {
    return edge_keys_.contains(Key(u, v));
  }

  void AddEdge(NodeId u, NodeId v) {
    if (track_edge_keys_) edge_keys_.insert(Key(u, v));
    edges_.push_back({u, v});
    Bump(u);
    Bump(v);
  }

  // Removes a uniformly random edge and returns it.
  graph::Edge RemoveRandomEdge(Rng& rng) {
    const std::size_t idx = rng.NextIndex(edges_.size());
    const graph::Edge e = edges_[idx];
    edges_[idx] = edges_.back();
    edges_.pop_back();
    edge_keys_.erase(Key(e.u, e.v));
    --degree_[e.u];
    --degree_[e.v];
    stale_ += 2;
    MaybeCompact();
    return e;
  }

  // Node sampled with probability proportional to degree (beta = 0) or to
  // (degree - beta) for the GLP preference. Returns kInvalidNode when no
  // node has positive weight.
  NodeId PickPreferential(Rng& rng, double beta = 0.0) {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      if (stubs_.empty()) break;
      const NodeId cand = stubs_[rng.NextIndex(stubs_.size())];
      // Correct for stale stubs, then apply the GLP shift.
      const double weight =
          (static_cast<double>(degree_[cand]) - beta) /
          static_cast<double>(stub_count_[cand]);
      if (weight > 0.0 && rng.NextBool(std::min(1.0, weight))) return cand;
    }
    return graph::kInvalidNode;
  }

  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<graph::Edge>& edges() const { return edges_; }
  std::uint32_t degree(NodeId v) const { return degree_[v]; }

 private:
  static std::uint64_t Key(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  void Bump(NodeId v) {
    ++degree_[v];
    ++stub_count_[v];
    stubs_.push_back(v);
  }

  void MaybeCompact() {
    if (stale_ * 2 < stubs_.size()) return;
    stubs_.clear();
    std::fill(stub_count_.begin(), stub_count_.end(), 0);
    for (const graph::Edge& e : edges_) {
      for (NodeId v : {e.u, e.v}) {
        ++stub_count_[v];
        stubs_.push_back(v);
      }
    }
    stale_ = 0;
  }

  std::vector<std::uint32_t> degree_;
  std::vector<std::uint32_t> stub_count_;
  std::vector<NodeId> stubs_;
  std::vector<graph::Edge> edges_;
  std::unordered_set<std::uint64_t> edge_keys_;
  bool track_edge_keys_ = true;
  std::size_t stale_ = 0;
  std::uint64_t max_node_ = 0;
};

// Seed ring of m0 nodes; every preferential model needs a nonempty start
// with positive degrees.
void SeedRing(Growth& growth, unsigned m0) {
  for (NodeId v = 0; v < m0; ++v) growth.AddNode(v);
  if (m0 == 2) {
    growth.AddEdge(0, 1);
    return;
  }
  for (NodeId v = 0; v < m0; ++v) {
    growth.AddEdge(v, static_cast<NodeId>((v + 1) % m0));
  }
}

// Attaches `m` preferential links from `v` to distinct existing targets.
// When `v` is a fresh node (no edges before this call), its duplicates can
// only be the targets chosen within this call, so a linear scan of those
// replaces the edge-key lookup — the reason plain BA can run a Growth with
// edge-key tracking off.
void AttachPreferential(Growth& growth, NodeId v, unsigned m, Rng& rng,
                        double beta = 0.0, bool fresh_node = false) {
  std::vector<NodeId> picked;
  if (fresh_node) picked.reserve(m);
  for (unsigned i = 0; i < m; ++i) {
    NodeId target = graph::kInvalidNode;
    for (int attempt = 0; attempt < 512; ++attempt) {
      const NodeId cand = growth.PickPreferential(rng, beta);
      if (cand == graph::kInvalidNode || cand == v) continue;
      const bool duplicate =
          fresh_node ? std::find(picked.begin(), picked.end(), cand) !=
                           picked.end()
                     : growth.HasEdge(v, cand);
      if (!duplicate) {
        target = cand;
        break;
      }
    }
    if (target == graph::kInvalidNode) return;  // saturated; give up quietly
    if (fresh_node) picked.push_back(target);
    growth.AddEdge(v, target);
  }
}

Graph Finish(const Growth& growth, NodeId n) {
  GraphBuilder b(n);
  for (const graph::Edge& e : growth.edges()) b.AddEdge(e.u, e.v);
  Graph g = std::move(b).Build();
  return graph::LargestComponent(g).graph;
}

}  // namespace

Graph BarabasiAlbertParallel(const BaParams& params, std::uint64_t seed) {
  obs::Span span("gen.ba_parallel", "gen");
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  const unsigned m = std::max(1u, params.m);
  const NodeId n = std::max<NodeId>(params.n, m0);
  // Conceptual Batagelj-Brandes array M of endpoint slots: position 2k is
  // edge k's source, position 2k+1 its target. Ring edges occupy the first
  // slots; growth edge k copies the endpoint at a uniform position < 2k.
  const std::uint64_t ring_edges = m0 == 2 ? 1 : m0;
  const std::uint64_t total_edges =
      ring_edges + static_cast<std::uint64_t>(n - m0) * m;

  auto source_of = [&](std::uint64_t k) -> NodeId {
    return k < ring_edges ? static_cast<NodeId>(k)
                          : static_cast<NodeId>(m0 + (k - ring_edges) / m);
  };
  auto draw_of = [&](std::uint64_t k) -> std::uint64_t {
    graph::SmallRng r(graph::DeriveStream(seed, k));
    return r.NextIndex(2 * k);
  };
  // Chase target draws down to a concrete endpoint. Every hop strictly
  // decreases the position, and the expected chain length is O(1).
  auto target_of = [&](std::uint64_t k) -> NodeId {
    std::uint64_t pos = draw_of(k);
    for (;;) {
      const std::uint64_t slot = pos / 2;
      if (slot < ring_edges) {
        const auto v = static_cast<NodeId>(slot);
        return pos % 2 == 0 ? v : static_cast<NodeId>((v + 1) % m0);
      }
      if (pos % 2 == 0) return source_of(slot);
      pos = draw_of(slot);
    }
  };

  std::vector<graph::Edge> edges(total_edges);
  for (std::uint64_t k = 0; k < ring_edges; ++k) {
    edges[k] = {static_cast<NodeId>(k), static_cast<NodeId>((k + 1) % m0)};
  }
  const parallel::ChunkPlan plan =
      parallel::PlanChunks(total_edges - ring_edges, 2048);
  parallel::ParallelFor(plan, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t k = ring_edges + i;
      edges[k] = {source_of(k), target_of(k)};
    }
  });
  Graph g = Graph::FromEdges(n, std::move(edges));
  return RecordGenerated(span, graph::LargestComponent(g).graph);
}

Graph BarabasiAlbert(const BaParams& params, Rng& rng) {
  obs::Span span("gen.ba", "gen");
  if (params.n >= kParallelGenNodeThreshold) {
    return RecordGenerated(span, BarabasiAlbertParallel(params,
                                                        rng.engine()()));
  }
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  Growth growth(params.n, /*track_edge_keys=*/false);
  SeedRing(growth, m0);
  for (NodeId v = m0; v < params.n; ++v) {
    growth.AddNode(v);
    AttachPreferential(growth, v, params.m, rng, 0.0, /*fresh_node=*/true);
  }
  return RecordGenerated(span, Finish(growth, params.n));
}

Graph ExtendedBarabasiAlbert(const ExtendedBaParams& params, Rng& rng) {
  obs::Span span("gen.ba_extended", "gen");
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  Growth growth(params.n);
  SeedRing(growth, m0);
  NodeId next = m0;
  while (next < params.n) {
    const double roll = rng.NextDouble();
    if (roll < params.p_add_links) {
      // m new links between existing nodes, both ends preferential.
      for (unsigned i = 0; i < params.m; ++i) {
        const NodeId u = growth.PickPreferential(rng);
        if (u == graph::kInvalidNode) break;
        AttachPreferential(growth, u, 1, rng);
      }
    } else if (roll < params.p_add_links + params.q_rewire &&
               growth.num_edges() > 1) {
      // Rewire m links: detach one endpoint, reattach preferentially.
      for (unsigned i = 0; i < params.m; ++i) {
        const graph::Edge e = growth.RemoveRandomEdge(rng);
        AttachPreferential(growth, e.u, 1, rng);
      }
    } else {
      growth.AddNode(next);
      AttachPreferential(growth, next, params.m, rng, 0.0,
                         /*fresh_node=*/true);
      ++next;
    }
  }
  return RecordGenerated(span, Finish(growth, params.n));
}

Graph BuTowsleyGlp(const GlpParams& params, Rng& rng) {
  obs::Span span("gen.glp", "gen");
  const unsigned m0 = std::max({params.m0, params.m, 2u});
  Growth growth(params.n);
  SeedRing(growth, m0);
  NodeId next = m0;
  while (next < params.n) {
    if (rng.NextBool(params.p_add_links)) {
      for (unsigned i = 0; i < params.m; ++i) {
        const NodeId u = growth.PickPreferential(rng, params.beta);
        if (u == graph::kInvalidNode) break;
        AttachPreferential(growth, u, 1, rng, params.beta);
      }
    } else {
      growth.AddNode(next);
      AttachPreferential(growth, next, params.m, rng, params.beta,
                         /*fresh_node=*/true);
      ++next;
    }
  }
  return RecordGenerated(span, Finish(growth, params.n));
}

}  // namespace topogen::gen
