// Preferential-attachment generators: Barabasi-Albert [4], the
// Albert-Barabasi extension with link addition and rewiring [2], and the
// Bu-Towsley GLP model [8] (the paper's "BT").
//
// All three grow the graph incrementally and wire new links with
// probability proportional to (a function of) current node degree; they
// differ in the extra events mixed into the growth process:
//
//   * BA: every step adds a node with m preferential links.
//   * Extended BA: with probability p, add m links between existing nodes;
//     with probability q, rewire m links; otherwise add a node.
//   * GLP ("BT"): like extended BA but with the generalized linear
//     preference Pi(i) ~ (d_i - beta_glp), beta_glp < 1, which lets the
//     model match both the power-law exponent and the clustering of the
//     measured AS graph.
#pragma once

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct BaParams {
  graph::NodeId n = 10000;
  unsigned m = 2;   // links added per new node
  unsigned m0 = 3;  // seed ring size (>= m, >= 2)
};

graph::Graph BarabasiAlbert(const BaParams& params, graph::Rng& rng);

// Scalable BA via the Batagelj-Brandes edge-array formulation: edge slot k
// draws a uniform position r in [0, 2k) from its own stream and copies the
// endpoint written there, which is exactly degree-proportional attachment;
// the copy is resolved by chasing draws (all recomputable from (seed, k))
// until an even position, so every edge is computed independently on the
// pool — bit-identical at any TOPOGEN_THREADS. Self-loops and duplicate
// links the process emits are collapsed by Graph::FromEdges, mirroring the
// paper's treatment of PLRG output. Not draw-compatible with the
// sequential growth process; BarabasiAlbert() dispatches here above
// kParallelGenNodeThreshold nodes.
graph::Graph BarabasiAlbertParallel(const BaParams& params,
                                    std::uint64_t seed);

struct ExtendedBaParams {
  graph::NodeId n = 10000;
  unsigned m = 2;
  unsigned m0 = 3;
  double p_add_links = 0.25;  // probability of a pure link-addition step
  double q_rewire = 0.10;     // probability of a rewiring step
};

graph::Graph ExtendedBarabasiAlbert(const ExtendedBaParams& params,
                                    graph::Rng& rng);

struct GlpParams {
  graph::NodeId n = 10000;
  unsigned m = 1;       // links per event
  unsigned m0 = 10;     // seed ring size
  double p_add_links = 0.45;  // probability an event adds links, not a node
  double beta = 0.64;   // generalized linear preference shift (< 1)
};

graph::Graph BuTowsleyGlp(const GlpParams& params, graph::Rng& rng);

}  // namespace topogen::gen
