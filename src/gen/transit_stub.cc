#include "gen/transit_stub.h"

#include <vector>

#include "fault/fault.h"
#include "gen/gen_obs.h"

namespace topogen::gen {

using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

namespace {

// Retry budget for the connected-G(n,p) draw below. Bounded so a
// pathological p (or an injected gen.ts.connect fault) degrades into the
// deterministic patch pass instead of spinning; with sane densities the
// first draw is almost always connected, so the cap never binds.
constexpr int kMaxConnectAttempts = 32;

// Adds a connected random graph over the given node ids. Like GT-ITM, the
// G(n, p) draw is retried until connected so the edge density stays at p
// (laying a spanning tree underneath would inflate it). When the retry
// budget runs out, connectivity is patched deterministically with a
// minimal spanning set -- one edge per surviving component -- counted
// under gen.ts_connect_patched.
void AddConnectedRandom(GraphBuilder& b, const std::vector<NodeId>& nodes,
                        double p, Rng& rng) {
  const std::size_t n = nodes.size();
  if (n <= 1) return;
  std::vector<std::pair<std::size_t, std::size_t>> local;
  std::vector<std::size_t> parent(n);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  bool connected = false;
  for (int attempt = 0; attempt < kMaxConnectAttempts && !connected;
       ++attempt) {
    local.clear();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.NextBool(p)) local.push_back({i, j});
      }
    }
    // Union-find connectivity check on the local index space.
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
    std::size_t components = n;
    for (auto [i, j] : local) {
      const std::size_t ri = find(i), rj = find(j);
      if (ri != rj) {
        parent[ri] = rj;
        --components;
      }
    }
    connected = components == 1;
    // The fail point votes this draw disconnected, driving the loop into
    // the patch pass below.
    if (TOPOGEN_FAULT_HIT("gen.ts.connect", {})) connected = false;
  }
  if (!connected) {
    // Budget exhausted: patch the last draw into connectivity. Nodes
    // 0..i-1 are unified before node i is examined, so each link lands in
    // the component of node 0 -- exactly one edge per missing component.
    for (std::size_t i = 1; i < n; ++i) {
      if (find(i) != find(0)) {
        const std::size_t j = rng.NextIndex(i);
        local.push_back({j, i});
        parent[find(i)] = find(j);
      }
    }
    TOPOGEN_COUNT("gen.ts_connect_patched");
  }
  for (auto [i, j] : local) b.AddEdge(nodes[i], nodes[j]);
}

}  // namespace

graph::Graph TransitStub(const TransitStubParams& params, Rng& rng) {
  obs::Span span("gen.transit_stub", "gen");
  const unsigned t_domains = params.num_transit_domains;
  const unsigned t_nodes = params.nodes_per_transit_domain;
  const unsigned s_per_node = params.stubs_per_transit_node;
  const unsigned s_nodes = params.nodes_per_stub_domain;

  const NodeId total_transit = t_domains * t_nodes;
  const NodeId total_stub_domains = total_transit * s_per_node;
  const NodeId total = total_transit + total_stub_domains * s_nodes;
  GraphBuilder b(total);

  // Transit nodes occupy ids [0, total_transit); domain d owns the block
  // [d*t_nodes, (d+1)*t_nodes).
  std::vector<std::vector<NodeId>> transit(t_domains);
  for (unsigned d = 0; d < t_domains; ++d) {
    for (unsigned i = 0; i < t_nodes; ++i) {
      transit[d].push_back(d * t_nodes + i);
    }
    AddConnectedRandom(b, transit[d], params.transit_edge_prob, rng);
  }

  // Top-level domain graph: connected random graph over domain indices;
  // each domain-level edge becomes one link between random member nodes.
  std::vector<std::pair<unsigned, unsigned>> domain_edges;
  for (unsigned d = 1; d < t_domains; ++d) {
    domain_edges.push_back({d, static_cast<unsigned>(rng.NextIndex(d))});
  }
  for (unsigned i = 0; i < t_domains; ++i) {
    for (unsigned j = i + 1; j < t_domains; ++j) {
      if (rng.NextBool(params.transit_domain_edge_prob)) {
        domain_edges.push_back({i, j});
      }
    }
  }
  for (auto [i, j] : domain_edges) {
    b.AddEdge(transit[i][rng.NextIndex(t_nodes)],
              transit[j][rng.NextIndex(t_nodes)]);
  }

  // Stub domains: s_per_node per transit node, each a connected random
  // graph hung off its sponsor by one edge.
  std::vector<std::vector<NodeId>> stubs;
  stubs.reserve(total_stub_domains);
  NodeId next = total_transit;
  for (NodeId tn = 0; tn < total_transit; ++tn) {
    for (unsigned s = 0; s < s_per_node; ++s) {
      std::vector<NodeId> stub(s_nodes);
      for (unsigned i = 0; i < s_nodes; ++i) stub[i] = next++;
      AddConnectedRandom(b, stub, params.stub_edge_prob, rng);
      b.AddEdge(tn, stub[rng.NextIndex(s_nodes)]);
      stubs.push_back(std::move(stub));
    }
  }

  // Extra transit-to-stub shortcuts: random stub node to random transit
  // node in a different attachment.
  for (unsigned e = 0; e < params.extra_transit_stub_edges; ++e) {
    const auto& stub = stubs[rng.NextIndex(stubs.size())];
    b.AddEdge(stub[rng.NextIndex(s_nodes)],
              static_cast<NodeId>(rng.NextIndex(total_transit)));
  }
  // Extra stub-to-stub shortcuts.
  for (unsigned e = 0; e < params.extra_stub_stub_edges; ++e) {
    const std::size_t a = rng.NextIndex(stubs.size());
    std::size_t c = rng.NextIndex(stubs.size());
    if (a == c) c = (c + 1) % stubs.size();
    b.AddEdge(stubs[a][rng.NextIndex(s_nodes)],
              stubs[c][rng.NextIndex(s_nodes)]);
  }
  return RecordGenerated(span, std::move(b).Build());
}

}  // namespace topogen::gen
