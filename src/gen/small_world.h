// Watts-Strogatz small-world generator [46].
//
// Referenced by the paper's related-work discussion: many real-world
// networks are "small-world" -- high clustering with short paths. Start
// from a ring lattice where every node links to its k nearest neighbors,
// then rewire each link with probability p to a uniformly random
// endpoint. p = 0 is the lattice (high clustering, long paths); p = 1
// approaches a random graph; small p gives the small-world regime.
// Included as an extension: it lets the suite contrast the Internet's
// heavy-tailed hierarchy with the *other* classic real-world model.
#pragma once

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct SmallWorldParams {
  graph::NodeId n = 1000;
  unsigned k = 4;          // lattice neighbors per node (even, >= 2)
  double rewire_p = 0.05;  // per-link rewiring probability
};

graph::Graph SmallWorld(const SmallWorldParams& params, graph::Rng& rng);

}  // namespace topogen::gen
