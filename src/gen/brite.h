// BRITE-style generator (Medina, Lakhina, Matta, Byers [28]; the paper's
// "Brite version 1.0").
//
// BRITE marries Barabasi-Albert incremental growth with plane placement:
// nodes land on the unit square either uniformly or with heavy-tailed
// clustering, and each arriving node wires m links to existing nodes with
// probability proportional to degree, optionally damped by the Waxman
// distance factor ("geographic bias"). The paper ran BRITE with
// heavy-tailed placement and did not explore the bias, so that is our
// default too.
#pragma once

#include "gen/geometry.h"
#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

enum class BritePlacement { kRandom, kHeavyTailed };

struct BriteParams {
  graph::NodeId n = 10000;
  unsigned m = 2;  // links per arriving node
  BritePlacement placement = BritePlacement::kHeavyTailed;
  unsigned placement_grid = 32;  // cells per side for heavy-tailed placement
  bool geographic_bias = false;  // weigh targets by the Waxman factor
  double waxman_alpha = 0.15;    // only used with geographic_bias
  double waxman_beta = 0.2;
};

graph::Graph Brite(const BriteParams& params, graph::Rng& rng);

}  // namespace topogen::gen
