// Power-Law Random Graph (Aiello, Chung, Lu [1]; paper Section 3.1.2).
//
// The paper's reference degree-based generator: assign every node a degree
// drawn from a power law with exponent beta, clone each node once per
// degree unit, match clones uniformly at random, discard self-loops and
// duplicates, and keep the largest connected component. The headline
// instance uses beta = 2.246 (9230 surviving nodes, avg degree 4.46).
#pragma once

#include "gen/degree_seq.h"
#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct PlrgParams {
  graph::NodeId n = 10000;  // nodes before largest-component extraction
  double exponent = 2.246;
  std::uint32_t min_degree = 1;
  std::uint32_t max_degree = 0;  // 0 means n - 1
};

graph::Graph Plrg(const PlrgParams& params, graph::Rng& rng);

}  // namespace topogen::gen
