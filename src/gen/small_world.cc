#include "gen/small_world.h"

#include "gen/gen_obs.h"

#include "graph/components.h"

namespace topogen::gen {

graph::Graph SmallWorld(const SmallWorldParams& params, graph::Rng& rng) {
  obs::Span span("gen.small_world", "gen");
  const graph::NodeId n = params.n;
  const unsigned half = std::max(1u, params.k / 2);
  graph::GraphBuilder b(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (unsigned j = 1; j <= half; ++j) {
      graph::NodeId target = (v + j) % n;
      if (rng.NextBool(params.rewire_p)) {
        // Rewire the far endpoint uniformly; self-loops and duplicates
        // are dropped by the builder, matching Watts-Strogatz's "with
        // duplicates forbidden" in expectation at these densities.
        target = static_cast<graph::NodeId>(rng.NextIndex(n));
      }
      b.AddEdge(v, target);
    }
  }
  graph::Graph g = std::move(b).Build();
  return RecordGenerated(span, graph::LargestComponent(g).graph);
}

}  // namespace topogen::gen
