// Transit-Stub structural generator (Calvert, Doar, Zegura [10];
// paper Section 3.1.2).
//
// A two-level hierarchy: a connected random graph of transit domains, each
// domain itself a connected random graph of transit nodes; every transit
// node sponsors several stub domains (connected random graphs) attached by
// a single stub-to-transit edge; optional extra transit-to-stub and
// stub-to-stub edges add shortcut redundancy.
//
// The paper's headline instance "3 0 0 6 0.55 6 0.32 9 0.248" reads, in
// GT-ITM parameter order: 3 stubs per transit node, 0 extra transit-stub
// edges, 0 extra stub-stub edges, 6 transit domains with inter-domain edge
// probability 0.55, 6 nodes per transit domain with intra-domain edge
// probability 0.32, and 9 nodes per stub domain with edge probability
// 0.248 -- 1008 nodes in total.
#pragma once

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct TransitStubParams {
  unsigned stubs_per_transit_node = 3;
  unsigned extra_transit_stub_edges = 0;
  unsigned extra_stub_stub_edges = 0;
  unsigned num_transit_domains = 6;
  double transit_domain_edge_prob = 0.55;  // between transit domains
  unsigned nodes_per_transit_domain = 6;
  double transit_edge_prob = 0.32;  // within a transit domain
  unsigned nodes_per_stub_domain = 9;
  double stub_edge_prob = 0.248;  // within a stub domain
};

// Like GT-ITM, every random subgraph is forced connected: a random spanning
// tree is laid down first, then each remaining pair is linked with the
// stated probability.
graph::Graph TransitStub(const TransitStubParams& params, graph::Rng& rng);

}  // namespace topogen::gen
