// Power-law degree sequences and the node-connectivity methods of
// Appendix D.1.
//
// The paper's central degree-based generator, PLRG [1], separates *what
// degrees nodes get* from *how stubs are wired together*. Appendix D.1
// shows the choice of wiring barely matters as long as it is random-ish,
// and that re-wiring any degree sequence with the PLRG method (Figure 13)
// reproduces the original graph's large-scale metrics. This module holds
// both halves: degree sampling/calibration and the family of connectivity
// methods.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct PowerLawDegreeParams {
  graph::NodeId n = 10000;
  double exponent = 2.246;       // beta: P(deg = k) proportional to k^-beta
  std::uint32_t min_degree = 1;
  std::uint32_t max_degree = 0;  // 0 means n - 1
};

// I.i.d. degrees from the (truncated) discrete power law; the sum is made
// even by bumping one node, so every stub can be matched.
std::vector<std::uint32_t> SamplePowerLawDegrees(
    const PowerLawDegreeParams& params, graph::Rng& rng);

// Node count at and above which Plrg / BarabasiAlbert switch to the
// parallel construction paths below. Every roster/test size sits well
// under it, so existing figures are bit-for-bit unchanged; bench_scale and
// the xl tier sit above it.
inline constexpr graph::NodeId kParallelGenNodeThreshold = 65536;

// Parallel variant of SamplePowerLawDegrees: node v's degree comes from
// its own stream DeriveStream(seed, v), so the result is bit-identical at
// any TOPOGEN_THREADS (docs/PARALLELISM.md). Not draw-compatible with the
// serial sampler — the two lay out randomness differently — which is why
// the dispatch in Plrg() is keyed on a fixed node-count threshold rather
// than made universal.
std::vector<std::uint32_t> SamplePowerLawDegreesParallel(
    const PowerLawDegreeParams& params, std::uint64_t seed);

// Parallel PLRG stub matching. The serial path shuffles one stub array
// with Fisher-Yates (inherently sequential); this one gives every stub a
// 64-bit sort key from its own stream and sorts (key, stub) pairs — a
// sorted uniform-key array is a uniform permutation — then matches
// consecutive entries. Chunk-sorted + tree-merged on the pool;
// thread-count invariant. Collapsing of self-loops/duplicates and
// largest-component extraction match ConnectDegreeSequence.
graph::Graph ConnectPlrgParallel(std::span<const std::uint32_t> degrees,
                                 std::uint64_t seed,
                                 bool keep_largest_component = true);

// The exact Aiello-Chung-Lu construction [1]: the number of nodes of
// degree k is floor(e^alpha / k^beta), with alpha chosen so the total is
// as close to n as the floor steps allow (the ACL model's natural
// maximum degree is e^(alpha/beta), far below n). Deterministic, unlike
// the i.i.d. sampler; returned largest-degree-first.
std::vector<std::uint32_t> AclDegreeSequence(graph::NodeId n,
                                             double exponent);

// Expected degree of the truncated power law.
double PowerLawMeanDegree(double exponent, std::uint32_t min_degree,
                          std::uint32_t max_degree);

// Exponent beta such that the truncated power law on [min_degree,
// max_degree] has the requested mean degree; used to calibrate synthetic
// "measured" graphs against Figure 1's (N, avg degree) pairs.
double CalibrateExponent(double target_mean_degree, std::uint32_t min_degree,
                         std::uint32_t max_degree);

// How stubs are wired together (Appendix D.1's roster).
enum class ConnectMethod {
  // PLRG [1]: make deg(v) clones of v, match clone pairs uniformly.
  kPlrgMatching,
  // Palmer-Steffen [31]: pick two nodes with unsatisfied degree uniformly
  // at random (per node, not per stub).
  kRandomNodePairs,
  // Highest-degree node first; partners chosen proportional to assigned
  // degree among nodes with unsatisfied degree.
  kProportionalHighestFirst,
  // Highest-degree node first; partners proportional to *unsatisfied*
  // degree.
  kUnsatisfiedProportionalHighestFirst,
  // Highest-degree node first; partners uniform among unsatisfied nodes.
  kUniformHighestFirst,
  // The deterministic variant: each unsatisfied node, in decreasing degree
  // order, links once to every lower-degree node in decreasing order.
  // Appendix D.1 reports this produces graphs quite UNLIKE the Internet.
  kDeterministicHighestFirst,
};

// Wires the degree sequence with the chosen method. Self-loops and
// duplicate links are dropped (paper footnote 6); when
// keep_largest_component is set (the default and the paper's convention)
// only the largest connected component is returned.
graph::Graph ConnectDegreeSequence(std::span<const std::uint32_t> degrees,
                                   ConnectMethod method, graph::Rng& rng,
                                   bool keep_largest_component = true);

// Bounded-retry realization (docs/ROBUSTNESS.md): ConnectDegreeSequence
// plus a sanity check that the wiring did not collapse (a sequence with
// >= 2 nodes and >= 1 stub must realize at least one edge). A failed
// check -- organic or injected via the gen.realize fail point -- throws
// fault::Exception{kDegreeRealization}; up to two retries then run on
// sub-streams derived (graph::DeriveStream) from a single reseed draw
// taken from `rng` only after the first failure, so the *number* of
// retries never perturbs the caller's downstream draws and the zero-
// failure path consumes `rng` exactly like ConnectDegreeSequence.
// Exhausting the budget throws fault::Exception{kRetryExhausted}.
// `what` tags the fail point's detail string (e.g. "plrg") for match=
// filtering.
graph::Graph RealizeDegreeSequence(std::span<const std::uint32_t> degrees,
                                   ConnectMethod method, graph::Rng& rng,
                                   bool keep_largest_component = true,
                                   std::string_view what = {});

// Degree sequence of an existing graph.
std::vector<std::uint32_t> DegreeSequenceOf(const graph::Graph& g);

// Figure 13's "modified" graphs: take g's degree sequence and rewire it
// with the PLRG method.
graph::Graph ReconnectWithPlrg(const graph::Graph& g, graph::Rng& rng);

// Maslov-Sneppen degree-preserving rewiring: repeatedly pick two edges
// (a,b), (c,d) and swap endpoints to (a,d), (c,b) when that creates no
// self-loop or duplicate. Every node keeps its exact degree while all
// other structure randomizes -- the sharpest version of the paper's
// thesis experiment ("is the large-scale structure explained by the
// degree sequence alone?"). `swaps_per_edge` successful swaps per edge
// suffice to mix (2-3 is customary).
graph::Graph DegreePreservingRewire(const graph::Graph& g, graph::Rng& rng,
                                    double swaps_per_edge = 3.0);

}  // namespace topogen::gen
