// Synthetic stand-ins for the paper's two measured topologies.
//
// The paper measures (a) the AS graph extracted from the route-views BGP
// table (May 2001: 10,941 nodes, average degree 4.13) and (b) the SCAN /
// Mercator router-level (RL) graph (May 2001: 170,589 nodes, average
// degree 2.53, roughly 17x the AS graph). Neither raw dataset is available
// offline, so we build calibrated synthetic equivalents (see DESIGN.md §4):
//
//   * MeasuredAs: a heavy-tailed degree sequence calibrated to the
//     (N, avg-degree) pair from Figure 1, wired with random (PLRG-style)
//     matching, lightly triangle-enriched so its clustering behaves like
//     the real AS graph (Bu-Towsley [8]), with provider-customer
//     orientation assigned by degree order (Gao-style [18]).
//
//   * MeasuredRl: each AS expands into a router-level "pod" -- a connected
//     random core plus degree-1 access routers, with pod sizes heavy-tailed
//     in the AS's degree (Tangmunarunkit et al. [41]: AS size tracks AS
//     degree) -- and inter-AS adjacencies become border-router links. The
//     pod construction puts the RL graph's hierarchy in *deliberate
//     structure* rather than in the degree of individual routers, matching
//     the paper's Section 5.2 observation that RL link values correlate
//     weakly with degree while AS link values correlate strongly.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/rng.h"
#include "policy/relationships.h"

namespace topogen::gen {

struct MeasuredAsParams {
  graph::NodeId n = 4000;          // nodes before largest-component pass
  double average_degree = 4.13;    // Figure 1's AS row
  double triangle_fraction = 0.04; // extra closed triads, as a share of m
  std::uint32_t max_degree = 0;    // 0: n/4 cap, AS-graph-like
};

// AS-level topology plus the provider-customer annotation the policy
// engine consumes. relationship[e] orients canonical edge e.
struct AsTopology {
  graph::Graph graph;
  std::vector<policy::Relationship> relationship;  // parallel to edges()
};

AsTopology MeasuredAs(const MeasuredAsParams& params, graph::Rng& rng);

struct MeasuredRlParams {
  MeasuredAsParams as_params;   // the underlying AS model
  double expansion_ratio = 6.0; // target RL nodes per AS node (paper: ~17)
  double core_fraction = 0.35;  // share of each pod that is core routers
  double core_avg_degree = 3.0; // density of each pod's core
  // Every `step` of the smaller endpoint's AS degree adds a parallel
  // border link between a pod pair (capped at 4): big AS pairs peer at
  // multiple exchange points.
  std::size_t border_links_degree_step = 12;
};

struct RlTopology {
  graph::Graph graph;                 // router-level graph
  std::vector<std::uint32_t> as_of;   // router -> AS id (overlay mapping)
  AsTopology as_topology;             // the AS graph it was grown from
};

RlTopology MeasuredRl(const MeasuredRlParams& params, graph::Rng& rng);

}  // namespace topogen::gen
