// Tiers structural generator (Doar [14]; paper Section 3.1.2).
//
// Three tiers: one WAN, several MANs per WAN, several LANs per MAN. WAN
// and MAN networks are laid out on a plane, connected by a Euclidean
// minimum spanning tree, then reinforced with the R shortest non-tree
// links ("additional links in order of increasing inter-node Euclidean
// distance"). LANs are stars. Each child network attaches to its parent
// with `internetwork redundancy` links.
//
// The paper's headline instance, in Appendix C order (#WAN, #MAN/WAN,
// #LAN/MAN, nodes/WAN, nodes/MAN, nodes/LAN, RW, RM, RL, RMW, RLM), is
// 1 50 10 500 40 5 / 20 20 1 / 20 1 -- 5000 nodes at average degree 2.83.
// The redundancy figures are "extra links per network": Appendix C's
// roster (e.g. the 10500-node, avg-degree-2.12 row) is only consistent
// with that reading.
#pragma once

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct TiersParams {
  unsigned num_wans = 1;  // the published tool supports exactly 1
  unsigned mans_per_wan = 50;
  unsigned lans_per_man = 10;
  unsigned nodes_per_wan = 500;
  unsigned nodes_per_man = 40;
  unsigned nodes_per_lan = 5;  // includes the star hub
  unsigned wan_redundancy = 20;   // RW: extra intra-WAN links beyond the MST
  unsigned man_redundancy = 20;   // RM: extra intra-MAN links beyond the MST
  unsigned lan_redundancy = 1;    // RL: kept for interface parity; a star
                                  // has no shorter alternative, so extra
                                  // LAN links are hub-leaf duplicates and
                                  // vanish in the simple graph
  unsigned man_wan_redundancy = 20;  // RMW: links from each MAN to the WAN
  unsigned lan_man_redundancy = 1;   // RLM: links from each LAN to its MAN
  // Attach child networks to geographically *nearby* parent nodes (true,
  // the faithful behaviour) or to uniformly random ones (false). Random
  // attachment turns the inter-tier links into small-world shortcuts and
  // flips Tiers' expansion from Mesh-like to exponential -- the ablation
  // bench_ablation_tiers quantifies this.
  bool geographic_attachment = true;
};

graph::Graph Tiers(const TiersParams& params, graph::Rng& rng);

}  // namespace topogen::gen
