// Inet-style generator (Jin, Chen, Jamin [24]; paper Appendix D).
//
// Inet first draws a power-law degree sequence, then wires it in three
// ordered phases rather than by uniform stub matching:
//
//   1. a spanning tree over the nodes of degree >= 2, grown by attaching
//      each node to an in-tree node with probability proportional to its
//      (target) degree,
//   2. degree-1 nodes attach to tree nodes with proportional probability,
//   3. remaining free stubs are satisfied in decreasing degree order with
//      proportional partner choice.
//
// Appendix D.1 finds its large-scale metrics indistinguishable from PLRG.
#pragma once

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct InetParams {
  graph::NodeId n = 10000;
  double exponent = 2.22;
  std::uint32_t min_degree = 1;
  std::uint32_t max_degree = 0;  // 0 means n - 1
};

graph::Graph Inet(const InetParams& params, graph::Rng& rng);

}  // namespace topogen::gen
