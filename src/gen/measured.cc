#include "gen/measured.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gen/degree_seq.h"
#include "gen/gen_obs.h"
#include "graph/components.h"

namespace topogen::gen {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

AsTopology MeasuredAs(const MeasuredAsParams& params, Rng& rng) {
  obs::Span span("gen.measured_as", "gen");
  const NodeId n = params.n;
  const std::uint32_t kmax =
      params.max_degree != 0 ? params.max_degree
                             : std::max<std::uint32_t>(8, n / 4);
  // Triangle enrichment adds edges later; aim the degree sequence slightly
  // below the target so the final graph lands on it.
  const double base_mean =
      params.average_degree / (1.0 + params.triangle_fraction);
  PowerLawDegreeParams dp;
  dp.n = n;
  dp.exponent = CalibrateExponent(base_mean, 1, kmax);
  dp.min_degree = 1;
  dp.max_degree = kmax;
  const std::vector<std::uint32_t> degrees = SamplePowerLawDegrees(dp, rng);
  Graph g = ConnectDegreeSequence(degrees, ConnectMethod::kPlrgMatching, rng,
                                  /*keep_largest_component=*/true);

  // Close triads around multi-degree nodes: real AS graphs have far more
  // triangles than a random-matching graph with the same degrees [8].
  const auto extra_target = static_cast<std::size_t>(
      params.triangle_fraction * static_cast<double>(g.num_edges()));
  std::vector<Edge> edges = g.edges();
  std::size_t added = 0;
  for (std::size_t attempt = 0; attempt < 20 * extra_target + 16 &&
                                added < extra_target;
       ++attempt) {
    const NodeId w = static_cast<NodeId>(rng.NextIndex(g.num_nodes()));
    const auto nbrs = g.neighbors(w);
    if (nbrs.size() < 2) continue;
    const NodeId u = nbrs[rng.NextIndex(nbrs.size())];
    const NodeId v = nbrs[rng.NextIndex(nbrs.size())];
    if (u == v || g.has_edge(u, v)) continue;
    edges.push_back({u, v});
    ++added;
  }
  // Duplicates across the enrichment pass are collapsed by FromEdges.
  AsTopology out;
  out.graph = Graph::FromEdges(g.num_nodes(), std::move(edges));
  out.relationship = policy::InferRelationshipsByDegree(out.graph);
  TOPOGEN_COUNT("gen.graphs_built");
  TOPOGEN_COUNT_N("gen.nodes_generated", out.graph.num_nodes());
  TOPOGEN_COUNT_N("gen.edges_generated", out.graph.num_edges());
  span.Arg("nodes", static_cast<std::uint64_t>(out.graph.num_nodes()))
      .Arg("edges", static_cast<std::uint64_t>(out.graph.num_edges()));
  return out;
}

RlTopology MeasuredRl(const MeasuredRlParams& params, Rng& rng) {
  obs::Span span("gen.measured_rl", "gen");
  RlTopology out;
  out.as_topology = MeasuredAs(params.as_params, rng);
  const Graph& as_graph = out.as_topology.graph;
  const NodeId num_as = as_graph.num_nodes();

  // Pod sizes: proportional to AS degree (heavy-tailed, per [41]), summing
  // to expansion_ratio * num_as routers.
  const double total_routers =
      params.expansion_ratio * static_cast<double>(num_as);
  double weight_sum = 0.0;
  for (NodeId a = 0; a < num_as; ++a) {
    weight_sum += static_cast<double>(as_graph.degree(a));
  }
  std::vector<std::uint32_t> pod_size(num_as), core_size(num_as);
  for (NodeId a = 0; a < num_as; ++a) {
    const double share =
        static_cast<double>(as_graph.degree(a)) / weight_sum;
    pod_size[a] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(share * total_routers)));
    core_size[a] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(params.core_fraction * pod_size[a])));
  }

  // Router id layout: pod a owns a contiguous block, core routers first.
  std::vector<NodeId> pod_base(num_as + 1, 0);
  for (NodeId a = 0; a < num_as; ++a) {
    pod_base[a + 1] = pod_base[a] + pod_size[a];
  }
  const NodeId total = pod_base[num_as];
  GraphBuilder b(total);
  out.as_of.assign(total, 0);

  for (NodeId a = 0; a < num_as; ++a) {
    const NodeId base = pod_base[a];
    const std::uint32_t core = core_size[a];
    for (std::uint32_t r = 0; r < pod_size[a]; ++r) {
      out.as_of[base + r] = a;
    }
    // Connected core with preferential internal wiring: real ISP
    // backbones concentrate onto a few internal hubs, and that intra-pod
    // skew is what keeps the RL core's link-value distribution
    // hierarchical rather than flat. Each router joins by attaching to an
    // existing router chosen proportionally to degree; extra links up to
    // the target density keep one preferential endpoint.
    std::vector<NodeId> stubs;  // local preferential pool for this pod
    auto add_core_edge = [&](std::uint32_t r1, std::uint32_t r2) {
      b.AddEdge(base + r1, base + r2);
      stubs.push_back(r1);
      stubs.push_back(r2);
    };
    for (std::uint32_t r = 1; r < core; ++r) {
      const auto target = static_cast<std::uint32_t>(
          r == 1 ? 0 : stubs[rng.NextIndex(stubs.size())]);
      add_core_edge(r, target);
    }
    if (core >= 3) {
      const auto target_edges = static_cast<std::size_t>(
          params.core_avg_degree * core / 2.0);
      for (std::size_t e = core - 1; e < target_edges; ++e) {
        const auto u = static_cast<std::uint32_t>(rng.NextIndex(core));
        const auto v = static_cast<std::uint32_t>(
            stubs[rng.NextIndex(stubs.size())]);
        if (u != v) add_core_edge(u, v);
      }
    }
    // Access routers hang off core routers with a single link. The choice
    // is Zipf-skewed: a few core routers act as aggregation hubs with
    // large access fan-out, which is what gives real router-level maps
    // their heavy-tailed degree distribution (Appendix A) *without*
    // tying the backbone to high-degree nodes -- an aggregation hub's
    // links are access links of value ~1, so the RL graph keeps the low
    // value/degree correlation of Section 5.2.
    std::vector<double> zipf_cdf(core);
    double zipf_total = 0.0;
    for (std::uint32_t r = 0; r < core; ++r) {
      zipf_total += 1.0 / static_cast<double>(r + 1);
      zipf_cdf[r] = zipf_total;
    }
    for (std::uint32_t r = core; r < pod_size[a]; ++r) {
      const double pick = rng.NextDouble() * zipf_total;
      const auto it =
          std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), pick);
      const auto hub =
          static_cast<NodeId>(it - zipf_cdf.begin());
      b.AddEdge(base + r, base + hub);
    }
  }

  // Each AS adjacency becomes one or more border-router links between
  // random core routers of the two pods. Large AS pairs interconnect at
  // several peering points in the real Internet; modeling that matters
  // for policy-routed link values -- a single border link per top-tier
  // adjacency would funnel all valley-free transit through one router
  // pair and overstate the top of the link-value distribution.
  for (const Edge& e : as_graph.edges()) {
    const std::size_t min_deg =
        std::min(as_graph.degree(e.u), as_graph.degree(e.v));
    const std::size_t parallel = std::min<std::size_t>(
        6, 1 + min_deg / params.border_links_degree_step);
    for (std::size_t k = 0; k < parallel; ++k) {
      const NodeId u = pod_base[e.u] +
                       static_cast<NodeId>(rng.NextIndex(core_size[e.u]));
      const NodeId v = pod_base[e.v] +
                       static_cast<NodeId>(rng.NextIndex(core_size[e.v]));
      b.AddEdge(u, v);
    }
  }

  // The AS graph is connected (largest component) and every pod is
  // internally connected, so the RL graph is connected by construction.
  out.graph = std::move(b).Build();
  TOPOGEN_COUNT("gen.graphs_built");
  TOPOGEN_COUNT_N("gen.nodes_generated", out.graph.num_nodes());
  TOPOGEN_COUNT_N("gen.edges_generated", out.graph.num_edges());
  span.Arg("nodes", static_cast<std::uint64_t>(out.graph.num_nodes()))
      .Arg("edges", static_cast<std::uint64_t>(out.graph.num_edges()));
  return out;
}

}  // namespace topogen::gen
