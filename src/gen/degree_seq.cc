#include "gen/degree_seq.h"

#include "gen/gen_obs.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "fault/fault.h"
#include "graph/components.h"
#include "parallel/parallel_for.h"

namespace topogen::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

std::vector<std::uint32_t> SamplePowerLawDegrees(
    const PowerLawDegreeParams& params, Rng& rng) {
  const std::uint32_t lo = std::max<std::uint32_t>(1, params.min_degree);
  const std::uint32_t hi =
      params.max_degree == 0 ? std::max(lo, params.n - 1)
                             : std::max(lo, params.max_degree);
  // Inverse-CDF table over [lo, hi].
  std::vector<double> cdf(hi - lo + 1);
  double total = 0.0;
  for (std::uint32_t k = lo; k <= hi; ++k) {
    total += std::pow(static_cast<double>(k), -params.exponent);
    cdf[k - lo] = total;
  }
  std::vector<std::uint32_t> degrees(params.n);
  for (std::uint32_t& d : degrees) {
    const double u = rng.NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    d = lo + static_cast<std::uint32_t>(it - cdf.begin());
  }
  // Make the stub count even.
  if ((std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0}) &
       1) != 0) {
    ++degrees[rng.NextIndex(degrees.size())];
  }
  return degrees;
}

std::vector<std::uint32_t> SamplePowerLawDegreesParallel(
    const PowerLawDegreeParams& params, std::uint64_t seed) {
  const std::uint32_t lo = std::max<std::uint32_t>(1, params.min_degree);
  const std::uint32_t hi =
      params.max_degree == 0 ? std::max(lo, params.n - 1)
                             : std::max(lo, params.max_degree);
  std::vector<double> cdf(hi - lo + 1);
  double total = 0.0;
  for (std::uint32_t k = lo; k <= hi; ++k) {
    total += std::pow(static_cast<double>(k), -params.exponent);
    cdf[k - lo] = total;
  }
  std::vector<std::uint32_t> degrees(params.n);
  const parallel::ChunkPlan plan = parallel::PlanChunks(params.n, 1024);
  parallel::ParallelFor(plan, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      graph::SmallRng r(graph::DeriveStream(seed, v));
      const double u = r.NextDouble() * total;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      degrees[v] = lo + static_cast<std::uint32_t>(it - cdf.begin());
    }
  });
  if ((std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0}) &
       1) != 0) {
    // Parity bump from the one stream index no node owns.
    graph::SmallRng r(graph::DeriveStream(seed, params.n));
    ++degrees[r.NextIndex(degrees.size())];
  }
  return degrees;
}

std::vector<std::uint32_t> AclDegreeSequence(NodeId n, double exponent) {
  // Bisect e^alpha so sum_k floor(e^alpha / k^beta) lands on n.
  auto count_nodes = [&](double ealpha) {
    std::uint64_t total = 0;
    for (std::uint32_t k = 1;; ++k) {
      const auto at_k = static_cast<std::uint64_t>(
          ealpha / std::pow(static_cast<double>(k), exponent));
      if (at_k == 0) break;
      total += at_k;
      if (total > 4ull * n) break;  // early out, clearly too large
    }
    return total;
  };
  double lo = 1.0, hi = 16.0 * static_cast<double>(n);
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (count_nodes(mid) < n ? lo : hi) = mid;
  }
  const double ealpha = 0.5 * (lo + hi);
  std::vector<std::uint32_t> degrees;
  degrees.reserve(n);
  // Emit largest degrees first so truncation to exactly n nodes (the
  // floors rarely sum to n on the nose) trims only degree-1 nodes.
  const auto kmax = static_cast<std::uint32_t>(
      std::pow(ealpha, 1.0 / exponent));
  for (std::uint32_t k = kmax; k >= 1; --k) {
    const auto at_k = static_cast<std::uint64_t>(
        ealpha / std::pow(static_cast<double>(k), exponent));
    for (std::uint64_t i = 0; i < at_k && degrees.size() < n; ++i) {
      degrees.push_back(k);
    }
    if (k == 1) break;
  }
  while (degrees.size() < n) degrees.push_back(1);
  // Even stub total.
  std::uint64_t sum = std::accumulate(degrees.begin(), degrees.end(),
                                      std::uint64_t{0});
  if ((sum & 1) != 0) ++degrees.back();
  return degrees;
}

double PowerLawMeanDegree(double exponent, std::uint32_t min_degree,
                          std::uint32_t max_degree) {
  double mass = 0.0, mean = 0.0;
  for (std::uint32_t k = std::max<std::uint32_t>(1, min_degree);
       k <= max_degree; ++k) {
    const double p = std::pow(static_cast<double>(k), -exponent);
    mass += p;
    mean += p * k;
  }
  return mass == 0.0 ? 0.0 : mean / mass;
}

double CalibrateExponent(double target_mean_degree, std::uint32_t min_degree,
                         std::uint32_t max_degree) {
  // Mean degree decreases monotonically in the exponent; bisect.
  double lo = 1.05, hi = 5.0;
  if (PowerLawMeanDegree(lo, min_degree, max_degree) < target_mean_degree) {
    return lo;  // target unreachable even at the heaviest tail
  }
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (PowerLawMeanDegree(mid, min_degree, max_degree) >
        target_mean_degree) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

// PLRG: one entry per stub, shuffled, consecutive entries matched.
void WirePlrg(std::span<const std::uint32_t> degrees, GraphBuilder& b,
              Rng& rng) {
  std::vector<NodeId> stubs;
  for (NodeId v = 0; v < degrees.size(); ++v) {
    for (std::uint32_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
  }
  std::shuffle(stubs.begin(), stubs.end(), rng.engine());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    b.AddEdge(stubs[i], stubs[i + 1]);
  }
}

// Uniform over *nodes* with unsatisfied degree, per Palmer-Steffen.
void WireRandomNodePairs(std::span<const std::uint32_t> degrees,
                         GraphBuilder& b, Rng& rng) {
  std::vector<std::uint32_t> remaining(degrees.begin(), degrees.end());
  std::vector<NodeId> open;
  for (NodeId v = 0; v < degrees.size(); ++v) {
    if (remaining[v] > 0) open.push_back(v);
  }
  auto drop = [&](std::size_t idx) {
    open[idx] = open.back();
    open.pop_back();
  };
  while (open.size() >= 2) {
    const std::size_t ia = rng.NextIndex(open.size());
    std::size_t ib = rng.NextIndex(open.size() - 1);
    if (ib >= ia) ++ib;
    const NodeId a = open[ia], c = open[ib];
    b.AddEdge(a, c);
    // Decrement and compact; handle the larger index first so the swap in
    // drop() cannot invalidate the smaller one.
    const std::size_t hi_idx = std::max(ia, ib);
    const std::size_t lo_idx = std::min(ia, ib);
    if (--remaining[open[hi_idx]] == 0) drop(hi_idx);
    if (--remaining[open[lo_idx]] == 0) drop(lo_idx);
  }
}

enum class PartnerRule { kAssignedDegree, kUnsatisfiedDegree, kUniform };

// Highest-degree-first wiring with a pluggable partner-selection rule.
void WireHighestFirst(std::span<const std::uint32_t> degrees, GraphBuilder& b,
                      Rng& rng, PartnerRule rule) {
  const NodeId n = static_cast<NodeId>(degrees.size());
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId c) {
    return degrees[a] > degrees[c];
  });
  std::vector<std::uint32_t> remaining(degrees.begin(), degrees.end());

  // Stub pool for proportional sampling via rejection. For the uniform
  // rule, a plain open-node list.
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t copies =
        rule == PartnerRule::kUniform ? (remaining[v] > 0 ? 1 : 0)
                                      : degrees[v];
    for (std::uint32_t i = 0; i < copies; ++i) pool.push_back(v);
  }

  auto pick_partner = [&](NodeId self) -> NodeId {
    for (int attempt = 0; attempt < 256; ++attempt) {
      if (pool.empty()) break;
      const std::size_t idx = rng.NextIndex(pool.size());
      const NodeId cand = pool[idx];
      if (cand == self || remaining[cand] == 0) {
        // Lazy cleanup keeps rejection sampling near O(1).
        if (remaining[cand] == 0) {
          pool[idx] = pool.back();
          pool.pop_back();
        }
        continue;
      }
      if (rule == PartnerRule::kUnsatisfiedDegree) {
        // Accept proportionally to unsatisfied/assigned.
        const double accept = static_cast<double>(remaining[cand]) /
                              static_cast<double>(degrees[cand]);
        if (!rng.NextBool(accept)) continue;
      }
      return cand;
    }
    // Fallback: linear scan for any open partner.
    for (NodeId v = 0; v < n; ++v) {
      if (v != self && remaining[v] > 0) return v;
    }
    return graph::kInvalidNode;
  };

  for (NodeId u : order) {
    while (remaining[u] > 0) {
      const NodeId partner = pick_partner(u);
      if (partner == graph::kInvalidNode) return;  // odd leftover stub
      b.AddEdge(u, partner);
      --remaining[u];
      --remaining[partner];
    }
  }
}

// Appendix D.1's deterministic method.
void WireDeterministic(std::span<const std::uint32_t> degrees,
                       GraphBuilder& b) {
  const NodeId n = static_cast<NodeId>(degrees.size());
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId c) {
    return degrees[a] > degrees[c];
  });
  std::vector<std::uint32_t> remaining(degrees.begin(), degrees.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    for (std::size_t j = i + 1; j < order.size() && remaining[u] > 0; ++j) {
      const NodeId v = order[j];
      if (remaining[v] == 0) continue;
      b.AddEdge(u, v);
      --remaining[u];
      --remaining[v];
    }
  }
}

}  // namespace

Graph ConnectDegreeSequence(std::span<const std::uint32_t> degrees,
                            ConnectMethod method, Rng& rng,
                            bool keep_largest_component) {
  obs::Span span("gen.connect_degree_sequence", "gen");
  GraphBuilder b(static_cast<NodeId>(degrees.size()));
  switch (method) {
    case ConnectMethod::kPlrgMatching:
      WirePlrg(degrees, b, rng);
      break;
    case ConnectMethod::kRandomNodePairs:
      WireRandomNodePairs(degrees, b, rng);
      break;
    case ConnectMethod::kProportionalHighestFirst:
      WireHighestFirst(degrees, b, rng, PartnerRule::kAssignedDegree);
      break;
    case ConnectMethod::kUnsatisfiedProportionalHighestFirst:
      WireHighestFirst(degrees, b, rng, PartnerRule::kUnsatisfiedDegree);
      break;
    case ConnectMethod::kUniformHighestFirst:
      WireHighestFirst(degrees, b, rng, PartnerRule::kUniform);
      break;
    case ConnectMethod::kDeterministicHighestFirst:
      WireDeterministic(degrees, b);
      break;
  }
  Graph g = std::move(b).Build();
  return RecordGenerated(span, keep_largest_component
                                   ? graph::LargestComponent(g).graph
                                   : std::move(g));
}

namespace {

// The realization sanity check behind RealizeDegreeSequence: a sequence
// that had anything to wire must have wired something. The gen.realize
// fail point sits here so chaos tests can force the retry path.
void CheckRealization(const Graph& g, std::span<const std::uint32_t> degrees,
                      std::string_view what) {
  TOPOGEN_FAULT_POINT_D("gen.realize", what);
  const std::uint64_t stubs = std::accumulate(
      degrees.begin(), degrees.end(), std::uint64_t{0});
  if (degrees.size() >= 2 && stubs >= 2 && g.num_edges() == 0) {
    throw fault::Exception(
        fault::ErrorCode::kDegreeRealization,
        "degree-sequence realization collapsed: " +
            std::to_string(degrees.size()) + " nodes / " +
            std::to_string(stubs) + " stubs wired into an edgeless graph");
  }
}

}  // namespace

Graph RealizeDegreeSequence(std::span<const std::uint32_t> degrees,
                            ConnectMethod method, Rng& rng,
                            bool keep_largest_component,
                            std::string_view what) {
  constexpr int kMaxRealizeAttempts = 3;
  // The reseed base is drawn from the caller's stream only after the
  // first failure, so the happy path consumes `rng` exactly like a bare
  // ConnectDegreeSequence call (bit-identical outputs).
  std::optional<std::uint64_t> reseed_base;
  fault::Error last;
  for (int attempt = 0; attempt < kMaxRealizeAttempts; ++attempt) {
    try {
      Graph g = [&] {
        if (attempt == 0) {
          return ConnectDegreeSequence(degrees, method, rng,
                                       keep_largest_component);
        }
        if (!reseed_base) reseed_base = rng.engine()();
        Rng sub(graph::DeriveStream(*reseed_base,
                                    static_cast<std::uint64_t>(attempt)));
        return ConnectDegreeSequence(degrees, method, sub,
                                     keep_largest_component);
      }();
      CheckRealization(g, degrees, what);
      if (attempt > 0) TOPOGEN_COUNT_N("gen.realize_retries", attempt);
      return g;
    } catch (const fault::Exception& e) {
      last = e.error();
      last.attempts = attempt + 1;
    }
  }
  throw fault::Exception(fault::ErrorCode::kRetryExhausted,
                         "degree-sequence realization failed " +
                             std::to_string(kMaxRealizeAttempts) +
                             " attempts (last: " + last.message + ")",
                         last.fail_point, kMaxRealizeAttempts);
}

namespace {

// One matching attempt of the parallel PLRG wiring (see degree_seq.h).
Graph ConnectPlrgParallelOnce(std::span<const std::uint32_t> degrees,
                              std::uint64_t seed,
                              bool keep_largest_component) {
  const NodeId n = static_cast<NodeId>(degrees.size());
  std::vector<std::uint64_t> offset(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) offset[v + 1] = offset[v] + degrees[v];
  const std::uint64_t stubs = offset[n];

  // stub_node[s] = owner of stub s; filled chunk-parallel (disjoint slots).
  std::vector<NodeId> stub_node(stubs);
  const parallel::ChunkPlan node_plan = parallel::PlanChunks(n, 1024);
  parallel::ParallelFor(node_plan, [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::fill(stub_node.begin() + offset[v], stub_node.begin() + offset[v + 1],
                static_cast<NodeId>(v));
    }
  });

  // Per-stub 64-bit sort keys from per-stub streams; sorting them applies
  // a uniform random permutation. The stub index tiebreak makes the order
  // total, so ties (vanishingly rare) stay deterministic.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(stubs);
  const parallel::ChunkPlan stub_plan = parallel::PlanChunks(stubs, 4096);
  parallel::ParallelFor(stub_plan, [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      keyed[s] = {graph::DeriveStream(seed, s),
                  static_cast<std::uint32_t>(s)};
    }
  });
  // Chunk-local sorts, then a deterministic binary merge tree. Both the
  // chunk boundaries and the merge order depend only on `stubs`, so the
  // permutation is thread-count invariant.
  parallel::ParallelFor(stub_plan, [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
    std::sort(keyed.begin() + begin, keyed.begin() + end);
  });
  for (std::size_t width = 1; width < stub_plan.chunks; width *= 2) {
    std::vector<std::size_t> merges;
    for (std::size_t c = 0; c + width < stub_plan.chunks; c += 2 * width) {
      merges.push_back(c);
    }
    parallel::ParallelForEach(merges.size(), [&](std::size_t i) {
      const std::size_t c = merges[i];
      const std::size_t mid = stub_plan.begin(c + width);
      const std::size_t hi = c + 2 * width < stub_plan.chunks
                                 ? stub_plan.begin(c + 2 * width)
                                 : stubs;
      std::inplace_merge(keyed.begin() + stub_plan.begin(c),
                         keyed.begin() + mid, keyed.begin() + hi);
    });
  }

  // Consecutive entries of the permuted stub array are matched.
  std::vector<graph::Edge> edges(stubs / 2);
  const parallel::ChunkPlan edge_plan = parallel::PlanChunks(edges.size(),
                                                             2048);
  parallel::ParallelFor(edge_plan, [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
    for (std::size_t e = begin; e < end; ++e) {
      edges[e] = {stub_node[keyed[2 * e].second],
                  stub_node[keyed[2 * e + 1].second]};
    }
  });
  Graph g = Graph::FromEdges(n, std::move(edges));
  return keep_largest_component ? graph::LargestComponent(g).graph
                                : std::move(g);
}

}  // namespace

Graph ConnectPlrgParallel(std::span<const std::uint32_t> degrees,
                          std::uint64_t seed, bool keep_largest_component) {
  obs::Span span("gen.connect_plrg_parallel", "gen");
  constexpr int kMaxRealizeAttempts = 3;
  fault::Error last;
  for (int attempt = 0; attempt < kMaxRealizeAttempts; ++attempt) {
    try {
      const std::uint64_t attempt_seed =
          attempt == 0 ? seed
                       : graph::DeriveStream(
                             seed, static_cast<std::uint64_t>(attempt));
      Graph g = ConnectPlrgParallelOnce(degrees, attempt_seed,
                                        keep_largest_component);
      CheckRealization(g, degrees, "plrg_parallel");
      if (attempt > 0) TOPOGEN_COUNT_N("gen.realize_retries", attempt);
      return RecordGenerated(span, std::move(g));
    } catch (const fault::Exception& e) {
      last = e.error();
      last.attempts = attempt + 1;
    }
  }
  throw fault::Exception(fault::ErrorCode::kRetryExhausted,
                         "parallel PLRG realization failed " +
                             std::to_string(kMaxRealizeAttempts) +
                             " attempts (last: " + last.message + ")",
                         last.fail_point, kMaxRealizeAttempts);
}

std::vector<std::uint32_t> DegreeSequenceOf(const Graph& g) {
  std::vector<std::uint32_t> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degrees[v] = static_cast<std::uint32_t>(g.degree(v));
  }
  return degrees;
}

Graph ReconnectWithPlrg(const Graph& g, Rng& rng) {
  const std::vector<std::uint32_t> degrees = DegreeSequenceOf(g);
  return RealizeDegreeSequence(degrees, ConnectMethod::kPlrgMatching, rng,
                               /*keep_largest_component=*/true, "reconnect");
}

namespace {

// Flat sorted-key edge set for the rewire loop's duplicate detection: a
// sorted base array of uint64 keys plus two small delta buffers, compacted
// by a linear merge when they fill. Replaces the old unordered_set — no
// per-insert allocation, no hashing, cache-linear membership tests.
class FlatEdgeKeySet {
 public:
  // `sorted` must be ascending (Graph::edges() keys already are).
  explicit FlatEdgeKeySet(std::vector<std::uint64_t> sorted)
      : base_(std::move(sorted)) {}

  bool contains(std::uint64_t k) const {
    if (InDelta(added_, k)) return true;
    if (InDelta(removed_, k)) return false;
    return std::binary_search(base_.begin(), base_.end(), k);
  }

  // Precondition: !contains(k).
  void insert(std::uint64_t k) {
    if (!EraseDelta(removed_, k)) added_.push_back(k);
    MaybeCompact();
  }

  // Precondition: contains(k).
  void erase(std::uint64_t k) {
    if (!EraseDelta(added_, k)) removed_.push_back(k);
    MaybeCompact();
  }

 private:
  static bool InDelta(const std::vector<std::uint64_t>& d, std::uint64_t k) {
    return std::find(d.begin(), d.end(), k) != d.end();
  }

  static bool EraseDelta(std::vector<std::uint64_t>& d, std::uint64_t k) {
    const auto it = std::find(d.begin(), d.end(), k);
    if (it == d.end()) return false;
    *it = d.back();
    d.pop_back();
    return true;
  }

  void MaybeCompact() {
    if (added_.size() + removed_.size() < 192) return;
    std::sort(added_.begin(), added_.end());
    std::sort(removed_.begin(), removed_.end());
    std::vector<std::uint64_t> next;
    next.reserve(base_.size() + added_.size());
    auto add_it = added_.begin();
    auto rm_it = removed_.begin();
    for (std::uint64_t k : base_) {
      while (add_it != added_.end() && *add_it < k) next.push_back(*add_it++);
      if (rm_it != removed_.end() && *rm_it == k) {
        ++rm_it;
        continue;
      }
      next.push_back(k);
    }
    next.insert(next.end(), add_it, added_.end());
    base_ = std::move(next);
    added_.clear();
    removed_.clear();
  }

  std::vector<std::uint64_t> base_;     // sorted
  std::vector<std::uint64_t> added_;    // small, unsorted
  std::vector<std::uint64_t> removed_;  // small, unsorted; subset of base_
};

}  // namespace

Graph DegreePreservingRewire(const Graph& g, Rng& rng,
                             double swaps_per_edge) {
  std::vector<graph::Edge> edges = g.edges();
  if (edges.size() < 2) return g;
  auto key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  // Canonical edges are sorted by (u, v), so their keys are ascending.
  std::vector<std::uint64_t> base;
  base.reserve(edges.size());
  for (const graph::Edge& e : edges) base.push_back(key(e.u, e.v));
  FlatEdgeKeySet keys(std::move(base));

  const auto target_swaps =
      static_cast<std::size_t>(swaps_per_edge * edges.size());
  std::size_t done = 0;
  // Cap attempts: dense or tiny graphs may not admit many swaps.
  for (std::size_t attempt = 0;
       attempt < 20 * target_swaps + 100 && done < target_swaps;
       ++attempt) {
    const std::size_t i = rng.NextIndex(edges.size());
    std::size_t j = rng.NextIndex(edges.size() - 1);
    if (j >= i) ++j;
    graph::Edge& e1 = edges[i];
    graph::Edge& e2 = edges[j];
    // Two swap orientations; pick one at random for detailed balance.
    NodeId a = e1.u, b = e1.v, c = e2.u, d = e2.v;
    if (rng.NextBool(0.5)) std::swap(c, d);
    // Proposed: (a,d), (c,b).
    if (a == d || c == b) continue;
    if (keys.contains(key(a, d)) || keys.contains(key(c, b))) continue;
    keys.erase(key(e1.u, e1.v));
    keys.erase(key(e2.u, e2.v));
    e1 = {a, d};
    e2 = {c, b};
    keys.insert(key(a, d));
    keys.insert(key(c, b));
    ++done;
  }
  return Graph::FromEdges(g.num_nodes(), std::move(edges));
}

}  // namespace topogen::gen
