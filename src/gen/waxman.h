// Waxman random-graph generator [47] (paper Section 3.1.2).
//
// Nodes land uniformly on the unit square; each pair (u, v) gets a link
// with probability alpha * exp(-d(u,v) / (beta * L)), where L is the
// maximum possible distance. Alpha scales overall density; beta controls
// geographic bias (small beta strongly favors short links and, at extreme
// settings, drives the largest component toward a Euclidean MST -- the
// regime Section 4.4 discusses).
//
// The paper's headline instance is n=5000, alpha=0.005, beta=0.30
// (avg degree 7.22 after keeping the largest component).
#pragma once

#include "gen/geometry.h"
#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::gen {

struct WaxmanParams {
  graph::NodeId n = 5000;
  double alpha = 0.005;
  double beta = 0.30;
  bool keep_largest_component = true;
};

graph::Graph Waxman(const WaxmanParams& params, graph::Rng& rng);

}  // namespace topogen::gen
