#include "gen/brite.h"

#include "gen/gen_obs.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/components.h"

namespace topogen::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;
using graph::Rng;

Graph Brite(const BriteParams& params, Rng& rng) {
  obs::Span span("gen.brite", "gen");
  const NodeId n = params.n;
  const unsigned m = std::max(1u, params.m);
  const std::vector<Point> pts =
      params.placement == BritePlacement::kHeavyTailed
          ? HeavyTailPoints(n, params.placement_grid, rng)
          : UniformPoints(n, rng);

  std::vector<std::uint32_t> degree(n, 0);
  std::vector<NodeId> stubs;
  std::vector<graph::Edge> edges;
  std::unordered_set<std::uint64_t> keys;
  auto key = [](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  auto add_edge = [&](NodeId u, NodeId v) {
    keys.insert(key(u, v));
    edges.push_back({u, v});
    ++degree[u];
    ++degree[v];
    stubs.push_back(u);
    stubs.push_back(v);
  };

  // Seed: a small ring so every early node has degree.
  const NodeId m0 = std::min<NodeId>(n, std::max<NodeId>(m + 1, 3));
  for (NodeId v = 0; v < m0; ++v) add_edge(v, (v + 1) % m0);

  const double scale = params.waxman_beta * std::sqrt(2.0);
  for (NodeId v = m0; v < n; ++v) {
    unsigned placed = 0;
    for (int attempt = 0; attempt < 4096 && placed < m; ++attempt) {
      const NodeId cand = stubs[rng.NextIndex(stubs.size())];
      if (cand == v || keys.contains(key(v, cand))) continue;
      if (params.geographic_bias) {
        // Damp the preferential choice by the Waxman distance factor; the
        // alpha knob rescales acceptance, not density, in this role.
        const double w = std::exp(-Distance(pts[v], pts[cand]) / scale);
        if (!rng.NextBool(std::min(1.0, params.waxman_alpha + w))) continue;
      }
      add_edge(v, cand);
      ++placed;
    }
  }

  GraphBuilder b(n);
  for (const graph::Edge& e : edges) b.AddEdge(e.u, e.v);
  Graph g = std::move(b).Build();
  return RecordGenerated(span, graph::LargestComponent(g).graph);
}

}  // namespace topogen::gen
