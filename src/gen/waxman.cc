#include "gen/waxman.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gen/gen_obs.h"
#include "graph/components.h"
#include "parallel/parallel_for.h"

namespace topogen::gen {

namespace {

using graph::NodeId;

// Spatial index over the unit square: points bucketed into a G x G grid,
// stored as one permutation array with per-cell offsets (counting sort, so
// the within-cell order is point-id order — deterministic).
struct CellGrid {
  unsigned g = 1;                       // cells per side
  std::vector<std::uint32_t> offsets;   // size g*g + 1
  std::vector<NodeId> order;            // point ids grouped by cell
};

unsigned CellOf(const Point& p, unsigned g) {
  auto clamp = [g](double t) {
    const auto c = static_cast<long>(t * g);
    return static_cast<unsigned>(std::clamp<long>(c, 0, g - 1));
  };
  return clamp(p.y) * g + clamp(p.x);
}

CellGrid BuildCellGrid(const std::vector<Point>& pts, unsigned g) {
  CellGrid grid;
  grid.g = g;
  const std::size_t cells = static_cast<std::size_t>(g) * g;
  grid.offsets.assign(cells + 1, 0);
  for (const Point& p : pts) ++grid.offsets[CellOf(p, g) + 1];
  for (std::size_t c = 0; c < cells; ++c) {
    grid.offsets[c + 1] += grid.offsets[c];
  }
  grid.order.resize(pts.size());
  std::vector<std::uint32_t> cursor(grid.offsets.begin(),
                                    grid.offsets.end() - 1);
  for (NodeId i = 0; i < pts.size(); ++i) {
    grid.order[cursor[CellOf(pts[i], g)]++] = i;
  }
  return grid;
}

// Grid resolution balancing the two cost terms: probing (tighter with more
// cells) against enumerating the ~g^4/2 cell pairs. g ~ (2n)^(1/4) makes the
// pair-enumeration term O(n).
unsigned GridSide(std::size_t n) {
  const double side = std::pow(2.0 * static_cast<double>(n), 0.25);
  return std::clamp<unsigned>(static_cast<unsigned>(side), 1, 64);
}

// Samples every cross-cell (or within-cell when ca == cb) pair via
// Batagelj-Brandes geometric skips under the per-cell-pair probability
// upper bound, thinning each hit by p(d) / p_ub. Each pair is an exact
// independent Bernoulli(alpha * exp(-d / scale)) trial — identical in
// distribution to the old O(n^2) scan — and the draws come from a stream
// keyed by the cell-pair index alone, so the edge set is independent of
// chunking and thread count.
void SampleCellPair(const std::vector<Point>& pts, const CellGrid& grid,
                    std::size_t ca, std::size_t cb, double p_ub, double alpha,
                    double scale, std::uint64_t pair_seed,
                    std::vector<graph::Edge>& out) {
  const std::uint32_t a_lo = grid.offsets[ca], a_hi = grid.offsets[ca + 1];
  const std::uint32_t b_lo = grid.offsets[cb], b_hi = grid.offsets[cb + 1];
  const std::uint64_t ka = a_hi - a_lo;
  const std::uint64_t kb = b_hi - b_lo;
  const bool same = ca == cb;
  const std::uint64_t npairs = same ? ka * (ka - 1) / 2 : ka * kb;
  if (npairs == 0 || p_ub <= 0.0) return;

  const std::size_t cells = static_cast<std::size_t>(grid.g) * grid.g;
  graph::SmallRng rng(graph::DeriveStream(pair_seed, ca * cells + cb));
  const bool certain = p_ub >= 1.0;
  const double log_q = certain ? 0.0 : std::log1p(-p_ub);
  const double bound = certain ? 1.0 : p_ub;

  std::uint64_t pos = 0;
  while (pos < npairs) {
    if (!certain) {
      // Geometric skip: failures before the next Bernoulli(p_ub) success.
      const double u = 1.0 - rng.NextDouble();  // (0, 1]
      const double skip = std::floor(std::log(u) / log_q);
      if (skip >= static_cast<double>(npairs - pos)) return;
      pos += static_cast<std::uint64_t>(skip);
      if (pos >= npairs) return;
    }
    NodeId i, j;
    if (same) {
      // Unrank triangular index pos -> (row, col) with row < col.
      const double k = static_cast<double>(ka);
      const double t = static_cast<double>(pos);
      const double est = k - 0.5 -
                         std::sqrt(std::max(
                             0.0, (k - 0.5) * (k - 0.5) - 2.0 * t));
      auto row = static_cast<std::uint64_t>(
          std::clamp(est, 0.0, k - 2.0));
      // Guard the float estimate against off-by-one at row boundaries.
      auto first_of = [ka](std::uint64_t r) {
        return r * (2 * ka - r - 1) / 2;
      };
      while (row > 0 && first_of(row) > pos) --row;
      while (first_of(row + 1) <= pos) ++row;
      const std::uint64_t col = row + 1 + (pos - first_of(row));
      i = grid.order[a_lo + row];
      j = grid.order[a_lo + col];
    } else {
      i = grid.order[a_lo + pos / kb];
      j = grid.order[b_lo + pos % kb];
    }
    const double p = alpha * std::exp(-Distance(pts[i], pts[j]) / scale);
    if (rng.NextDouble() * bound < p) out.push_back({i, j});
    ++pos;
  }
}

}  // namespace

graph::Graph Waxman(const WaxmanParams& params, graph::Rng& rng) {
  obs::Span span("gen.waxman", "gen");
  const NodeId n = params.n;
  const std::vector<Point> pts = UniformPoints(n, rng);
  const double scale = params.beta * std::sqrt(2.0);  // beta * L, L = max dist
  // One draw seeds every per-cell-pair stream; the caller's rng sees the
  // same consumption no matter how many cells or threads are involved.
  const std::uint64_t pair_seed = rng.engine()();

  const unsigned g = GridSide(n);
  const CellGrid grid = BuildCellGrid(pts, g);
  const std::size_t cells = static_cast<std::size_t>(g) * g;
  const double cell_w = 1.0 / g;

  // Upper bound on p for a pair of cells depends only on the cell offset;
  // precompute exp(-d_min / scale) per (|dx|, |dy|).
  std::vector<double> offset_bound(cells);
  for (unsigned dy = 0; dy < g; ++dy) {
    for (unsigned dx = 0; dx < g; ++dx) {
      const double gx = dx > 1 ? (dx - 1) * cell_w : 0.0;
      const double gy = dy > 1 ? (dy - 1) * cell_w : 0.0;
      offset_bound[dy * g + dx] =
          params.alpha * std::exp(-std::hypot(gx, gy) / scale);
    }
  }

  // Parallel over row-chunks of the (ca <= cb) cell-pair triangle. Chunks
  // only append to their own edge vector; the vectors fold in chunk order,
  // and FromEdges canonicalizes, so output is thread-count invariant.
  const parallel::ChunkPlan plan = parallel::PlanChunks(cells, 1);
  std::vector<std::vector<graph::Edge>> chunk_edges(
      plan.chunks == 0 ? 0 : plan.chunks);
  parallel::ParallelFor(plan, [&](std::size_t chunk, std::size_t begin,
                                  std::size_t end) {
    std::vector<graph::Edge>& out = chunk_edges[chunk];
    for (std::size_t ca = begin; ca < end; ++ca) {
      const unsigned ay = static_cast<unsigned>(ca) / g;
      const unsigned ax = static_cast<unsigned>(ca) % g;
      for (std::size_t cb = ca; cb < cells; ++cb) {
        const unsigned by = static_cast<unsigned>(cb) / g;
        const unsigned bx = static_cast<unsigned>(cb) % g;
        const unsigned dx = bx > ax ? bx - ax : ax - bx;
        const unsigned dy = by - ay;  // cb >= ca implies by >= ay
        SampleCellPair(pts, grid, ca, cb, offset_bound[dy * g + dx],
                       params.alpha, scale, pair_seed, out);
      }
    }
  });

  std::size_t total = 0;
  for (const auto& v : chunk_edges) total += v.size();
  std::vector<graph::Edge> edges;
  edges.reserve(total);
  for (auto& v : chunk_edges) {
    edges.insert(edges.end(), v.begin(), v.end());
  }
  graph::Graph g_out = graph::Graph::FromEdges(n, std::move(edges));
  return RecordGenerated(span, params.keep_largest_component
                                   ? graph::LargestComponent(g_out).graph
                                   : std::move(g_out));
}

}  // namespace topogen::gen
