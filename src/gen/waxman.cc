#include "gen/waxman.h"

#include <cmath>

#include "gen/gen_obs.h"
#include "graph/components.h"

namespace topogen::gen {

graph::Graph Waxman(const WaxmanParams& params, graph::Rng& rng) {
  obs::Span span("gen.waxman", "gen");
  const graph::NodeId n = params.n;
  const std::vector<Point> pts = UniformPoints(n, rng);
  const double scale = params.beta * std::sqrt(2.0);  // beta * L, L = max dist

  graph::GraphBuilder b(n);
  for (graph::NodeId i = 0; i < n; ++i) {
    for (graph::NodeId j = i + 1; j < n; ++j) {
      const double p =
          params.alpha * std::exp(-Distance(pts[i], pts[j]) / scale);
      if (rng.NextBool(p)) b.AddEdge(i, j);
    }
  }
  graph::Graph g = std::move(b).Build();
  return RecordGenerated(span, params.keep_largest_component
                                   ? graph::LargestComponent(g).graph
                                   : std::move(g));
}

}  // namespace topogen::gen
