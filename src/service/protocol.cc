#include "service/protocol.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace topogen::service {

namespace {

bool KnownMetric(std::string_view name) {
  for (const std::string_view m : kMetricNames) {
    if (m == name) return true;
  }
  return false;
}

// Non-negative integer field; JSON numbers are doubles, so anything with
// a fractional part or beyond 2^53 is rejected rather than rounded.
bool AsU64(const obs::Json& v, std::uint64_t& out) {
  if (!v.is_number()) return false;
  const double d = v.AsDouble();
  if (d < 0 || d > 9007199254740992.0 || d != std::floor(d)) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

}  // namespace

ParseOutcome ParseRequest(std::string_view line) {
  ParseOutcome out;
  if (line.size() > kMaxRequestBytes) {
    out.error = "request line exceeds " + std::to_string(kMaxRequestBytes) +
                " bytes";
    return out;
  }
  const std::optional<obs::Json> doc = obs::Json::Parse(line);
  if (!doc.has_value()) {
    out.error = "request is not valid JSON";
    return out;
  }
  if (!doc->is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  if (const obs::Json* id = doc->Find("id"); id != nullptr && id->is_string()) {
    out.id = id->AsString();
  }

  Request req;
  req.id = out.id;
  for (const auto& [key, value] : doc->AsObject()) {
    if (key == "id") {
      if (!value.is_string()) {
        out.error = "'id' must be a string";
        return out;
      }
    } else if (key == "v") {
      std::uint64_t v = 0;
      if (!AsU64(value, v) || v == 0 ||
          v > static_cast<std::uint64_t>(kProtocolVersionMax)) {
        out.error = "'v' must be an integer in [1, " +
                    std::to_string(kProtocolVersionMax) + "]";
        return out;
      }
      req.version = static_cast<int>(v);
    } else if (key == "topology") {
      if (!value.is_string() || value.AsString().empty()) {
        out.error = "'topology' must be a non-empty string";
        return out;
      }
      req.topology = value.AsString();
    } else if (key == "metrics") {
      if (!value.is_array() || value.AsArray().empty()) {
        out.error = "'metrics' must be a non-empty array of names";
        return out;
      }
      for (const obs::Json& m : value.AsArray()) {
        if (!m.is_string() || !KnownMetric(m.AsString())) {
          out.error = "unknown metric '" +
                      (m.is_string() ? m.AsString() : std::string("?")) +
                      "' (want expansion|resilience|distortion|signature|"
                      "linkvalue)";
          return out;
        }
        if (!req.wants(m.AsString())) req.metrics.push_back(m.AsString());
      }
    } else if (key == "use_policy") {
      if (!value.is_bool()) {
        out.error = "'use_policy' must be a boolean";
        return out;
      }
      req.use_policy = value.AsBool();
    } else if (key == "inline") {
      if (!value.is_bool()) {
        out.error = "'inline' must be a boolean";
        return out;
      }
      req.inline_figures = value.AsBool();
    } else if (key == "scale") {
      if (!value.is_string() ||
          (value.AsString() != "small" && value.AsString() != "default" &&
           value.AsString() != "full")) {
        out.error = "'scale' must be small|default|full";
        return out;
      }
      req.scale = value.AsString();
    } else if (key == "seed") {
      if (!AsU64(value, req.seed) || req.seed == 0) {
        out.error = "'seed' must be a positive integer";
        return out;
      }
    } else if (key == "deadline_ms") {
      std::uint64_t ms = 0;
      if (!AsU64(value, ms) || ms == 0 || ms > 86400000) {
        out.error = "'deadline_ms' must be an integer in [1, 86400000]";
        return out;
      }
      req.deadline_ms = static_cast<std::int64_t>(ms);
    } else if (key == "as_nodes" || key == "plrg_nodes" ||
               key == "degree_based_nodes") {
      std::uint64_t n = 0;
      if (!AsU64(value, n) || n == 0) {
        out.error = "'" + key + "' must be a positive integer";
        return out;
      }
      if (n > kMaxRosterNodes) {
        out.error = "oversized roster: '" + key + "' = " + std::to_string(n) +
                    " exceeds the " + std::to_string(kMaxRosterNodes) +
                    "-node cap";
        return out;
      }
      (key == "as_nodes"
           ? req.as_nodes
           : key == "plrg_nodes" ? req.plrg_nodes : req.degree_based_nodes) =
          n;
    } else {
      out.error = "unknown request field '" + key + "'";
      return out;
    }
  }
  if (req.topology.empty()) {
    out.error = "request is missing 'topology'";
    return out;
  }
  if (req.metrics.empty()) {
    req.metrics = {"expansion", "resilience", "distortion", "signature"};
  }
  out.request = std::move(req);
  return out;
}

std::string SessionKey(const Request& request,
                       std::string_view default_scale) {
  std::string key;
  key += request.scale.empty() ? default_scale : std::string_view(request.scale);
  key += '|';
  key += std::to_string(request.seed);  // 0 = tier default, canonical as-is
  key += '|';
  key += std::to_string(request.as_nodes);
  key += '|';
  key += std::to_string(request.plrg_nodes);
  key += '|';
  key += std::to_string(request.degree_based_nodes);
  return key;
}

std::string StructuralKey(const Request& request,
                          std::string_view default_scale) {
  std::string key = SessionKey(request, default_scale);
  key += '|';
  key += request.topology;
  key += request.use_policy ? "|policy|" : "|plain|";
  key += request.inline_figures ? "inline|" : "paths|";
  // Canonical metric order: sorted, deduplicated (ParseRequest dedups).
  std::vector<std::string> sorted = request.metrics;
  std::sort(sorted.begin(), sorted.end());
  for (const std::string& m : sorted) {
    key += m;
    key += ',';
  }
  return key;
}

std::size_t LaneForKey(std::string_view structural_key, std::size_t lanes) {
  if (lanes <= 1) return 0;
  // Hash only the SessionKey prefix (everything up to and excluding the
  // fifth '|'), so requests against one roster configuration -- and
  // therefore one Session -- always land on the same lane, whatever
  // topology or metrics they ask for.
  std::size_t end = 0;
  int bars = 0;
  while (end < structural_key.size()) {
    if (structural_key[end] == '|' && ++bars == 5) break;
    ++end;
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (std::size_t i = 0; i < end; ++i) {
    h ^= static_cast<unsigned char>(structural_key[i]);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % lanes);
}

std::string ErrorResponse(std::string_view id, std::string_view code,
                          std::string_view message) {
  std::string out = "{\"id\":\"";
  out += obs::JsonEscape(id);
  out += "\",\"status\":\"error\",\"error\":{\"code\":\"";
  out += obs::JsonEscape(code);
  out += "\",\"message\":\"";
  out += obs::JsonEscape(message);
  out += "\"}}";
  return out;
}

std::string OverloadedResponse(std::string_view id, std::string_view message,
                               std::uint64_t retry_after_ms) {
  std::string out = "{\"id\":\"";
  out += obs::JsonEscape(id);
  out += "\",\"status\":\"error\",\"error\":{\"code\":\"overloaded\","
         "\"message\":\"";
  out += obs::JsonEscape(message);
  out += "\",\"retry_after_ms\":";
  out += std::to_string(retry_after_ms);
  out += "}}";
  return out;
}

void AppendSeries(std::string& out, const metrics::Series& series) {
  out += "{\"name\":\"";
  out += obs::JsonEscape(series.name);
  out += "\",\"x\":[";
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    if (i > 0) out += ',';
    out += obs::JsonNumber(series.x[i]);
  }
  out += "],\"y\":[";
  for (std::size_t i = 0; i < series.y.size(); ++i) {
    if (i > 0) out += ',';
    out += obs::JsonNumber(series.y[i]);
  }
  out += "]}";
}

ResponseBuilder::ResponseBuilder(std::string_view id) {
  head_ = "\"id\":\"";
  head_ += obs::JsonEscape(id);
  head_ += '"';
}

void ResponseBuilder::Comma(std::string& out) {
  if (!out.empty()) out += ',';
}

void ResponseBuilder::AddString(std::string_view key, std::string_view value) {
  head_ += ",\"";
  head_ += obs::JsonEscape(key);
  head_ += "\":\"";
  head_ += obs::JsonEscape(value);
  head_ += '"';
}

void ResponseBuilder::AddBool(std::string_view key, bool value) {
  head_ += ",\"";
  head_ += obs::JsonEscape(key);
  head_ += value ? "\":true" : "\":false";
}

void ResponseBuilder::AddU64(std::string_view key, std::uint64_t value) {
  head_ += ",\"";
  head_ += obs::JsonEscape(key);
  head_ += "\":";
  head_ += std::to_string(value);
}

void ResponseBuilder::AddFigure(std::string_view metric,
                                const metrics::Series& series) {
  Comma(figures_);
  figures_ += '"';
  figures_ += obs::JsonEscape(metric);
  figures_ += "\":";
  AppendSeries(figures_, series);
}

void ResponseBuilder::AddFigurePath(std::string_view metric,
                                    std::string_view path) {
  Comma(figures_);
  figures_ += '"';
  figures_ += obs::JsonEscape(metric);
  figures_ += "\":{\"path\":\"";
  figures_ += obs::JsonEscape(path);
  figures_ += "\"}";
}

void ResponseBuilder::AddSignature(std::string_view signature) {
  Comma(figures_);
  figures_ += "\"signature\":\"";
  figures_ += obs::JsonEscape(signature);
  figures_ += '"';
}

void ResponseBuilder::AddDegraded(const DegradedEntry& entry) {
  Comma(degraded_);
  degraded_ += "{\"kind\":\"";
  degraded_ += obs::JsonEscape(entry.kind);
  degraded_ += "\",\"id\":\"";
  degraded_ += obs::JsonEscape(entry.id);
  degraded_ += "\",\"code\":\"";
  degraded_ += obs::JsonEscape(entry.code);
  degraded_ += "\",\"fail_point\":\"";
  degraded_ += obs::JsonEscape(entry.fail_point);
  degraded_ += "\",\"attempts\":";
  degraded_ += std::to_string(entry.attempts);
  degraded_ += ",\"message\":\"";
  degraded_ += obs::JsonEscape(entry.message);
  degraded_ += "\"}";
}

std::string ResponseBuilder::Finish() && {
  std::string out = "{";
  out += head_;
  out += ",\"status\":\"";
  out += degraded_.empty() ? "ok" : "degraded";
  out += "\",\"figures\":{";
  out += figures_;
  out += "},\"degraded\":[";
  out += degraded_;
  out += "]}";
  return out;
}

std::string StreamChunkFrame(std::string_view id, std::uint64_t seq,
                             std::string_view metric,
                             const metrics::Series& series,
                             std::size_t begin, std::size_t end) {
  std::string out = "{\"v\":2,\"id\":\"";
  out += obs::JsonEscape(id);
  out += "\",\"seq\":";
  out += std::to_string(seq);
  out += ",\"more\":true,\"figure\":\"";
  out += obs::JsonEscape(metric);
  out += "\",\"name\":\"";
  out += obs::JsonEscape(series.name);
  out += "\",\"x\":[";
  for (std::size_t i = begin; i < end; ++i) {
    if (i > begin) out += ',';
    out += obs::JsonNumber(series.x[i]);
  }
  out += "],\"y\":[";
  for (std::size_t i = begin; i < end; ++i) {
    if (i > begin) out += ',';
    out += obs::JsonNumber(series.y[i]);
  }
  out += "]}";
  return out;
}

std::string StreamFinalFrame(std::uint64_t seq, const std::string& line) {
  // `line` is a complete /1 response object: splice the frame header in
  // after its opening brace so the body stays byte-identical to /1.
  std::string out = "{\"v\":2,\"seq\":";
  out += std::to_string(seq);
  out += ",\"more\":false,";
  out.append(line, 1, std::string::npos);
  return out;
}

}  // namespace topogen::service
