#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "obs/json.h"

namespace topogen::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<std::uint64_t>(left.count()) : 0;
}

// The error.code of a response line, or nullopt for non-error lines
// (success, degraded, or unparsable).
std::optional<std::string> ErrorCodeOf(std::string_view line) {
  const std::optional<obs::Json> doc = obs::Json::Parse(line);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;
  const obs::Json* error = doc->Find("error");
  if (error == nullptr || !error->is_object()) return std::nullopt;
  const obs::Json* code = error->Find("code");
  if (code == nullptr || !code->is_string()) return std::nullopt;
  return code->AsString();
}

}  // namespace

bool IsOverloadedError(std::string_view line) {
  return ErrorCodeOf(line) == std::optional<std::string>("overloaded");
}

std::uint64_t ParseRetryAfterMs(std::string_view line) {
  const std::optional<obs::Json> doc = obs::Json::Parse(line);
  if (!doc.has_value() || !doc->is_object()) return 0;
  const obs::Json* error = doc->Find("error");
  if (error == nullptr || !error->is_object()) return 0;
  const obs::Json* retry = error->Find("retry_after_ms");
  if (retry == nullptr || !retry->is_number()) return 0;
  const double d = retry->AsDouble();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

Client::Client(ClientOptions options)
    : options_(options), rng_(options.jitter_seed) {
  options_.max_attempts = std::max(options_.max_attempts, 1);
}

Client::~Client() { Disconnect(); }

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::EnsureConnected(std::uint64_t deadline_ms_from_now) {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  // Non-blocking connect so the op deadline applies to it too.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return false;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, static_cast<int>(std::min<std::uint64_t>(
                            deadline_ms_from_now, 1u << 30))) <= 0) {
      ::close(fd);
      return false;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      ::close(fd);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  buffer_.clear();
  return true;
}

bool Client::SendAll(std::string_view data,
                     std::uint64_t deadline_ms_from_now) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms_from_now);
  std::size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{fd_, POLLOUT, 0};
    const std::uint64_t left = RemainingMs(deadline);
    if (left == 0 || ::poll(&pfd, 1, static_cast<int>(left)) <= 0) {
      return false;
    }
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::RecvLine(std::string* line, std::uint64_t deadline_ms_from_now) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms_from_now);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const std::uint64_t left = RemainingMs(deadline);
    if (left == 0 || ::poll(&pfd, 1, static_cast<int>(left)) <= 0) {
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::uint64_t Client::BackoffMs(int attempt) {
  std::uint64_t cap = options_.backoff_initial_ms;
  for (int i = 0; i < attempt && cap < options_.backoff_max_ms; ++i) {
    cap *= 2;
  }
  cap = std::min(cap, options_.backoff_max_ms);
  // Full jitter (uniform in [0, cap]): shed clients spread out instead of
  // re-arriving as the synchronized wave that got them shed.
  return cap == 0 ? 0 : rng_.NextIndex(cap + 1);
}

ClientResult Client::Call(const std::string& request_line) {
  ClientResult result;
  std::string wire = request_line;
  wire += '\n';
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    result.attempts = attempt + 1;
    if (attempt > 0 && fd_ < 0) ++result.reconnects;
    if (!EnsureConnected(options_.op_timeout_ms)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs(attempt)));
      continue;
    }
    std::string line;
    if (!SendAll(wire, options_.op_timeout_ms) ||
        !RecvLine(&line, options_.op_timeout_ms)) {
      // Transport failure or timeout: the connection may still carry a
      // late response, so it is never reused.
      Disconnect();
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs(attempt)));
      continue;
    }
    if (IsOverloadedError(line)) {
      ++result.sheds;
      const std::uint64_t wait = ParseRetryAfterMs(line) + BackoffMs(attempt);
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    result.line = std::move(line);
    return result;
  }
  result.error = "no response after " + std::to_string(options_.max_attempts) +
                 " attempts (" + std::to_string(result.sheds) + " shed, " +
                 std::to_string(result.reconnects) + " reconnects)";
  return result;
}

}  // namespace topogen::service
