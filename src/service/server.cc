#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <list>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/scale.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "parallel/cancel.h"
#include "service/protocol.h"

namespace topogen::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedNs(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

// A waiter that dedup-attached while its job was already executing has
// admitted > started; its queue wait is zero, not a negative duration
// wrapped to ~1.8e19 ns.
std::uint64_t QueueWaitNs(Clock::time_point admitted,
                          Clock::time_point started) {
  return admitted < started ? ElapsedNs(admitted, started) : 0;
}

bool KnownTopology(std::string_view id) {
  for (const std::string_view known : core::Session::KnownIds()) {
    if (known == id) return true;
  }
  return false;
}

bool NeedsBasicMetrics(const Request& r) {
  return r.wants("expansion") || r.wants("resilience") ||
         r.wants("distortion") || r.wants("signature");
}

}  // namespace

struct Server::Impl {
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::thread reader;
  };

  struct Waiter {
    std::shared_ptr<Connection> conn;
    std::string id;
    Clock::time_point admitted;
    Clock::time_point deadline{};
    bool has_deadline = false;
  };

  struct Job {
    Request request;  // the first-admitted request; equals all waiters'
    std::string key;
    std::vector<Waiter> waiters;
  };

  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;
  std::string default_scale;

  int listen_fd = -1;
  int bound_port = 0;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Job>> queue;
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight;
  ServerStats stat;
  bool paused = false;
  bool stopping = false;
  bool started = false;
  std::uint64_t next_request_id = 0;

  std::thread acceptor;
  std::thread executor;

  std::mutex conn_mutex;
  std::vector<std::shared_ptr<Connection>> connections;

  // Executor-owned Sessions, one per roster configuration, LRU-capped.
  // sessions_mutex only guards the map shape (lookup/insert/evict), not
  // the Session calls themselves -- those stay on the executor thread.
  mutable std::mutex sessions_mutex;
  struct SessionEntry {
    std::string key;
    std::unique_ptr<core::Session> session;
  };
  std::list<SessionEntry> sessions;  // front = most recently used

  // --- response plumbing ---

  // Writes one response line. Returns false when the connection is gone.
  bool SendLine(const std::shared_ptr<Connection>& conn,
                const std::string& line) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd < 0) return false;
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(conn->fd, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void SendError(const std::shared_ptr<Connection>& conn, std::string_view id,
                 std::string_view code, std::string_view message) {
    obs::Event("request")
        .Str("op", "error")
        .Str("id", id)
        .Str("code", code)
        .Str("message", message);
    SendLine(conn, ErrorResponse(id, code, message));
  }

  // Respond to one waiter through the svc.respond seam. A fired throw
  // kind drops the response (the client sees a closed/stalled request); a
  // fired abort crashes the daemon mid-request with artifacts flushed,
  // which is what the crash-audit test replays.
  void Respond(const Waiter& waiter, const std::string& line,
               std::string_view status, Clock::time_point started) {
    bool sent = false;
    try {
      if (const auto injected = TOPOGEN_FAULT_HIT("svc.respond", waiter.id)) {
        if (injected->kind == fault::Kind::kAbort) {
          obs::FlushRunArtifacts();
          std::_Exit(fault::kCrashExitCode);
        }
        // Site-interpreted kinds other than abort have no write to
        // pervert here; treat them as a failed send.
      } else {
        sent = SendLine(waiter.conn, line);
      }
    } catch (const fault::InjectedFault&) {
      sent = false;
    }
    const Clock::time_point now = Clock::now();
    TOPOGEN_HIST_NS("service.request_ns", ElapsedNs(waiter.admitted, now));
    TOPOGEN_HIST_NS("service.queue_wait_ns",
                    QueueWaitNs(waiter.admitted, started));
    obs::Event("request")
        .Str("op", "done")
        .Str("id", waiter.id)
        .Str("status", status)
        .U64("queue_us", QueueWaitNs(waiter.admitted, started) / 1000)
        .U64("total_us", ElapsedNs(waiter.admitted, now) / 1000);
    std::lock_guard<std::mutex> lock(mutex);
    ++stat.responses;
    if (!sent) ++stat.response_errors;
  }

  // --- admission (reader threads) ---

  void Admit(const std::shared_ptr<Connection>& conn, Request&& request) {
    const Clock::time_point now = Clock::now();
    if (!KnownTopology(request.topology)) {
      SendError(conn, request.id, "invalid_argument",
                "unknown topology '" + request.topology + "'");
      return;
    }
    if (!request.inline_figures && !obs::Env::Get().cache_enabled()) {
      SendError(conn, request.id, "invalid_argument",
                "figures by path require TOPOGEN_CACHE_DIR on the server");
      return;
    }
    if (request.use_policy &&
        (request.topology != "AS" && request.topology != "RL" &&
         request.topology != "RL.core")) {
      SendError(conn, request.id, "invalid_argument",
                "use_policy requires a policy-annotated topology "
                "(AS, RL, RL.core)");
      return;
    }

    Waiter waiter;
    waiter.conn = conn;
    waiter.admitted = now;
    if (request.deadline_ms > 0) {
      waiter.has_deadline = true;
      waiter.deadline = now + std::chrono::milliseconds(request.deadline_ms);
    }
    const std::string key = StructuralKey(request, default_scale);

    enum class Verdict { kAdmitted, kDraining, kQueueFull };
    Verdict verdict = Verdict::kAdmitted;
    bool deduped = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (request.id.empty()) {
        request.id = "r" + std::to_string(++next_request_id);
      }
      waiter.id = request.id;
      if (stopping) {
        verdict = Verdict::kDraining;
      } else if (auto it = inflight.find(key); it != inflight.end()) {
        it->second->waiters.push_back(waiter);
        ++stat.admitted;
        ++stat.deduped;
        deduped = true;
      } else if (queue.size() >= options.queue_limit) {
        ++stat.rejected_queue_full;
        verdict = Verdict::kQueueFull;
      } else {
        auto job = std::make_shared<Job>();
        job->key = key;
        job->request = std::move(request);
        job->waiters.push_back(waiter);
        inflight.emplace(job->key, job);
        queue.push_back(std::move(job));
        ++stat.admitted;
      }
    }
    if (verdict == Verdict::kDraining) {
      SendError(conn, waiter.id, "draining",
                "server is shutting down; request not admitted");
      return;
    }
    if (verdict == Verdict::kQueueFull) {
      SendError(conn, waiter.id, "queue_full",
                "admission queue is full (" +
                    std::to_string(options.queue_limit) + " requests)");
      return;
    }
    TOPOGEN_COUNT("service.requests");
    if (deduped) TOPOGEN_COUNT("service.dedup_inflight");
    obs::Event("request")
        .Str("op", "admit")
        .Str("id", waiter.id)
        .Str("key", key)
        .Str("dedup", deduped ? "1" : "0");
    cv.notify_all();
  }

  // --- execution (the executor thread) ---

  core::Session& SessionFor(const Request& request) {
    const std::string_view scale =
        request.scale.empty() ? std::string_view(default_scale)
                              : std::string_view(request.scale);
    std::string key(scale);
    key += '|';
    key += std::to_string(request.seed);
    key += '|';
    key += std::to_string(request.as_nodes);
    key += '|';
    key += std::to_string(request.plrg_nodes);
    key += '|';
    key += std::to_string(request.degree_based_nodes);

    std::lock_guard<std::mutex> lock(sessions_mutex);
    for (auto it = sessions.begin(); it != sessions.end(); ++it) {
      if (it->key == key) {
        sessions.splice(sessions.begin(), sessions, it);
        return *sessions.front().session;
      }
    }
    core::SessionOptions so = core::ScaledSessionOptions(scale);
    // The daemon serves many configurations from one process; per-run
    // journals would fight over one file, so resume stays a batch-mode
    // feature (docs/SERVICE.md).
    so.journal_path.clear();
    if (request.seed != 0) so.roster.seed = request.seed;
    if (request.as_nodes != 0) {
      so.roster.as_nodes = static_cast<graph::NodeId>(request.as_nodes);
    }
    if (request.plrg_nodes != 0) {
      so.roster.plrg_nodes = static_cast<graph::NodeId>(request.plrg_nodes);
    }
    if (request.degree_based_nodes != 0) {
      so.roster.degree_based_nodes =
          static_cast<graph::NodeId>(request.degree_based_nodes);
    }
    sessions.push_front(
        {std::move(key), std::make_unique<core::Session>(so)});
    while (sessions.size() > options.max_sessions) sessions.pop_back();
    return *sessions.front().session;
  }

  void ExecuteJob(const std::shared_ptr<Job>& job) {
    const Clock::time_point started = Clock::now();

    // Expired-in-queue waiters degrade without costing any computation.
    std::vector<Waiter> expired;
    bool compute = false;
    bool all_deadlined = true;
    Clock::time_point latest_deadline{};
    {
      std::lock_guard<std::mutex> lock(mutex);
      auto& ws = job->waiters;
      for (auto it = ws.begin(); it != ws.end();) {
        if (it->has_deadline && it->deadline <= started) {
          expired.push_back(std::move(*it));
          it = ws.erase(it);
          continue;
        }
        if (!it->has_deadline) {
          all_deadlined = false;
        } else if (it->deadline > latest_deadline) {
          latest_deadline = it->deadline;
        }
        ++it;
      }
      compute = !ws.empty();
      // A fully-expired job must retire under the same lock that decided
      // compute: erasing after the unlocked sends below leaves a window
      // where an identical request dedup-attaches to a job that will
      // never run, and its waiter is never answered.
      if (!compute) inflight.erase(job->key);
    }
    for (const Waiter& w : expired) {
      ResponseBuilder rb(w.id);
      rb.AddString("topology", job->request.topology);
      rb.AddDegraded({"request", w.id, "cancelled", "", 0,
                      "deadline expired while queued"});
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.completed;
      }
      Respond(w, std::move(rb).Finish(), "degraded", started);
    }
    if (!compute) return;

    // Shared computation under the waiters' collective budget: the token
    // only carries a deadline when every live waiter has one (a single
    // no-deadline waiter is entitled to the full result).
    std::optional<parallel::CancelToken> token;
    if (all_deadlined) {
      token.emplace(latest_deadline);
    } else {
      token.emplace();
    }
    const Request& req = job->request;

    const core::BasicMetrics* basic = nullptr;
    const hierarchy::LinkValueResult* linkvalue = nullptr;
    std::vector<DegradedEntry> degraded;
    bool cached = false;
    std::string internal_error;
    core::Session* session = nullptr;
    try {
      session = &SessionFor(req);
      const std::size_t degraded_before = session->degraded().size();
      const core::CacheStats before = session->cache_stats();
      {
        const parallel::CancelScope scope(&*token);
        if (NeedsBasicMetrics(req)) {
          basic = session->TryMetrics(req.topology, req.use_policy);
        }
        if (req.wants("linkvalue")) {
          linkvalue = session->TryLinkValues(req.topology, req.use_policy);
        }
      }
      const core::CacheStats after = session->cache_stats();
      cached = (after.topology_misses == before.topology_misses &&
                after.metrics_misses == before.metrics_misses &&
                after.linkvalue_misses == before.linkvalue_misses);
      for (std::size_t i = degraded_before; i < session->degraded().size();
           ++i) {
        const core::DegradedSlot& slot = session->degraded()[i];
        degraded.push_back({slot.kind, slot.id,
                            fault::ErrorCodeName(slot.error.code),
                            slot.error.fail_point, slot.error.attempts,
                            slot.error.message});
      }
    } catch (const std::exception& e) {
      internal_error = e.what();
    }

    // One payload per waiter (ids differ), one computation for all. The
    // completed count is bumped before the sends so a client that has
    // read its response always observes it.
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(mutex);
      waiters = std::move(job->waiters);
      job->waiters.clear();
      inflight.erase(job->key);
      stat.completed += waiters.size();
    }
    for (const Waiter& w : waiters) {
      if (!internal_error.empty()) {
        obs::Event("request")
            .Str("op", "error")
            .Str("id", w.id)
            .Str("code", "internal")
            .Str("message", internal_error);
        SendLine(w.conn, ErrorResponse(w.id, "internal", internal_error));
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.responses;
        continue;
      }
      ResponseBuilder rb(w.id);
      rb.AddString("topology", req.topology);
      rb.AddString("key", job->key);
      rb.AddBool("cached", cached);
      rb.AddU64("queue_us", QueueWaitNs(w.admitted, started) / 1000);
      rb.AddU64("elapsed_us", ElapsedNs(started, Clock::now()) / 1000);
      if (basic != nullptr) {
        if (req.inline_figures) {
          if (req.wants("expansion")) rb.AddFigure("expansion", basic->expansion);
          if (req.wants("resilience")) {
            rb.AddFigure("resilience", basic->resilience);
          }
          if (req.wants("distortion")) {
            rb.AddFigure("distortion", basic->distortion);
          }
        } else {
          const std::string path =
              session->MetricsArtifactPath(req.topology, req.use_policy);
          for (const char* m : {"expansion", "resilience", "distortion"}) {
            if (req.wants(m)) rb.AddFigurePath(m, path);
          }
        }
        if (req.wants("signature")) {
          rb.AddSignature(basic->signature.ToString());
        }
      }
      if (linkvalue != nullptr) {
        if (req.inline_figures) {
          rb.AddFigure("linkvalue", linkvalue->RankDistribution());
        } else {
          rb.AddFigurePath("linkvalue", session->LinkValueArtifactPath(
                                            req.topology, req.use_policy));
        }
      }
      for (const DegradedEntry& d : degraded) rb.AddDegraded(d);
      const std::string_view status = degraded.empty() ? "ok" : "degraded";
      Respond(w, std::move(rb).Finish(), status, started);
    }
  }

  void ExecutorLoop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          return stopping || (!paused && !queue.empty());
        });
        if (queue.empty() && stopping) return;
        if (queue.empty()) continue;
        job = queue.front();
        queue.pop_front();
      }
      ExecuteJob(job);
    }
  }

  // --- connection handling ---

  void ReaderLoop(const std::shared_ptr<Connection>& conn) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string_view line(buffer.data() + start, nl - start);
        if (!line.empty()) HandleLine(conn, line);
        start = nl + 1;
      }
      buffer.erase(0, start);
      if (buffer.size() > kMaxRequestBytes) {
        SendError(conn, "", "invalid_argument",
                  "request line exceeds " + std::to_string(kMaxRequestBytes) +
                      " bytes; closing");
        break;
      }
    }
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }

  void HandleLine(const std::shared_ptr<Connection>& conn,
                  std::string_view line) {
    ParseOutcome parsed;
    try {
      TOPOGEN_FAULT_POINT_D("svc.parse", line.substr(0, 64));
      parsed = ParseRequest(line);
    } catch (const fault::InjectedFault& e) {
      std::lock_guard<std::mutex> lock(mutex);
      ++stat.parse_errors;
      parsed.error = e.what();
    }
    if (!parsed.request.has_value()) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.parse_errors;
      }
      SendError(conn, parsed.id, "invalid_argument",
                parsed.error.empty() ? "unparseable request" : parsed.error);
      return;
    }
    Admit(conn, std::move(*parsed.request));
  }

  // Reap connections whose reader has finished (fd already closed), so a
  // long-running daemon does not accumulate exited-but-joinable reader
  // threads and their Connection objects until Stop(). Waiters still in
  // flight hold their own shared_ptr, so a reaped Connection stays valid
  // for any pending (and failing) response writes.
  void SweepConnections() {
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      for (auto it = connections.begin(); it != connections.end();) {
        bool closed = false;
        {
          std::lock_guard<std::mutex> write_lock((*it)->write_mutex);
          closed = (*it)->fd < 0;
        }
        if (closed) {
          dead.push_back(std::move(*it));
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Closing the fd is the reader's final act, so these joins are
    // near-instant.
    for (const auto& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
    }
  }

  void AcceptorLoop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping) return;
      }
      SweepConnections();
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;
      sockaddr_in peer{};
      socklen_t peer_len = sizeof(peer);
      const int fd =
          ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (fd < 0) continue;
      try {
        char addr[64] = "?";
        ::inet_ntop(AF_INET, &peer.sin_addr, addr, sizeof(addr));
        TOPOGEN_FAULT_POINT_D("svc.accept", addr);
      } catch (const fault::InjectedFault&) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.connections;
      }
      TOPOGEN_COUNT("service.connections");
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
      std::lock_guard<std::mutex> lock(conn_mutex);
      connections.push_back(std::move(conn));
    }
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { Stop(); }

void Server::Start() {
  Impl& s = *impl_;
  s.default_scale = obs::Env::Get().scale();
  s.paused = s.options.start_paused;

  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) throw std::runtime_error("service: socket() failed");
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(s.options.port));
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw std::runtime_error("service: cannot bind 127.0.0.1:" +
                             std::to_string(s.options.port));
  }
  if (::listen(s.listen_fd, 64) < 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw std::runtime_error("service: listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  s.bound_port = ntohs(addr.sin_port);

  s.started = true;
  s.acceptor = std::thread([this] { impl_->AcceptorLoop(); });
  s.executor = std::thread([this] { impl_->ExecutorLoop(); });
  obs::Event("service").Str("op", "start").U64(
      "port", static_cast<std::uint64_t>(s.bound_port));
}

int Server::port() const { return impl_->bound_port; }

void Server::Stop() {
  Impl& s = *impl_;
  if (!s.started) return;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.stopping) {
      // Second Stop(): everything below already ran.
      return;
    }
    s.stopping = true;
    s.paused = false;
  }
  s.cv.notify_all();
  if (s.acceptor.joinable()) s.acceptor.join();
  // The executor drains the queue before exiting, so every admitted
  // request is answered.
  if (s.executor.joinable()) s.executor.join();
  if (s.listen_fd >= 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
  }
  std::vector<std::shared_ptr<Impl::Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(s.conn_mutex);
    conns.swap(s.connections);
  }
  for (const auto& conn : conns) {
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (conn->reader.joinable()) conn->reader.join();
  }
  obs::Event("service").Str("op", "stop");
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stat;
}

core::CacheStats Server::SessionCacheStats() const {
  core::CacheStats total;
  std::lock_guard<std::mutex> lock(impl_->sessions_mutex);
  for (const auto& entry : impl_->sessions) {
    const core::CacheStats& s = entry.session->cache_stats();
    total.topology_hits += s.topology_hits;
    total.topology_misses += s.topology_misses;
    total.metrics_hits += s.metrics_hits;
    total.metrics_misses += s.metrics_misses;
    total.linkvalue_hits += s.linkvalue_hits;
    total.linkvalue_misses += s.linkvalue_misses;
    total.journal_skips += s.journal_skips;
  }
  return total;
}

std::size_t Server::QueueDepthForTesting() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->queue.size();
}

std::size_t Server::LiveConnectionCountForTesting() const {
  std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  return impl_->connections.size();
}

void Server::ResumeExecutor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->paused = false;
  }
  impl_->cv.notify_all();
}

}  // namespace topogen::service
