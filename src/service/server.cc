#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/memory_budget.h"
#include "core/scale.h"
#include "core/session_pool.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "parallel/cancel.h"
#include "service/overload.h"
#include "service/protocol.h"

namespace topogen::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedNs(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

// A waiter that dedup-attached while its job was already executing has
// admitted > started; its queue wait is zero, not a negative duration
// wrapped to ~1.8e19 ns.
std::uint64_t QueueWaitNs(Clock::time_point admitted,
                          Clock::time_point started) {
  return admitted < started ? ElapsedNs(admitted, started) : 0;
}

bool KnownTopology(std::string_view id) {
  for (const std::string_view known : core::Session::KnownIds()) {
    if (known == id) return true;
  }
  return false;
}

bool NeedsBasicMetrics(const Request& r) {
  return r.wants("expansion") || r.wants("resilience") ||
         r.wants("distortion") || r.wants("signature");
}

std::uint64_t NowNs(Clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

// The obs::Env accessors silently substitute the default for a set-but-
// out-of-range variable; make that substitution observable (the silent
// clamp bit an operator who set TOPOGEN_SERVICE_EXECUTORS=0 and got two
// lanes without a word). Re-reads the raw environment because Env
// deliberately does not retain rejected values.
void NoteIfClamped(const char* var, long long used) {
  const char* raw = std::getenv(var);
  if (raw == nullptr || *raw == '\0') return;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end != raw && *end == '\0' && parsed == used) return;
  TOPOGEN_COUNT("service.config_clamped");
  obs::Event("config_clamped")
      .Str("var", var)
      .Str("raw", raw)
      .I64("used", used);
  std::fprintf(stderr,
               "# service: %s='%s' is out of range or unparsable; "
               "using %lld\n",
               var, raw, used);
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  const obs::Env& env = obs::Env::Get();
  ServerOptions o;
  o.port = env.service_port();
  o.queue_limit = static_cast<std::size_t>(env.service_queue());
  o.executors = static_cast<std::size_t>(env.service_executors());
  o.max_sessions = static_cast<std::size_t>(env.service_max_sessions());
  o.inflight_cap = static_cast<std::size_t>(env.service_inflight());
  o.target_ms = static_cast<std::uint64_t>(env.service_target_ms());
  o.stall_ms = static_cast<std::uint64_t>(env.service_stall_ms());
  NoteIfClamped("TOPOGEN_SERVICE_PORT", o.port);
  NoteIfClamped("TOPOGEN_SERVICE_QUEUE",
                static_cast<long long>(o.queue_limit));
  NoteIfClamped("TOPOGEN_SERVICE_EXECUTORS",
                static_cast<long long>(o.executors));
  NoteIfClamped("TOPOGEN_SERVICE_MAX_SESSIONS",
                static_cast<long long>(o.max_sessions));
  NoteIfClamped("TOPOGEN_SERVICE_INFLIGHT",
                static_cast<long long>(o.inflight_cap));
  NoteIfClamped("TOPOGEN_SERVICE_TARGET_MS",
                static_cast<long long>(o.target_ms));
  NoteIfClamped("TOPOGEN_SERVICE_STALL_MS",
                static_cast<long long>(o.stall_ms));
  return o;
}

struct Server::Impl {
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::thread reader;
    // Protocol version, fixed by the first parsed request (0 = not yet
    // negotiated). Touched only by this connection's reader thread;
    // waiters snapshot it at admission.
    int version = 0;
    // Admitted-but-unanswered requests on this connection, guarded by
    // Impl::mutex (not write_mutex): the in-flight cap's ledger.
    std::size_t inflight_requests = 0;
  };

  struct Waiter {
    std::shared_ptr<Connection> conn;
    std::string id;
    int version = 1;
    Clock::time_point admitted;
    Clock::time_point deadline{};
    bool has_deadline = false;
  };

  struct Job {
    Request request;  // the first-admitted request; equals all waiters'
    std::string key;
    std::size_t lane = 0;
    Clock::time_point enqueued;  // queue-sojourn anchor for shedding
    std::vector<Waiter> waiters;
  };

  explicit Impl(ServerOptions opts) : options(std::move(opts)) {
    options.executors = std::max<std::size_t>(options.executors, 1);
    options.inflight_cap = std::max<std::size_t>(options.inflight_cap, 1);
    if (options.stream_chunk_points == 0) {
      options.stream_chunk_points = kDefaultStreamChunkPoints;
    }
    queues.resize(options.executors);
    lane_jobs.assign(options.executors, 0);
    OverloadOptions oo;
    oo.target_ns = options.target_ms * 1'000'000;
    oo.interval_ns = options.overload_interval_ms * 1'000'000;
    overload.assign(options.executors, LaneOverload(oo));
    lane_busy.assign(options.executors, false);
    lane_busy_since.assign(options.executors, Clock::time_point{});
    session_pools.reserve(options.executors);
    for (std::size_t i = 0; i < options.executors; ++i) {
      session_pools.push_back(
          std::make_unique<core::SessionPool>(options.max_sessions));
    }
  }

  ServerOptions options;
  std::string default_scale;

  int listen_fd = -1;
  int bound_port = 0;

  mutable std::mutex mutex;
  std::condition_variable cv;
  // One FIFO per executor lane, filled by LaneForKey affinity; the
  // admission budget (options.queue_limit) is shared across lanes via
  // queued_total. inflight spans all lanes -- affinity sends equal keys
  // to one lane, so dedup attach still finds its job.
  std::vector<std::deque<std::shared_ptr<Job>>> queues;
  std::size_t queued_total = 0;
  std::vector<std::uint64_t> lane_jobs;  // executed jobs per lane
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight;
  // Per-lane shedding state plus the watchdog's progress ledger: when a
  // lane is mid-job, lane_busy_since marks the dequeue. All guarded by
  // `mutex`.
  std::vector<LaneOverload> overload;
  std::vector<bool> lane_busy;
  std::vector<Clock::time_point> lane_busy_since;
  ServerStats stat;
  bool paused = false;
  bool stopping = false;
  bool started = false;
  std::uint64_t next_request_id = 0;

  std::thread acceptor;
  std::thread watchdog;
  std::vector<std::thread> executors;

  std::mutex conn_mutex;
  std::vector<std::shared_ptr<Connection>> connections;

  // One SessionPool per lane: affinity guarantees a lane's pool is only
  // ever Acquired by its own executor thread.
  std::vector<std::unique_ptr<core::SessionPool>> session_pools;

  // Caller must hold `mutex`. Mirrors a lane's queue depth into its
  // gauge so operators can see a hot lane backing up.
  void RecordQueueDepth(std::size_t lane) {
    if (!obs::AnyEnabled()) return;
    obs::Stats::GetGauge("service.queue_depth.e" + std::to_string(lane))
        .Set(static_cast<std::int64_t>(queues[lane].size()));
  }

  // --- response plumbing ---

  // Writes one response line. Returns false when the connection is gone.
  // The svc.sock.write seam perverts the write under chaos: short = a
  // prefix of the framed line then a hard shutdown (the client sees a
  // torn line -- a prefix of correct bytes, never wrong ones -- then
  // EOF), reset = shutdown before any byte, stall = the send is held for
  // delay_ms with the write lock taken, exactly like a wedged peer.
  // Shutdown (not close) so the reader thread's blocking recv wakes and
  // retires the fd through its normal path.
  bool SendLine(const std::shared_ptr<Connection>& conn,
                const std::string& line) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd < 0) return false;
    std::string framed = line;
    framed += '\n';
    try {
      if (const auto injected =
              TOPOGEN_FAULT_HIT("svc.sock.write", line.substr(0, 64))) {
        switch (injected->kind) {
          case fault::Kind::kReset:
            ::shutdown(conn->fd, SHUT_RDWR);
            return false;
          case fault::Kind::kShortWrite: {
            const std::size_t torn = framed.size() / 2;
            if (torn > 0) {
              ::send(conn->fd, framed.data(), torn, MSG_NOSIGNAL);
            }
            ::shutdown(conn->fd, SHUT_RDWR);
            return false;
          }
          case fault::Kind::kStall:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(injected->delay_ms));
            break;  // then write normally
          default:
            return false;  // nothing else to pervert: a failed send
        }
      }
    } catch (const fault::InjectedFault&) {
      return false;
    }
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(conn->fd, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Renders an error for the given protocol version: /1 clients get the
  // bare error line, /2 clients a single more:false frame wrapping it.
  std::string RenderError(int version, std::string_view id,
                          std::string_view code, std::string_view message) {
    std::string line = ErrorResponse(id, code, message);
    if (version >= 2) line = StreamFinalFrame(0, line);
    return line;
  }

  void SendError(const std::shared_ptr<Connection>& conn, int version,
                 std::string_view id, std::string_view code,
                 std::string_view message) {
    obs::Event("request")
        .Str("op", "error")
        .Str("id", id)
        .Str("code", code)
        .Str("message", message);
    SendLine(conn, RenderError(version, id, code, message));
  }

  // The shedding rejection: code "overloaded" with the retry_after_ms
  // backoff hint inside the error object (docs/ROBUSTNESS.md).
  void SendOverloaded(const std::shared_ptr<Connection>& conn, int version,
                      std::string_view id, std::string_view message,
                      std::uint64_t retry_after_ms) {
    TOPOGEN_COUNT("service.shed");
    obs::Event("request")
        .Str("op", "shed")
        .Str("id", id)
        .Str("code", "overloaded")
        .U64("retry_after_ms", retry_after_ms);
    std::string line = OverloadedResponse(id, message, retry_after_ms);
    if (version >= 2) line = StreamFinalFrame(0, line);
    SendLine(conn, line);
  }

  // Respond to one waiter through the svc.respond seam: every frame of
  // one response in order, stopping at the first failed write (a client
  // that disconnected mid-stream costs the lane nothing but the remaining
  // sends' early returns). A fired throw kind drops the whole response
  // (the client sees a closed/stalled request); a fired abort crashes the
  // daemon mid-request with artifacts flushed, which is what the
  // crash-audit test replays.
  void Respond(const Waiter& waiter, const std::vector<std::string>& frames,
               std::string_view status, Clock::time_point started) {
    bool sent = false;
    try {
      if (const auto injected = TOPOGEN_FAULT_HIT("svc.respond", waiter.id)) {
        if (injected->kind == fault::Kind::kAbort) {
          obs::FlushRunArtifacts();
          std::_Exit(fault::kCrashExitCode);
        }
        // Site-interpreted kinds other than abort have no write to
        // pervert here; treat them as a failed send.
      } else {
        sent = true;
        for (const std::string& frame : frames) {
          if (!SendLine(waiter.conn, frame)) {
            sent = false;
            break;
          }
        }
      }
    } catch (const fault::InjectedFault&) {
      sent = false;
    }
    const Clock::time_point now = Clock::now();
    TOPOGEN_HIST_NS("service.request_ns", ElapsedNs(waiter.admitted, now));
    TOPOGEN_HIST_NS("service.queue_wait_ns",
                    QueueWaitNs(waiter.admitted, started));
    obs::Event("request")
        .Str("op", "done")
        .Str("id", waiter.id)
        .Str("status", status)
        .U64("queue_us", QueueWaitNs(waiter.admitted, started) / 1000)
        .U64("total_us", ElapsedNs(waiter.admitted, now) / 1000);
    std::lock_guard<std::mutex> lock(mutex);
    ++stat.responses;
    if (!sent) ++stat.response_errors;
    if (waiter.conn->inflight_requests > 0) --waiter.conn->inflight_requests;
  }

  // --- admission (reader threads) ---

  void Admit(const std::shared_ptr<Connection>& conn, Request&& request) {
    const Clock::time_point now = Clock::now();
    if (!KnownTopology(request.topology)) {
      SendError(conn, request.version, request.id, "invalid_argument",
                "unknown topology '" + request.topology + "'");
      return;
    }
    if (!request.inline_figures && !obs::Env::Get().cache_enabled()) {
      SendError(conn, request.version, request.id, "invalid_argument",
                "figures by path require TOPOGEN_CACHE_DIR on the server");
      return;
    }
    if (request.use_policy &&
        (request.topology != "AS" && request.topology != "RL" &&
         request.topology != "RL.core")) {
      SendError(conn, request.version, request.id, "invalid_argument",
                "use_policy requires a policy-annotated topology "
                "(AS, RL, RL.core)");
      return;
    }

    Waiter waiter;
    waiter.conn = conn;
    waiter.version = request.version;
    waiter.admitted = now;
    if (request.deadline_ms > 0) {
      waiter.has_deadline = true;
      waiter.deadline = now + std::chrono::milliseconds(request.deadline_ms);
    }
    const std::string key = StructuralKey(request, default_scale);
    const std::size_t lane = LaneForKey(key, options.executors);

    enum class Verdict {
      kAdmitted,
      kDraining,
      kQueueFull,
      kOverloaded,
      kInflightCap
    };
    Verdict verdict = Verdict::kAdmitted;
    bool deduped = false;
    std::uint64_t retry_after_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (request.id.empty()) {
        request.id = "r" + std::to_string(++next_request_id);
      }
      waiter.id = request.id;
      if (stopping) {
        verdict = Verdict::kDraining;
      } else if (conn->inflight_requests >= options.inflight_cap) {
        ++stat.rejected_inflight_cap;
        verdict = Verdict::kInflightCap;
        retry_after_ms = overload[lane].RetryAfterMs(queues[lane].size());
      } else if (auto it = inflight.find(key); it != inflight.end()) {
        // Dedup attach is allowed even while the lane is shedding: the
        // computation is already paid for, so the attach adds no work.
        it->second->waiters.push_back(waiter);
        ++conn->inflight_requests;
        ++stat.admitted;
        ++stat.deduped;
        deduped = true;
      } else if (overload[lane].ShouldShed(queues[lane].size())) {
        ++stat.rejected_overloaded;
        verdict = Verdict::kOverloaded;
        retry_after_ms = overload[lane].RetryAfterMs(queues[lane].size());
      } else if (queued_total >= options.queue_limit) {
        ++stat.rejected_queue_full;
        verdict = Verdict::kQueueFull;
      } else {
        auto job = std::make_shared<Job>();
        job->key = key;
        job->lane = lane;
        job->enqueued = now;
        job->request = std::move(request);
        job->waiters.push_back(waiter);
        inflight.emplace(job->key, job);
        queues[lane].push_back(std::move(job));
        ++queued_total;
        ++conn->inflight_requests;
        RecordQueueDepth(lane);
        ++stat.admitted;
      }
    }
    if (verdict == Verdict::kDraining) {
      SendError(conn, waiter.version, waiter.id, "draining",
                "server is shutting down; request not admitted");
      return;
    }
    if (verdict == Verdict::kInflightCap) {
      SendOverloaded(conn, waiter.version, waiter.id,
                     "connection already has " +
                         std::to_string(options.inflight_cap) +
                         " requests in flight",
                     retry_after_ms);
      return;
    }
    if (verdict == Verdict::kOverloaded) {
      SendOverloaded(conn, waiter.version, waiter.id,
                     "lane " + std::to_string(lane) +
                         " is shedding load; retry after the backoff",
                     retry_after_ms);
      return;
    }
    if (verdict == Verdict::kQueueFull) {
      SendError(conn, waiter.version, waiter.id, "queue_full",
                "admission queue is full (" +
                    std::to_string(options.queue_limit) + " requests)");
      return;
    }
    TOPOGEN_COUNT("service.requests");
    if (deduped) TOPOGEN_COUNT("service.dedup_inflight");
    obs::Event("request")
        .Str("op", "admit")
        .Str("id", waiter.id)
        .Str("key", key)
        .U64("lane", static_cast<std::uint64_t>(lane))
        .Str("dedup", deduped ? "1" : "0");
    cv.notify_all();
  }

  // --- execution (executor threads) ---

  // `mem_degrade` swaps in a sampled-estimator Session (metrics/sample.h)
  // when the memory budget is under pressure: the pool key gains a "|mem"
  // suffix so the degraded Session never masquerades as -- or poisons the
  // caches of -- the exhaustive one.
  core::Session& SessionFor(const Request& request, std::size_t lane,
                            bool mem_degrade) {
    std::string key = service::SessionKey(request, default_scale);
    if (mem_degrade) key += "|mem";
    return session_pools[lane]->Acquire(key, [&]() {
      const std::string_view scale =
          request.scale.empty() ? std::string_view(default_scale)
                                : std::string_view(request.scale);
      core::SessionOptions so = core::ScaledSessionOptions(scale);
      // The daemon serves many configurations from one process; per-run
      // journals would fight over one file, so resume stays a batch-mode
      // feature (docs/SERVICE.md).
      so.journal_path.clear();
      if (request.seed != 0) so.roster.seed = request.seed;
      if (request.as_nodes != 0) {
        so.roster.as_nodes = static_cast<graph::NodeId>(request.as_nodes);
      }
      if (request.plrg_nodes != 0) {
        so.roster.plrg_nodes = static_cast<graph::NodeId>(request.plrg_nodes);
      }
      if (request.degree_based_nodes != 0) {
        so.roster.degree_based_nodes =
            static_cast<graph::NodeId>(request.degree_based_nodes);
      }
      if (mem_degrade && !so.suite.sample.active()) {
        // The xl tier's estimator spec (core/scale.cc): 64 sampled
        // centers, a 200k-node expansion budget. Tiers that already run
        // sampled keep their own spec.
        so.suite.sample.centers = 64;
        so.suite.sample.seed = 3;
        so.suite.sample.expansion_budget = 200000;
      }
      return std::make_unique<core::Session>(so);
    });
  }

  void ExecuteJob(const std::shared_ptr<Job>& job, std::size_t lane) {
    const Clock::time_point started = Clock::now();

    // Expired-in-queue waiters degrade without costing any computation.
    std::vector<Waiter> expired;
    bool compute = false;
    bool all_deadlined = true;
    Clock::time_point latest_deadline{};
    {
      std::lock_guard<std::mutex> lock(mutex);
      auto& ws = job->waiters;
      for (auto it = ws.begin(); it != ws.end();) {
        if (it->has_deadline && it->deadline <= started) {
          expired.push_back(std::move(*it));
          it = ws.erase(it);
          continue;
        }
        if (!it->has_deadline) {
          all_deadlined = false;
        } else if (it->deadline > latest_deadline) {
          latest_deadline = it->deadline;
        }
        ++it;
      }
      compute = !ws.empty();
      // A fully-expired job must retire under the same lock that decided
      // compute: erasing after the unlocked sends below leaves a window
      // where an identical request dedup-attaches to a job that will
      // never run, and its waiter is never answered.
      if (!compute) inflight.erase(job->key);
    }
    for (const Waiter& w : expired) {
      ResponseBuilder rb(w.id);
      rb.AddString("topology", job->request.topology);
      rb.AddDegraded({"request", w.id, "cancelled", "", 0,
                      "deadline expired while queued"});
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.completed;
      }
      std::string line = std::move(rb).Finish();
      if (w.version >= 2) line = StreamFinalFrame(0, line);
      Respond(w, {std::move(line)}, "degraded", started);
    }
    if (!compute) return;

    // Shared computation under the waiters' collective budget: the token
    // only carries a deadline when every live waiter has one (a single
    // no-deadline waiter is entitled to the full result).
    std::optional<parallel::CancelToken> token;
    if (all_deadlined) {
      token.emplace(latest_deadline);
    } else {
      token.emplace();
    }
    const Request& req = job->request;

    // Memory pressure: reclaim lane residency first, and when the budget
    // is still exceeded serve this job from sampled estimators with a
    // `mem_budget` degraded marker (docs/ROBUSTNESS.md, "Memory budget").
    bool mem_degrade = false;
    {
      core::MemoryBudget& budget = core::MemoryBudget::Get();
      if (budget.UnderPressure()) {
        session_pools[lane]->EvictUnderPressure();
        mem_degrade = budget.UnderPressure();
        if (mem_degrade) {
          obs::Event("mem_pressure")
              .Str("edge", "degrade")
              .Str("id", job->request.id)
              .U64("charged_bytes", budget.charged_bytes())
              .U64("budget_bytes", budget.budget_bytes());
        }
      }
    }

    const core::BasicMetrics* basic = nullptr;
    const hierarchy::LinkValueResult* linkvalue = nullptr;
    std::vector<DegradedEntry> degraded;
    bool cached = false;
    std::string internal_error;
    core::Session* session = nullptr;
    try {
      session = &SessionFor(req, lane, mem_degrade);
      const std::size_t degraded_before = session->degraded().size();
      const core::CacheStats before = session->cache_stats();
      {
        const parallel::CancelScope scope(&*token);
        if (NeedsBasicMetrics(req)) {
          basic = session->TryMetrics(req.topology, req.use_policy);
        }
        if (req.wants("linkvalue")) {
          linkvalue = session->TryLinkValues(req.topology, req.use_policy);
        }
      }
      const core::CacheStats after = session->cache_stats();
      cached = (after.topology_misses == before.topology_misses &&
                after.metrics_misses == before.metrics_misses &&
                after.linkvalue_misses == before.linkvalue_misses);
      for (std::size_t i = degraded_before; i < session->degraded().size();
           ++i) {
        const core::DegradedSlot& slot = session->degraded()[i];
        degraded.push_back({slot.kind, slot.id,
                            fault::ErrorCodeName(slot.error.code),
                            slot.error.fail_point, slot.error.attempts,
                            slot.error.message});
      }
    } catch (const std::exception& e) {
      internal_error = e.what();
    }
    if (mem_degrade && internal_error.empty()) {
      degraded.push_back({"mem_budget", req.topology, "mem_budget", "", 0,
                          "memory budget pressure: metrics served from "
                          "sampled estimators"});
    }

    // One payload per waiter (ids differ), one computation for all. The
    // completed count is bumped before the sends so a client that has
    // read its response always observes it.
    std::vector<Waiter> waiters;
    {
      std::lock_guard<std::mutex> lock(mutex);
      waiters = std::move(job->waiters);
      job->waiters.clear();
      inflight.erase(job->key);
      stat.completed += waiters.size();
      if (mem_degrade) ++stat.mem_degraded;
    }
    for (const Waiter& w : waiters) {
      if (!internal_error.empty()) {
        obs::Event("request")
            .Str("op", "error")
            .Str("id", w.id)
            .Str("code", "internal")
            .Str("message", internal_error);
        SendLine(w.conn,
                 RenderError(w.version, w.id, "internal", internal_error));
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.responses;
        if (w.conn->inflight_requests > 0) --w.conn->inflight_requests;
        continue;
      }
      // /2 responses stream each requested inline series as chunk frames
      // ahead of the final frame; everything else (paths, signature,
      // metadata, degraded) rides in the final frame, whose body is the
      // /1 serialization minus the streamed series. /1 responses are the
      // single line PR 7 shipped, byte for byte.
      std::vector<std::string> frames;
      std::uint64_t seq = 0;
      const bool stream = w.version >= 2;
      auto add_series = [&](ResponseBuilder& rb, std::string_view metric,
                            const metrics::Series& series) {
        if (!stream) {
          rb.AddFigure(metric, series);
          return;
        }
        const std::size_t n = series.x.size();
        std::size_t begin = 0;
        do {
          const std::size_t end =
              std::min(n, begin + options.stream_chunk_points);
          frames.push_back(
              StreamChunkFrame(w.id, seq++, metric, series, begin, end));
          begin = end;
        } while (begin < n);
      };
      ResponseBuilder rb(w.id);
      rb.AddString("topology", req.topology);
      rb.AddString("key", job->key);
      rb.AddBool("cached", cached);
      rb.AddU64("queue_us", QueueWaitNs(w.admitted, started) / 1000);
      rb.AddU64("elapsed_us", ElapsedNs(started, Clock::now()) / 1000);
      if (basic != nullptr) {
        if (req.inline_figures) {
          if (req.wants("expansion")) {
            add_series(rb, "expansion", basic->expansion);
          }
          if (req.wants("resilience")) {
            add_series(rb, "resilience", basic->resilience);
          }
          if (req.wants("distortion")) {
            add_series(rb, "distortion", basic->distortion);
          }
        } else {
          const std::string path =
              session->MetricsArtifactPath(req.topology, req.use_policy);
          for (const char* m : {"expansion", "resilience", "distortion"}) {
            if (req.wants(m)) rb.AddFigurePath(m, path);
          }
        }
        if (req.wants("signature")) {
          rb.AddSignature(basic->signature.ToString());
        }
      }
      if (linkvalue != nullptr) {
        if (req.inline_figures) {
          add_series(rb, "linkvalue", linkvalue->RankDistribution());
        } else {
          rb.AddFigurePath("linkvalue", session->LinkValueArtifactPath(
                                            req.topology, req.use_policy));
        }
      }
      for (const DegradedEntry& d : degraded) rb.AddDegraded(d);
      const std::string_view status = degraded.empty() ? "ok" : "degraded";
      std::string line = std::move(rb).Finish();
      if (stream) line = StreamFinalFrame(seq, line);
      frames.push_back(std::move(line));
      Respond(w, frames, status, started);
    }
  }

  void ExecutorLoop(std::size_t lane) {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          return stopping || (!paused && !queues[lane].empty());
        });
        if (queues[lane].empty() && stopping) return;
        if (queues[lane].empty()) continue;
        job = queues[lane].front();
        queues[lane].pop_front();
        --queued_total;
        ++lane_jobs[lane];
        RecordQueueDepth(lane);
        const Clock::time_point now = Clock::now();
        overload[lane].OnDequeue(ElapsedNs(job->enqueued, now), NowNs(now));
        lane_busy[lane] = true;
        lane_busy_since[lane] = now;
      }
      const Clock::time_point begin = Clock::now();
      ExecuteJob(job, lane);
      const Clock::time_point end = Clock::now();
      {
        std::lock_guard<std::mutex> lock(mutex);
        lane_busy[lane] = false;
        overload[lane].OnComplete(ElapsedNs(begin, end));
      }
      TOPOGEN_HIST_NS("service.executor_ns", ElapsedNs(begin, end));
    }
  }

  // --- lane watchdog ---

  // A lane wedged mid-job (a runaway kernel, an injected stall) produces
  // no dequeue signal, so its queued requests would otherwise wait until
  // a client gave up on its own. Once the running job has been busy past
  // stall_ms, the watchdog fails everything *queued behind it* with typed
  // `lane_stalled` errors; the running job itself is left alone -- it may
  // yet finish and answer its own waiters.
  void WatchdogLoop() {
    const std::chrono::milliseconds poll(static_cast<std::int64_t>(
        std::clamp<std::uint64_t>(options.stall_ms / 4, 10, 1000)));
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      cv.wait_for(lock, poll);
      if (stopping) break;
      const Clock::time_point now = Clock::now();
      for (std::size_t lane = 0; lane < queues.size(); ++lane) {
        if (!lane_busy[lane] || queues[lane].empty()) continue;
        const std::uint64_t busy_ns = ElapsedNs(lane_busy_since[lane], now);
        if (busy_ns < options.stall_ms * 1'000'000) continue;
        // Fail only the queued jobs that have *themselves* waited out the
        // stall window. A job that just arrived keeps its place: the
        // wedge may clear any moment (lane_busy can also be stale for an
        // instant between a response send and the executor re-locking to
        // clear it, and a fresh request must not be condemned by that
        // window). Detach the stale jobs under the lock: after the
        // inflight erase nothing else -- not dedup attach, not the
        // executor -- can reach them, so the sends below are safely
        // unlocked.
        std::deque<std::shared_ptr<Job>> stalled;
        for (auto it = queues[lane].begin(); it != queues[lane].end();) {
          if (ElapsedNs((*it)->enqueued, now) >=
              options.stall_ms * 1'000'000) {
            stalled.push_back(std::move(*it));
            it = queues[lane].erase(it);
          } else {
            ++it;
          }
        }
        if (stalled.empty()) continue;
        queued_total -= stalled.size();
        RecordQueueDepth(lane);
        std::size_t failed = 0;
        for (const auto& job : stalled) {
          inflight.erase(job->key);
          failed += job->waiters.size();
        }
        stat.lane_stall_failures += failed;
        lock.unlock();
        TOPOGEN_COUNT("service.lane_stall_failures");
        obs::Event("watchdog")
            .Str("op", "lane_stalled")
            .U64("lane", static_cast<std::uint64_t>(lane))
            .U64("busy_ms", busy_ns / 1'000'000)
            .U64("failed", static_cast<std::uint64_t>(failed));
        for (const auto& job : stalled) {
          for (const Waiter& w : job->waiters) {
            SendError(w.conn, w.version, w.id, "lane_stalled",
                      "executor lane " + std::to_string(lane) +
                          " has made no progress for " +
                          std::to_string(busy_ns / 1'000'000) +
                          "ms; queued request failed rather than hung");
          }
        }
        lock.lock();
        for (const auto& job : stalled) {
          for (const Waiter& w : job->waiters) {
            ++stat.responses;
            if (w.conn->inflight_requests > 0) --w.conn->inflight_requests;
          }
        }
      }
    }
  }

  // --- connection handling ---

  void ReaderLoop(const std::shared_ptr<Connection>& conn) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      // The svc.sock.read seam perverts the bytes just received: short =
      // the tail is lost (framing garbles into a typed parse error or a
      // stalled line the client's deadline catches), reset = treat the
      // peer as gone, stall = hold the read loop like a wedged kernel.
      // The buffer is never rewritten -- a perverted read loses bytes, it
      // never invents them.
      try {
        if (const auto injected = TOPOGEN_FAULT_HIT(
                "svc.sock.read",
                std::string_view(chunk,
                                 std::min<std::size_t>(
                                     static_cast<std::size_t>(n), 64)))) {
          switch (injected->kind) {
            case fault::Kind::kReset:
              n = 0;
              break;
            case fault::Kind::kShortWrite:
              n = (n + 1) / 2;
              break;
            case fault::Kind::kStall:
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(injected->delay_ms));
              break;
            default:
              n = 0;
              break;
          }
        }
      } catch (const fault::InjectedFault&) {
        n = 0;
      }
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string_view line(buffer.data() + start, nl - start);
        if (!line.empty()) HandleLine(conn, line);
        start = nl + 1;
      }
      buffer.erase(0, start);
      if (buffer.size() > kMaxRequestBytes) {
        SendError(conn, std::max(conn->version, 1), "", "invalid_argument",
                  "request line exceeds " + std::to_string(kMaxRequestBytes) +
                      " bytes; closing");
        break;
      }
    }
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }

  void HandleLine(const std::shared_ptr<Connection>& conn,
                  std::string_view line) {
    ParseOutcome parsed;
    try {
      TOPOGEN_FAULT_POINT_D("svc.parse", line.substr(0, 64));
      parsed = ParseRequest(line);
    } catch (const fault::InjectedFault& e) {
      std::lock_guard<std::mutex> lock(mutex);
      ++stat.parse_errors;
      parsed.error = e.what();
    }
    if (!parsed.request.has_value()) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.parse_errors;
      }
      // Unparseable lines answer at the connection's negotiated version
      // (or /1 before any request succeeded -- a /1 client must never see
      // a frame).
      SendError(conn, std::max(conn->version, 1), parsed.id,
                "invalid_argument",
                parsed.error.empty() ? "unparseable request" : parsed.error);
      return;
    }
    // The first well-formed request fixes the connection's protocol
    // version; later requests must repeat it (or omit `v` on a /1
    // connection). Only this reader thread touches conn->version.
    if (conn->version == 0) {
      conn->version = parsed.request->version;
    } else if (parsed.request->version != conn->version) {
      SendError(conn, conn->version, parsed.request->id, "invalid_argument",
                "protocol version is fixed at /" +
                    std::to_string(conn->version) + " for this connection");
      return;
    }
    Admit(conn, std::move(*parsed.request));
  }

  // Reap connections whose reader has finished (fd already closed), so a
  // long-running daemon does not accumulate exited-but-joinable reader
  // threads and their Connection objects until Stop(). Waiters still in
  // flight hold their own shared_ptr, so a reaped Connection stays valid
  // for any pending (and failing) response writes.
  void SweepConnections() {
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      for (auto it = connections.begin(); it != connections.end();) {
        bool closed = false;
        {
          std::lock_guard<std::mutex> write_lock((*it)->write_mutex);
          closed = (*it)->fd < 0;
        }
        if (closed) {
          dead.push_back(std::move(*it));
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Closing the fd is the reader's final act, so these joins are
    // near-instant.
    for (const auto& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
    }
  }

  void AcceptorLoop() {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping) return;
      }
      SweepConnections();
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready <= 0) continue;
      sockaddr_in peer{};
      socklen_t peer_len = sizeof(peer);
      const int fd =
          ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (fd < 0) continue;
      // /2 responses are several small writes (one per frame); without
      // TCP_NODELAY, Nagle + delayed ACK turns every streamed response
      // into a ~40ms stall on loopback.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      try {
        char addr[64] = "?";
        ::inet_ntop(AF_INET, &peer.sin_addr, addr, sizeof(addr));
        TOPOGEN_FAULT_POINT_D("svc.accept", addr);
      } catch (const fault::InjectedFault&) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stat.connections;
      }
      TOPOGEN_COUNT("service.connections");
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
      std::lock_guard<std::mutex> lock(conn_mutex);
      connections.push_back(std::move(conn));
    }
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { Stop(); }

void Server::Start() {
  Impl& s = *impl_;
  s.default_scale = obs::Env::Get().scale();
  s.paused = s.options.start_paused;

  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) throw std::runtime_error("service: socket() failed");
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(s.options.port));
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw std::runtime_error("service: cannot bind 127.0.0.1:" +
                             std::to_string(s.options.port));
  }
  if (::listen(s.listen_fd, 64) < 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw std::runtime_error("service: listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  s.bound_port = ntohs(addr.sin_port);

  s.started = true;
  s.acceptor = std::thread([this] { impl_->AcceptorLoop(); });
  s.executors.reserve(s.options.executors);
  for (std::size_t lane = 0; lane < s.options.executors; ++lane) {
    s.executors.emplace_back([this, lane] { impl_->ExecutorLoop(lane); });
  }
  if (s.options.stall_ms > 0) {
    s.watchdog = std::thread([this] { impl_->WatchdogLoop(); });
  }
  obs::Event("service")
      .Str("op", "start")
      .U64("port", static_cast<std::uint64_t>(s.bound_port))
      .U64("executors", static_cast<std::uint64_t>(s.options.executors));
}

int Server::port() const { return impl_->bound_port; }

void Server::Stop() {
  Impl& s = *impl_;
  if (!s.started) return;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.stopping) {
      // Second Stop(): everything below already ran.
      return;
    }
    s.stopping = true;
    s.paused = false;
  }
  s.cv.notify_all();
  if (s.acceptor.joinable()) s.acceptor.join();
  // Every executor drains its own queue before exiting, so every admitted
  // request is answered.
  for (std::thread& executor : s.executors) {
    if (executor.joinable()) executor.join();
  }
  if (s.watchdog.joinable()) s.watchdog.join();
  if (s.listen_fd >= 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
  }
  std::vector<std::shared_ptr<Impl::Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(s.conn_mutex);
    conns.swap(s.connections);
  }
  for (const auto& conn : conns) {
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (conn->reader.joinable()) conn->reader.join();
  }
  obs::Event("service").Str("op", "stop");
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stat;
}

core::CacheStats Server::SessionCacheStats() const {
  core::CacheStats total;
  for (const auto& pool : impl_->session_pools) {
    const core::CacheStats s = pool->AggregateStats();
    total.topology_hits += s.topology_hits;
    total.topology_misses += s.topology_misses;
    total.metrics_hits += s.metrics_hits;
    total.metrics_misses += s.metrics_misses;
    total.linkvalue_hits += s.linkvalue_hits;
    total.linkvalue_misses += s.linkvalue_misses;
    total.journal_skips += s.journal_skips;
  }
  return total;
}

std::size_t Server::QueueDepthForTesting() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->queued_total;
}

std::vector<std::size_t> Server::ExecutorQueueDepthsForTesting() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::size_t> depths;
  depths.reserve(impl_->queues.size());
  for (const auto& q : impl_->queues) depths.push_back(q.size());
  return depths;
}

std::vector<std::uint64_t> Server::ExecutorJobCountsForTesting() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->lane_jobs;
}

std::size_t Server::LiveConnectionCountForTesting() const {
  std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  return impl_->connections.size();
}

void Server::ResumeExecutor() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->paused = false;
  }
  impl_->cv.notify_all();
}

}  // namespace topogen::service
