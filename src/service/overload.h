// Per-lane adaptive load shedding for topogend (docs/ROBUSTNESS.md,
// "Overload control").
//
// The admission queue used to be the daemon's only self-protection: a
// fixed depth, so under sustained overload every client waited the full
// queue before learning the server was drowning. This controller makes
// shedding latency-driven instead, after CoDel (Nichols & Jacobson,
// "Controlling Queue Delay"): the signal is queue *sojourn* -- how long
// the job an executor just dequeued sat waiting -- measured against a
// target (default 20ms, TOPOGEN_SERVICE_TARGET_MS). Sojourn above target
// continuously for a full interval means the lane has standing queue
// that draining alone will not clear, so new work is shed at admission
// with a typed `overloaded` error carrying `retry_after_ms`; the first
// dequeue back under target ends the episode. A second, depth-based
// trigger sheds when the *estimated* wait (queue depth x EWMA service
// time) is far past target, which catches a lane whose executor is stuck
// on one long job and therefore produces no dequeue signal at all.
//
// Thread contract: no internal locking. Every method is called with the
// server's admission mutex held (readers shed under it, executors report
// dequeues/completions under it), which also makes the state transitions
// race-free by construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace topogen::service {

struct OverloadOptions {
  // Sojourn target: queue wait above this is "too long".
  std::uint64_t target_ns = 20'000'000;
  // How long sojourn must stay above target before shedding starts --
  // one CoDel interval, sized to ride out a single bursty arrival.
  std::uint64_t interval_ns = 100'000'000;
  // Depth-based trigger: shed when depth x EWMA service time exceeds
  // this many targets' worth of estimated wait.
  std::uint64_t estimate_factor = 4;
};

class LaneOverload {
 public:
  LaneOverload() = default;
  explicit LaneOverload(OverloadOptions options) : options_(options) {}

  // Executor signal: a job just left the queue after `sojourn_ns` of
  // waiting. `now_ns` is a monotonic stamp (same clock for every call).
  void OnDequeue(std::uint64_t sojourn_ns, std::uint64_t now_ns) {
    if (sojourn_ns < options_.target_ns) {
      first_above_ns_ = 0;
      overloaded_ = false;
      return;
    }
    if (first_above_ns_ == 0) {
      first_above_ns_ = now_ns;
    } else if (now_ns - first_above_ns_ >= options_.interval_ns) {
      overloaded_ = true;
    }
  }

  // Executor signal: a job finished after `service_ns` of execution.
  void OnComplete(std::uint64_t service_ns) {
    ewma_service_ns_ = ewma_service_ns_ == 0
                           ? service_ns
                           : (7 * ewma_service_ns_ + service_ns) / 8;
  }

  // Admission check for a *new* job against the lane's current depth.
  // Dedup attaches are never shed -- they add no work to the lane.
  //
  // An empty lane always admits, even mid-episode. The episode can only
  // end through a dequeue back under target, and shedding into an empty
  // queue would produce no dequeues at all -- the latch would starve the
  // lane forever once the backlog drained. (CoDel proper never faces
  // this: it drops while still serving the queue; admission shedding
  // must re-open explicitly.) The admitted job's own dequeue then
  // re-evaluates the episode with a true sojourn sample.
  bool ShouldShed(std::size_t queue_depth) const {
    if (queue_depth == 0) return false;
    if (overloaded_) return true;
    return ewma_service_ns_ > 0 &&
           static_cast<std::uint64_t>(queue_depth) * ewma_service_ns_ >
               options_.estimate_factor * options_.target_ns;
  }

  // The backoff hint a shed response carries: the estimated time for the
  // lane to work off its queue plus the shed request, floored at the
  // sojourn target (retrying sooner is pointless by definition) and
  // capped at 5s so a client never parks on one stale estimate.
  std::uint64_t RetryAfterMs(std::size_t queue_depth) const {
    const std::uint64_t per_job =
        ewma_service_ns_ > 0 ? ewma_service_ns_ : options_.target_ns;
    std::uint64_t estimate_ms =
        (static_cast<std::uint64_t>(queue_depth) + 1) * per_job / 1'000'000;
    const std::uint64_t floor_ms = options_.target_ns / 1'000'000;
    if (estimate_ms < floor_ms) estimate_ms = floor_ms;
    if (estimate_ms < 1) estimate_ms = 1;
    if (estimate_ms > 5000) estimate_ms = 5000;
    return estimate_ms;
  }

  bool overloaded() const { return overloaded_; }
  std::uint64_t ewma_service_ns() const { return ewma_service_ns_; }

 private:
  OverloadOptions options_;
  std::uint64_t ewma_service_ns_ = 0;
  std::uint64_t first_above_ns_ = 0;  // 0 = sojourn currently under target
  bool overloaded_ = false;
};

}  // namespace topogen::service
