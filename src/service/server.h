// topogend's server core: a TCP front door over core::Session
// (docs/SERVICE.md).
//
// Threading model. One *acceptor* thread owns the listening socket; one
// *reader* thread per connection frames newline-delimited requests; a
// small pool of *executor* threads runs jobs, one job at a time per lane.
// Requests hash to a lane by the roster-configuration prefix of their
// StructuralKey (session affinity), so each lane's core::SessionPool is
// touched by exactly one thread -- a Session stays single-threaded by
// contract while parallelism lives inside the metric kernels, which fan
// out on the work-stealing pool (and fall back inline when another lane
// holds it). Admission is a shared budget across the per-lane queues;
// identical concurrent requests -- equal StructuralKey -- attach to the
// already-queued (or running) job as extra waiters and share its one
// computation and one Session cache lookup, which affinity keeps sound:
// equal keys always resolve to the same lane.
//
// Wire protocol. /1 clients get one response line per request, byte
// identical to the single-executor server. /2 clients (the `v` field on
// the first request fixes a connection's version) get framed responses
// -- inline figure series stream as `{"v":2,"id":..,"seq":..,
// "more":true}` chunk frames, closed by a more:false frame -- and frames
// of different ids may interleave as lanes finish out of order.
//
// Deadlines are cooperative: a request's wall-clock budget becomes a
// parallel::CancelToken around the Session calls, checked at ParallelFor
// chunk boundaries. A request that expires while still queued is answered
// degraded without computing anything; one that expires mid-computation
// has its kernels stop at the next chunk boundary and degrades through
// the exit-75 taxonomy (code "cancelled"). Each executor thread scopes
// its own token, so one lane's cancellation never leaks into another's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"

namespace topogen::service {

struct ServerOptions {
  // TCP port to bind on 127.0.0.1; 0 = pick an ephemeral port (read it
  // back from port() after Start()).
  int port = 0;
  // Admission budget shared across every executor lane; requests beyond
  // it get a queue_full error.
  std::size_t queue_limit = 64;
  // Distinct roster configurations (scale/seed/size overrides) kept
  // resident *per executor*; least-recently-used Sessions are evicted
  // beyond this.
  std::size_t max_sessions = 4;
  // Executor lanes. Requests hash to a lane by roster configuration
  // (session affinity), so one long request head-of-line blocks only its
  // own lane. Minimum 1.
  std::size_t executors = 2;
  // /2 streaming granularity: inline series split into chunk frames of at
  // most this many points; 0 = kDefaultStreamChunkPoints. /1 responses
  // are unaffected.
  std::size_t stream_chunk_points = 0;
  // Per-connection in-flight request cap: a connection with this many
  // unanswered admitted requests has new ones shed with `overloaded`, so
  // one greedy keep-alive /2 client cannot monopolize the admission
  // budget. Minimum 1.
  std::size_t inflight_cap = 8;
  // CoDel-style shedding target: per-lane queue sojourn above this for a
  // full interval sheds new work with `overloaded` + retry_after_ms
  // (docs/ROBUSTNESS.md, "Overload control").
  std::uint64_t target_ms = 20;
  // How long sojourn must stay above target before shedding starts.
  std::uint64_t overload_interval_ms = 100;
  // Executor-lane watchdog: a lane whose *running* job has made no
  // progress for this long has its queued requests failed with typed
  // `lane_stalled` errors instead of hanging their clients. 0 = off.
  std::uint64_t stall_ms = 30000;
  // Test hook: every executor starts paused and runs nothing until
  // ResumeExecutor() -- lets tests provably enqueue concurrent identical
  // requests before the first one executes.
  bool start_paused = false;

  // The daemon configuration, resolved through the obs::Env registry in
  // one place: TOPOGEN_SERVICE_PORT, TOPOGEN_SERVICE_QUEUE,
  // TOPOGEN_SERVICE_EXECUTORS, TOPOGEN_SERVICE_MAX_SESSIONS, plus the
  // overload knobs TOPOGEN_SERVICE_TARGET_MS, TOPOGEN_SERVICE_INFLIGHT,
  // TOPOGEN_SERVICE_STALL_MS. A set-but-out-of-range variable falls back
  // to its default *and* emits a `config_clamped` event record (plus a
  // stderr note), so misconfiguration is observable instead of silent.
  static ServerOptions FromEnv();
};

// Monotonic counters, snapshot under the server lock. "admitted" counts
// every request that entered a queue or attached to an in-flight job;
// "deduped" is the subset that attached instead of enqueueing.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deduped = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t responses = 0;
  std::uint64_t response_errors = 0;  // dropped responses (write failures)
  // Overload self-protection (docs/ROBUSTNESS.md): requests shed by the
  // CoDel-style controller, by the per-connection in-flight cap, queued
  // requests failed by the lane watchdog, and jobs served from sampled
  // estimators under memory pressure.
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_inflight_cap = 0;
  std::uint64_t lane_stall_failures = 0;
  std::uint64_t mem_degraded = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:<port>, then spawns the acceptor and the executor
  // pool. Throws std::runtime_error when the socket cannot be bound.
  void Start();

  // The bound port (resolves option port 0 to the ephemeral pick).
  int port() const;

  // Graceful shutdown: stop accepting, answer everything already queued
  // on every lane (draining), then join all threads. Idempotent.
  void Stop();

  ServerStats stats() const;

  // Cache-effectiveness counters summed over every resident Session on
  // every lane. Meaningful when the executors are quiescent (tests call
  // it after the responses arrived).
  core::CacheStats SessionCacheStats() const;

  // Total queued jobs across all lanes.
  std::size_t QueueDepthForTesting() const;
  // Per-lane queued jobs, index = lane.
  std::vector<std::size_t> ExecutorQueueDepthsForTesting() const;
  // Per-lane executed-job counters, index = lane; proves affinity.
  std::vector<std::uint64_t> ExecutorJobCountsForTesting() const;
  // Connections not yet reaped by the acceptor's periodic sweep of
  // closed ones (so it eventually drops to 0 after clients disconnect).
  std::size_t LiveConnectionCountForTesting() const;
  // Resumes every paused executor lane.
  void ResumeExecutor();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace topogen::service
