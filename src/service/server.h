// topogend's server core: a TCP front door over core::Session
// (docs/SERVICE.md).
//
// Threading model. One *acceptor* thread owns the listening socket; one
// *reader* thread per connection frames newline-delimited requests; one
// *executor* thread owns every core::Session and runs jobs one at a time
// (a Session is single-threaded by contract -- parallelism lives inside
// the metric kernels, which fan out on the work-stealing pool). Requests
// are admitted into a bounded FIFO queue; identical concurrent requests
// -- equal StructuralKey -- attach to the already-queued (or running) job
// as extra waiters and share its one computation and one Session cache
// lookup.
//
// Deadlines are cooperative: a request's wall-clock budget becomes a
// parallel::CancelToken around the Session calls, checked at ParallelFor
// chunk boundaries. A request that expires while still queued is answered
// degraded without computing anything; one that expires mid-computation
// has its kernels stop at the next chunk boundary and degrades through
// the exit-75 taxonomy (code "cancelled").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/session.h"

namespace topogen::service {

struct ServerOptions {
  // TCP port to bind on 127.0.0.1; 0 = pick an ephemeral port (read it
  // back from port() after Start()).
  int port = 0;
  // Admission-queue depth; requests beyond it get a queue_full error.
  std::size_t queue_limit = 64;
  // Distinct roster configurations (scale/seed/size overrides) kept
  // resident; least-recently-used Sessions are evicted beyond this.
  std::size_t max_sessions = 4;
  // Test hook: the executor starts paused and runs nothing until
  // ResumeExecutor() -- lets tests provably enqueue concurrent identical
  // requests before the first one executes.
  bool start_paused = false;
};

// Monotonic counters, snapshot under the server lock. "admitted" counts
// every request that entered the queue or attached to an in-flight job;
// "deduped" is the subset that attached instead of enqueueing.
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deduped = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t responses = 0;
  std::uint64_t response_errors = 0;  // dropped responses (write failures)
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:<port>, then spawns the acceptor and executor.
  // Throws std::runtime_error when the socket cannot be bound.
  void Start();

  // The bound port (resolves option port 0 to the ephemeral pick).
  int port() const;

  // Graceful shutdown: stop accepting, answer everything already queued
  // (draining), then join all threads. Idempotent.
  void Stop();

  ServerStats stats() const;

  // Cache-effectiveness counters summed over every resident Session.
  // Meaningful when the executor is quiescent (tests call it after the
  // responses arrived).
  core::CacheStats SessionCacheStats() const;

  std::size_t QueueDepthForTesting() const;
  // Connections not yet reaped by the acceptor's periodic sweep of
  // closed ones (so it eventually drops to 0 after clients disconnect).
  std::size_t LiveConnectionCountForTesting() const;
  void ResumeExecutor();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace topogen::service
