// topogend's wire protocol: newline-delimited JSON over TCP
// (docs/SERVICE.md has the full grammar and examples).
//
// Two protocol versions share the same request grammar, selected by the
// optional `v` field on the first request of a connection (absent = 1):
//
//   /1  one request per line, one response line per request, multiplexed
//       over a single connection by the client-chosen `id`.
//   /2  keep-alive connections carrying many requests whose responses
//       complete out of order across executor lanes; every response is a
//       sequence of frames `{"v":2,"id":..,"seq":N,"more":bool,...}`.
//       Inline figure series stream as chunk frames (more:true) split at
//       a point budget; the final frame (more:false) carries the /1
//       response body (status, metadata, signature, paths, degraded).
//       Frames of *different* ids may interleave; frames of one id are
//       emitted in consecutive seq order by a single executor.
//
// Requests name a topology from the roster, the metric set to evaluate,
// and the structural inputs the cache keys hash (scale tier, seed,
// optional roster size overrides) -- so a request resolves to exactly the
// artifact a batch bench run at the same settings would produce. Parsing
// is strict: unknown keys, unknown metrics, and out-of-range sizes are
// rejected with a typed error response rather than guessed at.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/series.h"

namespace topogen::service {

// Every metric name a request may ask for. "signature" is the Low/High
// classification; the first four come from the basic-metrics suite,
// "linkvalue" from the hierarchy engine.
inline constexpr std::string_view kMetricNames[] = {
    "expansion", "resilience", "distortion", "signature", "linkvalue"};

// Roster size overrides above this are rejected as oversized: they would
// dwarf the paper's full-scale instances and tie the executor up for
// hours on one request.
inline constexpr std::uint64_t kMaxRosterNodes = 200000;

// Longest accepted request line (bytes). Longer lines poison the framing
// (the rest of the buffer could be mid-line garbage), so the server
// responds with an error and closes the connection.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

// Highest protocol version this build speaks; requests with a larger `v`
// are rejected at parse time.
inline constexpr int kProtocolVersionMax = 2;

// Default /2 streaming granularity: inline figure series split into chunk
// frames of at most this many points (ServerOptions::stream_chunk_points
// overrides; tests shrink it to force multi-frame responses on tiny
// series).
inline constexpr std::size_t kDefaultStreamChunkPoints = 2048;

struct Request {
  int version = 1;                    // `v` field; 1 or 2
  std::string id;                     // echoed back; server-assigned if empty
  std::string topology;               // roster id ("PLRG", "AS", ...)
  std::vector<std::string> metrics;   // validated subset of kMetricNames
  bool use_policy = false;
  bool inline_figures = true;         // false = respond with store paths
  std::string scale;                  // "" = the server's TOPOGEN_SCALE tier
  std::uint64_t seed = 0;             // 0 = the tier default (42)
  std::int64_t deadline_ms = 0;       // wall-clock budget; 0 = none
  // Roster size overrides; 0 = the tier default.
  std::uint64_t as_nodes = 0;
  std::uint64_t plrg_nodes = 0;
  std::uint64_t degree_based_nodes = 0;

  bool wants(std::string_view metric) const {
    for (const std::string& m : metrics) {
      if (m == metric) return true;
    }
    return false;
  }
};

// Result of parsing one request line. On failure `request` is empty and
// `error` holds a human-readable reason; `id` carries the client's id
// whenever the line was parseable enough to recover it, so the error
// response still correlates.
struct ParseOutcome {
  std::optional<Request> request;
  std::string error;
  std::string id;
};

ParseOutcome ParseRequest(std::string_view line);

// The in-flight dedup key: a canonical rendering of every request field
// that feeds the structural cache key (docs/CACHING.md). Two requests
// with equal keys resolve to the same artifacts, so the server computes
// them once. `default_scale` substitutes the server's tier for an unset
// scale so "scale omitted" and "scale explicitly the default" collide.
std::string StructuralKey(const Request& request,
                          std::string_view default_scale);

// The roster-configuration prefix of StructuralKey --
// `<scale>|<seed>|<as_nodes>|<plrg_nodes>|<degree_based_nodes>` -- which
// is exactly the key the server's Session LRU resolves. Two requests with
// equal SessionKeys share a core::Session even when their StructuralKeys
// (topology/metrics/rendering) differ.
std::string SessionKey(const Request& request,
                       std::string_view default_scale);

// Executor affinity: maps a StructuralKey to a lane in [0, lanes) by
// hashing only its SessionKey prefix, so every request against one roster
// configuration -- and therefore one Session -- lands on the same
// executor. Deterministic across processes (FNV-1a, no seeding), which
// lets benches and tests pick keys that provably collide or diverge.
std::size_t LaneForKey(std::string_view structural_key, std::size_t lanes);

// --- response serialization (one line, no trailing newline) ---

// {"id":..,"status":"error","error":{"code":..,"message":..}}
std::string ErrorResponse(std::string_view id, std::string_view code,
                          std::string_view message);

// The load-shedding rejection (docs/ROBUSTNESS.md, "Overload control"):
// an ErrorResponse with code "overloaded" whose error object additionally
// carries `retry_after_ms`, the server's estimate of when retrying might
// succeed. Clients back off at least that long (service/client.h).
std::string OverloadedResponse(std::string_view id, std::string_view message,
                               std::uint64_t retry_after_ms);

// One degraded[] entry, mirroring the manifest's exit-75 taxonomy.
struct DegradedEntry {
  // "topology" | "metrics" | "linkvalue" | "request" | "mem_budget"
  std::string kind;
  std::string id;          // topology id (or request id for kind=request)
  std::string code;        // fault::ErrorCodeName of the typed error
  std::string fail_point;  // provenance; empty for organic failures
  int attempts = 0;
  std::string message;
};

// A named series rendered as {"name":..,"x":[..],"y":[..]} with
// shortest-round-trip numbers (obs::JsonNumber), so a client re-parsing
// the response recovers bit-identical doubles.
void AppendSeries(std::string& out, const metrics::Series& series);

// Incremental builder for success/degraded responses; the server streams
// figure payloads into it as they resolve.
class ResponseBuilder {
 public:
  explicit ResponseBuilder(std::string_view id);

  // Top-level scalar fields.
  void AddString(std::string_view key, std::string_view value);
  void AddBool(std::string_view key, bool value);
  void AddU64(std::string_view key, std::uint64_t value);

  // figures.<metric> = series (inline) or store path (by reference).
  void AddFigure(std::string_view metric, const metrics::Series& series);
  void AddFigurePath(std::string_view metric, std::string_view path);
  void AddSignature(std::string_view signature);

  void AddDegraded(const DegradedEntry& entry);

  // Finalizes with status "ok" (no degraded entries) or "degraded".
  std::string Finish() &&;

 private:
  void Comma(std::string& out);

  std::string head_;      // leading fields
  std::string figures_;   // accumulated figures object body
  std::string degraded_;  // accumulated degraded array body
};

// --- protocol /2 frame rendering ---

// One chunk frame carrying points [begin, end) of an inline series:
//   {"v":2,"id":..,"seq":N,"more":true,"figure":"<metric>",
//    "name":..,"x":[..],"y":[..]}
// Clients concatenate x/y per figure in seq order; `name` repeats on
// every chunk so any one frame identifies its series.
std::string StreamChunkFrame(std::string_view id, std::uint64_t seq,
                             std::string_view metric,
                             const metrics::Series& series,
                             std::size_t begin, std::size_t end);

// The closing frame of a /2 response: wraps an already-rendered /1
// response line (success, degraded, or error) as
//   {"v":2,"seq":N,"more":false,<body of line>}
// so the /2 surface reuses the /1 serialization byte for byte.
std::string StreamFinalFrame(std::uint64_t seq, const std::string& line);

}  // namespace topogen::service
