// topogend's wire protocol: newline-delimited JSON over TCP
// (docs/SERVICE.md has the full grammar and examples).
//
// One request per line, one response line per request, multiplexed over a
// single connection by the client-chosen `id`. Requests name a topology
// from the roster, the metric set to evaluate, and the structural inputs
// the cache keys hash (scale tier, seed, optional roster size overrides)
// -- so a request resolves to exactly the artifact a batch bench run at
// the same settings would produce. Parsing is strict: unknown keys,
// unknown metrics, and out-of-range sizes are rejected with a typed error
// response rather than guessed at.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/series.h"

namespace topogen::service {

// Every metric name a request may ask for. "signature" is the Low/High
// classification; the first four come from the basic-metrics suite,
// "linkvalue" from the hierarchy engine.
inline constexpr std::string_view kMetricNames[] = {
    "expansion", "resilience", "distortion", "signature", "linkvalue"};

// Roster size overrides above this are rejected as oversized: they would
// dwarf the paper's full-scale instances and tie the executor up for
// hours on one request.
inline constexpr std::uint64_t kMaxRosterNodes = 200000;

// Longest accepted request line (bytes). Longer lines poison the framing
// (the rest of the buffer could be mid-line garbage), so the server
// responds with an error and closes the connection.
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

struct Request {
  std::string id;                     // echoed back; server-assigned if empty
  std::string topology;               // roster id ("PLRG", "AS", ...)
  std::vector<std::string> metrics;   // validated subset of kMetricNames
  bool use_policy = false;
  bool inline_figures = true;         // false = respond with store paths
  std::string scale;                  // "" = the server's TOPOGEN_SCALE tier
  std::uint64_t seed = 0;             // 0 = the tier default (42)
  std::int64_t deadline_ms = 0;       // wall-clock budget; 0 = none
  // Roster size overrides; 0 = the tier default.
  std::uint64_t as_nodes = 0;
  std::uint64_t plrg_nodes = 0;
  std::uint64_t degree_based_nodes = 0;

  bool wants(std::string_view metric) const {
    for (const std::string& m : metrics) {
      if (m == metric) return true;
    }
    return false;
  }
};

// Result of parsing one request line. On failure `request` is empty and
// `error` holds a human-readable reason; `id` carries the client's id
// whenever the line was parseable enough to recover it, so the error
// response still correlates.
struct ParseOutcome {
  std::optional<Request> request;
  std::string error;
  std::string id;
};

ParseOutcome ParseRequest(std::string_view line);

// The in-flight dedup key: a canonical rendering of every request field
// that feeds the structural cache key (docs/CACHING.md). Two requests
// with equal keys resolve to the same artifacts, so the server computes
// them once. `default_scale` substitutes the server's tier for an unset
// scale so "scale omitted" and "scale explicitly the default" collide.
std::string StructuralKey(const Request& request,
                          std::string_view default_scale);

// --- response serialization (one line, no trailing newline) ---

// {"id":..,"status":"error","error":{"code":..,"message":..}}
std::string ErrorResponse(std::string_view id, std::string_view code,
                          std::string_view message);

// One degraded[] entry, mirroring the manifest's exit-75 taxonomy.
struct DegradedEntry {
  std::string kind;        // "topology" | "metrics" | "linkvalue" | "request"
  std::string id;          // topology id (or request id for kind=request)
  std::string code;        // fault::ErrorCodeName of the typed error
  std::string fail_point;  // provenance; empty for organic failures
  int attempts = 0;
  std::string message;
};

// A named series rendered as {"name":..,"x":[..],"y":[..]} with
// shortest-round-trip numbers (obs::JsonNumber), so a client re-parsing
// the response recovers bit-identical doubles.
void AppendSeries(std::string& out, const metrics::Series& series);

// Incremental builder for success/degraded responses; the server streams
// figure payloads into it as they resolve.
class ResponseBuilder {
 public:
  explicit ResponseBuilder(std::string_view id);

  // Top-level scalar fields.
  void AddString(std::string_view key, std::string_view value);
  void AddBool(std::string_view key, bool value);
  void AddU64(std::string_view key, std::uint64_t value);

  // figures.<metric> = series (inline) or store path (by reference).
  void AddFigure(std::string_view metric, const metrics::Series& series);
  void AddFigurePath(std::string_view metric, std::string_view path);
  void AddSignature(std::string_view signature);

  void AddDegraded(const DegradedEntry& entry);

  // Finalizes with status "ok" (no degraded entries) or "degraded".
  std::string Finish() &&;

 private:
  void Comma(std::string& out);

  std::string head_;      // leading fields
  std::string figures_;   // accumulated figures object body
  std::string degraded_;  // accumulated degraded array body
};

}  // namespace topogen::service
