#include "service/supervisor.h"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/obs.h"

namespace topogen::service {

namespace {

using Clock = std::chrono::steady_clock;

// One human-readable rendering of how a worker died, for the restart
// line and the supervisor event record.
std::string DescribeStatus(int status) {
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "status " + std::to_string(status);
}

}  // namespace

int ResolvePort(int port) {
  if (port != 0) return port;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("supervisor: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t addr_len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(fd);
    throw std::runtime_error("supervisor: cannot reserve an ephemeral port");
  }
  ::close(fd);
  // SO_REUSEADDR on both this probe and the worker's listener makes the
  // close-then-rebind race benign on loopback.
  return static_cast<int>(ntohs(addr.sin_port));
}

int RunSupervised(const std::function<int()>& run_worker,
                  const SupervisorOptions& options) {
  // Everything the parent reacts to arrives as a signal, so block the
  // set up front and receive synchronously with sigwait/sigtimedwait --
  // no handlers, no async-signal-safety hazards. The worker inherits the
  // blocked mask and does its own sigwait, exactly like an unsupervised
  // daemon.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGCHLD);
  sigprocmask(SIG_BLOCK, &signals, nullptr);

  // Open the event sink (if configured) before the first fork. The sink
  // opens lazily with truncation, and the workers are forked without
  // exec -- left lazy, the supervisor and each worker generation would
  // open the file independently, every open truncating the others'
  // records and writing at its own offset. Opening here instead means
  // every child inherits this one file description: a single shared
  // offset, so supervisor and worker lines interleave at line
  // granularity in one log.
  obs::EventLog::Get().Flush();

  std::uint64_t backoff_ms = options.backoff_initial_ms;
  int restarts = 0;
  for (;;) {
    const pid_t child = ::fork();
    if (child < 0) {
      std::fprintf(stderr, "topogend: fork() failed; supervision over\n");
      return 1;
    }
    if (child == 0) {
      ::_exit(run_worker());
    }
    const Clock::time_point born = Clock::now();
    obs::Event("supervisor")
        .Str("op", restarts == 0 ? "start" : "restart")
        .U64("pid", static_cast<std::uint64_t>(child))
        .U64("generation", static_cast<std::uint64_t>(restarts));

    // Wait for the worker to die or for a shutdown signal to forward.
    bool shutdown = false;
    int status = 0;
    for (;;) {
      int got = 0;
      sigwait(&signals, &got);
      if (got == SIGINT || got == SIGTERM) {
        shutdown = true;
        ::kill(child, got);
        // The worker drains; collect it however it ends.
        ::waitpid(child, &status, 0);
        break;
      }
      // SIGCHLD coalesces, so reap specifically and keep waiting when
      // the worker is still alive (a stray SIGCHLD from elsewhere).
      if (::waitpid(child, &status, WNOHANG) == child) break;
    }
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (shutdown || clean) {
      obs::Event("supervisor")
          .Str("op", "exit")
          .Str("worker", DescribeStatus(status))
          .U64("restarts", static_cast<std::uint64_t>(restarts));
      return clean ? 0 : status;
    }

    // Abnormal death: restart with backoff. A worker that ran long
    // enough to be called stable resets the ladder, so one crash a day
    // does not creep toward the cap.
    const std::uint64_t lifetime_ms =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - born)
                .count());
    if (lifetime_ms >= options.stable_after_ms) {
      backoff_ms = options.backoff_initial_ms;
    }
    ++restarts;
    if (options.max_restarts > 0 && restarts > options.max_restarts) {
      std::fprintf(stderr,
                   "topogend: worker died (%s) after %d restarts; giving up\n",
                   DescribeStatus(status).c_str(), options.max_restarts);
      return WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    }
    TOPOGEN_COUNT("supervisor.restarts");
    obs::Event("supervisor")
        .Str("op", "worker_died")
        .Str("worker", DescribeStatus(status))
        .U64("lifetime_ms", lifetime_ms)
        .U64("backoff_ms", backoff_ms);
    std::fprintf(stderr,
                 "topogend: worker died (%s) after %llums; restarting in "
                 "%llums\n",
                 DescribeStatus(status).c_str(),
                 static_cast<unsigned long long>(lifetime_ms),
                 static_cast<unsigned long long>(backoff_ms));
    std::fflush(stderr);

    // Interruptible backoff: a shutdown signal during the sleep ends
    // supervision immediately instead of forking one more doomed worker.
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(backoff_ms / 1000);
    ts.tv_nsec = static_cast<long>((backoff_ms % 1000) * 1'000'000);
    const int got = sigtimedwait(&signals, nullptr, &ts);
    if (got == SIGINT || got == SIGTERM) {
      obs::Event("supervisor").Str("op", "exit").Str("worker", "shutdown");
      return 0;
    }
    backoff_ms = std::min(backoff_ms * 2, options.backoff_max_ms);
  }
}

}  // namespace topogen::service
