// Supervised restart for topogend (docs/ROBUSTNESS.md, "Supervised
// restart").
//
// `topogend --supervise` splits the daemon into a tiny supervisor parent
// and a worker child: the parent forks the worker, waits, and re-forks it
// with capped exponential backoff whenever it dies abnormally -- an
// injected crash (fault::kCrashExitCode), a kernel OOM kill, a stray
// signal. The worker re-opens the same artifact store on restart, so
// everything the previous generation persisted (topologies, figures) is
// served warm from cache instead of recomputed; in-flight requests of the
// crashed generation are lost, which is exactly what the client's
// reconnect-and-retry loop (service/client.h) is for.
//
// The parent holds no server state: no sockets, no sessions, no threads
// before fork -- so the fork is async-signal clean. SIGTERM/SIGINT to the
// parent forward to the worker (which drains and exits 0) and end
// supervision; a worker that exits 0 on its own ends supervision too.
#pragma once

#include <cstdint>
#include <functional>

namespace topogen::service {

struct SupervisorOptions {
  // First restart delay; doubles per consecutive crash up to the cap.
  std::uint64_t backoff_initial_ms = 100;
  std::uint64_t backoff_max_ms = 5000;
  // A worker that survives this long resets the backoff ladder.
  std::uint64_t stable_after_ms = 10000;
  // Give up after this many consecutive crashes (0 = never). The
  // supervisor then exits with the last worker's status.
  int max_restarts = 0;
};

// Resolves port 0 to a concrete ephemeral port by binding and closing a
// loopback socket, so every supervised worker generation listens on the
// *same* port and clients can reconnect across restarts. A nonzero port
// passes through unchanged. Throws std::runtime_error when no port can
// be reserved.
int ResolvePort(int port);

// Runs `run_worker` in a forked child, restarting per SupervisorOptions.
// `run_worker` must not return to the caller's stack in a meaningful way
// -- its return value becomes the child's exit code. Returns the process
// exit code for the supervisor: 0 after a clean worker exit or forwarded
// shutdown signal, the worker's final status when restarts are exhausted.
int RunSupervised(const std::function<int()>& run_worker,
                  const SupervisorOptions& options = {});

}  // namespace topogen::service
