// A blocking /1 client for topogend with the retry discipline the
// overload design assumes (docs/ROBUSTNESS.md, "The client contract").
//
// Two failure families, two recoveries:
//
//   *Shed* -- the server answered, but with code "overloaded" and a
//   retry_after_ms hint. The client sleeps at least that long, plus
//   capped exponential backoff with full jitter (so a thundering herd of
//   shed clients does not re-arrive in lockstep), then resends.
//
//   *Transport* -- the connection died or an operation timed out: a
//   supervised worker crashed and restarted, a chaos fault tore the
//   line, the peer stalled past the deadline. The client reconnects and
//   resends. /1 requests are idempotent reads against deterministic
//   artifacts, so resending is always safe.
//
// Every socket operation carries a deadline (poll + clock arithmetic);
// there is no code path that blocks forever. Used by bench_service's
// overload phase and the service tests; service_smoke.py mirrors the
// same discipline in Python for the chaos sweep.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/rng.h"

namespace topogen::service {

struct ClientOptions {
  int port = 0;  // 127.0.0.1:<port>
  // Per-operation deadline: one connect, one send, one response line.
  std::uint64_t op_timeout_ms = 30000;
  // Admission attempts per Call (sheds and transport errors both spend
  // one); minimum 1.
  int max_attempts = 8;
  // Backoff added on top of the server's retry_after_ms: full jitter in
  // [0, min(initial << attempt, max)].
  std::uint64_t backoff_initial_ms = 10;
  std::uint64_t backoff_max_ms = 2000;
  std::uint64_t jitter_seed = 1;  // deterministic backoff in tests
};

struct ClientResult {
  std::string line;   // the final response line; empty when !ok()
  int attempts = 0;   // send attempts spent (1 = first try worked)
  int reconnects = 0;
  int sheds = 0;      // overloaded responses absorbed along the way
  std::string error;  // why the call gave up; empty on success
  bool ok() const { return error.empty(); }
};

// True when `line` is an error response with code "overloaded".
bool IsOverloadedError(std::string_view line);

// The retry_after_ms of an overloaded response; 0 when absent/unparsable.
std::uint64_t ParseRetryAfterMs(std::string_view line);

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Sends one /1 request line (no trailing newline) and returns its
  // response line, retrying through sheds and transport errors per
  // ClientOptions. One request in flight at a time; a timed-out
  // connection is torn down, never reused, so a stale late response can
  // not be mistaken for the next call's.
  ClientResult Call(const std::string& request_line);

 private:
  bool EnsureConnected(std::uint64_t deadline_ms_from_now);
  void Disconnect();
  bool SendAll(std::string_view data, std::uint64_t deadline_ms_from_now);
  bool RecvLine(std::string* line, std::uint64_t deadline_ms_from_now);
  std::uint64_t BackoffMs(int attempt);

  ClientOptions options_;
  graph::Rng rng_;
  int fd_ = -1;
  std::string buffer_;  // bytes past the last consumed newline
};

}  // namespace topogen::service
