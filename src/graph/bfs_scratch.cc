#include "graph/bfs_scratch.h"

#include "obs/manifest.h"

namespace topogen::graph {

BfsScratchLease AcquireBfsScratch() {
  // Stamp the engine identity into the run manifest once per process, so
  // any figure produced by this binary records which traversal substrate
  // made it (non-arming, like the thread count).
  static const bool stamped = [] {
    obs::Manifest::SetBfsEngine("epoch-scratch+direction-optimizing/1");
    return true;
  }();
  (void)stamped;
  return parallel::ScratchPool<BfsScratch>::Acquire();
}

}  // namespace topogen::graph
