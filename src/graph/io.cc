#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "store/serialize.h"

namespace topogen::graph {

// Friend of Graph: the only code with direct access to the CSR arrays.
struct CsrSerializer {
  static void Append(std::string& out, const Graph& g) {
    store::ByteWriter w(out);
    w.U32(g.num_nodes_);
    w.Vec(g.offsets_);
    w.Vec(g.adjacency_);
    w.Vec(g.adjacent_edge_);
    w.Vec(g.edges_);
  }

  static Graph Parse(std::string_view blob, std::size_t& offset) {
    TOPOGEN_FAULT_POINT("graph.csr.parse");
    store::ByteReader r(blob.substr(offset));
    Graph g;
    g.num_nodes_ = r.U32();
    g.offsets_ = r.Vec<std::size_t>();
    g.adjacency_ = r.Vec<NodeId>();
    g.adjacent_edge_ = r.Vec<EdgeId>();
    g.edges_ = r.Vec<Edge>();
    if (!r.ok()) {
      throw fault::Exception(fault::ErrorCode::kCorrupt,
                             "ParseCsr: truncated CSR blob");
    }
    // Structural invariants every Graph upholds by construction; a blob
    // violating them is corrupt no matter what the checksum said.
    const std::size_t m = g.edges_.size();
    // A default-constructed Graph has no offsets array at all; it is a
    // valid (if degenerate) serialization subject.
    const bool empty_ok = g.num_nodes_ == 0 && m == 0 &&
                          g.offsets_.empty() && g.adjacency_.empty() &&
                          g.adjacent_edge_.empty();
    const bool shape_ok =
        empty_ok ||
        (g.offsets_.size() == static_cast<std::size_t>(g.num_nodes_) + 1 &&
         g.offsets_.front() == 0 && g.offsets_.back() == 2 * m &&
         g.adjacency_.size() == 2 * m && g.adjacent_edge_.size() == 2 * m &&
         std::is_sorted(g.offsets_.begin(), g.offsets_.end()));
    if (!shape_ok) {
      throw fault::Exception(fault::ErrorCode::kCorrupt,
                             "ParseCsr: inconsistent CSR blob");
    }
    for (const Edge& e : g.edges_) {
      if (e.u >= e.v || e.v >= g.num_nodes_) {
        throw fault::Exception(fault::ErrorCode::kCorrupt,
                               "ParseCsr: non-canonical edge in CSR blob");
      }
    }
    offset += r.offset();
    return g;
  }
};

void AppendCsr(std::string& out, const Graph& g) {
  CsrSerializer::Append(out, g);
}

Graph ParseCsr(std::string_view blob, std::size_t& offset) {
  return CsrSerializer::Parse(blob, offset);
}

void WriteEdgeList(std::ostream& os, const Graph& g) {
  os << "# topogen edge list\n";
  os << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) {
    os << e.u << " " << e.v << "\n";
  }
}

void WriteEdgeListFile(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("WriteEdgeListFile: cannot open " + path);
  }
  WriteEdgeList(os, g);
}

Graph ReadEdgeList(std::istream& is) {
  std::vector<Edge> edges;
  NodeId num_nodes = 0;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Honor a "# nodes N ..." header so isolated trailing nodes
      // round-trip.
      std::istringstream header(line);
      std::string hash, word;
      header >> hash >> word;
      if (word == "nodes") {
        std::uint64_t n = 0;
        if (header >> n) {
          num_nodes = std::max<NodeId>(num_nodes, static_cast<NodeId>(n));
        }
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    if (!(row >> u >> v)) {
      throw std::runtime_error("ReadEdgeList: malformed line " +
                               std::to_string(line_number) + ": '" + line +
                               "'");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
    num_nodes = std::max<NodeId>(
        num_nodes, static_cast<NodeId>(std::max(u, v) + 1));
  }
  return Graph::FromEdges(num_nodes, std::move(edges));
}

Graph ReadEdgeListFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("ReadEdgeListFile: cannot open " + path);
  }
  return ReadEdgeList(is);
}

}  // namespace topogen::graph
