#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace topogen::graph {

void WriteEdgeList(std::ostream& os, const Graph& g) {
  os << "# topogen edge list\n";
  os << "# nodes " << g.num_nodes() << " edges " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) {
    os << e.u << " " << e.v << "\n";
  }
}

void WriteEdgeListFile(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("WriteEdgeListFile: cannot open " + path);
  }
  WriteEdgeList(os, g);
}

Graph ReadEdgeList(std::istream& is) {
  std::vector<Edge> edges;
  NodeId num_nodes = 0;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Honor a "# nodes N ..." header so isolated trailing nodes
      // round-trip.
      std::istringstream header(line);
      std::string hash, word;
      header >> hash >> word;
      if (word == "nodes") {
        std::uint64_t n = 0;
        if (header >> n) {
          num_nodes = std::max<NodeId>(num_nodes, static_cast<NodeId>(n));
        }
      }
      continue;
    }
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    if (!(row >> u >> v)) {
      throw std::runtime_error("ReadEdgeList: malformed line " +
                               std::to_string(line_number) + ": '" + line +
                               "'");
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
    num_nodes = std::max<NodeId>(
        num_nodes, static_cast<NodeId>(std::max(u, v) + 1));
  }
  return Graph::FromEdges(num_nodes, std::move(edges));
}

Graph ReadEdgeListFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("ReadEdgeListFile: cannot open " + path);
  }
  return ReadEdgeList(is);
}

}  // namespace topogen::graph
