// Unit-capacity maximum flow (Dinic's algorithm).
//
// Two uses: the paper's footnote-22 "expected max-flow between the center
// of a ball and any node on the surface of the ball" metric, and exact
// s-t min-cut cross-checks for the balanced-bisection heuristics in the
// test suite. Edges of the undirected input graph become capacity-1
// arcs in both directions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace topogen::graph {

// Reusable Dinic solver over a fixed graph; Solve() can be called for
// many (source, sink) pairs without rebuilding adjacency.
class UnitMaxFlow {
 public:
  explicit UnitMaxFlow(const Graph& g);

  // Maximum s-t flow (equivalently, by Menger, the number of edge-disjoint
  // s-t paths, and the s-t min cut). Returns 0 when s == t or either is
  // out of range.
  std::uint64_t Solve(NodeId s, NodeId t);

  // Max flow from s to a *set* of sinks (adds an implicit super-sink with
  // infinite capacity from each). Used for the center-to-surface metric.
  std::uint64_t SolveToSet(NodeId s, std::span<const NodeId> sinks);

 private:
  struct Arc {
    NodeId to;
    std::uint32_t rev;  // index of the reverse arc in arcs_[to]
    std::int32_t cap;
  };

  bool BuildLevels(NodeId s, NodeId t);
  std::int64_t Augment(NodeId v, NodeId t, std::int64_t limit);
  void ResetCapacities();

  NodeId num_nodes_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> iter_;
  // Arcs added for SolveToSet's super-sink are appended and removed per
  // call; the base arc counts let ResetCapacities restore the graph.
  std::vector<std::size_t> base_arc_count_;
};

}  // namespace topogen::graph
