// Epoch-stamped BFS workspace (docs/PERFORMANCE.md).
//
// Every ball-growing metric in the paper reduces to thousands of
// per-source BFS sweeps; allocating and zero-filling O(n) dist/queue
// buffers per sweep was the hottest allocation site in the codebase. A
// BfsScratch owns those buffers once and resets them in O(1) per sweep
// with a generation counter: a slot's distance is valid only when its
// stamp equals the workspace's current epoch, so "clearing" the
// workspace is a single epoch increment. Buffers grow monotonically to
// the largest graph a thread has seen and are then reused allocation-free
// (the `graph.bfs_alloc` counter stays flat in steady state).
//
// Workspaces are handed out by the per-lane scratch pools
// (parallel/scratch_pool.h): acquire a lease, run one of the *Into
// kernels from bfs.h, and read results through the accessors below until
// the next kernel call on the same workspace. Nested kernels acquire a
// second lease rather than clobbering the outer sweep's results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.h"
#include "parallel/scratch_pool.h"

namespace topogen::graph {

namespace detail {
struct BfsEngine;
}  // namespace detail

class BfsScratch {
 public:
  BfsScratch() = default;
  BfsScratch(const BfsScratch&) = delete;
  BfsScratch& operator=(const BfsScratch&) = delete;

  // --- results of the last kernel run on this workspace ---

  // Number of nodes of the swept graph.
  std::size_t size() const { return n_; }

  // A node's mark packs (epoch << 32 | dist); it is valid only when its
  // epoch half matches the workspace's current epoch, so the visited
  // test and the distance read are a single 64-bit load.
  bool visited(NodeId v) const {
    return (mark_[v] >> 32) == epoch_;
  }

  // Hop distance from the sweep's source; kUnreachable when unvisited.
  Dist dist(NodeId v) const {
    const std::uint64_t m = mark_[v];
    return (m >> 32) == epoch_ ? static_cast<Dist>(m) : kUnreachable;
  }

  // Shortest-path count (BuildShortestPathDagInto only); 0 when unvisited.
  double sigma(NodeId v) const { return visited(v) ? sigma_[v] : 0.0; }

  // Unchecked sigma read for hot loops that already established
  // visited(v) (e.g. Brandes sweeps walking order() and DAG edges).
  double sigma_visited(NodeId v) const { return sigma_[v]; }

  // Visited nodes. For the exact-order kernels (BallInto,
  // BuildShortestPathDagInto) this is the historical top-down discovery
  // order; the direction-optimizing kernels only guarantee
  // non-decreasing distance.
  std::span<const NodeId> order() const { return order_; }

  // level_counts()[h] = number of nodes at exactly h hops (level 0 is the
  // source). Empty when the source was out of range.
  std::span<const std::size_t> level_counts() const { return level_counts_; }

  std::size_t reached() const { return order_.size(); }

  // Max finite distance reached (0 for isolated/invalid sources).
  Dist eccentricity() const {
    return level_counts_.empty()
               ? 0
               : static_cast<Dist>(level_counts_.size() - 1);
  }

  // Sum of dist(v) over visited nodes, exact in 64-bit.
  std::uint64_t sum_depths() const { return sum_depths_; }

 private:
  friend struct detail::BfsEngine;

  std::size_t n_ = 0;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint64_t> mark_;  // (epoch << 32 | dist) per node
  std::vector<double> sigma_;  // sized lazily, DAG sweeps only
  // Packed visited/frontier snapshots for bitmap bottom-up levels on
  // large graphs (bfs.cc kBitmapNodeGate); sized lazily on first use.
  std::vector<std::uint64_t> frontier_bits_;
  std::vector<std::uint64_t> visited_bits_;
  std::vector<NodeId> order_;
  std::vector<std::size_t> level_counts_;
  std::uint64_t sum_depths_ = 0;
};

using BfsScratchLease = parallel::ScratchPool<BfsScratch>::Lease;

// Leases a workspace from the current thread's pool and (once per
// process) stamps the engine identity into the run manifest.
BfsScratchLease AcquireBfsScratch();

}  // namespace topogen::graph
