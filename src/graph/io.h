// Edge-list file I/O.
//
// The interchange format the `make_topology` CLI writes and the
// `measure_topology` example reads: optional '#' comment lines, then one
// "u v" pair of nonnegative integers per line. Node count is
// 1 + max(node id) unless a "# nodes N ..." header raises it.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.h"

namespace topogen::graph {

// Writes g as an edge list (with a summary header).
void WriteEdgeList(std::ostream& os, const Graph& g);
void WriteEdgeListFile(const std::string& path, const Graph& g);

// Parses an edge list; throws std::runtime_error on malformed input.
Graph ReadEdgeList(std::istream& is);
Graph ReadEdgeListFile(const std::string& path);

// --- binary CSR serialization (the artifact-store format) ---
//
// AppendCsr dumps the graph's exact in-memory CSR arrays (offsets,
// adjacency, edge ids, canonical edges) as length-prefixed little-endian
// blocks appended to `out`; ParseCsr restores them verbatim, so a loaded
// graph is bit-identical to the one serialized -- no re-sorting, no
// re-canonicalization, O(n + m) with a handful of memcpys. The blob is a
// per-machine cache format, not an interchange format (docs/CACHING.md).

void AppendCsr(std::string& out, const Graph& g);

// Parses a CSR blob starting at out[offset], advancing `offset` past it.
// Cheap structural invariants (array sizes, offset monotonicity, edge
// count consistency) are re-checked; a violation throws
// std::runtime_error -- the artifact store maps that to a cache miss.
Graph ParseCsr(std::string_view blob, std::size_t& offset);

}  // namespace topogen::graph
