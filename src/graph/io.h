// Edge-list file I/O.
//
// The interchange format the `make_topology` CLI writes and the
// `measure_topology` example reads: optional '#' comment lines, then one
// "u v" pair of nonnegative integers per line. Node count is
// 1 + max(node id) unless a "# nodes N ..." header raises it.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace topogen::graph {

// Writes g as an edge list (with a summary header).
void WriteEdgeList(std::ostream& os, const Graph& g);
void WriteEdgeListFile(const std::string& path, const Graph& g);

// Parses an edge list; throws std::runtime_error on malformed input.
Graph ReadEdgeList(std::istream& is);
Graph ReadEdgeListFile(const std::string& path);

}  // namespace topogen::graph
