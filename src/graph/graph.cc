#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace topogen::graph {

namespace {

// Stable counting sort of 64-bit edge keys on the 32-bit digit selected by
// `shift`. The digit is a node id, so the histogram has `num_nodes` buckets
// and each pass is O(m + n) — no comparisons. Sorting by the low digit (v)
// and then the high digit (u) yields keys ordered by (u, v), and stability
// makes the result (and therefore edge ids) deterministic.
void CountingSortByNodeDigit(std::vector<std::uint64_t>& keys,
                             std::vector<std::uint64_t>& scratch,
                             std::vector<std::uint32_t>& count,
                             NodeId num_nodes, unsigned shift) {
  std::fill(count.begin(), count.end(), 0);
  for (std::uint64_t k : keys) {
    ++count[static_cast<NodeId>(k >> shift)];
  }
  std::uint32_t running = 0;
  for (NodeId d = 0; d < num_nodes; ++d) {
    const std::uint32_t c = count[d];
    count[d] = running;
    running += c;
  }
  scratch.resize(keys.size());
  for (std::uint64_t k : keys) {
    scratch[count[static_cast<NodeId>(k >> shift)]++] = k;
  }
  keys.swap(scratch);
}

}  // namespace

Graph Graph::FromEdges(NodeId num_nodes, std::vector<Edge> edges) {
  // Canonicalize into flat 64-bit keys (u << 32 | v with u < v), dropping
  // self-loops. Keys pack both endpoints so the whole pipeline below runs on
  // one contiguous array instead of an array of structs.
  std::vector<std::uint64_t> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (e.u >= num_nodes || e.v >= num_nodes) {
      throw std::out_of_range("Graph::FromEdges: endpoint out of range");
    }
    NodeId u = e.u;
    NodeId v = e.v;
    if (u > v) std::swap(u, v);
    keys.push_back(static_cast<std::uint64_t>(u) << 32 | v);
  }
  edges.clear();
  edges.shrink_to_fit();

  // Two-pass LSD radix sort with node-id digits: by v, then stably by u.
  // Replaces the old comparison sort (O(m log m)) with O(m + n) work.
  {
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint32_t> count(num_nodes, 0);
    CountingSortByNodeDigit(keys, scratch, count, num_nodes, 0);
    CountingSortByNodeDigit(keys, scratch, count, num_nodes, 32);
  }
  // Parallel edges are now adjacent; collapse them.
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  Graph g;
  g.num_nodes_ = num_nodes;
  g.edges_.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    g.edges_[i] = {static_cast<NodeId>(keys[i] >> 32),
                   static_cast<NodeId>(keys[i])};
  }

  // Degree counting pass, then CSR fill.
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId i = 0; i < num_nodes; ++i) g.offsets_[i + 1] += g.offsets_[i];

  g.adjacency_.resize(2 * g.edges_.size());
  g.adjacent_edge_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // Each node's neighbor list is its lower neighbors (where it appears as v)
  // followed by its upper neighbors (where it appears as u). Because edges
  // are sorted by (u, v), one scan placing the v-side entries and a second
  // placing the u-side entries emits both groups in ascending order — the
  // list comes out fully sorted with edge ids aligned, no per-node re-sort.
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[cursor[e.v]] = e.u;
    g.adjacent_edge_[cursor[e.v]++] = id;
  }
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[cursor[e.u]] = e.v;
    g.adjacent_edge_[cursor[e.u]++] = id;
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return edge_id(u, v) != kInvalidEdge;
}

EdgeId Graph::edge_id(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return kInvalidEdge;
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nb = neighbors(u);
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return kInvalidEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nb.begin())];
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, degree(u));
  return best;
}

std::size_t Graph::count_degree(std::size_t d) const {
  std::size_t count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (degree(u) == d) ++count;
  }
  return count;
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << "n=" << num_nodes_ << " m=" << num_edges()
     << " avg_deg=" << average_degree();
  return os.str();
}

Graph GraphBuilder::Build() && {
  return Graph::FromEdges(num_nodes_, std::move(edges_));
}

Subgraph InducedSubgraph(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  Subgraph out;
  out.original_id.assign(nodes.begin(), nodes.end());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    assert(remap[nodes[i]] == kInvalidNode && "duplicate node in subset");
    remap[nodes[i]] = i;
  }
  std::vector<Edge> edges;
  for (NodeId orig : nodes) {
    const NodeId nu = remap[orig];
    for (NodeId nb : g.neighbors(orig)) {
      const NodeId nv = remap[nb];
      if (nv != kInvalidNode && nu < nv) edges.push_back({nu, nv});
    }
  }
  out.graph = Graph::FromEdges(static_cast<NodeId>(nodes.size()),
                               std::move(edges));
  return out;
}

}  // namespace topogen::graph
