#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace topogen::graph {

Graph Graph::FromEdges(NodeId num_nodes, std::vector<Edge> edges) {
  // Canonicalize endpoints and drop self-loops.
  std::vector<Edge> clean;
  clean.reserve(edges.size());
  for (Edge e : edges) {
    if (e.u == e.v) continue;
    if (e.u >= num_nodes || e.v >= num_nodes) {
      throw std::out_of_range("Graph::FromEdges: endpoint out of range");
    }
    if (e.u > e.v) std::swap(e.u, e.v);
    clean.push_back(e);
  }
  std::sort(clean.begin(), clean.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());

  Graph g;
  g.num_nodes_ = num_nodes;
  g.edges_ = std::move(clean);

  // Degree counting pass, then CSR fill.
  g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (NodeId i = 0; i < num_nodes; ++i) g.offsets_[i + 1] += g.offsets_[i];

  g.adjacency_.resize(2 * g.edges_.size());
  g.adjacent_edge_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[cursor[e.u]] = e.v;
    g.adjacent_edge_[cursor[e.u]++] = id;
    g.adjacency_[cursor[e.v]] = e.u;
    g.adjacent_edge_[cursor[e.v]++] = id;
  }
  // Neighbor lists come out sorted because edges were sorted by (u, v) and
  // each node's slots are filled in edge order -- true for the 'u' side, but
  // the 'v' side interleaves, so sort each list (keeping edge ids aligned).
  for (NodeId u = 0; u < num_nodes; ++u) {
    const std::size_t lo = g.offsets_[u];
    const std::size_t hi = g.offsets_[u + 1];
    // Sort (neighbor, edge id) pairs by neighbor.
    std::vector<std::pair<NodeId, EdgeId>> tmp;
    tmp.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      tmp.emplace_back(g.adjacency_[i], g.adjacent_edge_[i]);
    }
    std::sort(tmp.begin(), tmp.end());
    for (std::size_t i = lo; i < hi; ++i) {
      g.adjacency_[i] = tmp[i - lo].first;
      g.adjacent_edge_[i] = tmp[i - lo].second;
    }
  }
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  return edge_id(u, v) != kInvalidEdge;
}

EdgeId Graph::edge_id(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return kInvalidEdge;
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nb = neighbors(u);
  auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return kInvalidEdge;
  return incident_edges(u)[static_cast<std::size_t>(it - nb.begin())];
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) best = std::max(best, degree(u));
  return best;
}

std::size_t Graph::count_degree(std::size_t d) const {
  std::size_t count = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (degree(u) == d) ++count;
  }
  return count;
}

std::string Graph::Summary() const {
  std::ostringstream os;
  os << "n=" << num_nodes_ << " m=" << num_edges()
     << " avg_deg=" << average_degree();
  return os.str();
}

Graph GraphBuilder::Build() && {
  return Graph::FromEdges(num_nodes_, std::move(edges_));
}

Subgraph InducedSubgraph(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  Subgraph out;
  out.original_id.assign(nodes.begin(), nodes.end());
  for (NodeId i = 0; i < nodes.size(); ++i) {
    assert(remap[nodes[i]] == kInvalidNode && "duplicate node in subset");
    remap[nodes[i]] = i;
  }
  std::vector<Edge> edges;
  for (NodeId orig : nodes) {
    const NodeId nu = remap[orig];
    for (NodeId nb : g.neighbors(orig)) {
      const NodeId nv = remap[nb];
      if (nv != kInvalidNode && nu < nv) edges.push_back({nu, nv});
    }
  }
  out.graph = Graph::FromEdges(static_cast<NodeId>(nodes.size()),
                               std::move(edges));
  return out;
}

}  // namespace topogen::graph
