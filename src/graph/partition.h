// Balanced-bipartition minimum cut (graph bisection).
//
// The paper's resilience metric R(n) is "the average minimum cut-set size
// for a balanced bi-partition" of ball subgraphs (Section 3.2.1). Finding
// that cut is NP-hard; the paper uses the multilevel heuristics of Karypis
// and Kumar [25] (METIS). This module implements the same algorithmic
// family from scratch:
//
//   1. coarsening by randomized heavy-edge matching,
//   2. initial partition by greedy graph growing on the coarsest graph,
//   3. uncoarsening with Fiduccia-Mattheyses boundary refinement.
//
// "Balanced" follows the common 1/3 - 2/3 relaxation: each side must hold
// at least one third of the total node weight. (The paper says each side
// has "approximately n/2" nodes; the relaxation is what makes a tree's
// optimal cut of a single edge findable at all, and the paper itself notes
// its R(n) for trees is 1.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::graph {

struct BisectionResult {
  // Total weight of edges crossing the partition.
  std::uint64_t cut = 0;
  // side[v] in {0, 1}.
  std::vector<std::uint8_t> side;
};

struct BisectionOptions {
  // Independent multilevel runs; the best cut wins.
  int num_trials = 4;
  // Minimum fraction of total node weight on the lighter side.
  double min_side_fraction = 1.0 / 3.0;
  // Stop coarsening below this many nodes.
  std::size_t coarsest_size = 24;
  // FM refinement passes per uncoarsening level.
  int refinement_passes = 4;
};

// Best balanced bisection found for g. For graphs with fewer than 2 nodes
// the cut is 0 and all nodes land on side 0.
BisectionResult BalancedBisection(const Graph& g, Rng& rng,
                                  const BisectionOptions& options = {});

// Convenience: just the cut size.
std::uint64_t BalancedMinCut(const Graph& g, Rng& rng,
                             const BisectionOptions& options = {});

}  // namespace topogen::graph
