#include "graph/partition.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "obs/obs.h"

namespace topogen::graph {
namespace {

// Weighted working graph used through the multilevel hierarchy. Node and
// edge weights start at 1 and grow as matchings collapse vertices.
struct LevelGraph {
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;
  std::vector<std::uint32_t> node_weight;

  std::size_t size() const { return node_weight.size(); }
  std::uint64_t total_weight() const {
    return std::accumulate(node_weight.begin(), node_weight.end(),
                           std::uint64_t{0});
  }
};

LevelGraph FromGraph(const Graph& g) {
  LevelGraph lg;
  lg.adj.resize(g.num_nodes());
  lg.node_weight.assign(g.num_nodes(), 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    lg.adj[u].reserve(g.degree(u));
    for (NodeId v : g.neighbors(u)) lg.adj[u].push_back({v, 1});
  }
  return lg;
}

// Heavy-edge matching coarsening. Returns the coarse graph and fills
// coarse_of (fine node -> coarse node).
LevelGraph Coarsen(const LevelGraph& fine, Rng& rng,
                   std::vector<std::uint32_t>& coarse_of) {
  const std::size_t n = fine.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> match(n, kUnmatched);
  for (std::uint32_t u : order) {
    if (match[u] != kUnmatched) continue;
    std::uint32_t best = kUnmatched;
    std::uint32_t best_w = 0;
    for (auto [v, w] : fine.adj[u]) {
      if (match[v] == kUnmatched && w > best_w) {
        best = v;
        best_w = w;
      }
    }
    if (best != kUnmatched) {
      match[u] = best;
      match[best] = u;
    } else {
      match[u] = u;  // stays alone
    }
  }

  coarse_of.assign(n, kUnmatched);
  std::uint32_t next = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (coarse_of[u] != kUnmatched) continue;
    coarse_of[u] = next;
    if (match[u] != u) coarse_of[match[u]] = next;
    ++next;
  }

  LevelGraph coarse;
  coarse.adj.resize(next);
  coarse.node_weight.assign(next, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    coarse.node_weight[coarse_of[u]] += fine.node_weight[u];
  }
  // Merge adjacency; a small local map per coarse node keeps this linear in
  // the number of fine edges.
  std::unordered_map<std::uint32_t, std::uint32_t> acc;
  std::vector<bool> done(next, false);
  for (std::uint32_t u = 0; u < n; ++u) {
    const std::uint32_t cu = coarse_of[u];
    if (done[cu]) continue;
    acc.clear();
    auto absorb = [&](std::uint32_t fine_node) {
      for (auto [v, w] : fine.adj[fine_node]) {
        const std::uint32_t cv = coarse_of[v];
        if (cv != cu) acc[cv] += w;
      }
    };
    absorb(u);
    if (match[u] != u) absorb(match[u]);
    coarse.adj[cu].assign(acc.begin(), acc.end());
    done[cu] = true;
  }
  return coarse;
}

std::uint64_t CutWeight(const LevelGraph& g,
                        const std::vector<std::uint8_t>& side) {
  std::uint64_t cut = 0;
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (auto [v, w] : g.adj[u]) {
      if (u < v && side[u] != side[v]) cut += w;
    }
  }
  return cut;
}

// Greedy graph growing: grow side 1 from a random seed, always absorbing
// the frontier vertex with the highest gain, until the grown side holds
// roughly half the weight.
std::vector<std::uint8_t> GrowInitialPartition(const LevelGraph& g, Rng& rng,
                                               double min_side_fraction) {
  const std::size_t n = g.size();
  const std::uint64_t total = g.total_weight();
  const auto target = static_cast<std::uint64_t>(
      static_cast<double>(total) * 0.5);
  // Never let rounding relax the constraint to "a side may be empty".
  const std::uint64_t min_side = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(total) *
                                    min_side_fraction));

  std::vector<std::uint8_t> side(n, 0);
  std::vector<std::int64_t> gain(n, 0);
  std::vector<std::uint8_t> in_frontier(n, 0);
  // Max-heap of (gain, node) with lazy invalidation.
  std::priority_queue<std::pair<std::int64_t, std::uint32_t>> heap;

  const auto seed = static_cast<std::uint32_t>(rng.NextIndex(n));
  std::uint64_t grown = 0;
  auto absorb = [&](std::uint32_t u) {
    side[u] = 1;
    grown += g.node_weight[u];
    for (auto [v, w] : g.adj[u]) {
      if (side[v] == 1) continue;
      gain[v] += 2 * static_cast<std::int64_t>(w);
      in_frontier[v] = 1;
      heap.push({gain[v], v});
    }
  };
  // Gain of absorbing v = (edges into grown side) - (edges staying outside);
  // initialize as -deg and bump by 2w per grown neighbor.
  for (std::size_t v = 0; v < n; ++v) {
    std::int64_t dw = 0;
    for (auto [nb, w] : g.adj[v]) {
      (void)nb;
      dw += w;
    }
    gain[v] = -dw;
  }
  absorb(seed);
  while (grown < std::max(target, min_side) && !heap.empty()) {
    auto [gval, u] = heap.top();
    heap.pop();
    if (side[u] == 1 || gval != gain[u]) continue;  // stale entry
    absorb(u);
  }
  // Disconnected coarse graphs can exhaust the frontier early; top up with
  // arbitrary remaining vertices to restore balance.
  for (std::size_t v = 0; v < n && grown < min_side; ++v) {
    if (side[v] == 0) {
      side[v] = 1;
      grown += g.node_weight[v];
    }
  }
  return side;
}

// One Fiduccia-Mattheyses pass with rollback to the best prefix of moves.
// Returns true if the cut improved.
bool FmPass(const LevelGraph& g, std::vector<std::uint8_t>& side,
            std::uint64_t& cut, double min_side_fraction) {
  TOPOGEN_COUNT("graph.fm_refinement_passes");
  const std::size_t n = g.size();
  const std::uint64_t total = g.total_weight();
  const std::uint64_t min_side = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(total) *
                                    min_side_fraction));

  std::uint64_t side_weight[2] = {0, 0};
  for (std::size_t v = 0; v < n; ++v) side_weight[side[v]] += g.node_weight[v];

  // gain(v) = external weight - internal weight.
  std::vector<std::int64_t> gain(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (auto [v, w] : g.adj[u]) {
      gain[u] += side[u] != side[v] ? static_cast<std::int64_t>(w)
                                    : -static_cast<std::int64_t>(w);
    }
  }
  std::priority_queue<std::pair<std::int64_t, std::uint32_t>> heap;
  for (std::uint32_t v = 0; v < n; ++v) heap.push({gain[v], v});

  std::vector<std::uint8_t> locked(n, 0);
  std::vector<std::uint32_t> moves;
  moves.reserve(n);
  std::int64_t running = 0, best_delta = 0;
  std::size_t best_prefix = 0;

  while (!heap.empty()) {
    auto [gval, u] = heap.top();
    heap.pop();
    if (locked[u] || gval != gain[u]) continue;
    const std::uint8_t from = side[u];
    if (side_weight[from] < g.node_weight[u] + min_side) continue;  // balance
    // Apply the move.
    locked[u] = 1;
    side[u] = 1 - from;
    side_weight[from] -= g.node_weight[u];
    side_weight[1 - from] += g.node_weight[u];
    running += gain[u];
    gain[u] = -gain[u];
    for (auto [v, w] : g.adj[u]) {
      if (locked[v]) continue;
      // u switched sides: edges to v flip internal/external status.
      gain[v] += side[v] == side[u] ? -2 * static_cast<std::int64_t>(w)
                                    : 2 * static_cast<std::int64_t>(w);
      heap.push({gain[v], v});
    }
    moves.push_back(u);
    if (running > best_delta) {
      best_delta = running;
      best_prefix = moves.size();
    }
    // A full FM pass tries every vertex, but on large levels restricting to
    // a generous cap keeps refinement near-linear without hurting quality.
    if (moves.size() >= n) break;
  }
  // Roll back moves beyond the best prefix.
  for (std::size_t i = moves.size(); i > best_prefix; --i) {
    const std::uint32_t u = moves[i - 1];
    side[u] = 1 - side[u];
  }
  if (best_delta > 0) {
    cut -= static_cast<std::uint64_t>(best_delta);
    return true;
  }
  return false;
}

BisectionResult RunOnce(const Graph& g, Rng& rng,
                        const BisectionOptions& options) {
  TOPOGEN_COUNT("graph.bisection_trials");
  // Build the multilevel hierarchy.
  std::vector<LevelGraph> levels;
  std::vector<std::vector<std::uint32_t>> mappings;  // fine -> coarse
  levels.push_back(FromGraph(g));
  while (levels.back().size() > options.coarsest_size) {
    std::vector<std::uint32_t> coarse_of;
    LevelGraph coarse = Coarsen(levels.back(), rng, coarse_of);
    if (coarse.size() >= levels.back().size() * 95 / 100) break;  // stalled
    levels.push_back(std::move(coarse));
    mappings.push_back(std::move(coarse_of));
  }

  std::vector<std::uint8_t> side =
      GrowInitialPartition(levels.back(), rng, options.min_side_fraction);
  std::uint64_t cut = CutWeight(levels.back(), side);
  for (int p = 0; p < options.refinement_passes; ++p) {
    if (!FmPass(levels.back(), side, cut, options.min_side_fraction)) break;
  }

  // Uncoarsen with refinement at every level.
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<std::uint32_t>& map = mappings[level];
    std::vector<std::uint8_t> fine_side(levels[level].size());
    for (std::size_t v = 0; v < fine_side.size(); ++v) {
      fine_side[v] = side[map[v]];
    }
    side = std::move(fine_side);
    cut = CutWeight(levels[level], side);
    for (int p = 0; p < options.refinement_passes; ++p) {
      if (!FmPass(levels[level], side, cut, options.min_side_fraction)) break;
    }
  }

  BisectionResult result;
  result.cut = cut;
  result.side = std::move(side);
  return result;
}

}  // namespace

BisectionResult BalancedBisection(const Graph& g, Rng& rng,
                                  const BisectionOptions& options) {
  obs::Span span("graph.bisection", "graph");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  BisectionResult best;
  if (g.num_nodes() < 2) {
    best.side.assign(g.num_nodes(), 0);
    return best;
  }
  for (int trial = 0; trial < std::max(1, options.num_trials); ++trial) {
    BisectionResult r = RunOnce(g, rng, options);
    if (trial == 0 || r.cut < best.cut) best = std::move(r);
  }
  return best;
}

std::uint64_t BalancedMinCut(const Graph& g, Rng& rng,
                             const BisectionOptions& options) {
  return BalancedBisection(g, rng, options).cut;
}

}  // namespace topogen::graph
