#include "graph/bfs.h"

#include <algorithm>
#include <bit>

#include "core/memory_budget.h"
#include "graph/bfs_scratch.h"
#include "obs/stats.h"

namespace topogen::graph {

namespace {

// Direction-optimization crossover (after Beamer et al.,
// "Direction-Optimizing Breadth-First Search", adapted with an explicit
// cost model -- docs/PERFORMANCE.md). Expanding a frontier top-down
// scans exactly frontier_edges endpoints. Scanning it bottom-up visits
// every unvisited node and probes its neighbors until one lands on the
// frontier; with frontier_edges of the graph's 2m endpoints on the
// frontier, that's ~2m/frontier_edges probes per node, plus the O(n)
// range scan itself. Bottom-up wins only when
//
//   frontier_edges > kBottomUpMargin * (unvisited * 2m / frontier_edges + n)
//
// i.e. on dense levels where the frontier holds most remaining edges
// (Erdos-Renyi cores, complete graphs), and never on sparse power-law
// tails where the O(n) scan would swamp the saved edge probes. Every
// input is a pure function of (graph, source), so the flip is identical
// at every thread count. The evaluation itself (a degree sum over the
// frontier) only runs once the frontier holds at least n /
// kBottomUpFrontierGate nodes -- smaller frontiers can't win.
constexpr std::uint64_t kBottomUpMargin = 2;
constexpr std::size_t kBottomUpFrontierGate = 32;

// Above this node count, bottom-up levels run on bitmaps: the unvisited
// scan walks packed visited words (skipping fully-visited words 64 nodes
// at a time) and each parent probe reads one frontier bit instead of an
// 8-byte mark. At million-node scale the mark array alone is ~8 MB --
// every dense level thrashes LLC -- while the two bitmaps are ~n/8 bytes
// each and stay resident. Below the gate the plain mark scan is already
// cache-resident and cheaper than building bitmaps.
constexpr std::size_t kBitmapNodeGate = 16384;

// Allocation accounting is unconditional (not TOPOGEN_COUNT-gated):
// growth events are rare by design -- a handful per thread lifetime --
// and the zero-allocation regression tests and BENCH.json need the
// counters without any TOPOGEN_* environment set.
obs::Counter& AllocCounter() {
  static obs::Counter& c = obs::Stats::GetCounter("graph.bfs_alloc");
  return c;
}
obs::Counter& AllocBytesCounter() {
  static obs::Counter& c = obs::Stats::GetCounter("graph.bfs_alloc_bytes");
  return c;
}
obs::Counter& BottomUpStepsCounter() {
  static obs::Counter& c = obs::Stats::GetCounter("graph.bfs_bottomup_steps");
  return c;
}
obs::Counter& BitmapStepsCounter() {
  static obs::Counter& c = obs::Stats::GetCounter("graph.bfs_bitmap_steps");
  return c;
}

}  // namespace

namespace detail {

struct BfsEngine {
  enum class Mode {
    // Hybrid frontier step; order() only sorted by distance.
    kDirectionOptimizing,
    // Pure top-down; order() is the historical queue discovery order.
    kExactOrder,
  };

  static void Begin(BfsScratch& s, const Graph& g, bool want_sigma) {
    const std::size_t n = g.num_nodes();
    s.n_ = n;
    std::uint64_t grown_bytes = 0;
    if (s.mark_.size() < n) {
      grown_bytes += static_cast<std::uint64_t>(n - s.mark_.size()) *
                     (sizeof(std::uint64_t) + sizeof(NodeId));
      s.mark_.resize(n, 0);
      s.order_.reserve(n);
    }
    if (want_sigma && s.sigma_.size() < n) {
      grown_bytes += static_cast<std::uint64_t>(n - s.sigma_.size()) *
                     sizeof(double);
      s.sigma_.resize(n);
    }
    if (grown_bytes > 0) {
      AllocCounter().Increment();
      AllocBytesCounter().Add(grown_bytes);
      // Scratch pools only ever grow (monotonic per-thread arenas), so
      // the budget charge is never released -- it tracks the pools' true
      // residency (core/memory_budget.h).
      core::MemoryBudget::Get().Charge(core::MemCategory::kScratch,
                                       grown_bytes);
    }
    ++s.epoch_;
    if (s.epoch_ == 0) {  // epoch wrapped: every mark is ambiguous once
      std::fill(s.mark_.begin(), s.mark_.end(), 0u);
      s.epoch_ = 1;
    }
    s.order_.clear();
    s.level_counts_.clear();
    s.sum_depths_ = 0;
  }

  static void Sweep(const Graph& g, NodeId src, BfsScratch& s,
                    Dist max_depth, Mode mode, bool with_sigma,
                    std::size_t max_nodes = 0) {
    TOPOGEN_COUNT("graph.bfs_runs");
    TOPOGEN_HIST_SCOPE("graph.bfs_ns");
    Begin(s, g, with_sigma);
    const std::size_t n = g.num_nodes();
    if (src >= n) return;

    // Marks from any earlier epoch compare strictly below `tag`, so the
    // unvisited test is a single 64-bit compare.
    const std::uint64_t tag = static_cast<std::uint64_t>(s.epoch_) << 32;
    auto visit = [&](NodeId v, Dist d) {
      s.mark_[v] = tag | d;
      s.order_.push_back(v);
    };

    visit(src, 0);
    if (with_sigma) s.sigma_[src] = 1.0;
    s.level_counts_.push_back(1);

    std::size_t level_begin = 0;
    Dist depth = 0;
    bool bottom_up = false;
    std::uint64_t bottom_up_levels = 0;
    std::uint64_t bitmap_levels = 0;
    // The early-exit budget cuts at level boundaries only (bfs.h): the
    // check sits at the same place as the max_depth check, so a level
    // either expands in full or not at all.
    while (level_begin < s.order_.size() && depth < max_depth &&
           (max_nodes == 0 || s.order_.size() < max_nodes)) {
      const std::size_t level_end = s.order_.size();
      bottom_up = false;
      if (mode == Mode::kDirectionOptimizing &&
          level_end - level_begin >= n / kBottomUpFrontierGate) {
        // Cost model above. The degree sum is batched here instead of
        // accumulated per discovery: it keeps the discovery loops tight,
        // and scanning the frontier's CSR offsets right before expansion
        // warms them anyway.
        std::uint64_t frontier_edges = 0;
        for (std::size_t i = level_begin; i < level_end; ++i) {
          frontier_edges += g.degree(s.order_[i]);
        }
        const std::uint64_t unvisited = n - level_end;
        const std::uint64_t endpoints = 2 * g.num_edges();
        bottom_up = frontier_edges * frontier_edges >
                    kBottomUpMargin *
                        (unvisited * endpoints + n * frontier_edges);
      }
      if (bottom_up && n >= kBitmapNodeGate) {
        // Bitmap bottom-up (see kBitmapNodeGate): snapshot the visited set
        // and the frontier into packed bitmaps, then walk unvisited nodes
        // word-at-a-time. Node visit order is still ascending v and the
        // frontier bit test equals the mark comparison, so results are
        // bit-identical to the mark-scan branch.
        ++bottom_up_levels;
        ++bitmap_levels;
        const std::size_t words = (n + 63) / 64;
        std::uint64_t grown_bytes = 0;
        if (s.frontier_bits_.capacity() < words) {
          grown_bytes += 2 * (words - s.frontier_bits_.capacity()) *
                         sizeof(std::uint64_t);
        }
        s.frontier_bits_.assign(words, 0);
        s.visited_bits_.assign(words, 0);
        if (grown_bytes > 0) {
          AllocCounter().Increment();
          AllocBytesCounter().Add(grown_bytes);
          core::MemoryBudget::Get().Charge(core::MemCategory::kScratch,
                                           grown_bytes);
        }
        for (std::size_t i = 0; i < level_end; ++i) {
          const NodeId v = s.order_[i];
          s.visited_bits_[v >> 6] |= 1ull << (v & 63);
        }
        for (std::size_t i = level_begin; i < level_end; ++i) {
          const NodeId v = s.order_[i];
          s.frontier_bits_[v >> 6] |= 1ull << (v & 63);
        }
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t todo = ~s.visited_bits_[w];
          if (w == words - 1 && (n & 63) != 0) {
            todo &= (1ull << (n & 63)) - 1;  // mask tail bits past n
          }
          while (todo != 0) {
            const auto v = static_cast<NodeId>(
                w * 64 + static_cast<unsigned>(std::countr_zero(todo)));
            todo &= todo - 1;
            for (const NodeId u : g.neighbors(v)) {
              if ((s.frontier_bits_[u >> 6] >> (u & 63)) & 1u) {
                visit(v, depth + 1);
                break;
              }
            }
          }
        }
      } else if (bottom_up) {
        // Bottom-up: every unvisited node searches its neighbors for a
        // parent on the current frontier and stops at the first hit --
        // on dense levels this touches far fewer edges than expanding
        // the frontier. Frontier membership is the O(1) stamp+depth
        // test, so no bitmap needs zeroing.
        ++bottom_up_levels;
        const std::uint64_t frontier_mark = tag | depth;
        for (NodeId v = 0; v < n; ++v) {
          if (s.mark_[v] >= tag) continue;  // already visited
          for (const NodeId u : g.neighbors(v)) {
            if (s.mark_[u] == frontier_mark) {
              visit(v, depth + 1);
              break;
            }
          }
        }
      } else if (with_sigma) {
        const std::uint64_t next_mark = tag | (depth + 1);
        for (std::size_t i = level_begin; i < level_end; ++i) {
          const NodeId u = s.order_[i];
          // sigma_[u] is final here: contributions only flow from level
          // d to level d+1, and all of u's predecessors precede u.
          const double su = s.sigma_[u];
          for (const NodeId v : g.neighbors(u)) {
            const std::uint64_t m = s.mark_[v];
            if (m < tag) {
              visit(v, depth + 1);
              s.sigma_[v] = su;  // first predecessor: 0.0 + su exactly
            } else if (m == next_mark) {
              s.sigma_[v] += su;
            }
          }
        }
      } else {
        for (std::size_t i = level_begin; i < level_end; ++i) {
          for (const NodeId v : g.neighbors(s.order_[i])) {
            if (s.mark_[v] < tag) visit(v, depth + 1);
          }
        }
      }
      level_begin = level_end;
      ++depth;
      if (s.order_.size() > level_end) {
        const std::size_t count = s.order_.size() - level_end;
        s.level_counts_.push_back(count);
        s.sum_depths_ += static_cast<std::uint64_t>(depth) * count;
      }
    }
    if (bottom_up_levels > 0) BottomUpStepsCounter().Add(bottom_up_levels);
    if (bitmap_levels > 0) BitmapStepsCounter().Add(bitmap_levels);
  }
};

}  // namespace detail

using Mode = detail::BfsEngine::Mode;

void BfsDistancesInto(const Graph& g, NodeId src, BfsScratch& scratch,
                      Dist max_depth, std::size_t max_nodes) {
  detail::BfsEngine::Sweep(g, src, scratch, max_depth,
                           Mode::kDirectionOptimizing, /*with_sigma=*/false,
                           max_nodes);
}

void BallInto(const Graph& g, NodeId center, Dist radius,
              BfsScratch& scratch) {
  TOPOGEN_COUNT("graph.ball_runs");
  detail::BfsEngine::Sweep(g, center, scratch, radius, Mode::kExactOrder,
                           /*with_sigma=*/false);
}

void ReachableCountsInto(const Graph& g, NodeId src, BfsScratch& scratch,
                         std::vector<std::size_t>& counts, Dist max_depth,
                         std::size_t max_nodes) {
  BfsDistancesInto(g, src, scratch, max_depth, max_nodes);
  const std::span<const std::size_t> levels = scratch.level_counts();
  counts.assign(levels.begin(), levels.end());
  for (std::size_t h = 1; h < counts.size(); ++h) counts[h] += counts[h - 1];
}

void BuildShortestPathDagInto(const Graph& g, NodeId src,
                              BfsScratch& scratch) {
  TOPOGEN_COUNT("graph.sp_dag_runs");
  detail::BfsEngine::Sweep(g, src, scratch, kUnreachable, Mode::kExactOrder,
                           /*with_sigma=*/true);
}

Dist Eccentricity(const Graph& g, NodeId src) {
  BfsScratchLease scratch = AcquireBfsScratch();
  BfsDistancesInto(g, src, *scratch);
  return scratch->eccentricity();
}

double AveragePathLength(const Graph& g, std::size_t samples) {
  const NodeId n = g.num_nodes();
  if (n < 2) return 0.0;
  const std::size_t use = std::min<std::size_t>(samples, n);
  // Deterministic spread: every ceil(n/use)-th node.
  const std::size_t stride = (n + use - 1) / use;
  BfsScratchLease scratch = AcquireBfsScratch();
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId src = 0; src < n; src += static_cast<NodeId>(stride)) {
    BfsDistancesInto(g, src, *scratch);
    // Integer depth sums stay exact in double, so this equals the
    // historical per-node accumulation bit-for-bit.
    total += static_cast<double>(scratch->sum_depths());
    pairs += scratch->reached() - 1;
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace topogen::graph
