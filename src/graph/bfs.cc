#include "graph/bfs.h"

#include <algorithm>

#include "obs/stats.h"

namespace topogen::graph {

std::vector<Dist> BfsDistances(const Graph& g, NodeId src, Dist max_depth) {
  TOPOGEN_COUNT("graph.bfs_runs");
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  if (src >= g.num_nodes()) return dist;
  std::vector<NodeId> queue;
  queue.reserve(g.num_nodes());
  dist[src] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const Dist du = dist[u];
    if (du >= max_depth) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Ball(const Graph& g, NodeId center, Dist radius) {
  TOPOGEN_COUNT("graph.ball_runs");
  std::vector<NodeId> ball;
  if (center >= g.num_nodes()) return ball;
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  dist[center] = 0;
  ball.push_back(center);
  for (std::size_t head = 0; head < ball.size(); ++head) {
    const NodeId u = ball[head];
    const Dist du = dist[u];
    if (du >= radius) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        ball.push_back(v);
      }
    }
  }
  return ball;
}

std::vector<std::size_t> ReachableCounts(const Graph& g, NodeId src,
                                         Dist max_depth) {
  std::vector<std::size_t> counts;
  if (src >= g.num_nodes()) return counts;
  const std::vector<Dist> dist = BfsDistances(g, src, max_depth);
  Dist ecc = 0;
  std::size_t reached = 0;
  for (Dist d : dist) {
    if (d != kUnreachable) {
      ++reached;
      ecc = std::max(ecc, d);
    }
  }
  counts.assign(static_cast<std::size_t>(ecc) + 1, 0);
  for (Dist d : dist) {
    if (d != kUnreachable) ++counts[d];
  }
  // Convert per-level counts into cumulative reachable-set sizes.
  for (std::size_t h = 1; h < counts.size(); ++h) counts[h] += counts[h - 1];
  return counts;
}

ShortestPathDag BuildShortestPathDag(const Graph& g, NodeId src) {
  TOPOGEN_COUNT("graph.sp_dag_runs");
  ShortestPathDag dag;
  dag.dist.assign(g.num_nodes(), kUnreachable);
  dag.sigma.assign(g.num_nodes(), 0.0);
  dag.order.clear();
  if (src >= g.num_nodes()) return dag;
  dag.dist[src] = 0;
  dag.sigma[src] = 1.0;
  dag.order.push_back(src);
  for (std::size_t head = 0; head < dag.order.size(); ++head) {
    const NodeId u = dag.order[head];
    const Dist du = dag.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (dag.dist[v] == kUnreachable) {
        dag.dist[v] = du + 1;
        dag.order.push_back(v);
      }
      if (dag.dist[v] == du + 1) dag.sigma[v] += dag.sigma[u];
    }
  }
  return dag;
}

Dist Eccentricity(const Graph& g, NodeId src) {
  const std::vector<Dist> dist = BfsDistances(g, src);
  Dist ecc = 0;
  for (Dist d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

double AveragePathLength(const Graph& g, std::size_t samples) {
  const NodeId n = g.num_nodes();
  if (n < 2) return 0.0;
  const std::size_t use = std::min<std::size_t>(samples, n);
  // Deterministic spread: every ceil(n/use)-th node.
  const std::size_t stride = (n + use - 1) / use;
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId src = 0; src < n; src += static_cast<NodeId>(stride)) {
    const std::vector<Dist> dist = BfsDistances(g, src);
    for (NodeId v = 0; v < n; ++v) {
      if (v != src && dist[v] != kUnreachable) {
        total += dist[v];
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace topogen::graph
