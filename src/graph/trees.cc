#include "graph/trees.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"

namespace topogen::graph {

SpanningTree BfsTree(const Graph& g, NodeId root) {
  SpanningTree t;
  t.root = root;
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.depth.assign(g.num_nodes(), kUnreachable);
  if (root >= g.num_nodes()) return t;
  t.parent[root] = root;
  t.depth[root] = 0;
  std::vector<NodeId> queue{root};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (NodeId v : g.neighbors(u)) {
      if (t.parent[v] == kInvalidNode) {
        t.parent[v] = u;
        t.depth[v] = t.depth[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return t;
}

namespace {

// Re-roots the subtree containing new_root (parent-vector representation)
// so that new_root becomes the subtree's root.
void RerootTree(std::vector<NodeId>& parent, NodeId new_root) {
  NodeId cur = new_root;
  NodeId prev = new_root;  // will become cur's new parent
  while (parent[cur] != cur) {
    const NodeId next = parent[cur];
    parent[cur] = prev;
    prev = cur;
    cur = next;
  }
  parent[cur] = prev;          // old root points down the reversed path
  parent[new_root] = new_root;
}

void RecomputeDepths(const std::vector<NodeId>& parent, NodeId root,
                     std::vector<Dist>& depth) {
  // Children lists from the parent vector, then BFS from the root.
  std::vector<std::vector<NodeId>> children(parent.size());
  for (NodeId v = 0; v < parent.size(); ++v) {
    if (parent[v] != kInvalidNode && parent[v] != v) {
      children[parent[v]].push_back(v);
    }
  }
  std::fill(depth.begin(), depth.end(), kUnreachable);
  depth[root] = 0;
  std::vector<NodeId> queue{root};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (NodeId c : children[u]) {
      depth[c] = depth[u] + 1;
      queue.push_back(c);
    }
  }
}

}  // namespace

SpanningTree DecompositionTree(const Graph& g, NodeId root, Rng& rng) {
  SpanningTree t;
  t.root = root;
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.depth.assign(g.num_nodes(), kUnreachable);
  if (root >= g.num_nodes()) return t;

  // Phase 1: carve the component into random-radius clusters, each with an
  // internal BFS tree rooted at its center.
  std::vector<NodeId> component;
  {
    graph::BfsScratchLease scratch = AcquireBfsScratch();
    BallInto(g, root, kUnreachable - 1, *scratch);
    const std::span<const NodeId> order = scratch->order();
    component.assign(order.begin(), order.end());
  }
  std::vector<std::uint32_t> cluster_of(g.num_nodes(), 0xffffffffu);
  std::vector<NodeId> centers;
  std::vector<NodeId> pending(component.rbegin(), component.rend());
  std::vector<NodeId> frontier;
  while (!pending.empty()) {
    // Random unassigned seed (first cluster is seeded at the root so the
    // final tree is rooted there).
    NodeId center = kInvalidNode;
    if (centers.empty()) {
      center = root;
    } else {
      const std::size_t pick = rng.NextIndex(pending.size());
      std::swap(pending[pick], pending.back());
      while (!pending.empty() &&
             cluster_of[pending.back()] != 0xffffffffu) {
        pending.pop_back();
      }
      if (pending.empty()) break;
      center = pending.back();
    }
    const auto cluster_id = static_cast<std::uint32_t>(centers.size());
    centers.push_back(center);
    // Geometric radius: small clusters dominate, occasional large ones.
    Dist radius = 1;
    while (rng.NextBool(0.5) && radius < 6) ++radius;
    // Truncated BFS over unassigned nodes only.
    cluster_of[center] = cluster_id;
    t.parent[center] = center;
    t.depth[center] = 0;
    frontier.assign(1, center);
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const NodeId u = frontier[head];
      if (t.depth[u] >= radius) continue;
      for (NodeId v : g.neighbors(u)) {
        if (cluster_of[v] == 0xffffffffu) {
          cluster_of[v] = cluster_id;
          t.parent[v] = u;
          t.depth[v] = t.depth[u] + 1;
          frontier.push_back(v);
        }
      }
    }
  }

  // Phase 2: stitch cluster trees together. BFS over the cluster graph from
  // the root's cluster; each newly reached cluster is re-rooted at the
  // endpoint of the connecting graph edge and hung below the other side.
  const std::size_t num_clusters = centers.size();
  if (num_clusters > 1) {
    std::vector<std::vector<std::pair<std::uint32_t, Edge>>> cluster_adj(
        num_clusters);
    for (const Edge& e : g.edges()) {
      const std::uint32_t cu = cluster_of[e.u];
      const std::uint32_t cv = cluster_of[e.v];
      if (cu == 0xffffffffu || cv == 0xffffffffu || cu == cv) continue;
      cluster_adj[cu].push_back({cv, e});
      cluster_adj[cv].push_back({cu, {e.v, e.u}});
    }
    std::vector<std::uint8_t> attached(num_clusters, 0);
    attached[0] = 1;
    std::vector<std::uint32_t> queue{0};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t cu = queue[head];
      for (const auto& [cv, edge] : cluster_adj[cu]) {
        if (attached[cv]) continue;
        attached[cv] = 1;
        // edge.u lives in cu, edge.v in cv.
        RerootTree(t.parent, edge.v);
        t.parent[edge.v] = edge.u;
        queue.push_back(cv);
      }
    }
  }
  RecomputeDepths(t.parent, root, t.depth);
  return t;
}

Dist TreeDistance(const SpanningTree& tree, NodeId u, NodeId v) {
  if (tree.depth[u] == kUnreachable || tree.depth[v] == kUnreachable) {
    return kUnreachable;
  }
  Dist steps = 0;
  while (u != v) {
    if (tree.depth[u] >= tree.depth[v]) {
      u = tree.parent[u];
      ++steps;
    } else {
      v = tree.parent[v];
      ++steps;
    }
  }
  return steps;
}

double TreeDistortion(const Graph& g, const SpanningTree& tree) {
  double total = 0.0;
  std::size_t counted = 0;
  for (const Edge& e : g.edges()) {
    const Dist d = TreeDistance(tree, e.u, e.v);
    if (d == kUnreachable) continue;
    total += d;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

NodeId ApproxBetweennessCenter(const Graph& g, std::size_t samples,
                               Rng& rng) {
  const NodeId n = g.num_nodes();
  if (n == 0) return kInvalidNode;
  std::vector<double> centrality(n, 0.0);
  std::vector<double> delta(n, 0.0);
  const std::size_t use = std::min<std::size_t>(samples, n);
  std::vector<NodeId> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  if (use < n) std::shuffle(sources.begin(), sources.end(), rng.engine());
  BfsScratchLease scratch = AcquireBfsScratch();
  for (std::size_t i = 0; i < use; ++i) {
    const NodeId s = sources[i];
    BuildShortestPathDagInto(g, s, *scratch);
    const BfsScratch& dag = *scratch;
    std::fill(delta.begin(), delta.end(), 0.0);
    // Brandes backward accumulation. dist() folds the historical
    // dist != kUnreachable guard into one compare: an unvisited v reads
    // kUnreachable, which wraps to 0 under + 1 and dw >= 1 here (the
    // source -- the only dw == 0 node, with no predecessors and no
    // centrality of its own -- is skipped).
    for (std::size_t j = dag.order().size(); j-- > 0;) {
      const NodeId w = dag.order()[j];
      const Dist dw = dag.dist(w);
      if (dw == 0) continue;
      for (NodeId v : g.neighbors(w)) {
        if (dag.dist(v) + 1 == dw) {
          delta[v] += dag.sigma_visited(v) / dag.sigma_visited(w) *
                      (1.0 + delta[w]);
        }
      }
      centrality[w] += delta[w];
    }
  }
  return static_cast<NodeId>(
      std::max_element(centrality.begin(), centrality.end()) -
      centrality.begin());
}

double BestDistortion(const Graph& g, Rng& rng, std::size_t center_samples) {
  if (g.num_edges() == 0) return 0.0;
  const NodeId center = ApproxBetweennessCenter(g, center_samples, rng);

  std::vector<NodeId> roots{center};
  // Highest-degree nodes are natural hubs for BFS trees on power-law
  // graphs; add the top two if distinct from the center.
  NodeId best_deg = 0, second_deg = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(best_deg)) {
      second_deg = best_deg;
      best_deg = v;
    } else if (g.degree(v) > g.degree(second_deg) || second_deg == best_deg) {
      second_deg = v;
    }
  }
  for (NodeId r : {best_deg, second_deg}) {
    if (std::find(roots.begin(), roots.end(), r) == roots.end()) {
      roots.push_back(r);
    }
  }

  double best = std::numeric_limits<double>::infinity();
  for (NodeId r : roots) {
    best = std::min(best, TreeDistortion(g, BfsTree(g, r)));
  }
  for (int trial = 0; trial < 2; ++trial) {
    best = std::min(best, TreeDistortion(g, DecompositionTree(g, center, rng)));
  }
  return best;
}

}  // namespace topogen::graph
