#include "graph/components.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"

namespace topogen::graph {

ComponentInfo ConnectedComponents(const Graph& g) {
  ComponentInfo info;
  info.component_of.assign(g.num_nodes(), 0xffffffffu);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (info.component_of[start] != 0xffffffffu) continue;
    const auto comp = static_cast<std::uint32_t>(info.count++);
    std::size_t size = 0;
    queue.clear();
    queue.push_back(start);
    info.component_of[start] = comp;
    while (!queue.empty()) {
      const NodeId u = queue.back();
      queue.pop_back();
      ++size;
      for (NodeId v : g.neighbors(u)) {
        if (info.component_of[v] == 0xffffffffu) {
          info.component_of[v] = comp;
          queue.push_back(v);
        }
      }
    }
    info.sizes.push_back(size);
  }
  return info;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return ConnectedComponents(g).count == 1;
}

Subgraph LargestComponent(const Graph& g) {
  const ComponentInfo info = ConnectedComponents(g);
  if (info.count <= 1) {
    std::vector<NodeId> all(g.num_nodes());
    std::iota(all.begin(), all.end(), 0);
    return InducedSubgraph(g, all);
  }
  const std::size_t best =
      static_cast<std::size_t>(std::max_element(info.sizes.begin(),
                                                info.sizes.end()) -
                               info.sizes.begin());
  std::vector<NodeId> nodes;
  nodes.reserve(info.sizes[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (info.component_of[v] == best) nodes.push_back(v);
  }
  return InducedSubgraph(g, nodes);
}

namespace {

// Shared iterative DFS for biconnectivity. Visits every component, tracking
// discovery and low-link values; reports biconnected components through the
// tree-edge condition low[child] >= disc[parent].
struct BiconnectivityResult {
  std::size_t biconnected_components = 0;
  std::size_t articulation_points = 0;
};

BiconnectivityResult RunBiconnectivity(const Graph& g) {
  const NodeId n = g.num_nodes();
  BiconnectivityResult out;
  std::vector<Dist> disc(n, 0), low(n, 0);
  std::vector<bool> visited(n, false), is_cut(n, false);
  // DFS frame: node, index into its adjacency, parent edge id.
  struct Frame {
    NodeId node;
    std::size_t next_neighbor;
    EdgeId parent_edge;
  };
  std::vector<Frame> stack;
  // Edge stack drives component counting: every time a component closes we
  // pop its edges. Edges are pushed when first traversed in either
  // direction; a per-edge flag prevents double pushes.
  std::vector<EdgeId> edge_stack;
  std::vector<bool> edge_seen(g.num_edges(), false);
  Dist timer = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    disc[root] = low[root] = ++timer;
    stack.push_back({root, 0, kInvalidEdge});
    std::size_t root_children = 0;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const NodeId u = f.node;
      const auto nbrs = g.neighbors(u);
      const auto eids = g.incident_edges(u);
      if (f.next_neighbor < nbrs.size()) {
        const std::size_t i = f.next_neighbor++;
        const NodeId v = nbrs[i];
        const EdgeId e = eids[i];
        if (e == f.parent_edge) continue;
        if (!edge_seen[e]) {
          edge_seen[e] = true;
          edge_stack.push_back(e);
        }
        if (!visited[v]) {
          visited[v] = true;
          disc[v] = low[v] = ++timer;
          if (u == root) ++root_children;
          stack.push_back({v, 0, e});
        } else {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        const EdgeId up_edge = f.parent_edge;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& pf = stack.back();
          const NodeId p = pf.node;
          low[p] = std::min(low[p], low[u]);
          if (low[u] >= disc[p]) {
            // Close the biconnected component rooted at tree edge (p, u).
            ++out.biconnected_components;
            while (!edge_stack.empty() && edge_stack.back() != up_edge) {
              edge_stack.pop_back();
            }
            if (!edge_stack.empty()) edge_stack.pop_back();
            if (p != root && !is_cut[p]) {
              is_cut[p] = true;
              ++out.articulation_points;
            }
          }
        }
      }
    }
    if (root_children >= 2 && !is_cut[root]) {
      is_cut[root] = true;
      ++out.articulation_points;
    }
    edge_stack.clear();
  }
  return out;
}

}  // namespace

std::size_t CountBiconnectedComponents(const Graph& g) {
  return RunBiconnectivity(g).biconnected_components;
}

std::size_t CountArticulationPoints(const Graph& g) {
  return RunBiconnectivity(g).articulation_points;
}

Subgraph CoreGraph(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::size_t> deg(n);
  std::vector<bool> removed(n, false);
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    if (deg[v] <= 1) {
      removed[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    for (NodeId v : g.neighbors(u)) {
      if (!removed[v] && --deg[v] <= 1) {
        removed[v] = true;
        queue.push_back(v);
      }
    }
  }
  std::vector<NodeId> survivors;
  for (NodeId v = 0; v < n; ++v) {
    if (!removed[v]) survivors.push_back(v);
  }
  return InducedSubgraph(g, survivors);
}

}  // namespace topogen::graph
