// Breadth-first search primitives.
//
// BFS is the workhorse of every ball-growing metric in the paper
// (Section 3.2.1): balls of radius h are exactly truncated-BFS frontiers.
// This header provides plain distance BFS, truncated BFS, ball extraction,
// and shortest-path counting (the sigma values used by the hierarchy
// analysis in Section 5).
//
// Two API layers (docs/PERFORMANCE.md):
//
//   * In-place kernels (*Into) run on a pooled, epoch-stamped BfsScratch
//     workspace and allocate nothing in steady state. Hot metric loops
//     (thousands of sweeps per graph) use these. Distance-only sweeps are
//     direction-optimizing: the frontier step flips between top-down edge
//     expansion and bottom-up parent search on dense levels, with a
//     crossover decided purely by frontier/unexplored edge counts so
//     results stay bit-identical at every TOPOGEN_THREADS.
//   * The original value-returning functions below are thin wrappers that
//     lease a workspace and materialize the result; their outputs are
//     unchanged down to the byte (including Ball()'s discovery order and
//     the DAG's sigma roundings, which feed figure outputs).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace topogen::graph {

class BfsScratch;  // epoch-stamped pooled workspace (graph/bfs_scratch.h)

using Dist = std::uint32_t;
inline constexpr Dist kUnreachable = std::numeric_limits<Dist>::max();

// --- in-place kernels (zero allocation in steady state) ---
//
// Results live in `scratch` (dist/order/level_counts/sigma accessors)
// until the next kernel call on the same workspace.

// Direction-optimizing distance sweep; defines dist(), level_counts(),
// reached(), sum_depths(), eccentricity(). order() carries the visited
// set in non-decreasing distance order only.
//
// `max_nodes` is the sampled-estimator early-exit budget (metrics/
// sample.h): when non-zero, the sweep stops opening new levels once it
// has visited at least that many nodes. The cut is level-granular — a
// level either expands fully or not at all — so the visited set is still
// a pure function of (graph, src, budget), bit-identical at any thread
// count.
void BfsDistancesInto(const Graph& g, NodeId src, BfsScratch& scratch,
                      Dist max_depth = kUnreachable,
                      std::size_t max_nodes = 0);

// Truncated BFS; scratch.order() is the ball in exact discovery order
// (center first), byte-identical to the historical Ball() contract.
void BallInto(const Graph& g, NodeId center, Dist radius,
              BfsScratch& scratch);

// Distance sweep plus cumulative per-radius reachable-set sizes written
// into `counts` (reusing its capacity); counts[h] = nodes within h hops.
// `max_nodes` as in BfsDistancesInto.
void ReachableCountsInto(const Graph& g, NodeId src, BfsScratch& scratch,
                         std::vector<std::size_t>& counts,
                         Dist max_depth = kUnreachable,
                         std::size_t max_nodes = 0);

// Shortest-path DAG sweep: dist(), sigma(), and order() in exact
// discovery order (sigma summation order is part of the figure-output
// contract, so this kernel never runs bottom-up).
void BuildShortestPathDagInto(const Graph& g, NodeId src,
                              BfsScratch& scratch);

// --- value-returning wrappers over the kernels above ---
//
// Deprecated for hot paths: each call leases a workspace AND allocates a
// fresh result vector, so a loop over sources pays an allocation per
// sweep that the *Into kernels amortize away. Production metric loops
// use the kernels with an AcquireBfsScratch lease; these wrappers remain
// for one-shot queries, tests, and examples, where clarity beats the
// allocation (and their outputs stay byte-identical to the kernels).

// Hop distances from src to every node; kUnreachable where disconnected.
// If max_depth is given, nodes farther than max_depth are left unreachable.
// Deprecated in loops: use BfsDistancesInto.
std::vector<Dist> BfsDistances(const Graph& g, NodeId src,
                               Dist max_depth = kUnreachable);

// Nodes whose hop distance from center is <= radius, in BFS (distance)
// order; center itself is first. This is the paper's "ball of radius h".
// Deprecated in loops: use BallInto.
std::vector<NodeId> Ball(const Graph& g, NodeId center, Dist radius);

// Per-radius reachable-set sizes: result[h] = number of nodes within h hops
// of src (result[0] == 1), up to max radius (graph eccentricity of src or
// max_depth, whichever is smaller). Used by the expansion metric.
// Deprecated in loops: use ReachableCountsInto.
std::vector<std::size_t> ReachableCounts(const Graph& g, NodeId src,
                                         Dist max_depth = kUnreachable);

// Shortest-path DAG from a source: distances, number of shortest paths
// sigma, and for every node the list of DAG predecessors (neighbors one hop
// closer to the source). Sigma is tracked in double precision because path
// counts overflow 64-bit integers on expander-like graphs.
struct ShortestPathDag {
  std::vector<Dist> dist;
  std::vector<double> sigma;
  // Nodes in non-decreasing distance order (BFS order), excluding
  // unreachable nodes. Useful for forward/backward sweeps.
  std::vector<NodeId> order;
};

ShortestPathDag BuildShortestPathDag(const Graph& g, NodeId src);

// Eccentricity of src (max finite distance), or 0 for isolated nodes.
// Requires the graph to be connected for a meaningful "diameter" reading.
Dist Eccentricity(const Graph& g, NodeId src);

// Average pairwise shortest-path length over reachable pairs, estimated
// from BFS at `samples` deterministically-spread sources (all nodes when
// samples >= n). Pairs in different components are ignored.
double AveragePathLength(const Graph& g, std::size_t samples = 256);

}  // namespace topogen::graph
