// Breadth-first search primitives.
//
// BFS is the workhorse of every ball-growing metric in the paper
// (Section 3.2.1): balls of radius h are exactly truncated-BFS frontiers.
// This header provides plain distance BFS, truncated BFS, ball extraction,
// and shortest-path counting (the sigma values used by the hierarchy
// analysis in Section 5).
//
// One API shape (docs/PERFORMANCE.md): in-place kernels (*Into) run on a
// pooled, epoch-stamped BfsScratch workspace and allocate nothing in
// steady state. Callers lease a workspace with AcquireBfsScratch() and
// read results through the scratch accessors (dist/order/level_counts/
// sigma); a loop over sources reuses one lease across every sweep.
// Distance-only sweeps are direction-optimizing: the frontier step flips
// between top-down edge expansion and bottom-up parent search on dense
// levels, with a crossover decided purely by frontier/unexplored edge
// counts so results stay bit-identical at every TOPOGEN_THREADS.
//
// The historical value-returning wrappers (BfsDistances, Ball,
// ReachableCounts, BuildShortestPathDag) are gone: they leased a
// workspace AND allocated a fresh result vector per call, and every
// production loop had already migrated to the kernels. Tests that want
// materialized vectors build them locally (tests/bfs_testutil.h).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace topogen::graph {

class BfsScratch;  // epoch-stamped pooled workspace (graph/bfs_scratch.h)

using Dist = std::uint32_t;
inline constexpr Dist kUnreachable = std::numeric_limits<Dist>::max();

// --- in-place kernels (zero allocation in steady state) ---
//
// Results live in `scratch` (dist/order/level_counts/sigma accessors)
// until the next kernel call on the same workspace.

// Direction-optimizing distance sweep; defines dist(), level_counts(),
// reached(), sum_depths(), eccentricity(). order() carries the visited
// set in non-decreasing distance order only.
//
// `max_nodes` is the sampled-estimator early-exit budget (metrics/
// sample.h): when non-zero, the sweep stops opening new levels once it
// has visited at least that many nodes. The cut is level-granular — a
// level either expands fully or not at all — so the visited set is still
// a pure function of (graph, src, budget), bit-identical at any thread
// count.
void BfsDistancesInto(const Graph& g, NodeId src, BfsScratch& scratch,
                      Dist max_depth = kUnreachable,
                      std::size_t max_nodes = 0);

// Truncated BFS; scratch.order() is the ball in exact discovery order
// (center first), byte-identical to the historical Ball() contract.
void BallInto(const Graph& g, NodeId center, Dist radius,
              BfsScratch& scratch);

// Distance sweep plus cumulative per-radius reachable-set sizes written
// into `counts` (reusing its capacity); counts[h] = nodes within h hops.
// `max_nodes` as in BfsDistancesInto.
void ReachableCountsInto(const Graph& g, NodeId src, BfsScratch& scratch,
                         std::vector<std::size_t>& counts,
                         Dist max_depth = kUnreachable,
                         std::size_t max_nodes = 0);

// Shortest-path DAG sweep: dist(), sigma(), and order() in exact
// discovery order (sigma summation order is part of the figure-output
// contract, so this kernel never runs bottom-up).
void BuildShortestPathDagInto(const Graph& g, NodeId src,
                              BfsScratch& scratch);

// Eccentricity of src (max finite distance), or 0 for isolated nodes.
// Requires the graph to be connected for a meaningful "diameter" reading.
Dist Eccentricity(const Graph& g, NodeId src);

// Average pairwise shortest-path length over reachable pairs, estimated
// from BFS at `samples` deterministically-spread sources (all nodes when
// samples >= n). Pairs in different components are ignored.
double AveragePathLength(const Graph& g, std::size_t samples = 256);

}  // namespace topogen::graph
