// Core immutable undirected graph type.
//
// All topologies in this library — measured, generated, and canonical — are
// represented as simple undirected graphs (no self-loops, no parallel
// edges). The paper explicitly discards self-loops and duplicate links
// produced by generators such as PLRG (footnote 6), so deduplication is
// built into construction.
//
// Storage is CSR (compressed sparse row): a node's neighbors live in one
// contiguous, sorted span, which keeps BFS — the workhorse of every
// ball-growing metric — cache friendly. Each adjacency entry also carries
// the index of the corresponding canonical edge so per-edge quantities
// (link values, cut membership) can be accumulated without hashing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace topogen::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

// Canonical undirected edge with u < v.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  // Empty graph.
  Graph() = default;

  // Builds a simple graph on `num_nodes` nodes from an arbitrary edge list.
  // Self-loops are dropped; parallel edges are collapsed; endpoint order is
  // canonicalized. Endpoints must be < num_nodes.
  static Graph FromEdges(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  // 2m / n; 0 for the empty graph.
  double average_degree() const {
    return num_nodes_ == 0 ? 0.0
                           : 2.0 * static_cast<double>(edges_.size()) /
                                 static_cast<double>(num_nodes_);
  }

  std::size_t degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  // Sorted neighbor list of u.
  std::span<const NodeId> neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u], degree(u)};
  }

  // Edge ids parallel to neighbors(u): incident_edges(u)[i] is the id of the
  // canonical edge {u, neighbors(u)[i]}.
  std::span<const EdgeId> incident_edges(NodeId u) const {
    return {adjacent_edge_.data() + offsets_[u], degree(u)};
  }

  // Canonical edge list; edge id e refers to edges()[e].
  const std::vector<Edge>& edges() const { return edges_; }

  // True iff {u, v} is an edge. O(log degree).
  bool has_edge(NodeId u, NodeId v) const;

  // Edge id of {u, v}, or kInvalidEdge. O(log degree).
  EdgeId edge_id(NodeId u, NodeId v) const;

  // For edge e incident to node x, the opposite endpoint.
  NodeId opposite(EdgeId e, NodeId x) const {
    const Edge& ed = edges_[e];
    return ed.u == x ? ed.v : ed.u;
  }

  // Largest node degree; 0 for the empty graph.
  std::size_t max_degree() const;

  // Number of nodes with the given degree.
  std::size_t count_degree(std::size_t d) const;

  // Human-readable one-line summary ("n=1008 m=1402 avg_deg=2.78").
  std::string Summary() const;

  // Resident bytes of the CSR arrays (offsets, adjacency, edge ids,
  // canonical edge list) -- what a memory budget charges for keeping
  // this topology materialized (core/memory_budget.h).
  std::size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(std::size_t) +
           adjacency_.capacity() * sizeof(NodeId) +
           adjacent_edge_.capacity() * sizeof(EdgeId) +
           edges_.capacity() * sizeof(Edge);
  }

 private:
  // Binary CSR cache serialization (graph/io.cc) restores these arrays
  // verbatim so cached topologies are bit-identical to fresh ones.
  friend struct CsrSerializer;

  NodeId num_nodes_ = 0;
  std::vector<std::size_t> offsets_;   // size num_nodes_ + 1
  std::vector<NodeId> adjacency_;      // size 2m, sorted per node
  std::vector<EdgeId> adjacent_edge_;  // parallel to adjacency_
  std::vector<Edge> edges_;            // canonical edges, u < v
};

// Incremental edge-list builder. Generators add edges freely (duplicates and
// self-loops allowed); Build() canonicalizes into a simple Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  // Appends a fresh node and returns its id.
  NodeId AddNode() { return num_nodes_++; }

  // Ensures ids [0, n) exist.
  void EnsureNodes(NodeId n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  // Records an undirected edge; self-loops and duplicates are silently
  // dropped at Build() time, mirroring the paper's treatment of PLRG output.
  void AddEdge(NodeId u, NodeId v) { edges_.push_back({u, v}); }

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_recorded_edges() const { return edges_.size(); }

  Graph Build() &&;

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
};

// The induced subgraph on `nodes` plus the mapping from new ids back to the
// ids in the parent graph (original_id[i] is the parent id of new node i).
struct Subgraph {
  Graph graph;
  std::vector<NodeId> original_id;
};

// Induces the subgraph of g on the given node set. Duplicate entries in
// `nodes` are an error (checked in debug builds only).
Subgraph InducedSubgraph(const Graph& g, std::span<const NodeId> nodes);

}  // namespace topogen::graph
