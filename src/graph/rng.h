// Deterministic random number generation for topogen.
//
// Every generator and sampled metric in this library takes an explicit
// 64-bit seed so that experiments are exactly reproducible. Rng wraps a
// mt19937_64 whose state is seeded through splitmix64, which removes the
// well-known "similar seeds produce correlated early output" weakness of
// seeding a Mersenne Twister with a raw integer.
#pragma once

#include <cstdint>
#include <random>

namespace topogen::graph {

// splitmix64 step; used to decorrelate user-provided seeds.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Derive the seed of an independent RNG stream from (seed, stream index).
// Parallel kernels give every work item (ball center, source chunk, ...)
// its own stream keyed by the item's *logical* index, so the draws an item
// sees never depend on which thread ran it or on how much randomness its
// predecessors consumed -- the heart of the determinism contract in
// docs/PARALLELISM.md. Two splitmix rounds keep nearby (seed, stream)
// pairs decorrelated.
constexpr std::uint64_t DeriveStream(std::uint64_t seed, std::uint64_t stream) {
  return SplitMix64(SplitMix64(seed) ^ SplitMix64(~stream));
}

// Deterministic RNG with convenience draws used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(SplitMix64(seed)) {}

  // Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t NextIndex(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Derive an independent child RNG; useful to give submodules their own
  // streams so adding draws in one stage does not perturb another.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace topogen::graph
