// Deterministic random number generation for topogen.
//
// Every generator and sampled metric in this library takes an explicit
// 64-bit seed so that experiments are exactly reproducible. Rng wraps a
// mt19937_64 whose state is seeded through splitmix64, which removes the
// well-known "similar seeds produce correlated early output" weakness of
// seeding a Mersenne Twister with a raw integer.
#pragma once

#include <cstdint>
#include <random>

namespace topogen::graph {

// splitmix64 step; used to decorrelate user-provided seeds.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Derive the seed of an independent RNG stream from (seed, stream index).
// Parallel kernels give every work item (ball center, source chunk, ...)
// its own stream keyed by the item's *logical* index, so the draws an item
// sees never depend on which thread ran it or on how much randomness its
// predecessors consumed -- the heart of the determinism contract in
// docs/PARALLELISM.md. Two splitmix rounds keep nearby (seed, stream)
// pairs decorrelated.
constexpr std::uint64_t DeriveStream(std::uint64_t seed, std::uint64_t stream) {
  return SplitMix64(SplitMix64(seed) ^ SplitMix64(~stream));
}

// Counter-based splitmix64 stream. Construction is two stores (versus the
// ~microsecond mt19937_64 warm-up inside Rng), which matters when a kernel
// wants one short-lived stream per fine-grained work item — e.g. one per
// cell pair in the Waxman grid or one per stub in the parallel PLRG
// shuffle. Statistically weaker than Rng but ample for Bernoulli thinning
// and sort keys; anything long-lived should keep using Rng.
class SmallRng {
 public:
  explicit constexpr SmallRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() { return SplitMix64(state_++); }

  // Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) via 128-bit multiply (Lemire). The
  // rejection-free form carries bias < 2^-32 for bound < 2^32 — irrelevant
  // for shuffling and thinning, and keeps the draw branch-free.
  std::uint64_t NextIndex(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

// Deterministic RNG with convenience draws used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(SplitMix64(seed)) {}

  // Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t NextIndex(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Derive an independent child RNG; useful to give submodules their own
  // streams so adding draws in one stage does not perturb another.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace topogen::graph
