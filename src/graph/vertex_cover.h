// Vertex cover approximations.
//
// Two uses in the paper: Appendix B plots the size of a vertex cover of
// ball subgraphs, and Section 5 defines a link's value as the minimum
// *weighted* vertex cover of the bipartite graph formed by the link's
// traversal set (computed with "well-known approximation algorithms" [30]).
//
// Both problems are NP-hard in general; we provide the classic
// 2-approximations: maximal matching for the unweighted case and the
// Bar-Yehuda-Even local-ratio scheme for arbitrary node weights, each
// followed by a redundant-vertex pruning pass that only ever improves the
// cover.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace topogen::graph {

// Approximate minimum vertex cover size of g (2-approximation via maximal
// matching, improved by degree-greedy and pruning; the smaller result
// wins). Returns 0 for edgeless graphs.
std::size_t ApproxVertexCoverSize(const Graph& g);

// Approximate minimum weighted vertex cover of an explicit edge list over
// nodes 0..num_nodes-1 with the given nonnegative weights (local-ratio
// 2-approximation + pruning). Returns the total weight of the cover.
double ApproxWeightedVertexCover(std::size_t num_nodes,
                                 std::span<const Edge> edges,
                                 std::span<const double> weight);

}  // namespace topogen::graph
