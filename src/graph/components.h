// Connectivity analysis: connected components, largest component
// extraction, biconnected components, and degree-1 core pruning.
//
// The paper (footnote 6) analyzes the largest connected component of
// generators that may emit disconnected graphs (PLRG, Waxman at extreme
// parameters); Appendix B's biconnectivity metric counts biconnected
// components within balls; footnote 29 computes link values on the "core"
// topology obtained by recursively removing degree-1 nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace topogen::graph {

struct ComponentInfo {
  // component_of[v] in [0, count).
  std::vector<std::uint32_t> component_of;
  std::size_t count = 0;
  // Node count per component id.
  std::vector<std::size_t> sizes;
};

ComponentInfo ConnectedComponents(const Graph& g);

bool IsConnected(const Graph& g);

// The induced subgraph on the largest connected component (ties broken by
// lowest component id). The mapping back to the input graph's ids is
// returned in Subgraph::original_id.
Subgraph LargestComponent(const Graph& g);

// Number of biconnected components (maximal subgraphs with no cut vertex),
// counting bridges as biconnected components of a single edge. Isolated
// nodes contribute none. Iterative Hopcroft-Tarjan.
std::size_t CountBiconnectedComponents(const Graph& g);

// Number of articulation points (cut vertices).
std::size_t CountArticulationPoints(const Graph& g);

// The "core" of a topology: recursively strip nodes of degree <= 1 until
// none remain (paper footnote 29, used for RL link values). Returns the
// induced subgraph on the surviving nodes.
Subgraph CoreGraph(const Graph& g);

}  // namespace topogen::graph
