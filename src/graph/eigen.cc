#include "graph/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace topogen::graph {
namespace {

void MultiplyAdjacency(const Graph& g, const std::vector<double>& x,
                       std::vector<double>& y) {
  y.assign(g.num_nodes(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    double sum = 0.0;
    for (NodeId v : g.neighbors(u)) sum += x[v];
    y[u] = sum;
  }
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

double Norm(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

// Eigenvalues of a symmetric tridiagonal matrix (diagonal alpha, first
// off-diagonal beta) via cyclic Jacobi on the dense form. Sizes here are
// at most a couple hundred, so O(k^3) is immaterial.
std::vector<double> TridiagonalEigenvalues(std::vector<double> alpha,
                                           std::vector<double> beta) {
  const std::size_t k = alpha.size();
  std::vector<double> a(k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    a[i * k + i] = alpha[i];
    if (i + 1 < k) {
      a[i * k + (i + 1)] = beta[i];
      a[(i + 1) * k + i] = beta[i];
    }
  }
  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t q = p + 1; q < k; ++q) off += a[p * k + q] * a[p * k + q];
    }
    if (off < 1e-20) break;
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t q = p + 1; q < k; ++q) {
        const double apq = a[p * k + q];
        if (std::abs(apq) < 1e-15) continue;
        const double app = a[p * k + p];
        const double aqq = a[q * k + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < k; ++i) {
          const double aip = a[i * k + p];
          const double aiq = a[i * k + q];
          a[i * k + p] = c * aip - s * aiq;
          a[i * k + q] = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < k; ++i) {
          const double api = a[p * k + i];
          const double aqi = a[q * k + i];
          a[p * k + i] = c * api - s * aqi;
          a[q * k + i] = s * api + c * aqi;
        }
      }
    }
  }
  std::vector<double> eig(k);
  for (std::size_t i = 0; i < k; ++i) eig[i] = a[i * k + i];
  std::sort(eig.begin(), eig.end(), std::greater<>());
  return eig;
}

}  // namespace

std::vector<double> TopEigenvalues(const Graph& g, std::size_t k, Rng& rng) {
  const std::size_t n = g.num_nodes();
  if (n == 0 || k == 0) return {};
  // Lanczos needs some slack beyond k for the Ritz values to converge.
  const std::size_t steps = std::min(n, k + 32);

  std::vector<std::vector<double>> basis;  // orthonormal Lanczos vectors
  std::vector<double> alpha, beta;
  std::vector<double> v(n), w(n);
  for (double& x : v) x = rng.NextDouble() - 0.5;
  const double nv = Norm(v);
  for (double& x : v) x /= nv;
  basis.push_back(v);

  for (std::size_t j = 0; j < steps; ++j) {
    MultiplyAdjacency(g, basis[j], w);
    const double a = Dot(w, basis[j]);
    alpha.push_back(a);
    // w -= a * v_j (+ b_{j-1} * v_{j-1} folded into the reorthogonalization)
    for (std::size_t i = 0; i < n; ++i) w[i] -= a * basis[j][i];
    // Full reorthogonalization against every previous Lanczos vector; this
    // is what keeps repeated eigenvalues honest at these sizes.
    for (const auto& q : basis) {
      const double proj = Dot(w, q);
      for (std::size_t i = 0; i < n; ++i) w[i] -= proj * q[i];
    }
    const double b = Norm(w);
    if (b < 1e-10 || j + 1 == steps) break;
    beta.push_back(b);
    for (double& x : w) x /= b;
    basis.push_back(w);
  }
  std::vector<double> ritz = TridiagonalEigenvalues(alpha, beta);
  if (ritz.size() > k) ritz.resize(k);
  return ritz;
}

double SpectralRadius(const Graph& g, Rng& rng, int iterations) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return 0.0;
  std::vector<double> v(n), w(n);
  for (double& x : v) x = rng.NextDouble() + 0.1;
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    MultiplyAdjacency(g, v, w);
    const double nw = Norm(w);
    if (nw == 0.0) return 0.0;  // empty graph or zero vector
    for (std::size_t i = 0; i < n; ++i) w[i] /= nw;
    lambda = nw;
    std::swap(v, w);
  }
  return lambda;
}

}  // namespace topogen::graph
