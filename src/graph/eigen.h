// Adjacency-spectrum extraction.
//
// Faloutsos et al. [17] observed that the sorted eigenvalues of the
// Internet's adjacency matrix follow a power law versus rank, and the
// paper's Appendix B (Figure 7a-c) compares that spectrum across
// topologies. We extract the top-k eigenvalues of the (symmetric)
// adjacency matrix with the Lanczos iteration, using full
// reorthogonalization for numerical robustness at the modest k the plots
// need, and a Jacobi solve of the small tridiagonal system.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::graph {

// Largest `k` eigenvalues of g's adjacency matrix, sorted descending.
// Returns fewer values when the Krylov space exhausts (k > n or the graph
// is highly degenerate). Accuracy is what the figure needs: a few digits
// on the leading eigenvalues.
std::vector<double> TopEigenvalues(const Graph& g, std::size_t k, Rng& rng);

// Spectral radius estimate (largest eigenvalue) via power iteration; a
// cheaper path when only the top value is needed.
double SpectralRadius(const Graph& g, Rng& rng, int iterations = 200);

}  // namespace topogen::graph
