#include "graph/vertex_cover.h"

#include <algorithm>
#include <numeric>

namespace topogen::graph {
namespace {

// Drops cover vertices all of whose incident edges are already covered by
// the opposite endpoint. Scanning in decreasing-cost order lets expensive
// vertices go first. Works for both weighted and unweighted pruning.
template <typename CostFn>
void PruneRedundant(const Graph& g, std::vector<std::uint8_t>& in_cover,
                    CostFn cost) {
  std::vector<NodeId> order;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_cover[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return cost(a) > cost(b);
  });
  for (NodeId v : order) {
    bool removable = true;
    for (NodeId nb : g.neighbors(v)) {
      if (!in_cover[nb]) {
        removable = false;
        break;
      }
    }
    if (removable) in_cover[v] = 0;
  }
}

std::size_t CoverSize(const std::vector<std::uint8_t>& in_cover) {
  return static_cast<std::size_t>(
      std::count(in_cover.begin(), in_cover.end(), std::uint8_t{1}));
}

// Maximal-matching 2-approximation.
std::vector<std::uint8_t> MatchingCover(const Graph& g) {
  std::vector<std::uint8_t> in_cover(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) {
    if (!in_cover[e.u] && !in_cover[e.v]) {
      in_cover[e.u] = 1;
      in_cover[e.v] = 1;
    }
  }
  return in_cover;
}

// Degree-greedy heuristic: repeatedly take the highest-degree uncovered
// vertex. No worst-case guarantee but usually beats matching on graphs
// with skewed degrees -- exactly our power-law topologies.
std::vector<std::uint8_t> GreedyCover(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::size_t> live_degree(n);
  std::vector<std::uint8_t> in_cover(n, 0);
  // Bucket queue over degrees for near-linear behavior.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    live_degree[v] = g.degree(v);
    max_deg = std::max(max_deg, live_degree[v]);
  }
  std::vector<std::vector<NodeId>> bucket(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) bucket[live_degree[v]].push_back(v);

  std::size_t cursor = max_deg;
  while (true) {
    while (cursor > 0 && bucket[cursor].empty()) --cursor;
    if (cursor == 0) break;
    const NodeId v = bucket[cursor].back();
    bucket[cursor].pop_back();
    if (in_cover[v] || live_degree[v] != cursor) continue;  // stale entry
    in_cover[v] = 1;
    live_degree[v] = 0;
    for (NodeId nb : g.neighbors(v)) {
      if (!in_cover[nb] && live_degree[nb] > 0) {
        --live_degree[nb];
        bucket[live_degree[nb]].push_back(nb);
      }
    }
  }
  return in_cover;
}

}  // namespace

std::size_t ApproxVertexCoverSize(const Graph& g) {
  if (g.num_edges() == 0) return 0;
  auto unit = [](NodeId) { return 1.0; };

  std::vector<std::uint8_t> matching = MatchingCover(g);
  PruneRedundant(g, matching, unit);
  std::vector<std::uint8_t> greedy = GreedyCover(g);
  PruneRedundant(g, greedy, unit);
  return std::min(CoverSize(matching), CoverSize(greedy));
}

double ApproxWeightedVertexCover(std::size_t num_nodes,
                                 std::span<const Edge> edges,
                                 std::span<const double> weight) {
  // Local-ratio (Bar-Yehuda--Even): for each edge with two uncovered
  // endpoints, subtract the smaller residual weight from both; a vertex
  // whose residual hits zero joins the cover.
  std::vector<double> residual(weight.begin(), weight.end());
  std::vector<std::uint8_t> in_cover(num_nodes, 0);
  for (const Edge& e : edges) {
    if (in_cover[e.u] || in_cover[e.v]) continue;
    const double delta = std::min(residual[e.u], residual[e.v]);
    residual[e.u] -= delta;
    residual[e.v] -= delta;
    if (residual[e.u] <= 1e-12) in_cover[e.u] = 1;
    if (residual[e.v] <= 1e-12) in_cover[e.v] = 1;
  }
  // Pruning pass over the explicit edge list.
  std::vector<std::vector<NodeId>> adj(num_nodes);
  for (const Edge& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<NodeId> order;
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (in_cover[v]) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return weight[a] > weight[b]; });
  for (NodeId v : order) {
    bool removable = true;
    for (NodeId nb : adj[v]) {
      if (!in_cover[nb]) {
        removable = false;
        break;
      }
    }
    if (removable) in_cover[v] = 0;
  }
  double total = 0.0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (in_cover[v]) total += weight[v];
  }
  return total;
}

}  // namespace topogen::graph
