#include "graph/maxflow.h"

#include <algorithm>
#include <limits>

namespace topogen::graph {

namespace {
constexpr std::int32_t kBigCapacity = 1 << 29;
}

UnitMaxFlow::UnitMaxFlow(const Graph& g) : num_nodes_(g.num_nodes()) {
  // One extra slot for the SolveToSet super-sink.
  arcs_.resize(static_cast<std::size_t>(num_nodes_) + 1);
  level_.resize(arcs_.size());
  iter_.resize(arcs_.size());
  for (const Edge& e : g.edges()) {
    const auto ru = static_cast<std::uint32_t>(arcs_[e.v].size());
    const auto rv = static_cast<std::uint32_t>(arcs_[e.u].size());
    arcs_[e.u].push_back({e.v, ru, 1});
    arcs_[e.v].push_back({e.u, rv, 1});
  }
  base_arc_count_.resize(arcs_.size());
  for (std::size_t v = 0; v < arcs_.size(); ++v) {
    base_arc_count_[v] = arcs_[v].size();
  }
}

void UnitMaxFlow::ResetCapacities() {
  for (std::size_t v = 0; v < arcs_.size(); ++v) {
    arcs_[v].resize(base_arc_count_[v]);  // drop super-sink arcs
    for (Arc& a : arcs_[v]) a.cap = 1;    // undirected unit edges
  }
}

bool UnitMaxFlow::BuildLevels(NodeId s, NodeId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::vector<NodeId> queue{s};
  level_[s] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const Arc& a : arcs_[u]) {
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[u] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t UnitMaxFlow::Augment(NodeId v, NodeId t, std::int64_t limit) {
  if (v == t || limit == 0) return limit;
  for (std::uint32_t& i = iter_[v]; i < arcs_[v].size(); ++i) {
    Arc& a = arcs_[v][i];
    if (a.cap <= 0 || level_[a.to] != level_[v] + 1) continue;
    const std::int64_t pushed =
        Augment(a.to, t, std::min<std::int64_t>(limit, a.cap));
    if (pushed > 0) {
      a.cap -= static_cast<std::int32_t>(pushed);
      arcs_[a.to][a.rev].cap += static_cast<std::int32_t>(pushed);
      return pushed;
    }
  }
  return 0;
}

std::uint64_t UnitMaxFlow::Solve(NodeId s, NodeId t) {
  if (s >= num_nodes_ || t > num_nodes_ || s == t) return 0;
  ResetCapacities();
  std::uint64_t flow = 0;
  while (BuildLevels(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const std::int64_t pushed =
          Augment(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += static_cast<std::uint64_t>(pushed);
    }
  }
  return flow;
}

std::uint64_t UnitMaxFlow::SolveToSet(NodeId s,
                                      std::span<const NodeId> sinks) {
  if (s >= num_nodes_ || sinks.empty()) return 0;
  ResetCapacities();
  const NodeId super = num_nodes_;
  for (const NodeId v : sinks) {
    if (v >= num_nodes_ || v == s) continue;
    const auto rv = static_cast<std::uint32_t>(arcs_[super].size());
    const auto rs = static_cast<std::uint32_t>(arcs_[v].size());
    arcs_[v].push_back({super, rv, kBigCapacity});
    arcs_[super].push_back({v, rs, 0});
  }
  std::uint64_t flow = 0;
  while (BuildLevels(s, super)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const std::int64_t pushed =
          Augment(s, super, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      flow += static_cast<std::uint64_t>(pushed);
    }
  }
  return flow;
}

}  // namespace topogen::graph
