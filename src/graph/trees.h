// Spanning trees and tree-distance machinery for the distortion metric.
//
// Distortion (Section 3.2.1, after Hu's optimum communication spanning
// trees [22]) of a spanning tree T of G is the average T-distance between
// the endpoints of G's edges; the distortion of G is the minimum over
// spanning trees. That minimum is NP-hard, so, like the paper (footnotes
// 14-15), we take the best over a family of heuristic trees:
//
//   * BFS trees rooted at an (approximate) betweenness center of the graph,
//   * BFS trees rooted at the highest-degree nodes,
//   * a Bartal-flavored recursive ball-decomposition tree.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::graph {

// Rooted spanning tree of the component containing root, as a parent
// vector: parent[root] == root; nodes outside the component keep
// kInvalidNode. depth[] is the hop distance from the root.
struct SpanningTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;
  std::vector<Dist> depth;
};

SpanningTree BfsTree(const Graph& g, NodeId root);

// Bartal-style decomposition tree: repeatedly carve random-radius balls
// out of the graph, build BFS trees inside each, then stitch cluster trees
// together along original graph edges. Still a spanning tree of G (it only
// uses G's edges), but its shape follows a hierarchical decomposition
// rather than a single-source BFS.
SpanningTree DecompositionTree(const Graph& g, NodeId root, Rng& rng);

// Average tree distance between the endpoints of each edge of g, computed
// on the given spanning tree. Edges with an endpoint outside the tree's
// component are skipped; returns 0 if no edge qualifies.
double TreeDistortion(const Graph& g, const SpanningTree& tree);

// Tree distance between u and v via naive LCA walk (fine for the low
// diameters of ball subgraphs).
Dist TreeDistance(const SpanningTree& tree, NodeId u, NodeId v);

// Node maximizing Brandes betweenness estimated from `samples` sources
// (exact when samples >= n). The paper's footnote 14 picks "the node
// through which the highest number of pairs traverse" as the ball center.
NodeId ApproxBetweennessCenter(const Graph& g, std::size_t samples, Rng& rng);

// Best (lowest) distortion over the heuristic tree family described above.
// The graph should be connected; disconnected input is handled by scoring
// only the component of each candidate root.
double BestDistortion(const Graph& g, Rng& rng, std::size_t center_samples = 64);

}  // namespace topogen::graph
