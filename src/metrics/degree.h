// Degree-distribution metrics (Faloutsos et al. [17]; paper Appendix A).
//
// Figure 6 plots the complementary cumulative degree distribution (CCDF)
// of every topology; only PLRG-family generators reproduce the measured
// graphs' heavy tail. We also fit the power-law exponent on the CCDF
// (least squares on log-log), which the paper's roster (Figure 1 /
// Appendix C) quotes per PLRG instance.
#pragma once

#include "graph/graph.h"
#include "metrics/series.h"

namespace topogen::metrics {

// x = degree k, y = fraction of nodes with degree >= k; one row per
// distinct degree present in the graph.
Series DegreeCcdf(const graph::Graph& g);

// Least-squares slope of log(CCDF) vs log(k). For P(deg = k) ~ k^-beta the
// CCDF decays as k^-(beta-1), so the returned estimate is slope' = 1 -
// slope, i.e. an estimate of beta itself. Returns 0 for degenerate
// (sub-2-point) distributions.
double FitPowerLawExponent(const graph::Graph& g);

// Faloutsos' second power law, the "degree rank" plot Medina et al. [29]
// used as their discriminator: x = rank (1-based, descending by degree),
// y = degree.
Series DegreeRank(const graph::Graph& g);

// Log-log slope of the degree-rank plot (the rank exponent "R" of [17];
// about -0.8 for the 1998 AS snapshots). Returns 0 when degenerate.
double DegreeRankExponent(const graph::Graph& g);

// True when the CCDF is heavy-tailed in the qualitative sense the paper
// uses: the maximum degree is at least `spread` times the average degree
// AND the log-log CCDF is roughly linear over its upper range. Canonical
// and structural generators fail the spread test.
bool LooksHeavyTailed(const graph::Graph& g, double spread = 10.0);

}  // namespace topogen::metrics
