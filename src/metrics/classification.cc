#include "metrics/classification.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace topogen::metrics {

namespace {


}  // namespace

Level ClassifyExpansion(const Series& expansion,
                        const ClassifierOptions& options) {
  // Successive growth ratios E(h+1)/E(h) within the growth regime (below
  // the cap). An exponential expander sustains a ratio near its branching
  // factor all the way to saturation; a polynomial (mesh-like) expander's
  // ratio decays toward 1 (for E ~ h^2 the ratio is ((h+1)/h)^2). The tail
  // of the ratio sequence is therefore the discriminator.
  std::vector<double> ratios;
  for (std::size_t i = 1; i < expansion.size(); ++i) {
    if (expansion.y[i] <= 0 || expansion.y[i] > options.expansion_cap ||
        expansion.y[i - 1] <= 0) {
      continue;
    }
    ratios.push_back(expansion.y[i] / expansion.y[i - 1]);
  }
  // A graph that swallows half its nodes within a couple of hops expands
  // as fast as expansion can be measured.
  if (ratios.size() < 2) return Level::kHigh;
  const double tail =
      0.5 * (ratios[ratios.size() - 1] + ratios[ratios.size() - 2]);
  return tail >= options.expansion_tail_ratio ? Level::kHigh : Level::kLow;
}

Level ClassifyResilience(const Series& resilience,
                         const ClassifierOptions& options) {
  if (resilience.empty()) return Level::kLow;
  const double max_r =
      *std::max_element(resilience.y.begin(), resilience.y.end());
  if (max_r <= options.resilience_floor) return Level::kLow;
  // Magnitude rule: a low-resilience topology's cut stays O(1) no matter
  // how large its balls grow (Tree = 1, Transit-Stub a small constant),
  // while every "high" topology's cut clears log2(n) comfortably (Mesh
  // ~ sqrt(n); Tiers saturates at its WAN redundancy but far above the
  // bar; Random ~ k*n). A slope rule is tempting but fails on Tiers,
  // whose curve climbs early and then flattens -- dragging a global
  // log-log fit toward zero despite an unmistakably resilient graph.
  const double bar = options.resilience_magnitude *
                     std::log2(std::max(4.0, resilience.x.back()));
  return max_r >= bar ? Level::kHigh : Level::kLow;
}

Level ClassifyDistortion(const Series& distortion,
                         const ClassifierOptions& options) {
  if (distortion.empty()) return Level::kLow;
  const double final_n = distortion.x.back();
  const double final_d = distortion.y.back();
  if (final_n < 4.0) return Level::kLow;
  const double threshold =
      options.distortion_fraction * std::log2(final_n);
  return final_d >= threshold ? Level::kHigh : Level::kLow;
}

LhSignature Classify(const Series& expansion, const Series& resilience,
                     const Series& distortion,
                     const ClassifierOptions& options) {
  return {ClassifyExpansion(expansion, options),
          ClassifyResilience(resilience, options),
          ClassifyDistortion(distortion, options)};
}

}  // namespace topogen::metrics
