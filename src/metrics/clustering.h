// Clustering coefficient (Watts-Strogatz [46], Bu-Towsley [8]; paper
// Figure 10 and the Section 4.4 closing discussion).
//
// The clustering coefficient of a node with degree >= 2 is the fraction
// of its neighbor pairs that are themselves adjacent; the graph's
// coefficient is the average over such nodes. The paper evaluates it both
// on whole graphs (where PLRG differs from the AS graph -- a *local*
// property PLRG misses) and under ball-growing (where PLRG tracks the AS
// graph).
#pragma once

#include "graph/graph.h"
#include "metrics/ball.h"
#include "metrics/series.h"

namespace topogen::metrics {

// Average clustering coefficient over nodes of degree >= 2 (0 if none).
double ClusteringCoefficient(const graph::Graph& g);

// x = mean ball size, y = mean clustering coefficient of the ball.
Series ClusteringSeries(const graph::Graph& g,
                        const BallGrowingOptions& options = {});

}  // namespace topogen::metrics
