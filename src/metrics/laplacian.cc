#include "metrics/laplacian.h"

#include <vector>

namespace topogen::metrics {

std::size_t Eigenvalue1MultiplicityLowerBound(const graph::Graph& g) {
  // Count, for each node, its pendant (degree-1) neighbors; each fan of
  // p pendants contributes p - 1.
  std::vector<std::uint32_t> pendant_fan(g.num_nodes(), 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 1) {
      ++pendant_fan[g.neighbors(v)[0]];
    }
  }
  std::size_t multiplicity = 0;
  for (const std::uint32_t fan : pendant_fan) {
    if (fan > 1) multiplicity += fan - 1;
  }
  return multiplicity;
}

double Eigenvalue1Fraction(const graph::Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return static_cast<double>(Eigenvalue1MultiplicityLowerBound(g)) /
         static_cast<double>(g.num_nodes());
}

}  // namespace topogen::metrics
