// Eigenvalue-vs-rank metric (Faloutsos et al. [17]; paper Figure 7a-c).
//
// The sorted positive eigenvalues of the adjacency matrix, plotted against
// their rank on log-log axes. A power-law eigenvalue spectrum is a
// signature of the AS graph that, among the generators, only the PLRG
// family reproduces (Section 4.4).
#pragma once

#include "graph/graph.h"
#include "metrics/series.h"

namespace topogen::metrics {

struct SpectrumOptions {
  std::size_t top_k = 64;
  std::uint64_t seed = 13;
};

// x = rank (1-based), y = eigenvalue; only positive eigenvalues are kept
// (the figure's log axis cannot show the rest).
Series EigenvalueRank(const graph::Graph& g,
                      const SpectrumOptions& options = {});

// Least-squares slope of log(eigenvalue) vs log(rank); the AS graph's
// spectrum follows a power law, so its slope is distinctly negative and
// stable. Returns 0 when fewer than 2 positive eigenvalues exist.
double EigenvaluePowerLawSlope(const graph::Graph& g,
                               const SpectrumOptions& options = {});

}  // namespace topogen::metrics
