// Resilience R(n) (paper Section 3.2.1).
//
// R(n) is the average minimum cut-set size for a balanced bi-partition of
// n-node balls. Trees have R = 1, meshes R ~ sqrt(n), random graphs
// R ~ k*n -- the axis that separates Transit-Stub (tree-like) from the
// measured and degree-based graphs in Figure 2.
#pragma once

#include <span>

#include "graph/graph.h"
#include "metrics/ball.h"
#include "metrics/series.h"
#include "policy/relationships.h"

namespace topogen::metrics {

// x = mean ball size n, y = mean balanced min-cut of the ball.
Series Resilience(const graph::Graph& g, const BallGrowingOptions& options = {});

// Policy-induced variant: cuts are computed on policy balls, whose link
// set excludes policy-noncompliant edges (this is why Figure 2(e) shows
// RL(Policy) losing nearly half its resilience).
Series PolicyResilience(const graph::Graph& g,
                        std::span<const policy::Relationship> rel,
                        const BallGrowingOptions& options = {});

}  // namespace topogen::metrics
