#include "metrics/cover_bicomp.h"

#include "graph/components.h"
#include "graph/vertex_cover.h"

namespace topogen::metrics {

Series VertexCoverSeries(const graph::Graph& g,
                         const BallGrowingOptions& options) {
  Series s = BallGrowingSeries(g, options,
                               [](const graph::Graph& ball, graph::Rng&) {
                                 return static_cast<double>(
                                     graph::ApproxVertexCoverSize(ball));
                               });
  s.name = "vertex-cover";
  return s;
}

Series BiconnectivitySeries(const graph::Graph& g,
                            const BallGrowingOptions& options) {
  Series s = BallGrowingSeries(
      g, options, [](const graph::Graph& ball, graph::Rng&) {
        return static_cast<double>(graph::CountBiconnectedComponents(ball));
      });
  s.name = "biconnectivity";
  return s;
}

}  // namespace topogen::metrics
