// Distortion D(n) (paper Section 3.2.1, after Hu [22]).
//
// D(n) is the average, over n-node balls, of the best spanning-tree
// distortion found by the heuristics in graph/trees.h. Trees have D = 1;
// meshes and random graphs have D ~ log n. Low distortion plus high
// resilience is the "tree-like but resilient" signature of the measured
// Internet graphs.
#pragma once

#include <span>

#include "graph/graph.h"
#include "metrics/ball.h"
#include "metrics/series.h"
#include "policy/relationships.h"

namespace topogen::metrics {

// x = mean ball size n, y = mean best-tree distortion of the ball.
Series Distortion(const graph::Graph& g, const BallGrowingOptions& options = {});

Series PolicyDistortion(const graph::Graph& g,
                        std::span<const policy::Relationship> rel,
                        const BallGrowingOptions& options = {});

}  // namespace topogen::metrics
