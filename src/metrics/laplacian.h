// Normalized-Laplacian spectral metrics (Vukadinovic, Huang, Erlebach
// [45]; paper Section 2).
//
// Vukadinovic et al. analyze the spectrum of the normalized Laplacian and
// find that the *multiplicity of eigenvalue 1* differentiates AS graphs
// from grids and random trees. The paper notes this "reflects purely
// local properties of the graph (the number of degree 1 nodes, the
// number of nodes attached to degree 1 nodes etc.)" -- complementary to
// its own large-scale focus, and consistent with its findings. We expose
// the combinatorial lower bound on that multiplicity (duplicate pendant
// structure), which is the quantity their analysis traces to.
#pragma once

#include "graph/graph.h"
#include "metrics/series.h"

namespace topogen::metrics {

// Lower bound on the multiplicity of eigenvalue 1 of the normalized
// Laplacian via pendant duplication: every set of p > 1 degree-1 nodes
// sharing one neighbor contributes p - 1 independent eigenvectors with
// eigenvalue exactly 1 (differences of pendant indicator vectors).
std::size_t Eigenvalue1MultiplicityLowerBound(const graph::Graph& g);

// The same quantity normalized by node count -- the "spectral weight" of
// eigenvalue 1 that separates AS-like graphs (large: many stub fans)
// from grids (zero) and balanced trees (moderate).
double Eigenvalue1Fraction(const graph::Graph& g);

}  // namespace topogen::metrics
