// Attack and error tolerance (Albert, Jeong, Barabasi [3]; paper Figure 9).
//
// Remove an increasing fraction f of nodes -- in decreasing degree order
// ("attack") or uniformly at random ("error") -- and track the average
// pairwise shortest-path length of the surviving largest component.
// Measured and PLRG graphs show the signature *peaked* attack curve: the
// hubs go first, path lengths balloon, then the graph shatters into
// pieces so small that paths shorten again.
#pragma once

#include "graph/graph.h"
#include "metrics/series.h"

namespace topogen::metrics {

struct ToleranceOptions {
  double max_fraction = 0.20;
  double step = 0.01;
  std::size_t path_samples = 128;  // BFS sources for the path-length probe
  std::uint64_t seed = 19;
};

// x = removed fraction f, y = average path length in the largest component.
Series AttackTolerance(const graph::Graph& g,
                       const ToleranceOptions& options = {});
Series ErrorTolerance(const graph::Graph& g,
                      const ToleranceOptions& options = {});

}  // namespace topogen::metrics
