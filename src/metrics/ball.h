// Ball-growing framework (paper Section 3.2.1, footnotes 12 and 14).
//
// Every scale-sensitive metric in the paper is evaluated on "balls": the
// subgraph induced by all nodes within h hops of a center. For each
// sampled center and each radius we hand the induced subgraph to a metric
// functional, then average both the ball sizes and the metric values of
// all balls with the same radius. The result is a Series keyed either by
// radius (expansion-style) or by mean ball size (resilience/distortion
// style), which is how graphs of very different sizes become comparable.
//
// Cost control mirrors the paper: all centers are used for small balls,
// progressively fewer for large ones ("for larger subgraphs, we repeated
// the computation for [fewer] randomly chosen nodes, in order to keep
// computation times reasonable").
//
// Centers are evaluated in parallel (one task per center, see
// docs/PARALLELISM.md) under the engine's determinism contract: each
// center gets a private RNG stream derived from (seed, center index),
// and whether a center participates in big balls is a fixed property of
// its index decided before dispatch -- so the series is bit-identical at
// every TOPOGEN_THREADS value, and independent of execution order.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "graph/rng.h"
#include "metrics/sample.h"
#include "metrics/series.h"
#include "policy/relationships.h"

namespace topogen::metrics {

struct BallGrowingOptions {
  std::size_t max_centers = 24;
  graph::Dist max_radius = 48;
  // Balls above this node count are skipped entirely.
  std::size_t max_ball_nodes = 60000;
  // Balls above big_ball_threshold nodes only run on the first
  // big_ball_centers centers.
  std::size_t big_ball_threshold = 4000;
  std::size_t big_ball_centers = 6;
  std::uint64_t seed = 7;
  // When active (metrics/sample.h), `sample.centers` overrides
  // max_centers, the center stream becomes DeriveStream(seed,
  // sample.seed), each center's BFS honors sample.expansion_budget
  // (radii past the budget cut are simply not reported), and the series
  // carries per-radius 95% CI half-widths in yerr. Inactive specs leave
  // the exhaustive path byte-identical to the historical output.
  SampleSpec sample;
};

// A metric evaluated on one ball subgraph. Returning NaN skips the sample.
using BallMetric = std::function<double(const graph::Graph& ball,
                                        graph::Rng& rng)>;

// Deterministically sampled, well-spread ball centers.
std::vector<graph::NodeId> SampleCenters(const graph::Graph& g,
                                         std::size_t max_centers,
                                         std::uint64_t seed);

// Series keyed by mean ball size: x = average node count of the balls of
// each radius, y = average metric value. The first point is radius 1.
Series BallGrowingSeries(const graph::Graph& g,
                         const BallGrowingOptions& options,
                         const BallMetric& metric);

// Policy variant: balls are policy-induced (Appendix E) using the given
// link relationships.
Series PolicyBallGrowingSeries(const graph::Graph& g,
                               std::span<const policy::Relationship> rel,
                               const BallGrowingOptions& options,
                               const BallMetric& metric);

}  // namespace topogen::metrics
