// Node-diameter (eccentricity) distribution (Zegura et al. [50]; paper
// Figure 7d-f).
//
// For each node, its eccentricity is the hop distance to the farthest
// node. The figure plots the distribution of eccentricities normalized by
// their mean: most topologies produce a bell-ish curve around 1.0, the
// Tree a one-sided curve.
#pragma once

#include "graph/graph.h"
#include "metrics/sample.h"
#include "metrics/series.h"

namespace topogen::metrics {

struct EccentricityOptions {
  std::size_t max_sources = 1500;  // nodes sampled; all when >= n
  double bin_width = 0.05;         // bins on the normalized axis
  std::uint64_t seed = 17;
  // When active (metrics/sample.h), `sample.centers` overrides
  // max_sources, the source stream becomes DeriveStream(seed,
  // sample.seed), and each bin's fraction carries a binomial 95% CI
  // half-width in yerr. The expansion budget is ignored here: an
  // eccentricity read requires the full sweep, so a truncated BFS would
  // bias every sample rather than just drop tail radii.
  SampleSpec sample;
};

// x = eccentricity / mean eccentricity (bin center), y = fraction of
// sampled nodes in the bin.
Series EccentricityDistribution(const graph::Graph& g,
                                const EccentricityOptions& options = {});

}  // namespace topogen::metrics
