// Sampled-estimator contract (docs/PERFORMANCE.md, "Scale tiers and
// sampled estimators").
//
// At million-node scale the exhaustive sweeps behind the paper's figures
// are impossible, so the metrics switch to rigorous sampling: a SampleSpec
// names how many centers/sources to draw, the stream they are derived
// from, and an optional early-exit budget per sweep. A metric given a
// non-zero SampleSpec is "estimator-backed": it reports every figure point
// as mean +/- a 95% normal-approximation confidence interval (Series.yerr)
// and the spec is stamped into manifest.json next to the figure. Metrics
// with a zero spec behave exactly as before — two-column figures, no CI.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace topogen::metrics {

struct SampleSpec {
  // Number of BFS centers/sources to sample; 0 keeps the metric's own
  // default source count and disables CI reporting.
  std::size_t centers = 0;
  // Stream tag folded into the metric's seed (graph::DeriveStream) so an
  // estimator run never replays the exhaustive run's draws.
  std::uint64_t seed = 1;
  // Early-exit budget: a sweep stops expanding new BFS levels once it has
  // visited this many nodes (level-granular, so still deterministic).
  // 0 = no budget. Radii past the first budget-truncated source are
  // dropped from the series rather than reported with a hidden bias.
  std::size_t expansion_budget = 0;

  bool active() const { return centers > 0; }
};

// Mean and the half-width of the normal-approximation 95% confidence
// interval, from the first two moments of k i.i.d. samples.
struct Estimate {
  double mean = 0.0;
  double ci_halfwidth = 0.0;
  std::size_t samples = 0;
};

inline Estimate EstimateFromMoments(double sum, double sum_sq,
                                    std::size_t count) {
  Estimate e;
  e.samples = count;
  if (count == 0) return e;
  const double k = static_cast<double>(count);
  e.mean = sum / k;
  if (count < 2) return e;  // ci_halfwidth stays 0: no spread information
  const double var = std::max(0.0, (sum_sq - sum * sum / k) / (k - 1.0));
  e.ci_halfwidth = 1.96 * std::sqrt(var / k);
  return e;
}

}  // namespace topogen::metrics
