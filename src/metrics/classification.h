// Qualitative low/high classification (paper Sections 3.2.1 and 4.4).
//
// The paper's headline result is a table of Low/High labels per topology
// and metric: Mesh = LHH, Random = HHH, Tree = HLL, the measured graphs
// and PLRG = HHL ("like [the] complete graph!"), Tiers = LHL, TS = HLL,
// Waxman = HHH. The paper assigns the labels by eyeballing curve shapes;
// we encode the same judgements as explicit, documented decision rules so
// the classification is reproducible:
//
//   * Expansion: look at the successive growth ratios E(h+1)/E(h) in the
//     regime below 0.5. An exponential expander sustains its ratio (the
//     branching factor) until saturation; a mesh-like expander's ratio
//     decays toward 1. High iff the tail of the ratio sequence stays at or
//     above `expansion_tail_ratio`.
//   * Resilience: High iff R ever clears both `resilience_floor` and
//     `resilience_magnitude` * log2(n_final) (a mesh's sqrt(n) and Tiers'
//     redundancy-bounded plateau count as High; a tree's or Transit-
//     Stub's small constant does not).
//   * Distortion: Low iff the final D stays below `distortion_fraction`
//     of log2(final ball size) -- the "O(log n) vs bounded" distinction
//     behind Figure 2(c,f,i).
#pragma once

#include <string>

#include "metrics/series.h"

namespace topogen::metrics {

enum class Level { kLow, kHigh };

inline char ToChar(Level level) { return level == Level::kHigh ? 'H' : 'L'; }

struct ClassifierOptions {
  double expansion_cap = 0.5;        // use E(h) ratios only below this
  double expansion_tail_ratio = 1.45;
  double resilience_magnitude = 1.0;  // of log2(n_final)
  double resilience_floor = 2.5;      // max R must exceed this for High
  double distortion_fraction = 0.40; // of log2(n_final)
};

// num_nodes is the full graph's node count (expansion saturates at 1).
Level ClassifyExpansion(const Series& expansion,
                        const ClassifierOptions& options = {});
Level ClassifyResilience(const Series& resilience,
                         const ClassifierOptions& options = {});
Level ClassifyDistortion(const Series& distortion,
                         const ClassifierOptions& options = {});

struct LhSignature {
  Level expansion = Level::kLow;
  Level resilience = Level::kLow;
  Level distortion = Level::kLow;

  // "HHL"-style string, the paper's table notation.
  std::string ToString() const {
    return {ToChar(expansion), ToChar(resilience), ToChar(distortion)};
  }
  friend bool operator==(const LhSignature&, const LhSignature&) = default;
};

LhSignature Classify(const Series& expansion, const Series& resilience,
                     const Series& distortion,
                     const ClassifierOptions& options = {});

}  // namespace topogen::metrics
