// Vertex cover and biconnectivity ball metrics (paper Figure 8).
//
// Both are thin ball-growing wrappers: the approximate minimum vertex
// cover size of each ball subgraph (Figure 8a-c) and the number of
// biconnected components within each ball (Figure 8d-f, after [50]).
#pragma once

#include "graph/graph.h"
#include "metrics/ball.h"
#include "metrics/series.h"

namespace topogen::metrics {

// x = mean ball size, y = mean approximate vertex-cover size.
Series VertexCoverSeries(const graph::Graph& g,
                         const BallGrowingOptions& options = {});

// x = mean ball size, y = mean number of biconnected components.
Series BiconnectivitySeries(const graph::Graph& g,
                            const BallGrowingOptions& options = {});

}  // namespace topogen::metrics
