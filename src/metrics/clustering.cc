#include "metrics/clustering.h"

#include <algorithm>

namespace topogen::metrics {

double ClusteringCoefficient(const graph::Graph& g) {
  double total = 0.0;
  std::size_t counted = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.size() < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.has_edge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    const double pairs =
        static_cast<double>(nbrs.size()) * (nbrs.size() - 1) / 2.0;
    total += static_cast<double>(closed) / pairs;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

Series ClusteringSeries(const graph::Graph& g,
                        const BallGrowingOptions& options) {
  Series s = BallGrowingSeries(g, options,
                               [](const graph::Graph& ball, graph::Rng&) {
                                 return ClusteringCoefficient(ball);
                               });
  s.name = "clustering";
  return s;
}

}  // namespace topogen::metrics
