#include "metrics/multicast.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/trees.h"

namespace topogen::metrics {

std::size_t MulticastTreeLinks(const graph::Graph& g, graph::NodeId source,
                               std::span<const graph::NodeId> receivers) {
  const graph::SpanningTree tree = graph::BfsTree(g, source);
  std::vector<std::uint8_t> in_tree(g.num_nodes(), 0);
  in_tree[source] = 1;
  std::size_t links = 0;
  for (const graph::NodeId r : receivers) {
    if (r >= g.num_nodes() || tree.parent[r] == graph::kInvalidNode) {
      continue;  // unreachable receiver
    }
    // Walk up until we merge with the already-built tree.
    graph::NodeId cur = r;
    while (!in_tree[cur]) {
      in_tree[cur] = 1;
      ++links;
      cur = tree.parent[cur];
    }
  }
  return links;
}

Series MulticastScaling(const graph::Graph& g,
                        const MulticastOptions& options) {
  Series s;
  s.name = "multicast-scaling";
  const graph::NodeId n = g.num_nodes();
  if (n < 4) return s;
  graph::Rng rng(options.seed);
  const std::size_t cap =
      std::min<std::size_t>(options.max_receivers, n - 1);
  for (std::size_t m = 1; m <= cap; m *= 2) {
    double total = 0.0;
    for (std::size_t trial = 0; trial < options.trials_per_size; ++trial) {
      const auto source = static_cast<graph::NodeId>(rng.NextIndex(n));
      std::vector<graph::NodeId> receivers(m);
      for (graph::NodeId& r : receivers) {
        r = static_cast<graph::NodeId>(rng.NextIndex(n));
      }
      total += static_cast<double>(MulticastTreeLinks(g, source, receivers));
    }
    s.Add(static_cast<double>(m),
          total / static_cast<double>(options.trials_per_size));
  }
  return s;
}

double MulticastScalingExponent(const graph::Graph& g,
                                const MulticastOptions& options) {
  const Series s = MulticastScaling(g, options);
  if (s.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.y[i] <= 0) continue;
    const double lx = std::log(s.x[i]);
    const double ly = std::log(s.y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++count;
  }
  if (count < 2) return 0.0;
  const double denom = count * sxx - sx * sx;
  return std::abs(denom) < 1e-12 ? 0.0 : (count * sxy - sx * sy) / denom;
}

}  // namespace topogen::metrics
