#include "metrics/distortion.h"

#include "graph/trees.h"
#include "obs/obs.h"

namespace topogen::metrics {

namespace {

double BallDistortion(const graph::Graph& ball, graph::Rng& rng) {
  if (ball.num_edges() == 0) return std::numeric_limits<double>::quiet_NaN();
  // Betweenness-center sampling shrinks with ball size to keep the
  // all-pairs flavor of footnote 14 affordable on big balls.
  const std::size_t samples = ball.num_nodes() <= 512 ? ball.num_nodes() : 48;
  return graph::BestDistortion(ball, rng, samples);
}

}  // namespace

Series Distortion(const graph::Graph& g, const BallGrowingOptions& options) {
  obs::Span span("metrics.distortion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  Series s = BallGrowingSeries(g, options, BallDistortion);
  s.name = "distortion";
  return s;
}

Series PolicyDistortion(const graph::Graph& g,
                        std::span<const policy::Relationship> rel,
                        const BallGrowingOptions& options) {
  obs::Span span("metrics.policy_distortion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  Series s = PolicyBallGrowingSeries(g, rel, options, BallDistortion);
  s.name = "distortion-policy";
  return s;
}

}  // namespace topogen::metrics
