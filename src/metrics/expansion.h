// Expansion E(h) (paper Section 3.2.1, after Phillips et al. [35]).
//
// E(h) is the average fraction of the graph's nodes within h hops of a
// node. Trees and random graphs expand exponentially (E(h) ~ k^h / N),
// meshes polynomially (E(h) ~ h^2 / N) -- the distinction that separates
// Tiers and Mesh from everything else in Figure 2.
#pragma once

#include <span>

#include "graph/graph.h"
#include "metrics/sample.h"
#include "metrics/series.h"
#include "policy/relationships.h"

namespace topogen::metrics {

struct ExpansionOptions {
  // BFS sources averaged over; all nodes when >= n.
  std::size_t max_sources = 2000;
  std::uint64_t seed = 11;
  // When active (metrics/sample.h), `sample.centers` overrides
  // max_sources, the source stream becomes DeriveStream(seed,
  // sample.seed), each sweep honors sample.expansion_budget, and the
  // series carries 95% CI half-widths in yerr. Inactive specs leave the
  // exhaustive path byte-identical to the historical output.
  SampleSpec sample;
};

// x = ball radius h (1, 2, ...), y = E(h) in (0, 1]. The series ends at
// the sampled graph eccentricity.
Series Expansion(const graph::Graph& g, const ExpansionOptions& options = {});

// Policy-induced expansion (Appendix E): reachability counts follow
// valley-free policy distances instead of hop distances.
Series PolicyExpansion(const graph::Graph& g,
                       std::span<const policy::Relationship> rel,
                       const ExpansionOptions& options = {});

}  // namespace topogen::metrics
