#include "metrics/resilience.h"

#include "graph/partition.h"
#include "obs/obs.h"

namespace topogen::metrics {

namespace {

double BallMinCut(const graph::Graph& ball, graph::Rng& rng) {
  if (ball.num_nodes() < 2) return std::numeric_limits<double>::quiet_NaN();
  graph::BisectionOptions opts;
  // Two multilevel trials per ball: the series averages over many balls,
  // which smooths heuristic noise better than extra per-ball trials.
  opts.num_trials = 2;
  return static_cast<double>(graph::BalancedMinCut(ball, rng, opts));
}

}  // namespace

Series Resilience(const graph::Graph& g, const BallGrowingOptions& options) {
  obs::Span span("metrics.resilience", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  Series s = BallGrowingSeries(g, options, BallMinCut);
  s.name = "resilience";
  return s;
}

Series PolicyResilience(const graph::Graph& g,
                        std::span<const policy::Relationship> rel,
                        const BallGrowingOptions& options) {
  obs::Span span("metrics.policy_resilience", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  Series s = PolicyBallGrowingSeries(g, rel, options, BallMinCut);
  s.name = "resilience-policy";
  return s;
}

}  // namespace topogen::metrics
