#include "metrics/spectrum.h"

#include <cmath>

#include "graph/eigen.h"
#include "graph/rng.h"

namespace topogen::metrics {

Series EigenvalueRank(const graph::Graph& g, const SpectrumOptions& options) {
  Series s;
  s.name = "eigenvalue-rank";
  graph::Rng rng(options.seed);
  const std::vector<double> eig =
      graph::TopEigenvalues(g, options.top_k, rng);
  std::size_t rank = 1;
  for (double value : eig) {
    if (value <= 1e-9) break;  // sorted descending; the rest are <= 0
    s.Add(static_cast<double>(rank++), value);
  }
  return s;
}

double EigenvaluePowerLawSlope(const graph::Graph& g,
                               const SpectrumOptions& options) {
  const Series s = EigenvalueRank(g, options);
  if (s.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto count = static_cast<double>(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double lx = std::log(s.x[i]);
    const double ly = std::log(s.y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = count * sxx - sx * sx;
  return std::abs(denom) < 1e-12 ? 0.0 : (count * sxy - sx * sy) / denom;
}

}  // namespace topogen::metrics
