#include "metrics/expansion.h"

#include <algorithm>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "graph/rng.h"
#include "obs/obs.h"
#include "metrics/ball.h"
#include "parallel/parallel_for.h"
#include "policy/policy_ball.h"

namespace topogen::metrics {

namespace {

// Shared accumulation: per-source cumulative reachable counts, averaged
// per radius and normalized by n. When `with_ci` is set the per-source
// fractions are treated as i.i.d. samples of E(h) and the series carries
// 95% half-widths; `budget` is the per-sweep node budget used only to
// recognize (and truncate at) budget-stopped sources.
template <typename CountsFn>
Series AccumulateExpansion(const graph::Graph& g, std::size_t max_sources,
                           std::uint64_t seed, bool with_ci,
                           std::size_t budget, CountsFn counts_of) {
  Series s;
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return s;
  const std::vector<graph::NodeId> sources =
      SampleCenters(g, max_sources, seed);
  // Collect first, then average: sources whose eccentricity is below the
  // global maximum stay saturated at their final reachable count for
  // larger radii, so E(h) is monotone as it should be. Every source
  // writes its own slot, so the parallel fan-out is trivially
  // deterministic; the averaging below stays serial and ordered. One BFS
  // workspace is leased per chunk and reused across all of its sources.
  std::vector<std::vector<std::size_t>> all(sources.size());
  parallel::ParallelFor(
      parallel::PlanChunks(sources.size(), /*min_grain=*/8,
                           /*max_chunks=*/64),
      [&](std::size_t, std::size_t first, std::size_t last) {
        graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
        for (std::size_t i = first; i < last; ++i) {
          TOPOGEN_HIST_SCOPE("metrics.expansion.source_ns");
          counts_of(sources[i], *scratch, all[i]);
        }
      });
  std::size_t max_len = 0;
  for (const auto& counts : all) max_len = std::max(max_len, counts.size());
  if (budget > 0) {
    // A source that stopped on the node budget (visited >= budget nodes)
    // has exact cumulative counts only for the radii it actually opened;
    // treating its last count as saturated for larger h would bias E(h)
    // low. Truncate the series at the shortest such source instead of
    // reporting biased points (sample.h contract).
    for (const auto& counts : all) {
      if (!counts.empty() && counts.back() >= budget) {
        max_len = std::min(max_len, counts.size());
      }
    }
  }
  for (std::size_t h = 1; h < max_len; ++h) {
    if (with_ci) {
      // Per-source fractions are the i.i.d. samples behind the estimator.
      double sum = 0.0;
      double sum_sq = 0.0;
      for (const auto& counts : all) {
        const double v =
            static_cast<double>(h < counts.size() ? counts[h]
                                                  : counts.back()) /
            static_cast<double>(n);
        sum += v;
        sum_sq += v * v;
      }
      const Estimate e = EstimateFromMoments(sum, sum_sq, all.size());
      s.AddWithError(static_cast<double>(h), e.mean, e.ci_halfwidth);
      continue;
    }
    double sum = 0.0;
    for (const auto& counts : all) {
      sum += static_cast<double>(h < counts.size() ? counts[h]
                                                   : counts.back());
    }
    s.Add(static_cast<double>(h),
          sum / static_cast<double>(all.size()) / static_cast<double>(n));
  }
  return s;
}

}  // namespace

Series Expansion(const graph::Graph& g, const ExpansionOptions& options) {
  obs::Span span("metrics.expansion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  const bool sampled = options.sample.active();
  const std::size_t sources =
      sampled ? options.sample.centers : options.max_sources;
  const std::uint64_t seed =
      sampled ? graph::DeriveStream(options.seed, options.sample.seed)
              : options.seed;
  const std::size_t budget = sampled ? options.sample.expansion_budget : 0;
  return AccumulateExpansion(
      g, sources, seed, sampled, budget,
      [&](graph::NodeId src, graph::BfsScratch& scratch,
          std::vector<std::size_t>& counts) {
        graph::ReachableCountsInto(g, src, scratch, counts,
                                   graph::kUnreachable, budget);
      });
}

Series PolicyExpansion(const graph::Graph& g,
                       std::span<const policy::Relationship> rel,
                       const ExpansionOptions& options) {
  obs::Span span("metrics.policy_expansion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  const bool sampled = options.sample.active();
  const std::size_t sources =
      sampled ? options.sample.centers : options.max_sources;
  const std::uint64_t seed =
      sampled ? graph::DeriveStream(options.seed, options.sample.seed)
              : options.seed;
  // The policy sweep has no level-budget hook, so sampled runs get CI
  // reporting and source subsampling but each sweep still runs to its
  // policy eccentricity (budget 0 below).
  return AccumulateExpansion(
      g, sources, seed, sampled, /*budget=*/0,
      [&](graph::NodeId src, graph::BfsScratch&,
          std::vector<std::size_t>& counts) {
        // Policy sweeps run on their own pooled PolicyBfs workspace (the
        // up/down distance pair does not fit the plain BFS scratch).
        counts = policy::PolicyReachableCounts(g, rel, src);
      });
}

}  // namespace topogen::metrics
