#include "metrics/expansion.h"

#include <algorithm>

#include "graph/bfs.h"
#include "obs/obs.h"
#include "metrics/ball.h"
#include "parallel/parallel_for.h"
#include "policy/policy_ball.h"

namespace topogen::metrics {

namespace {

// Shared accumulation: per-source cumulative reachable counts, averaged
// per radius and normalized by n.
template <typename CountsFn>
Series AccumulateExpansion(const graph::Graph& g, std::size_t max_sources,
                           std::uint64_t seed, CountsFn counts_of) {
  Series s;
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return s;
  const std::vector<graph::NodeId> sources =
      SampleCenters(g, max_sources, seed);
  // Collect first, then average: sources whose eccentricity is below the
  // global maximum stay saturated at their final reachable count for
  // larger radii, so E(h) is monotone as it should be. Every source
  // writes its own slot, so the parallel fan-out is trivially
  // deterministic; the averaging below stays serial and ordered.
  std::vector<std::vector<std::size_t>> all(sources.size());
  parallel::ParallelFor(
      parallel::PlanChunks(sources.size(), /*min_grain=*/8,
                           /*max_chunks=*/64),
      [&](std::size_t, std::size_t first, std::size_t last) {
        for (std::size_t i = first; i < last; ++i) {
          all[i] = counts_of(sources[i]);
        }
      });
  std::size_t max_len = 0;
  for (const auto& counts : all) max_len = std::max(max_len, counts.size());
  for (std::size_t h = 1; h < max_len; ++h) {
    double sum = 0.0;
    for (const auto& counts : all) {
      sum += static_cast<double>(h < counts.size() ? counts[h]
                                                   : counts.back());
    }
    s.Add(static_cast<double>(h),
          sum / static_cast<double>(all.size()) / static_cast<double>(n));
  }
  return s;
}

}  // namespace

Series Expansion(const graph::Graph& g, const ExpansionOptions& options) {
  obs::Span span("metrics.expansion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  return AccumulateExpansion(
      g, options.max_sources, options.seed,
      [&](graph::NodeId src) { return graph::ReachableCounts(g, src); });
}

Series PolicyExpansion(const graph::Graph& g,
                       std::span<const policy::Relationship> rel,
                       const ExpansionOptions& options) {
  obs::Span span("metrics.policy_expansion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  return AccumulateExpansion(g, options.max_sources, options.seed,
                             [&](graph::NodeId src) {
                               return policy::PolicyReachableCounts(g, rel,
                                                                    src);
                             });
}

}  // namespace topogen::metrics
