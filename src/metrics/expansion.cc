#include "metrics/expansion.h"

#include <algorithm>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "obs/obs.h"
#include "metrics/ball.h"
#include "parallel/parallel_for.h"
#include "policy/policy_ball.h"

namespace topogen::metrics {

namespace {

// Shared accumulation: per-source cumulative reachable counts, averaged
// per radius and normalized by n.
template <typename CountsFn>
Series AccumulateExpansion(const graph::Graph& g, std::size_t max_sources,
                           std::uint64_t seed, CountsFn counts_of) {
  Series s;
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return s;
  const std::vector<graph::NodeId> sources =
      SampleCenters(g, max_sources, seed);
  // Collect first, then average: sources whose eccentricity is below the
  // global maximum stay saturated at their final reachable count for
  // larger radii, so E(h) is monotone as it should be. Every source
  // writes its own slot, so the parallel fan-out is trivially
  // deterministic; the averaging below stays serial and ordered. One BFS
  // workspace is leased per chunk and reused across all of its sources.
  std::vector<std::vector<std::size_t>> all(sources.size());
  parallel::ParallelFor(
      parallel::PlanChunks(sources.size(), /*min_grain=*/8,
                           /*max_chunks=*/64),
      [&](std::size_t, std::size_t first, std::size_t last) {
        graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
        for (std::size_t i = first; i < last; ++i) {
          TOPOGEN_HIST_SCOPE("metrics.expansion.source_ns");
          counts_of(sources[i], *scratch, all[i]);
        }
      });
  std::size_t max_len = 0;
  for (const auto& counts : all) max_len = std::max(max_len, counts.size());
  for (std::size_t h = 1; h < max_len; ++h) {
    double sum = 0.0;
    for (const auto& counts : all) {
      sum += static_cast<double>(h < counts.size() ? counts[h]
                                                   : counts.back());
    }
    s.Add(static_cast<double>(h),
          sum / static_cast<double>(all.size()) / static_cast<double>(n));
  }
  return s;
}

}  // namespace

Series Expansion(const graph::Graph& g, const ExpansionOptions& options) {
  obs::Span span("metrics.expansion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  return AccumulateExpansion(
      g, options.max_sources, options.seed,
      [&](graph::NodeId src, graph::BfsScratch& scratch,
          std::vector<std::size_t>& counts) {
        graph::ReachableCountsInto(g, src, scratch, counts);
      });
}

Series PolicyExpansion(const graph::Graph& g,
                       std::span<const policy::Relationship> rel,
                       const ExpansionOptions& options) {
  obs::Span span("metrics.policy_expansion", "metrics");
  span.Arg("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  return AccumulateExpansion(
      g, options.max_sources, options.seed,
      [&](graph::NodeId src, graph::BfsScratch&,
          std::vector<std::size_t>& counts) {
        // Policy sweeps run on their own pooled PolicyBfs workspace (the
        // up/down distance pair does not fit the plain BFS scratch).
        counts = policy::PolicyReachableCounts(g, rel, src);
      });
}

}  // namespace topogen::metrics
