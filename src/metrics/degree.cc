#include "metrics/degree.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace topogen::metrics {

Series DegreeCcdf(const graph::Graph& g) {
  Series s;
  s.name = "degree-ccdf";
  std::map<std::size_t, std::size_t> histogram;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ++histogram[g.degree(v)];
  }
  const double n = static_cast<double>(g.num_nodes());
  std::size_t at_least = g.num_nodes();
  for (const auto& [degree, count] : histogram) {
    if (degree > 0) {
      s.Add(static_cast<double>(degree),
            static_cast<double>(at_least) / n);
    }
    at_least -= count;
  }
  return s;
}

double FitPowerLawExponent(const graph::Graph& g) {
  const Series ccdf = DegreeCcdf(g);
  if (ccdf.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < ccdf.size(); ++i) {
    if (ccdf.x[i] <= 0 || ccdf.y[i] <= 0) continue;
    const double lx = std::log(ccdf.x[i]);
    const double ly = std::log(ccdf.y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++count;
  }
  if (count < 2) return 0.0;
  const double denom = count * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  const double slope = (count * sxy - sx * sy) / denom;
  return 1.0 - slope;  // CCDF slope is -(beta - 1)
}

Series DegreeRank(const graph::Graph& g) {
  Series s;
  s.name = "degree-rank";
  std::vector<std::size_t> degrees(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    degrees[v] = g.degree(v);
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  for (std::size_t rank = 0; rank < degrees.size(); ++rank) {
    if (degrees[rank] == 0) break;  // isolated tail is off the log axis
    s.Add(static_cast<double>(rank + 1), static_cast<double>(degrees[rank]));
  }
  return s;
}

double DegreeRankExponent(const graph::Graph& g) {
  const Series s = DegreeRank(g);
  if (s.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto count = static_cast<double>(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double lx = std::log(s.x[i]);
    const double ly = std::log(s.y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = count * sxx - sx * sx;
  return std::abs(denom) < 1e-12 ? 0.0 : (count * sxy - sx * sy) / denom;
}

bool LooksHeavyTailed(const graph::Graph& g, double spread) {
  if (g.num_nodes() == 0 || g.average_degree() == 0.0) return false;
  const double ratio =
      static_cast<double>(g.max_degree()) / g.average_degree();
  if (ratio < spread) return false;
  // The fitted exponent of a genuinely heavy tail lands in a sane band.
  const double beta = FitPowerLawExponent(g);
  return beta > 1.2 && beta < 4.5;
}

}  // namespace topogen::metrics
