#include "metrics/tolerance.h"

#include <algorithm>
#include <numeric>

#include "graph/bfs.h"
#include "graph/components.h"
#include "graph/rng.h"

namespace topogen::metrics {

namespace {

// Removal order -> tolerance curve. At each step the next slice of the
// order is dropped, the largest surviving component extracted, and its
// average path length sampled.
Series ToleranceCurve(const graph::Graph& g,
                      const std::vector<graph::NodeId>& removal_order,
                      const ToleranceOptions& options,
                      const char* name) {
  Series s;
  s.name = name;
  const graph::NodeId n = g.num_nodes();
  if (n == 0) return s;
  std::vector<std::uint8_t> removed(n, 0);
  std::size_t removed_count = 0;

  for (double f = 0.0; f <= options.max_fraction + 1e-9; f += options.step) {
    const auto target = static_cast<std::size_t>(f * n);
    while (removed_count < target && removed_count < removal_order.size()) {
      removed[removal_order[removed_count++]] = 1;
    }
    std::vector<graph::NodeId> survivors;
    survivors.reserve(n - removed_count);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!removed[v]) survivors.push_back(v);
    }
    if (survivors.size() < 2) break;
    const graph::Subgraph sub = graph::InducedSubgraph(g, survivors);
    const graph::Subgraph largest = graph::LargestComponent(sub.graph);
    s.Add(f, graph::AveragePathLength(largest.graph, options.path_samples));
  }
  return s;
}

}  // namespace

Series AttackTolerance(const graph::Graph& g,
                       const ToleranceOptions& options) {
  std::vector<graph::NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     return g.degree(a) > g.degree(b);
                   });
  return ToleranceCurve(g, order, options, "attack");
}

Series ErrorTolerance(const graph::Graph& g, const ToleranceOptions& options) {
  std::vector<graph::NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  graph::Rng rng(options.seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  return ToleranceCurve(g, order, options, "error");
}

}  // namespace topogen::metrics
