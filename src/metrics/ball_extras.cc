#include "metrics/ball_extras.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "graph/maxflow.h"

namespace topogen::metrics {

Series BallAveragePathSeries(const graph::Graph& g,
                             const BallGrowingOptions& options) {
  Series s = BallGrowingSeries(
      g, options, [](const graph::Graph& ball, graph::Rng&) {
        if (ball.num_nodes() < 2) {
          return std::numeric_limits<double>::quiet_NaN();
        }
        return graph::AveragePathLength(ball, 64);
      });
  s.name = "ball-average-path";
  return s;
}

Series BallMaxFlowSeries(const graph::Graph& g,
                         const BallGrowingOptions& options) {
  Series s = BallGrowingSeries(
      g, options, [](const graph::Graph& ball, graph::Rng& rng) {
        // InducedSubgraph preserves the BFS-distance order, so local node
        // 0 is the ball's center and the surface is the farthest layer.
        const graph::NodeId n = ball.num_nodes();
        if (n < 2) return std::numeric_limits<double>::quiet_NaN();
        // Nested sweep inside BallGrowingSeries: the pool hands this
        // metric its own workspace, distinct from the outer ball BFS.
        graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
        graph::BfsDistancesInto(ball, 0, *scratch);
        const graph::Dist radius = scratch->eccentricity();
        std::vector<graph::NodeId> surface;
        for (graph::NodeId v = 0; v < n; ++v) {
          if (scratch->dist(v) == radius && radius > 0) surface.push_back(v);
        }
        if (surface.empty()) {
          return std::numeric_limits<double>::quiet_NaN();
        }
        // Average flow to a handful of sampled surface nodes.
        graph::UnitMaxFlow solver(ball);
        const std::size_t samples =
            std::min<std::size_t>(6, surface.size());
        double total = 0.0;
        for (std::size_t i = 0; i < samples; ++i) {
          const graph::NodeId t =
              surface[rng.NextIndex(surface.size())];
          total += static_cast<double>(solver.Solve(0, t));
        }
        return total / static_cast<double>(samples);
      });
  s.name = "ball-maxflow";
  return s;
}

Series HopPlot(const graph::Graph& g, const ExpansionOptions& options) {
  const Series expansion = Expansion(g, options);
  Series s;
  s.name = "hop-plot";
  const double n = static_cast<double>(g.num_nodes());
  for (std::size_t i = 0; i < expansion.size(); ++i) {
    s.Add(expansion.x[i], n * n * expansion.y[i]);
  }
  return s;
}

double HopPlotExponent(const graph::Graph& g,
                       const ExpansionOptions& options) {
  const Series plot = HopPlot(g, options);
  const double n = static_cast<double>(g.num_nodes());
  // Growth regime: below 80% of all pairs.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < plot.size(); ++i) {
    if (plot.y[i] <= 0 || plot.y[i] > 0.8 * n * n) continue;
    const double lx = std::log(plot.x[i]);
    const double ly = std::log(plot.y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++count;
  }
  if (count < 2) return 0.0;
  const double denom = count * sxx - sx * sx;
  return std::abs(denom) < 1e-12 ? 0.0 : (count * sxy - sx * sy) / denom;
}

}  // namespace topogen::metrics
