// Multicast tree scaling (Phillips, Shenker, Tangmunarunkit [35]).
//
// The paper's expansion metric descends from the Chuang-Sirbu multicast
// scaling work: graphs with exponential neighborhood growth approximately
// obey L(m) ~ m^0.8, where L(m) is the number of links in a shortest-path
// multicast tree reaching m random receivers. Implemented as an extension
// experiment: it ties the abstract expansion classification back to a
// concrete protocol-cost consequence.
#pragma once

#include "graph/graph.h"
#include "graph/rng.h"
#include "metrics/series.h"

namespace topogen::metrics {

struct MulticastOptions {
  // Receiver-set sizes measured, log-spaced up to max_receivers.
  std::size_t max_receivers = 512;
  std::size_t trials_per_size = 8;
  std::uint64_t seed = 29;
};

// Number of links in the shortest-path tree from `source` to `receivers`
// (union of the BFS-tree paths, each receiver routed along its BFS
// parent chain).
std::size_t MulticastTreeLinks(const graph::Graph& g, graph::NodeId source,
                               std::span<const graph::NodeId> receivers);

// x = receiver count m, y = mean multicast tree links L(m) over random
// sources/receiver sets.
Series MulticastScaling(const graph::Graph& g,
                        const MulticastOptions& options = {});

// Log-log slope of L(m): the Chuang-Sirbu exponent (~0.8 on
// Internet-like topologies).
double MulticastScalingExponent(const graph::Graph& g,
                                const MulticastOptions& options = {});

}  // namespace topogen::metrics
