// The paper's footnote-22 auxiliary ball metrics and the Faloutsos
// hop-plot.
//
// Footnote 22: "we also tested many others (of our own devising),
// including the average path length between any two nodes in a ball of
// size n, and the expected max-flow between the center of a ball of size
// n and any node on the surface of the ball. These metrics, too, do not
// contradict our findings but do not add to them either." Both are
// implemented here so that claim can be checked, plus the hop-plot
// exponent of Faloutsos et al. [17] that Medina et al. [29] used.
#pragma once

#include "graph/graph.h"
#include "metrics/ball.h"
#include "metrics/expansion.h"
#include "metrics/series.h"

namespace topogen::metrics {

// x = mean ball size, y = average pairwise shortest-path length within
// the ball.
Series BallAveragePathSeries(const graph::Graph& g,
                             const BallGrowingOptions& options = {});

// x = mean ball size, y = expected unit-capacity max-flow from the ball's
// center to a node on its surface (sampled surface nodes). By Menger this
// is the expected number of edge-disjoint center-surface paths -- a
// resilience-flavored quantity.
Series BallMaxFlowSeries(const graph::Graph& g,
                         const BallGrowingOptions& options = {});

// Hop-plot: x = h, y = number of node pairs within h hops (ordered pairs,
// including self-pairs, matching [17]). Computed from the expansion
// series: P(h) = n * (n * E(h)).
Series HopPlot(const graph::Graph& g, const ExpansionOptions& options = {});

// Log-log slope of the hop-plot in its growth regime (below saturation);
// the Faloutsos "hop-plot exponent". Returns 0 when fewer than two
// usable points exist.
double HopPlotExponent(const graph::Graph& g,
                       const ExpansionOptions& options = {});

}  // namespace topogen::metrics
