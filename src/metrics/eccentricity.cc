#include "metrics/eccentricity.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/bfs.h"
#include "metrics/ball.h"

namespace topogen::metrics {

Series EccentricityDistribution(const graph::Graph& g,
                                const EccentricityOptions& options) {
  Series s;
  s.name = "eccentricity";
  if (g.num_nodes() == 0) return s;
  const std::vector<graph::NodeId> sources =
      SampleCenters(g, options.max_sources, options.seed);
  std::vector<double> ecc;
  ecc.reserve(sources.size());
  double mean = 0.0;
  for (const graph::NodeId src : sources) {
    const auto e = static_cast<double>(graph::Eccentricity(g, src));
    if (e > 0) {
      ecc.push_back(e);
      mean += e;
    }
  }
  if (ecc.empty()) return s;
  mean /= static_cast<double>(ecc.size());

  std::map<long, std::size_t> bins;
  for (double e : ecc) {
    ++bins[std::lround(e / mean / options.bin_width)];
  }
  for (const auto& [bin, count] : bins) {
    s.Add(static_cast<double>(bin) * options.bin_width,
          static_cast<double>(count) / static_cast<double>(ecc.size()));
  }
  return s;
}

}  // namespace topogen::metrics
