#include "metrics/eccentricity.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "graph/rng.h"
#include "metrics/ball.h"
#include "parallel/parallel_for.h"

namespace topogen::metrics {

Series EccentricityDistribution(const graph::Graph& g,
                                const EccentricityOptions& options) {
  Series s;
  s.name = "eccentricity";
  if (g.num_nodes() == 0) return s;
  const bool sampled = options.sample.active();
  const std::size_t max_sources =
      sampled ? options.sample.centers : options.max_sources;
  const std::uint64_t seed =
      sampled ? graph::DeriveStream(options.seed, options.sample.seed)
              : options.seed;
  const std::vector<graph::NodeId> sources =
      SampleCenters(g, max_sources, seed);
  // Every source writes its own slot (order-independent fan-out); the
  // binning below stays serial. Each chunk leases one BFS workspace and
  // reuses it across its sources.
  std::vector<double> ecc_of(sources.size());
  parallel::ParallelFor(
      parallel::PlanChunks(sources.size(), /*min_grain=*/8,
                           /*max_chunks=*/64),
      [&](std::size_t, std::size_t first, std::size_t last) {
        graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
        for (std::size_t i = first; i < last; ++i) {
          graph::BfsDistancesInto(g, sources[i], *scratch);
          ecc_of[i] = static_cast<double>(scratch->eccentricity());
        }
      });
  std::vector<double> ecc;
  ecc.reserve(sources.size());
  double mean = 0.0;
  for (const double e : ecc_of) {
    if (e > 0) {
      ecc.push_back(e);
      mean += e;
    }
  }
  if (ecc.empty()) return s;
  mean /= static_cast<double>(ecc.size());

  std::map<long, std::size_t> bins;
  for (double e : ecc) {
    ++bins[std::lround(e / mean / options.bin_width)];
  }
  const double k = static_cast<double>(ecc.size());
  for (const auto& [bin, count] : bins) {
    const double frac = static_cast<double>(count) / k;
    if (sampled) {
      // Each bin fraction is a binomial proportion over k sampled
      // sources; the normal-approximation 95% half-width matches the
      // EstimateFromMoments convention used by the other estimators.
      s.AddWithError(static_cast<double>(bin) * options.bin_width, frac,
                     1.96 * std::sqrt(frac * (1.0 - frac) / k));
    } else {
      s.Add(static_cast<double>(bin) * options.bin_width, frac);
    }
  }
  return s;
}

}  // namespace topogen::metrics
