// A plotted data series: the (x, y) rows behind every figure panel.
#pragma once

#include <string>
#include <vector>

namespace topogen::metrics {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void Add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  double back_y() const { return y.back(); }
};

}  // namespace topogen::metrics
