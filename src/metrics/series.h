// A plotted data series: the (x, y) rows behind every figure panel.
#pragma once

#include <string>
#include <vector>

namespace topogen::metrics {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  // 95% confidence half-widths, parallel to y. Empty for exact series;
  // filled (same length as y) when the series is estimator-backed
  // (metrics/sample.h). Exporters emit a third column only when present.
  std::vector<double> yerr;

  void Add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  void AddWithError(double xv, double yv, double err) {
    x.push_back(xv);
    y.push_back(yv);
    yerr.push_back(err);
  }
  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }
  bool has_error() const { return yerr.size() == y.size() && !y.empty(); }

  double back_y() const { return y.back(); }
};

}  // namespace topogen::metrics
