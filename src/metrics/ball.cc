#include "metrics/ball.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "policy/policy_ball.h"

namespace topogen::metrics {

using graph::Dist;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;
using graph::Rng;

std::vector<NodeId> SampleCenters(const Graph& g, std::size_t max_centers,
                                  std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> centers;
  if (n == 0) return centers;
  if (n <= max_centers) {
    centers.resize(n);
    std::iota(centers.begin(), centers.end(), 0);
    return centers;
  }
  // Random sample without replacement (partial Fisher-Yates).
  Rng rng(seed);
  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = 0; i < max_centers; ++i) {
    const std::size_t j = i + rng.NextIndex(n - i);
    std::swap(all[i], all[j]);
    centers.push_back(all[i]);
  }
  return centers;
}

namespace {

struct RadiusBin {
  double sum_size = 0.0;
  double sum_value = 0.0;
  std::size_t count = 0;
};

Series BinsToSeries(const std::vector<RadiusBin>& bins) {
  Series s;
  for (const RadiusBin& bin : bins) {
    if (bin.count == 0) continue;
    s.Add(bin.sum_size / static_cast<double>(bin.count),
          bin.sum_value / static_cast<double>(bin.count));
  }
  return s;
}

}  // namespace

Series BallGrowingSeries(const Graph& g, const BallGrowingOptions& options,
                         const BallMetric& metric) {
  const std::vector<NodeId> centers =
      SampleCenters(g, options.max_centers, options.seed);
  std::vector<RadiusBin> bins(static_cast<std::size_t>(options.max_radius) + 1);
  Rng rng(graph::SplitMix64(options.seed) ^ 0x9e3779b9u);

  for (std::size_t ci = 0; ci < centers.size(); ++ci) {
    const NodeId center = centers[ci];
    // One BFS; balls of every radius are prefixes of the distance order.
    const std::vector<Dist> dist = BfsDistances(g, center);
    std::vector<NodeId> order;
    order.reserve(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] != kUnreachable) order.push_back(v);
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return dist[a] < dist[b];
    });
    Dist max_r = 0;
    for (NodeId v : order) max_r = std::max(max_r, dist[v]);
    max_r = std::min<Dist>(max_r, options.max_radius);

    std::size_t prefix = 0;
    for (Dist r = 1; r <= max_r; ++r) {
      while (prefix < order.size() && dist[order[prefix]] <= r) ++prefix;
      if (prefix > options.max_ball_nodes) break;
      if (prefix > options.big_ball_threshold &&
          ci >= options.big_ball_centers) {
        break;  // large balls run on a reduced center set
      }
      const graph::Subgraph ball = graph::InducedSubgraph(
          g, std::span<const NodeId>(order.data(), prefix));
      const double value = metric(ball.graph, rng);
      if (std::isnan(value)) continue;
      bins[r].sum_size += static_cast<double>(prefix);
      bins[r].sum_value += value;
      ++bins[r].count;
      if (prefix == order.size()) break;  // ball swallowed the component
    }
  }
  return BinsToSeries(bins);
}

Series PolicyBallGrowingSeries(const Graph& g,
                               std::span<const policy::Relationship> rel,
                               const BallGrowingOptions& options,
                               const BallMetric& metric) {
  const std::vector<NodeId> centers =
      SampleCenters(g, options.max_centers, options.seed);
  std::vector<RadiusBin> bins(static_cast<std::size_t>(options.max_radius) + 1);
  Rng rng(graph::SplitMix64(options.seed) ^ 0x51c6e573u);

  for (std::size_t ci = 0; ci < centers.size(); ++ci) {
    const NodeId center = centers[ci];
    std::size_t last_size = 0;
    for (Dist r = 1; r <= options.max_radius; ++r) {
      const policy::PolicyBall ball = policy::GrowPolicyBall(g, rel, center, r);
      const std::size_t size = ball.subgraph.graph.num_nodes();
      if (size > options.max_ball_nodes) break;
      if (size > options.big_ball_threshold &&
          ci >= options.big_ball_centers) {
        break;
      }
      const double value = metric(ball.subgraph.graph, rng);
      if (!std::isnan(value)) {
        bins[r].sum_size += static_cast<double>(size);
        bins[r].sum_value += value;
        ++bins[r].count;
      }
      if (size == last_size) break;  // policy ball stopped growing
      last_size = size;
    }
  }
  return BinsToSeries(bins);
}

}  // namespace topogen::metrics
