#include "metrics/ball.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "graph/bfs_scratch.h"
#include "obs/stats.h"
#include "parallel/parallel_for.h"
#include "policy/policy_ball.h"

namespace topogen::metrics {

using graph::Dist;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;
using graph::Rng;

std::vector<NodeId> SampleCenters(const Graph& g, std::size_t max_centers,
                                  std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> centers;
  if (n == 0) return centers;
  if (n <= max_centers) {
    centers.resize(n);
    std::iota(centers.begin(), centers.end(), 0);
    return centers;
  }
  // Random sample without replacement (partial Fisher-Yates).
  Rng rng(seed);
  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = 0; i < max_centers; ++i) {
    const std::size_t j = i + rng.NextIndex(n - i);
    std::swap(all[i], all[j]);
    centers.push_back(all[i]);
  }
  return centers;
}

namespace {

struct RadiusBin {
  double sum_size = 0.0;
  double sum_value = 0.0;
  // Second moment of the per-ball metric values; only read when the run
  // is estimator-backed, but accumulating it unconditionally is one FMA
  // per sample and keeps the fold shape uniform.
  double sum_value_sq = 0.0;
  std::size_t count = 0;
};

Series BinsToSeries(const std::vector<RadiusBin>& bins, bool with_ci) {
  Series s;
  for (const RadiusBin& bin : bins) {
    if (bin.count == 0) continue;
    const double mean_size = bin.sum_size / static_cast<double>(bin.count);
    if (with_ci) {
      const Estimate e =
          EstimateFromMoments(bin.sum_value, bin.sum_value_sq, bin.count);
      s.AddWithError(mean_size, e.mean, e.ci_halfwidth);
    } else {
      s.Add(mean_size, bin.sum_value / static_cast<double>(bin.count));
    }
  }
  return s;
}

void FoldBins(std::vector<RadiusBin>& acc, std::vector<RadiusBin>&& next) {
  for (std::size_t r = 0; r < acc.size(); ++r) {
    acc[r].sum_size += next[r].sum_size;
    acc[r].sum_value += next[r].sum_value;
    acc[r].sum_value_sq += next[r].sum_value_sq;
    acc[r].count += next[r].count;
  }
}

// One chunk per center: each center is a full BFS plus a metric
// evaluation per radius, heavyweight enough to schedule individually.
// Partial bins fold in center order, so the per-radius sums associate
// identically at every thread count.
parallel::ChunkPlan CenterPlan(std::size_t num_centers) {
  return parallel::PlanChunks(num_centers, /*min_grain=*/1,
                              /*max_chunks=*/num_centers);
}

// Everything a center's evaluation may depend on is decided *before*
// dispatch: the center id, whether this center participates in big balls
// (a fixed property of its index -- a center must never observe how many
// balls other centers grew past big_ball_threshold), and its private RNG
// stream derived from (seed, center index). See docs/PARALLELISM.md.
struct CenterTask {
  graph::NodeId center = 0;
  bool allow_big = false;
  std::uint64_t rng_seed = 0;
};

std::vector<CenterTask> PlanCenters(const graph::Graph& g,
                                    const BallGrowingOptions& options,
                                    std::uint64_t stream_salt) {
  // An active SampleSpec swaps in its own center count and stream; with
  // an inactive spec both collapse to the historical values, keeping the
  // exhaustive path byte-identical.
  const bool sampled = options.sample.active();
  const std::size_t max_centers =
      sampled ? options.sample.centers : options.max_centers;
  const std::uint64_t seed =
      sampled ? graph::DeriveStream(options.seed, options.sample.seed)
              : options.seed;
  const std::vector<graph::NodeId> centers =
      SampleCenters(g, max_centers, seed);
  std::vector<CenterTask> tasks(centers.size());
  for (std::size_t ci = 0; ci < centers.size(); ++ci) {
    tasks[ci].center = centers[ci];
    tasks[ci].allow_big = ci < options.big_ball_centers;
    tasks[ci].rng_seed = graph::DeriveStream(seed ^ stream_salt, ci);
  }
  return tasks;
}

}  // namespace

Series BallGrowingSeries(const Graph& g, const BallGrowingOptions& options,
                         const BallMetric& metric) {
  const std::vector<CenterTask> tasks =
      PlanCenters(g, options, /*stream_salt=*/0x9e3779b9u);
  const std::size_t num_bins = static_cast<std::size_t>(options.max_radius) + 1;

  auto map = [&](std::size_t ci, std::size_t, std::size_t) {
    const CenterTask& task = tasks[ci];
    // A center is the ball kernel's unit of work (one BFS + per-radius
    // metric evaluations); its latency distribution is what the p99 in
    // BENCH.json's ball rows summarizes.
    TOPOGEN_HIST_SCOPE("metrics.ball.center_ns");
    std::vector<RadiusBin> bins(num_bins);
    Rng rng(task.rng_seed);
    // One BFS; balls of every radius are prefixes of the distance order.
    // The lease is held across the metric() calls below -- nested sweeps
    // (resilience, max-flow) draw a second workspace from the pool, so
    // this one's distances stay valid for the whole center.
    graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
    // Estimator runs cap each center's sweep at the sample budget; the
    // level-granular cut (bfs.h) means every radius that does get binned
    // below saw its complete ball, so reported points stay unbiased.
    const std::size_t budget =
        options.sample.active() ? options.sample.expansion_budget : 0;
    graph::BfsDistancesInto(g, task.center, *scratch, graph::kUnreachable,
                            budget);
    const graph::BfsScratch& bfs = *scratch;
    std::vector<NodeId> order;
    order.reserve(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (bfs.visited(v)) order.push_back(v);
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return bfs.dist(a) < bfs.dist(b);
    });
    Dist max_r = 0;
    for (NodeId v : order) max_r = std::max(max_r, bfs.dist(v));
    max_r = std::min<Dist>(max_r, options.max_radius);

    std::size_t prefix = 0;
    for (Dist r = 1; r <= max_r; ++r) {
      while (prefix < order.size() && bfs.dist(order[prefix]) <= r) ++prefix;
      if (prefix > options.max_ball_nodes) break;
      if (prefix > options.big_ball_threshold && !task.allow_big) {
        break;  // large balls run on a reduced center set
      }
      const graph::Subgraph ball = graph::InducedSubgraph(
          g, std::span<const NodeId>(order.data(), prefix));
      const double value = metric(ball.graph, rng);
      if (std::isnan(value)) continue;
      bins[r].sum_size += static_cast<double>(prefix);
      bins[r].sum_value += value;
      bins[r].sum_value_sq += value * value;
      ++bins[r].count;
      if (prefix == order.size()) break;  // ball swallowed the component
    }
    return bins;
  };
  std::optional<std::vector<RadiusBin>> total =
      parallel::ParallelReduce<std::vector<RadiusBin>>(
          CenterPlan(tasks.size()), map, FoldBins);
  if (!total) total.emplace(num_bins);
  return BinsToSeries(*total, options.sample.active());
}

Series PolicyBallGrowingSeries(const Graph& g,
                               std::span<const policy::Relationship> rel,
                               const BallGrowingOptions& options,
                               const BallMetric& metric) {
  const std::vector<CenterTask> tasks =
      PlanCenters(g, options, /*stream_salt=*/0x51c6e573u);
  const std::size_t num_bins = static_cast<std::size_t>(options.max_radius) + 1;

  auto map = [&](std::size_t ci, std::size_t, std::size_t) {
    const CenterTask& task = tasks[ci];
    TOPOGEN_HIST_SCOPE("metrics.ball.center_ns");
    std::vector<RadiusBin> bins(num_bins);
    Rng rng(task.rng_seed);
    std::size_t last_size = 0;
    for (Dist r = 1; r <= options.max_radius; ++r) {
      const policy::PolicyBall ball =
          policy::GrowPolicyBall(g, rel, task.center, r);
      const std::size_t size = ball.subgraph.graph.num_nodes();
      if (size > options.max_ball_nodes) break;
      if (size > options.big_ball_threshold && !task.allow_big) {
        break;
      }
      const double value = metric(ball.subgraph.graph, rng);
      if (!std::isnan(value)) {
        bins[r].sum_size += static_cast<double>(size);
        bins[r].sum_value += value;
        bins[r].sum_value_sq += value * value;
        ++bins[r].count;
      }
      if (size == last_size) break;  // policy ball stopped growing
      last_size = size;
    }
    return bins;
  };
  std::optional<std::vector<RadiusBin>> total =
      parallel::ParallelReduce<std::vector<RadiusBin>>(
          CenterPlan(tasks.size()), map, FoldBins);
  if (!total) total.emplace(num_bins);
  return BinsToSeries(*total, options.sample.active());
}

}  // namespace topogen::metrics
