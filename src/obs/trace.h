// Scoped phase tracing. obs::Span is an RAII guard that records one
// Chrome trace_event "complete" (ph:"X") event; the process-wide Tracer
// buffers events and writes TOPOGEN_TRACE as a JSON file loadable in
// about:tracing or https://ui.perfetto.dev at process exit.
//
// Every finished span also feeds a Stats timer under its name, which is
// where the manifest's per-phase durations come from -- so spans stay
// active whenever any of trace/stats/manifest is configured, and cost one
// relaxed flag load when all are off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/env.h"

namespace topogen::obs {

struct TraceEvent {
  std::string name;
  const char* category;
  std::int64_t ts_us;   // microseconds since the process trace epoch
  std::int64_t dur_us;
  int tid;
  // Pre-serialized JSON values keyed by arg name ("\"Tree\"", "42").
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static Tracer& Get();

  void Record(TraceEvent event);

  // Writes the buffered events as Chrome trace JSON. Returns false on I/O
  // failure; a run with no trace path configured is a success no-op.
  bool WriteConfigured();

  std::size_t EventCountForTesting();
  void DiscardForTesting();
  // Write to Env's current trace path and clear the buffer.
  bool FlushForTesting();

 private:
  Tracer();
  ~Tracer();
  struct Impl;
  Impl* impl_;
};

class Span {
 public:
  explicit Span(const char* name, const char* category = "topogen")
      : name_lit_(name), category_(category) {
    if (AnyEnabled()) Begin();
  }
  Span(std::string name, const char* category = "topogen")
      : name_lit_(nullptr), name_dyn_(std::move(name)), category_(category) {
    if (AnyEnabled()) Begin();
  }
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach a key/value pair shown in the trace viewer. No-ops when the
  // span is inactive, so callers may pass cheaply-built values only.
  Span& Arg(const char* key, std::string_view value);
  Span& Arg(const char* key, std::uint64_t value);
  Span& Arg(const char* key, double value);

  // Close the span before scope exit (idempotent; the destructor becomes a
  // no-op afterwards).
  void End();

  bool active() const { return active_; }

 private:
  void Begin();

  const char* name_lit_;
  std::string name_dyn_;
  const char* category_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace topogen::obs
