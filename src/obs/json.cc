#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace topogen::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Run() {
    std::optional<Json> v = ParseValue();
    if (!v) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    const std::size_t len = std::strlen(w);
    if (text_.substr(pos_, len) == w) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::optional<std::string> s = ParseString();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        return ConsumeWord("true") ? std::optional<Json>(Json(true))
                                   : std::nullopt;
      case 'f':
        return ConsumeWord("false") ? std::optional<Json>(Json(false))
                                    : std::nullopt;
      case 'n':
        return ConsumeWord("null") ? std::optional<Json>(Json())
                                   : std::nullopt;
      default:
        return ParseNumber();
    }
  }

  std::optional<Json> ParseNumber() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - begin);
    if (!std::isfinite(v)) return std::nullopt;
    return Json(v);
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point (no surrogate pairing; the
          // emitters only escape control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    Json::Array arr;
    SkipWs();
    if (Consume(']')) return Json(std::move(arr));
    while (true) {
      std::optional<Json> v = ParseValue();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (Consume(']')) return Json(std::move(arr));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    Json::Object obj;
    SkipWs();
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      SkipWs();
      std::optional<std::string> key = ParseString();
      if (!key) return std::nullopt;
      if (!Consume(':')) return std::nullopt;
      std::optional<Json> v = ParseValue();
      if (!v) return std::nullopt;
      obj.emplace_back(std::move(*key), std::move(*v));
      if (Consume('}')) return Json(std::move(obj));
      if (!Consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) return "0";
  return std::string(buf, end);
}

}  // namespace topogen::obs
