// Lock-free log-bucketed latency histogram (Telemetry v2).
//
// A Histogram is a fixed array of 496 relaxed-atomic bucket counters
// covering the full uint64 range: values 0..15 get exact buckets, larger
// values land in one of eight sub-buckets per power of two, so every
// bucket is at most 12.5% wide -- plenty for p50/p90/p99 reporting while
// keeping Record() a handful of relaxed atomic adds with no locks, no
// allocation, and no floating point. The same relaxed-bump contract as
// obs::Counter applies: concurrent Record() calls from metric workers
// are safe and never serialize.
//
// Histograms are *mergeable*: MergeFrom() adds another histogram's
// buckets in, and because buckets are plain integer counts the merge is
// exactly associative and commutative -- per-lane shards folded in any
// order yield the identical distribution (tests/histogram_test.cc pins
// this).
//
// Call sites guard with the TOPOGEN_HIST* macros (obs/stats.h): recording
// is off unless TOPOGEN_HIST is set, and a disabled site costs one
// relaxed flag load. Values are nanoseconds by convention (names end in
// `_ns`) but the class is unit-agnostic (e.g. parallel.steal_pct).
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace topogen::obs {

// Summary of one histogram at a point in time; what the stats dumps,
// the manifest, and BENCH.json carry.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 496;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Bucket layout: 0..15 exact, then 8 sub-buckets per octave (the three
  // bits below the leading one select the sub-bucket, so relative width
  // is 1/8 of the octave floor at worst). The top bucket (index 495)
  // absorbs everything up to UINT64_MAX.
  static std::size_t BucketIndex(std::uint64_t v) {
    if (v < 16) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= 4
    const std::size_t sub = static_cast<std::size_t>((v >> (msb - 3)) & 7);
    return 16 + static_cast<std::size_t>(msb - 4) * 8 + sub;
  }

  // Inclusive upper bound of a bucket; quantiles report this value, so a
  // quantile estimate is never below the true order statistic's bucket.
  static std::uint64_t BucketUpperBound(std::size_t index) {
    if (index < 16) return index;
    const int msb = 4 + static_cast<int>((index - 16) / 8);
    const std::uint64_t sub = (index - 16) % 8;
    // For index 495 this wraps to exactly UINT64_MAX (unsigned math).
    return (std::uint64_t{1} << msb) +
           (sub + 1) * (std::uint64_t{1} << (msb - 3)) - 1;
  }

  void Record(std::uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Adds `other`'s recorded distribution into this histogram. Integer
  // bucket adds make the operation exactly associative: shard folding
  // order never changes the merged result.
  void MergeFrom(const Histogram& other);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kNoMin ? 0 : m;
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  // Value at quantile q in [0, 1]: the upper bound of the bucket holding
  // the ceil(q * count)-th recorded value (0 when empty). Deterministic
  // given the bucket counts.
  std::uint64_t ValueAtQuantile(double q) const;

  // Snapshot with p50/p90/p99 resolved; `name` is left empty (the stats
  // registry fills it in).
  HistogramSnapshot Snapshot() const;

  // Raw bucket counts, for merge/associativity tests.
  std::vector<std::uint64_t> BucketCountsForTesting() const;

  // Zeroes all state (registrations stay). Not atomic with concurrent
  // Record(); test-only, like Stats::ResetForTesting.
  void ResetForTesting();

 private:
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kNoMin};
  std::atomic<std::uint64_t> max_{0};
};

// RAII wall-clock timer feeding a histogram in nanoseconds. Pass nullptr
// to disarm (the TOPOGEN_HIST_SCOPE macro does this when TOPOGEN_HIST is
// off, so the disabled cost stays at one flag load).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace topogen::obs
