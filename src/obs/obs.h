// Umbrella header for instrumented layers: spans, counters, histograms,
// the event log, and the manifest. See docs/OBSERVABILITY.md for the env
// vars and output schemas.
#pragma once

#include "obs/env.h"
#include "obs/events.h"
#include "obs/histogram.h"
#include "obs/manifest.h"
#include "obs/stats.h"
#include "obs/trace.h"
