// Umbrella header for instrumented layers: spans, counters, manifest.
// See docs/OBSERVABILITY.md for the env vars and output schemas.
#pragma once

#include "obs/env.h"
#include "obs/manifest.h"
#include "obs/stats.h"
#include "obs/trace.h"
