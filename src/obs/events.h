// Structured JSONL runtime event log (Telemetry v2).
//
// When TOPOGEN_EVENTS is set, the process appends one JSON object per
// line to events.jsonl (under TOPOGEN_OUTDIR, or an explicit path -- see
// obs/env.h). Every record carries:
//
//   ts_us  monotonic microseconds since the process observability epoch
//          (same clock as trace.json timestamps)
//   type   record type: run_start | run_end | phase_start | phase_end |
//          progress | cache | fault | degraded | crash
//   tid    dense thread id (matches trace.json tid)
//
// plus type-specific fields appended through the Event builder. Each line
// is flushed as it is written, so the log is complete up to the moment of
// a crash -- long million-node runs are diagnosable while still running
// (`tail -f events.jsonl`) and after an injected abort.
//
// The builder is inert when TOPOGEN_EVENTS is off: constructing an Event
// costs one relaxed flag load and field appends are no-ops. Hot paths
// that would pay to *format* arguments should still guard with
// `if (obs::EventsEnabled())`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/env.h"

namespace topogen::obs {

// Process-wide sink for the JSONL event stream. Opens the configured path
// lazily on first write and emits a run_start header line.
class EventLog {
 public:
  static EventLog& Get();

  // Appends one pre-serialized JSON object line (no trailing newline in
  // `line`). Thread-safe; each line hits the OS before returning.
  void Write(const std::string& line);

  // Pushes buffered bytes to the OS. Returns false if the sink failed to
  // open; a run with no event path configured is a success no-op.
  bool Flush();

  std::uint64_t lines_written();

  // Closes the sink and re-resolves the path from Env on next write.
  void ResetForTesting();

 private:
  EventLog();
  ~EventLog();
  struct Impl;
  Impl* impl_;
};

// Builder for one event record. The constructor stamps ts_us, type, and
// tid; the destructor emits the line. Field appenders return *this so a
// full record reads as one expression:
//
//   obs::Event("cache").Str("kind", kind).Str("op", hit ? "hit" : "miss");
class Event {
 public:
  explicit Event(const char* type);
  ~Event();

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  Event& Str(const char* key, std::string_view value);
  Event& U64(const char* key, std::uint64_t value);
  Event& I64(const char* key, std::int64_t value);
  Event& Dbl(const char* key, double value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::string line_;
};

// Flushes every configured observability artifact *now*: trace buffer,
// stats dump, and the event log. The normal exit path writes these from
// static destructors, which never run on std::_Exit -- so the injected
// abort kind (src/store/journal.cc) and bench::Finish's partial-success
// path call this to guarantee a degraded or crashed run still leaves
// valid trace.json / stats / events.jsonl behind.
void FlushRunArtifacts();

}  // namespace topogen::obs
