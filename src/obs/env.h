// Process-wide observability configuration, resolved from the environment
// exactly once (PR: previously every PrintPanel call re-ran getenv).
//
//   TOPOGEN_SCALE   small | default | full   (figure harness sizing)
//   TOPOGEN_TRACE   <file>   write a Chrome trace_event JSON at exit
//   TOPOGEN_STATS   <file>   write counter/gauge/timer dump at exit
//                            ("-" = text to stderr; "x.json" = JSON only;
//                            otherwise text at <file> + JSON at <file>.json)
//   TOPOGEN_OUTDIR  <dir>    figure export dir; also gets manifest.json
//   TOPOGEN_THREADS <n>      worker threads for the parallel engine
//                            (unset/0 = hardware concurrency, 1 = serial;
//                            see docs/PARALLELISM.md)
//   TOPOGEN_CACHE_DIR <dir>  persistent artifact cache for topologies and
//                            metric results (unset = caching off; see
//                            docs/CACHING.md)
//   TOPOGEN_CACHE_MAX_MB <n> prune the cache to at most n MiB at session
//                            shutdown (unset/0 = never prune)
//   TOPOGEN_FAULTS  <spec>   arm deterministic fault injection (builds with
//                            TOPOGEN_FAULT_POINTS=ON only; grammar and the
//                            fail-point catalog in docs/ROBUSTNESS.md)
//   TOPOGEN_HIST    1        record latency histograms (p50/p90/p99/max)
//                            at the instrumented seams; summarized in the
//                            stats dump and manifest ("0"/"off" = disabled)
//   TOPOGEN_EVENTS  <file|1> structured JSONL runtime event log; "1" (or
//                            any truthy value that is not a path) writes
//                            events.jsonl under TOPOGEN_OUTDIR, otherwise
//                            the value is the output path
//
// The hot-path question "is any of this on?" must cost one relaxed atomic
// load so instrumented kernels (BFS, generators) stay at native speed when
// observability is off -- see bench_perf.cc BM_Bfs / BM_GeneratePlrg.
#pragma once

#include <atomic>
#include <span>
#include <string>
#include <string_view>

namespace topogen::obs {

// One row of the environment-variable registry: every TOPOGEN_* variable
// the toolchain honors, with a one-line summary. docs/INDEX.md carries
// the authoritative human-facing table; tests/env_docs_main.cc diffs the
// two so the doc cannot drift from the code.
struct EnvVarInfo {
  std::string_view name;
  std::string_view summary;
};

class Env {
 public:
  // Resolved once on first use; later changes to the environment are
  // invisible until ResetForTesting().
  static const Env& Get();

  // Re-reads the environment variables. Test-only: real binaries rely on
  // the resolve-once guarantee.
  static void ResetForTesting();

  const std::string& scale() const { return scale_; }
  const std::string& outdir() const { return outdir_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& stats_path() const { return stats_path_; }

  // TOPOGEN_CACHE_DIR: root of the persistent artifact cache. Empty means
  // caching is disabled (every bench recomputes from scratch).
  const std::string& cache_dir() const { return cache_dir_; }

  // TOPOGEN_CACHE_MAX_MB: cache size budget in MiB enforced by pruning
  // oldest artifacts at session shutdown. 0 means "never prune".
  int cache_max_mb() const { return cache_max_mb_; }

  // TOPOGEN_FAULTS as written; the fault registry (src/fault) arms itself
  // from the environment directly, this copy exists for --help output and
  // run provenance. Empty = no injection requested.
  const std::string& faults() const { return faults_; }

  // TOPOGEN_THREADS as written: 0 means "auto" (pick hardware
  // concurrency); >= 1 is an explicit worker count. Unparsable or
  // negative values fall back to 0. The parallel pool owns the
  // auto-resolution; this is just the configured value.
  int threads_override() const { return threads_override_; }

  // TOPOGEN_EVENTS resolved to a concrete file path ("" = event log off).
  const std::string& events_path() const { return events_path_; }

  // TOPOGEN_SERVICE_PORT: TCP port topogend listens on. 0 means "pick an
  // ephemeral port" (printed on startup); unset defaults to 7077.
  int service_port() const { return service_port_; }

  // TOPOGEN_SERVICE_QUEUE: topogend's admission-queue depth; requests
  // beyond it are rejected with a queue_full error (docs/SERVICE.md).
  // Minimum 1 -- a 0 depth would reject every non-deduped request, so 0
  // falls back to the default like any other unusable value.
  int service_queue() const { return service_queue_; }

  // TOPOGEN_SERVICE_EXECUTORS: topogend executor lanes. Requests hash to
  // a lane by roster configuration (session affinity; docs/SERVICE.md).
  // Minimum 1, default 2.
  int service_executors() const { return service_executors_; }

  // TOPOGEN_SERVICE_MAX_SESSIONS: resident roster configurations *per
  // executor lane* before LRU eviction. Minimum 1, default 4.
  int service_max_sessions() const { return service_max_sessions_; }

  // TOPOGEN_MEM_BUDGET_MB: process-wide resident-memory ceiling charged
  // by CSR topologies, BFS scratch, and Session residency
  // (core/memory_budget.h). 0/unset = no ceiling.
  int mem_budget_mb() const { return mem_budget_mb_; }

  // TOPOGEN_SERVICE_TARGET_MS: topogend's per-lane queue-sojourn target
  // for CoDel-style load shedding (docs/ROBUSTNESS.md). Minimum 1,
  // default 20.
  int service_target_ms() const { return service_target_ms_; }

  // TOPOGEN_SERVICE_INFLIGHT: per-connection in-flight request cap; a /2
  // keep-alive client past it is shed with `overloaded`. Minimum 1,
  // default 8.
  int service_inflight() const { return service_inflight_; }

  // TOPOGEN_SERVICE_STALL_MS: executor-lane watchdog threshold -- a lane
  // whose running job exceeds it has its *queued* requests failed with
  // typed errors. 0 = watchdog off; default 30000.
  int service_stall_ms() const { return service_stall_ms_; }

  // The full registry of TOPOGEN_* variables this build honors.
  static std::span<const EnvVarInfo> RegisteredVars();

  bool trace_enabled() const { return !trace_path_.empty(); }
  bool stats_enabled() const { return !stats_path_.empty(); }
  bool outdir_set() const { return !outdir_.empty(); }
  bool cache_enabled() const { return !cache_dir_.empty(); }
  bool faults_set() const { return !faults_.empty(); }
  bool hist_enabled() const { return hist_; }
  bool events_enabled() const { return !events_path_.empty(); }

 private:
  Env();

  std::string scale_;
  std::string outdir_;
  std::string trace_path_;
  std::string stats_path_;
  std::string cache_dir_;
  std::string faults_;
  std::string events_path_;
  int threads_override_ = 0;
  int cache_max_mb_ = 0;
  int service_port_ = 0;
  int service_queue_ = 0;
  int service_executors_ = 0;
  int service_max_sessions_ = 0;
  int mem_budget_mb_ = 0;
  int service_target_ms_ = 0;
  int service_inflight_ = 0;
  int service_stall_ms_ = 0;
  bool hist_ = false;
};

namespace detail {
// Bitmask of enabled subsystems; kFlagsUnresolved until Env is read.
inline constexpr int kTraceBit = 1;
inline constexpr int kStatsBit = 2;
inline constexpr int kManifestBit = 4;
inline constexpr int kHistBit = 8;
inline constexpr int kEventsBit = 16;
inline constexpr int kFlagsUnresolved = -1;
extern std::atomic<int> g_flags;
int ResolveFlags();

inline int Flags() {
  const int f = g_flags.load(std::memory_order_relaxed);
  return f == kFlagsUnresolved ? ResolveFlags() : f;
}
}  // namespace detail

// Cheap enabled-checks for instrumentation call sites.
inline bool TraceEnabled() { return (detail::Flags() & detail::kTraceBit) != 0; }
inline bool StatsEnabled() { return (detail::Flags() & detail::kStatsBit) != 0; }
inline bool ManifestEnabled() {
  return (detail::Flags() & detail::kManifestBit) != 0;
}
inline bool HistEnabled() { return (detail::Flags() & detail::kHistBit) != 0; }
inline bool EventsEnabled() {
  return (detail::Flags() & detail::kEventsBit) != 0;
}
inline bool AnyEnabled() { return detail::Flags() != 0; }

// Short process name ("bench_fig2_expansion"), from /proc/self/comm.
const std::string& ProcessName();

// Microseconds since the process-wide observability epoch (first Env use).
std::int64_t NowMicros();

// Small dense id for the calling thread (0 = first thread to ask). Used by
// the tracer and the event log so records correlate across artifacts.
int CurrentThreadId();

}  // namespace topogen::obs
