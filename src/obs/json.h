// Minimal JSON support for the observability subsystem: an escaping
// writer helper used by the trace/stats/manifest emitters, and a small
// recursive-descent parser used by tests and the ctest smoke validator to
// prove the emitted artifacts actually parse.
//
// This is deliberately tiny (objects keep insertion order, numbers are
// doubles) -- it is a measurement tool, not a general JSON library.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace topogen::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double d) : type_(Type::kNumber), num_(d) {}
  explicit Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  explicit Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  // Returns std::nullopt on any syntax error or trailing garbage.
  static std::optional<Json> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  const std::string& AsString() const { return str_; }
  const Array& AsArray() const { return arr_; }
  const Object& AsObject() const { return obj_; }

  // Object member lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// JSON string escaping (no surrounding quotes).
std::string JsonEscape(std::string_view s);

// Shortest round-trip decimal form of a double ("4", "15.6", "2.5e-07");
// re-parsing with strtod yields the identical bits, which is what the
// manifest round-trip guarantee rests on.
std::string JsonNumber(double v);

}  // namespace topogen::obs
