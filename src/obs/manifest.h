// Run manifest: whenever TOPOGEN_OUTDIR is set, the process writes
// <outdir>/manifest.json at exit stamping the figures it produced with the
// exact configuration that made them -- seed + roster options, the
// node/edge counts of every topology built, the figures emitted, per-phase
// durations, and host/compiler provenance. A figure found on disk can
// always be traced back to its run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace topogen::obs {

// Mirror of core::RosterOptions (obs sits below core in the layering, so
// core converts; tests round-trip through this struct).
struct RosterConfig {
  std::uint64_t seed = 0;
  std::uint64_t as_nodes = 0;
  double rl_expansion_ratio = 0.0;
  std::uint64_t plrg_nodes = 0;
  std::uint64_t degree_based_nodes = 0;
};

class Manifest {
 public:
  // All recorders are no-ops unless ManifestEnabled() (TOPOGEN_OUTDIR set).
  static void SetTool(std::string_view name);
  static void SetRoster(const RosterConfig& roster);
  // Effective parallel worker count (parallel::Pool reports it on
  // construction). Unlike the other recorders this does not arm the
  // manifest by itself: a run that only ever touched the thread pool has
  // produced nothing worth stamping.
  static void SetThreads(int threads);
  // BFS traversal-substrate identity (graph::AcquireBfsScratch stamps it
  // on first use). Non-arming, like SetThreads.
  static void SetBfsEngine(std::string_view engine);
  // Re-registering a topology name overwrites its entry (benches rebuild
  // rosters per panel).
  static void AddTopology(std::string_view name, std::uint64_t nodes,
                          std::uint64_t edges, std::string_view params);
  static void AddFigure(std::string_view figure_id, std::string_view title);
  // Stamps a figure/metric pair as estimator-backed (metrics/sample.h):
  // the sample size, stream, and per-sweep budget that produced it, plus
  // the worst (largest) CI half-width across the series, so a reader can
  // judge the figure's precision without re-opening the .dat file.
  // Re-registering the same (figure_id, metric) pair overwrites.
  static void AddEstimator(std::string_view figure_id, std::string_view metric,
                           std::uint64_t centers, std::uint64_t seed,
                           std::uint64_t expansion_budget,
                           double max_ci_halfwidth);

  // Artifact-cache provenance: the cache root this run resolved (empty =
  // caching off) plus per-artifact-kind hit/miss tallies, so a figure's
  // manifest records whether its numbers were computed or replayed.
  // Non-arming, like SetThreads.
  static void SetCache(std::string_view dir);
  static void AddCacheEvent(std::string_view kind, bool hit);

  // Fault-injection and degradation provenance (docs/ROBUSTNESS.md).
  // AddFaultInjected tallies one fired fail point (non-arming, like
  // SetThreads). AddRetry records that a generator needed `attempts`
  // retries before validating. AddDegraded records a roster slot that
  // failed past its retry budget and was isolated instead of aborting the
  // run; a manifest with a non-empty degraded[] belongs to a partial-
  // success run (exit code 75, see docs/ROBUSTNESS.md).
  static void AddFaultInjected(std::string_view point);
  static void AddRetry(std::string_view id, int attempts);
  static void AddDegraded(std::string_view kind, std::string_view id,
                          std::string_view fail_point, std::string_view code,
                          std::string_view message, int attempts);

  // Explicit write, used by tests; the process-exit hook writes to
  // <Env::outdir()>/manifest.json when anything was recorded.
  static bool WriteTo(const std::string& path);

  static void ResetForTesting();
};

}  // namespace topogen::obs
