#include "obs/events.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <mutex>

#include "obs/json.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace topogen::obs {

struct EventLog::Impl {
  std::mutex mutex;
  std::ofstream os;
  bool opened = false;  // open attempted (even if it failed)
  bool failed = false;
  std::uint64_t lines = 0;

  // Lazily open the configured sink; writes the run_start header so every
  // event file self-identifies even when truncated by a crash.
  bool EnsureOpenLocked() {
    if (opened) return !failed;
    opened = true;
    const Env& env = Env::Get();
    if (!env.events_enabled()) {
      failed = true;
      return false;
    }
    os.open(env.events_path(), std::ios::trunc);
    if (!os.is_open()) {
      failed = true;
      std::fprintf(stderr, "topogen: cannot open TOPOGEN_EVENTS sink '%s'\n",
                   env.events_path().c_str());
      return false;
    }
    // ts_us 0 = the observability epoch every other timestamp counts
    // from. The sink opens lazily (possibly after events were already
    // under construction), so stamping "now" here would sort the header
    // after the first record and break ts monotonicity for readers.
    os << "{\"ts_us\":" << 0 << ",\"type\":\"run_start\",\"tid\":"
       << CurrentThreadId() << ",\"tool\":\"" << JsonEscape(ProcessName())
       << "\",\"pid\":" << static_cast<long>(::getpid()) << ",\"scale\":\""
       << JsonEscape(env.scale()) << "\"}\n";
    os.flush();
    ++lines;
    return true;
  }
};

EventLog::EventLog() : impl_(new Impl) {
  // Pin destruction order: Env outlives this sink (see Tracer's ctor).
  Env::Get();
}

EventLog::~EventLog() {
  Flush();
  delete impl_;
}

EventLog& EventLog::Get() {
  static EventLog log;
  return log;
}

void EventLog::Write(const std::string& line) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->EnsureOpenLocked()) return;
  impl_->os << line << '\n';
  // One flush per line keeps the log durable up to a crash; event volume
  // is low (phase boundaries + throttled heartbeats), so this stays cheap.
  impl_->os.flush();
  ++impl_->lines;
}

bool EventLog::Flush() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!Env::Get().events_enabled()) return true;
  if (!impl_->EnsureOpenLocked()) return false;
  impl_->os.flush();
  return impl_->os.good();
}

std::uint64_t EventLog::lines_written() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->lines;
}

void EventLog::ResetForTesting() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->os.is_open()) impl_->os.close();
  impl_->opened = false;
  impl_->failed = false;
  impl_->lines = 0;
}

Event::Event(const char* type) {
  if (!EventsEnabled()) return;
  active_ = true;
  line_.reserve(96);
  line_ += "{\"ts_us\":";
  line_ += std::to_string(NowMicros());
  line_ += ",\"type\":\"";
  line_ += type;
  line_ += "\",\"tid\":";
  line_ += std::to_string(CurrentThreadId());
}

Event::~Event() {
  if (!active_) return;
  line_ += '}';
  EventLog::Get().Write(line_);
}

Event& Event::Str(const char* key, std::string_view value) {
  if (active_) {
    line_ += ",\"";
    line_ += key;
    line_ += "\":\"";
    line_ += JsonEscape(value);
    line_ += '"';
  }
  return *this;
}

Event& Event::U64(const char* key, std::uint64_t value) {
  if (active_) {
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
    line_ += std::to_string(value);
  }
  return *this;
}

Event& Event::I64(const char* key, std::int64_t value) {
  if (active_) {
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
    line_ += std::to_string(value);
  }
  return *this;
}

Event& Event::Dbl(const char* key, double value) {
  if (active_) {
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
    line_ += JsonNumber(value);
  }
  return *this;
}

void FlushRunArtifacts() {
  Tracer::Get().WriteConfigured();
  Stats::WriteConfigured();
  EventLog::Get().Flush();
}

}  // namespace topogen::obs
