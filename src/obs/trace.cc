#include "obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <mutex>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/stats.h"

namespace topogen::obs {

struct Tracer::Impl {
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

Tracer::Tracer() : impl_(new Impl) {
  // Touch the singletons this one uses at shutdown, pinning destruction
  // order: Env and Stats are constructed first, so they die last.
  Env::Get();
  Stats::GetCounter("obs.trace_events");
}

Tracer::~Tracer() {
  WriteConfigured();
  delete impl_;
}

Tracer& Tracer::Get() {
  static Tracer t;
  return t;
}

void Tracer::Record(TraceEvent event) {
  TOPOGEN_COUNT("obs.trace_events");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->events.push_back(std::move(event));
}

bool Tracer::WriteConfigured() {
  const Env& env = Env::Get();
  if (!env.trace_enabled()) return true;
  std::ofstream os(env.trace_path());
  if (!os.is_open()) return false;
  const long pid = static_cast<long>(::getpid());
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "{\"ph\": \"M\", \"pid\": " << pid
     << ", \"name\": \"process_name\", \"args\": {\"name\": \""
     << JsonEscape(ProcessName()) << "\"}}";
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const TraceEvent& e : impl_->events) {
    os << ",\n{\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \""
       << JsonEscape(e.category) << "\", \"ph\": \"X\", \"ts\": " << e.ts_us
       << ", \"dur\": " << e.dur_us << ", \"pid\": " << pid
       << ", \"tid\": " << e.tid;
    if (!e.args.empty()) {
      os << ", \"args\": {";
      bool first = true;
      for (const auto& [k, v] : e.args) {
        if (!first) os << ", ";
        os << "\"" << JsonEscape(k) << "\": " << v;
        first = false;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.good();
}

std::size_t Tracer::EventCountForTesting() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->events.size();
}

void Tracer::DiscardForTesting() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->events.clear();
}

bool Tracer::FlushForTesting() {
  const bool ok = WriteConfigured();
  DiscardForTesting();
  return ok;
}

Span& Span::Arg(const char* key, std::string_view value) {
  if (active_) args_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

Span& Span::Arg(const char* key, std::uint64_t value) {
  if (active_) args_.emplace_back(key, std::to_string(value));
  return *this;
}

Span& Span::Arg(const char* key, double value) {
  if (active_) args_.emplace_back(key, JsonNumber(value));
  return *this;
}

void Span::Begin() {
  // Ensure the sinks this span touches at End() outlive it even when End()
  // runs during static destruction (e.g. the bench-wide run span).
  Tracer::Get();
  Stats::GetCounter("obs.spans");
  if (EventsEnabled()) {
    EventLog::Get();  // same destruction-order pin as the tracer
    Event("phase_start")
        .Str("name", name_lit_ != nullptr ? std::string_view(name_lit_)
                                          : std::string_view(name_dyn_))
        .Str("cat", category_);
  }
  active_ = true;
  start_us_ = NowMicros();
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  const std::int64_t end_us = NowMicros();
  const std::string name =
      name_lit_ != nullptr ? std::string(name_lit_) : name_dyn_;
  Stats::GetCounter("obs.spans").Increment();
  const std::uint64_t dur_ns =
      static_cast<std::uint64_t>(end_us - start_us_) * 1000;
  Stats::AddTimerSample(name, dur_ns);
  if (HistEnabled()) Stats::GetHistogram(name).Record(dur_ns);
  if (EventsEnabled()) {
    Event("phase_end").Str("name", name).I64("dur_us", end_us - start_us_);
  }
  if (TraceEnabled()) {
    Tracer::Get().Record({name, category_, start_us_, end_us - start_us_,
                          CurrentThreadId(), std::move(args_)});
  }
}

}  // namespace topogen::obs
