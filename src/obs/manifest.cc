#include "obs/manifest.h"

#include <unistd.h>

#include <ctime>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/env.h"
#include "obs/json.h"
#include "obs/stats.h"

namespace topogen::obs {

namespace {

std::string Hostname() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf;
}

std::string CompilerVersion() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

struct TopologyEntry {
  std::string name;
  std::uint64_t nodes;
  std::uint64_t edges;
  std::string params;
};

struct FigureEntry {
  std::string id;
  std::string title;
};

struct EstimatorEntry {
  std::string figure_id;
  std::string metric;
  std::uint64_t centers = 0;
  std::uint64_t seed = 0;
  std::uint64_t expansion_budget = 0;
  double max_ci_halfwidth = 0.0;
};

struct CacheTally {
  std::string kind;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct FaultTally {
  std::string point;
  std::uint64_t fires = 0;
};

struct RetryEntry {
  std::string id;
  int attempts = 0;
};

struct DegradedEntry {
  std::string kind;
  std::string id;
  std::string fail_point;
  std::string code;
  std::string message;
  int attempts = 0;
};

struct State {
  std::mutex mutex;
  bool armed = false;  // anything recorded => write at exit
  std::string tool;
  int threads = 0;  // 0 = the run never started the parallel pool
  std::string bfs_engine;  // empty = the run never ran a BFS kernel
  std::optional<RosterConfig> roster;
  std::optional<std::string> cache_dir;  // set = a session resolved a cache
  std::vector<CacheTally> cache_tallies;
  std::vector<FaultTally> fault_tallies;
  std::vector<RetryEntry> retries;
  std::vector<DegradedEntry> degraded;
  std::vector<TopologyEntry> topologies;
  std::vector<FigureEntry> figures;
  std::vector<EstimatorEntry> estimators;

  // Everything ~State reads through WriteTo must be constructed *before*
  // this singleton so it is destroyed *after* it: Env for outdir/scale,
  // and the stats registry behind TimerSnapshots()/HistogramSnapshots()
  // (a process whose first observability touch is a Manifest call would
  // otherwise construct the registry later, tear it down earlier, and
  // crash writing the manifest's phase table at exit).
  State() {
    Env::Get();
    Stats::TimerSnapshots();
  }
  ~State() {
    const Env& env = Env::Get();
    bool write;
    {
      std::lock_guard<std::mutex> lock(mutex);
      write = armed && env.outdir_set();
    }
    if (write) {
      Manifest::WriteTo(
          (std::filesystem::path(env.outdir()) / "manifest.json").string());
    }
  }

  static State& Get() {
    static State s;
    return s;
  }
};

}  // namespace

void Manifest::SetTool(std::string_view name) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.tool = name;
  s.armed = true;
}

void Manifest::SetThreads(int threads) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.threads = threads;
}

void Manifest::SetBfsEngine(std::string_view engine) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.bfs_engine = engine;
}

void Manifest::SetCache(std::string_view dir) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.cache_dir = std::string(dir);
}

void Manifest::AddCacheEvent(std::string_view kind, bool hit) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (CacheTally& t : s.cache_tallies) {
    if (t.kind == kind) {
      (hit ? t.hits : t.misses)++;
      return;
    }
  }
  CacheTally t{std::string(kind)};
  (hit ? t.hits : t.misses)++;
  s.cache_tallies.push_back(std::move(t));
}

void Manifest::AddFaultInjected(std::string_view point) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (FaultTally& t : s.fault_tallies) {
    if (t.point == point) {
      ++t.fires;
      return;
    }
  }
  s.fault_tallies.push_back({std::string(point), 1});
}

void Manifest::AddRetry(std::string_view id, int attempts) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (RetryEntry& r : s.retries) {
    if (r.id == id) {
      r.attempts = attempts;
      return;
    }
  }
  s.retries.push_back({std::string(id), attempts});
  s.armed = true;
}

void Manifest::AddDegraded(std::string_view kind, std::string_view id,
                           std::string_view fail_point, std::string_view code,
                           std::string_view message, int attempts) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.degraded.push_back({std::string(kind), std::string(id),
                        std::string(fail_point), std::string(code),
                        std::string(message), attempts});
  s.armed = true;
}

void Manifest::SetRoster(const RosterConfig& roster) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.roster = roster;
  s.armed = true;
}

void Manifest::AddTopology(std::string_view name, std::uint64_t nodes,
                           std::uint64_t edges, std::string_view params) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (TopologyEntry& t : s.topologies) {
    if (t.name == name) {
      t = {std::string(name), nodes, edges, std::string(params)};
      s.armed = true;
      return;
    }
  }
  s.topologies.push_back(
      {std::string(name), nodes, edges, std::string(params)});
  s.armed = true;
}

void Manifest::AddFigure(std::string_view figure_id, std::string_view title) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (FigureEntry& f : s.figures) {
    if (f.id == figure_id) {
      f.title = title;
      return;
    }
  }
  s.figures.push_back({std::string(figure_id), std::string(title)});
  s.armed = true;
}

void Manifest::AddEstimator(std::string_view figure_id,
                            std::string_view metric, std::uint64_t centers,
                            std::uint64_t seed,
                            std::uint64_t expansion_budget,
                            double max_ci_halfwidth) {
  if (!ManifestEnabled()) return;
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (EstimatorEntry& e : s.estimators) {
    if (e.figure_id == figure_id && e.metric == metric) {
      e = {std::string(figure_id), std::string(metric), centers,
           seed,                   expansion_budget,    max_ci_halfwidth};
      s.armed = true;
      return;
    }
  }
  s.estimators.push_back({std::string(figure_id), std::string(metric),
                          centers, seed, expansion_budget,
                          max_ci_halfwidth});
  s.armed = true;
}

bool Manifest::WriteTo(const std::string& path) {
  State& s = State::Get();
  const Env& env = Env::Get();
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream os(path);
  if (!os.is_open()) return false;

  std::lock_guard<std::mutex> lock(s.mutex);
  os << "{\n";
  os << "  \"schema\": \"topogen-manifest/1\",\n";
  os << "  \"tool\": \""
     << JsonEscape(s.tool.empty() ? ProcessName() : s.tool) << "\",\n";
  os << "  \"scale\": \"" << JsonEscape(env.scale()) << "\",\n";
  os << "  \"created_unix\": " << static_cast<long long>(std::time(nullptr))
     << ",\n";
  os << "  \"hostname\": \"" << JsonEscape(Hostname()) << "\",\n";
  os << "  \"compiler\": \"" << JsonEscape(CompilerVersion()) << "\",\n";
  os << "  \"wall_time_s\": "
     << JsonNumber(static_cast<double>(NowMicros()) / 1e6) << ",\n";
  const MemoryUsage mu = ReadMemoryUsage();
  os << "  \"peak_rss_kb\": " << mu.peak_rss_kb << ",\n";
  // If the pool never ran, record the count it would have used (the same
  // TOPOGEN_THREADS -> hardware-concurrency resolution the pool applies).
  int threads = s.threads;
  if (threads == 0) threads = env.threads_override();
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  os << "  \"threads\": " << threads << ",\n";
  if (!s.bfs_engine.empty()) {
    os << "  \"bfs_engine\": \"" << JsonEscape(s.bfs_engine) << "\",\n";
  }
  if (s.roster) {
    os << "  \"roster\": {\n";
    os << "    \"seed\": " << s.roster->seed << ",\n";
    os << "    \"as_nodes\": " << s.roster->as_nodes << ",\n";
    os << "    \"rl_expansion_ratio\": "
       << JsonNumber(s.roster->rl_expansion_ratio) << ",\n";
    os << "    \"plrg_nodes\": " << s.roster->plrg_nodes << ",\n";
    os << "    \"degree_based_nodes\": " << s.roster->degree_based_nodes
       << "\n  },\n";
  }
  if (s.cache_dir) {
    os << "  \"cache\": {\n";
    os << "    \"dir\": \"" << JsonEscape(*s.cache_dir) << "\",\n";
    os << "    \"kinds\": [";
    bool first_kind = true;
    for (const CacheTally& t : s.cache_tallies) {
      os << (first_kind ? "\n" : ",\n") << "      {\"kind\": \""
         << JsonEscape(t.kind) << "\", \"hits\": " << t.hits
         << ", \"misses\": " << t.misses << "}";
      first_kind = false;
    }
    os << "\n    ]\n  },\n";
  }
  if (!s.fault_tallies.empty()) {
    os << "  \"faults_injected\": [";
    bool first_fault = true;
    for (const FaultTally& t : s.fault_tallies) {
      os << (first_fault ? "\n" : ",\n") << "    {\"point\": \""
         << JsonEscape(t.point) << "\", \"fires\": " << t.fires << "}";
      first_fault = false;
    }
    os << "\n  ],\n";
  }
  if (!s.retries.empty()) {
    os << "  \"retries\": [";
    bool first_retry = true;
    for (const RetryEntry& r : s.retries) {
      os << (first_retry ? "\n" : ",\n") << "    {\"id\": \""
         << JsonEscape(r.id) << "\", \"attempts\": " << r.attempts << "}";
      first_retry = false;
    }
    os << "\n  ],\n";
  }
  // Always present, so a harness can assert degraded == [] on clean runs.
  os << "  \"degraded\": [";
  bool first_degraded = true;
  for (const DegradedEntry& d : s.degraded) {
    os << (first_degraded ? "\n" : ",\n") << "    {\"kind\": \""
       << JsonEscape(d.kind) << "\", \"id\": \"" << JsonEscape(d.id)
       << "\", \"fail_point\": \"" << JsonEscape(d.fail_point)
       << "\", \"code\": \"" << JsonEscape(d.code) << "\", \"message\": \""
       << JsonEscape(d.message) << "\", \"attempts\": " << d.attempts << "}";
    first_degraded = false;
  }
  os << "\n  ],\n";
  os << "  \"topologies\": [";
  bool first = true;
  for (const TopologyEntry& t : s.topologies) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << JsonEscape(t.name)
       << "\", \"nodes\": " << t.nodes << ", \"edges\": " << t.edges
       << ", \"params\": \"" << JsonEscape(t.params) << "\"}";
    first = false;
  }
  os << "\n  ],\n  \"figures\": [";
  first = true;
  for (const FigureEntry& f : s.figures) {
    os << (first ? "\n" : ",\n") << "    {\"id\": \"" << JsonEscape(f.id)
       << "\", \"title\": \"" << JsonEscape(f.title) << "\"}";
    first = false;
  }
  os << "\n  ]";
  // Present only on estimator-backed runs (metrics/sample.h), so exact
  // runs keep the historical manifest shape.
  if (!s.estimators.empty()) {
    os << ",\n  \"estimators\": [";
    first = true;
    for (const EstimatorEntry& e : s.estimators) {
      os << (first ? "\n" : ",\n") << "    {\"figure_id\": \""
         << JsonEscape(e.figure_id) << "\", \"metric\": \""
         << JsonEscape(e.metric) << "\", \"centers\": " << e.centers
         << ", \"seed\": " << e.seed
         << ", \"expansion_budget\": " << e.expansion_budget
         << ", \"max_ci_halfwidth\": " << JsonNumber(e.max_ci_halfwidth)
         << "}";
      first = false;
    }
    os << "\n  ]";
  }
  os << ",\n  \"phases\": [";
  first = true;
  for (const TimerSnapshot& t : Stats::TimerSnapshots()) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << JsonEscape(t.name)
       << "\", \"count\": " << t.count << ", \"total_ms\": "
       << JsonNumber(static_cast<double>(t.total_ns) / 1e6)
       << ", \"min_ms\": " << JsonNumber(static_cast<double>(t.min_ns) / 1e6)
       << ", \"max_ms\": " << JsonNumber(static_cast<double>(t.max_ns) / 1e6)
       << "}";
    first = false;
  }
  // Histogram summaries (TOPOGEN_HIST runs only): the per-seam latency
  // distributions behind BENCH.json's percentile columns.
  const std::vector<HistogramSnapshot> hists = Stats::HistogramSnapshots();
  if (!hists.empty()) {
    os << "\n  ],\n  \"histograms\": [";
    first = true;
    for (const HistogramSnapshot& h : hists) {
      os << (first ? "\n" : ",\n") << "    {\"name\": \"" << JsonEscape(h.name)
         << "\", \"count\": " << h.count << ", \"min_ns\": " << h.min
         << ", \"max_ns\": " << h.max << ", \"p50_ns\": " << h.p50
         << ", \"p90_ns\": " << h.p90 << ", \"p99_ns\": " << h.p99 << "}";
      first = false;
    }
  }
  os << "\n  ],\n  \"counters\": {";
  first = true;
  for (const auto& [name, v] : Stats::CounterSnapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  }\n}\n";
  return os.good();
}

void Manifest::ResetForTesting() {
  State& s = State::Get();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.armed = false;
  s.tool.clear();
  s.threads = 0;
  s.bfs_engine.clear();
  s.roster.reset();
  s.cache_dir.reset();
  s.cache_tallies.clear();
  s.fault_tallies.clear();
  s.retries.clear();
  s.degraded.clear();
  s.topologies.clear();
  s.figures.clear();
  s.estimators.clear();
}

}  // namespace topogen::obs
