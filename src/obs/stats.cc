#include "obs/stats.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace topogen::obs {

namespace {

constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

struct TimerCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{kNoMin};
  std::atomic<std::uint64_t> max_ns{0};
};

// std::map keeps node addresses stable, so returned references survive
// later registrations.
struct Registry {
  std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, TimerCell, std::less<>> timers;
  std::map<std::string, Histogram, std::less<>> histograms;

  Registry() { Env::Get(); }  // constructed after Env => destroyed before
  ~Registry() { Stats::WriteConfigured(); }

  static Registry& Get() {
    static Registry r;
    return r;
  }
};

template <typename Map>
auto& GetSlot(Map& map, std::mutex& mutex, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.try_emplace(std::string(name)).first;
  }
  return it->second;
}

}  // namespace

MemoryUsage ReadMemoryUsage() {
  MemoryUsage mu;
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long* slot = nullptr;
    if (line.rfind("VmRSS:", 0) == 0) slot = &mu.rss_kb;
    if (line.rfind("VmHWM:", 0) == 0) slot = &mu.peak_rss_kb;
    if (slot != nullptr) {
      std::sscanf(line.c_str() + line.find(':') + 1, "%ld", slot);
    }
  }
  return mu;
}

Counter& Stats::GetCounter(std::string_view name) {
  Registry& r = Registry::Get();
  return GetSlot(r.counters, r.mutex, name);
}

Gauge& Stats::GetGauge(std::string_view name) {
  Registry& r = Registry::Get();
  return GetSlot(r.gauges, r.mutex, name);
}

Histogram& Stats::GetHistogram(std::string_view name) {
  Registry& r = Registry::Get();
  return GetSlot(r.histograms, r.mutex, name);
}

void Stats::AddTimerSample(std::string_view name, std::uint64_t ns) {
  Registry& r = Registry::Get();
  TimerCell& cell = GetSlot(r.timers, r.mutex, name);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = cell.min_ns.load(std::memory_order_relaxed);
  while (ns < cur && !cell.min_ns.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
  cur = cell.max_ns.load(std::memory_order_relaxed);
  while (ns > cur && !cell.max_ns.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
}

std::vector<std::pair<std::string, std::uint64_t>> Stats::CounterSnapshot() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Stats::GaugeSnapshot() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.emplace_back(name, g.value());
  return out;
}

std::vector<TimerSnapshot> Stats::TimerSnapshots() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<TimerSnapshot> out;
  out.reserve(r.timers.size());
  for (const auto& [name, cell] : r.timers) {
    const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
    const std::uint64_t min = cell.min_ns.load(std::memory_order_relaxed);
    out.push_back({name, count, cell.total_ns.load(std::memory_order_relaxed),
                   min == kNoMin ? 0 : min,
                   cell.max_ns.load(std::memory_order_relaxed)});
  }
  return out;
}

std::vector<HistogramSnapshot> Stats::HistogramSnapshots() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<HistogramSnapshot> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    if (h.count() == 0) continue;
    HistogramSnapshot s = h.Snapshot();
    s.name = name;
    out.push_back(std::move(s));
  }
  return out;
}

void Stats::DumpText(std::ostream& os) {
  const MemoryUsage mu = ReadMemoryUsage();
  os << "# topogen stats (" << ProcessName() << ")\n";
  os << "wall_time_s " << static_cast<double>(NowMicros()) / 1e6 << "\n";
  if (mu.rss_kb >= 0) os << "rss_kb " << mu.rss_kb << "\n";
  if (mu.peak_rss_kb >= 0) os << "peak_rss_kb " << mu.peak_rss_kb << "\n";
  os << "\n[counters]\n";
  for (const auto& [name, v] : CounterSnapshot()) {
    os << name << " " << v << "\n";
  }
  os << "\n[gauges]\n";
  for (const auto& [name, v] : GaugeSnapshot()) {
    os << name << " " << v << "\n";
  }
  os << "\n[timers]  (count  total_ms  mean_ms  min_ms  max_ms)\n";
  for (const TimerSnapshot& t : TimerSnapshots()) {
    const double total_ms = static_cast<double>(t.total_ns) / 1e6;
    const double mean_ms =
        t.count == 0 ? 0.0 : total_ms / static_cast<double>(t.count);
    os << t.name << " " << t.count << " " << total_ms << " " << mean_ms << " "
       << static_cast<double>(t.min_ns) / 1e6 << " "
       << static_cast<double>(t.max_ns) / 1e6 << "\n";
  }
  const std::vector<HistogramSnapshot> hists = HistogramSnapshots();
  if (!hists.empty()) {
    os << "\n[histograms]  (count  p50_ms  p90_ms  p99_ms  max_ms)\n";
    for (const HistogramSnapshot& h : hists) {
      os << h.name << " " << h.count << " "
         << static_cast<double>(h.p50) / 1e6 << " "
         << static_cast<double>(h.p90) / 1e6 << " "
         << static_cast<double>(h.p99) / 1e6 << " "
         << static_cast<double>(h.max) / 1e6 << "\n";
    }
  }
}

void Stats::DumpJson(std::ostream& os) {
  const MemoryUsage mu = ReadMemoryUsage();
  os << "{\n";
  os << "  \"tool\": \"" << JsonEscape(ProcessName()) << "\",\n";
  os << "  \"wall_time_s\": "
     << JsonNumber(static_cast<double>(NowMicros()) / 1e6) << ",\n";
  os << "  \"rss_kb\": " << mu.rss_kb << ",\n";
  os << "  \"peak_rss_kb\": " << mu.peak_rss_kb << ",\n";
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : CounterSnapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : GaugeSnapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"timers\": [";
  first = true;
  for (const TimerSnapshot& t : TimerSnapshots()) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << JsonEscape(t.name)
       << "\", \"count\": " << t.count << ", \"total_ms\": "
       << JsonNumber(static_cast<double>(t.total_ns) / 1e6)
       << ", \"min_ms\": " << JsonNumber(static_cast<double>(t.min_ns) / 1e6)
       << ", \"max_ms\": " << JsonNumber(static_cast<double>(t.max_ns) / 1e6)
       << "}";
    first = false;
  }
  os << "\n  ],\n  \"histograms\": [";
  first = true;
  for (const HistogramSnapshot& h : HistogramSnapshots()) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << JsonEscape(h.name)
       << "\", \"count\": " << h.count << ", \"sum_ns\": " << h.sum
       << ", \"min_ns\": " << h.min << ", \"max_ns\": " << h.max
       << ", \"p50_ns\": " << h.p50 << ", \"p90_ns\": " << h.p90
       << ", \"p99_ns\": " << h.p99 << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

bool Stats::WriteConfigured() {
  const Env& env = Env::Get();
  if (!env.stats_enabled()) return true;
  const std::string& path = env.stats_path();
  if (path == "-") {
    DumpText(std::cerr);
    return true;
  }
  const bool json_only =
      path.size() > 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json_only) {
    std::ofstream os(path);
    if (!os.is_open()) return false;
    DumpJson(os);
    return os.good();
  }
  bool ok = true;
  {
    std::ofstream os(path);
    ok = os.is_open();
    if (ok) {
      DumpText(os);
      ok = os.good();
    }
  }
  {
    std::ofstream os(path + ".json");
    if (!os.is_open()) return false;
    DumpJson(os);
    ok = ok && os.good();
  }
  return ok;
}

void Stats::ResetForTesting() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) {
    c.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : r.gauges) {
    g.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : r.timers) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.total_ns.store(0, std::memory_order_relaxed);
    cell.min_ns.store(kNoMin, std::memory_order_relaxed);
    cell.max_ns.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : r.histograms) {
    h.ResetForTesting();
  }
}

}  // namespace topogen::obs
