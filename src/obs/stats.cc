#include "obs/stats.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/json.h"

namespace topogen::obs {

namespace {

struct TimerCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
};

// std::map keeps node addresses stable, so returned references survive
// later registrations.
struct Registry {
  std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, TimerCell, std::less<>> timers;

  Registry() { Env::Get(); }  // constructed after Env => destroyed before
  ~Registry() { Stats::WriteConfigured(); }

  static Registry& Get() {
    static Registry r;
    return r;
  }
};

template <typename Map>
auto& GetSlot(Map& map, std::mutex& mutex, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.try_emplace(std::string(name)).first;
  }
  return it->second;
}

}  // namespace

MemoryUsage ReadMemoryUsage() {
  MemoryUsage mu;
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    long* slot = nullptr;
    if (line.rfind("VmRSS:", 0) == 0) slot = &mu.rss_kb;
    if (line.rfind("VmHWM:", 0) == 0) slot = &mu.peak_rss_kb;
    if (slot != nullptr) {
      std::sscanf(line.c_str() + line.find(':') + 1, "%ld", slot);
    }
  }
  return mu;
}

Counter& Stats::GetCounter(std::string_view name) {
  Registry& r = Registry::Get();
  return GetSlot(r.counters, r.mutex, name);
}

Gauge& Stats::GetGauge(std::string_view name) {
  Registry& r = Registry::Get();
  return GetSlot(r.gauges, r.mutex, name);
}

void Stats::AddTimerSample(std::string_view name, std::uint64_t ns) {
  Registry& r = Registry::Get();
  TimerCell& cell = GetSlot(r.timers, r.mutex, name);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> Stats::CounterSnapshot() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Stats::GaugeSnapshot() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) out.emplace_back(name, g.value());
  return out;
}

std::vector<TimerSnapshot> Stats::TimerSnapshots() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<TimerSnapshot> out;
  out.reserve(r.timers.size());
  for (const auto& [name, cell] : r.timers) {
    out.push_back({name, cell.count.load(std::memory_order_relaxed),
                   cell.total_ns.load(std::memory_order_relaxed)});
  }
  return out;
}

void Stats::DumpText(std::ostream& os) {
  const MemoryUsage mu = ReadMemoryUsage();
  os << "# topogen stats (" << ProcessName() << ")\n";
  os << "wall_time_s " << static_cast<double>(NowMicros()) / 1e6 << "\n";
  if (mu.rss_kb >= 0) os << "rss_kb " << mu.rss_kb << "\n";
  if (mu.peak_rss_kb >= 0) os << "peak_rss_kb " << mu.peak_rss_kb << "\n";
  os << "\n[counters]\n";
  for (const auto& [name, v] : CounterSnapshot()) {
    os << name << " " << v << "\n";
  }
  os << "\n[gauges]\n";
  for (const auto& [name, v] : GaugeSnapshot()) {
    os << name << " " << v << "\n";
  }
  os << "\n[timers]  (count  total_ms  mean_ms)\n";
  for (const TimerSnapshot& t : TimerSnapshots()) {
    const double total_ms = static_cast<double>(t.total_ns) / 1e6;
    const double mean_ms =
        t.count == 0 ? 0.0 : total_ms / static_cast<double>(t.count);
    os << t.name << " " << t.count << " " << total_ms << " " << mean_ms
       << "\n";
  }
}

void Stats::DumpJson(std::ostream& os) {
  const MemoryUsage mu = ReadMemoryUsage();
  os << "{\n";
  os << "  \"tool\": \"" << JsonEscape(ProcessName()) << "\",\n";
  os << "  \"wall_time_s\": "
     << JsonNumber(static_cast<double>(NowMicros()) / 1e6) << ",\n";
  os << "  \"rss_kb\": " << mu.rss_kb << ",\n";
  os << "  \"peak_rss_kb\": " << mu.peak_rss_kb << ",\n";
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : CounterSnapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : GaugeSnapshot()) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
       << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"timers\": [";
  first = true;
  for (const TimerSnapshot& t : TimerSnapshots()) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << JsonEscape(t.name)
       << "\", \"count\": " << t.count << ", \"total_ms\": "
       << JsonNumber(static_cast<double>(t.total_ns) / 1e6) << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

bool Stats::WriteConfigured() {
  const Env& env = Env::Get();
  if (!env.stats_enabled()) return true;
  const std::string& path = env.stats_path();
  if (path == "-") {
    DumpText(std::cerr);
    return true;
  }
  const bool json_only =
      path.size() > 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json_only) {
    std::ofstream os(path);
    if (!os.is_open()) return false;
    DumpJson(os);
    return os.good();
  }
  bool ok = true;
  {
    std::ofstream os(path);
    ok = os.is_open();
    if (ok) {
      DumpText(os);
      ok = os.good();
    }
  }
  {
    std::ofstream os(path + ".json");
    if (!os.is_open()) return false;
    DumpJson(os);
    ok = ok && os.good();
  }
  return ok;
}

void Stats::ResetForTesting() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) {
    c.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : r.gauges) {
    g.value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : r.timers) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.total_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace topogen::obs
