// Process-wide stats registry: named monotonic counters, gauges, and
// timer aggregates (fed by obs::Span). Dumped at process exit when
// TOPOGEN_STATS is set -- plain text for eyeballs, JSON for tooling.
//
// Counter bumps are relaxed atomic adds, safe under concurrent use from
// metric workers; call sites guard with the TOPOGEN_COUNT* macros so a
// disabled run pays one flag load per bump site and registers nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/env.h"
#include "obs/histogram.h"

namespace topogen::obs {

class Counter {
 public:
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Stats;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  // Keep the largest value seen ("high-water mark" gauges).
  void Max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Stats;
  std::atomic<std::int64_t> value_{0};
};

struct TimerSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  // Fastest/slowest single sample: a lone stall is invisible in
  // count+total but jumps out of max_ns. 0/0 when count == 0.
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

// VmRSS / VmHWM from /proc/self/status, in kB (-1 when unreadable).
struct MemoryUsage {
  long rss_kb = -1;
  long peak_rss_kb = -1;
};
MemoryUsage ReadMemoryUsage();

class Stats {
 public:
  // Registered objects live for the rest of the process; call sites cache
  // the reference in a function-local static.
  static Counter& GetCounter(std::string_view name);
  static Gauge& GetGauge(std::string_view name);
  static Histogram& GetHistogram(std::string_view name);

  // One finished span of `ns` nanoseconds under `name` (thread-safe).
  static void AddTimerSample(std::string_view name, std::uint64_t ns);

  static std::vector<std::pair<std::string, std::uint64_t>> CounterSnapshot();
  static std::vector<std::pair<std::string, std::int64_t>> GaugeSnapshot();
  static std::vector<TimerSnapshot> TimerSnapshots();
  // Snapshots of every registered histogram with quantiles resolved,
  // sorted by name; empty histograms are skipped.
  static std::vector<HistogramSnapshot> HistogramSnapshots();

  static void DumpText(std::ostream& os);
  static void DumpJson(std::ostream& os);

  // Writes the dump(s) described by Env::stats_path() right now (the same
  // thing the process-exit hook does). Returns false on I/O failure.
  static bool WriteConfigured();

  // Zeroes every registered value (registrations stay).
  static void ResetForTesting();
};

// Guarded bump macros: one relaxed flag load when observability is off.
#define TOPOGEN_COUNT_N(name, n)                                     \
  do {                                                               \
    if (::topogen::obs::AnyEnabled()) {                              \
      static ::topogen::obs::Counter& topogen_counter_ =             \
          ::topogen::obs::Stats::GetCounter(name);                   \
      topogen_counter_.Add(n);                                       \
    }                                                                \
  } while (0)
#define TOPOGEN_COUNT(name) TOPOGEN_COUNT_N(name, 1)

// Histogram bump macros. Gated on TOPOGEN_HIST specifically (not
// AnyEnabled), so distribution tracking is opt-in on top of counters and
// a disabled site costs exactly one relaxed flag load.
#define TOPOGEN_HIST_N(name, v)                                      \
  do {                                                               \
    if (::topogen::obs::HistEnabled()) {                             \
      static ::topogen::obs::Histogram& topogen_hist_ =              \
          ::topogen::obs::Stats::GetHistogram(name);                 \
      topogen_hist_.Record(v);                                       \
    }                                                                \
  } while (0)
#define TOPOGEN_HIST_NS(name, ns) TOPOGEN_HIST_N(name, ns)

// Times the enclosing scope (wall clock, nanoseconds) into a histogram.
#define TOPOGEN_HIST_CONCAT2(a, b) a##b
#define TOPOGEN_HIST_CONCAT(a, b) TOPOGEN_HIST_CONCAT2(a, b)
#define TOPOGEN_HIST_SCOPE(name)                                     \
  ::topogen::obs::ScopedTimer TOPOGEN_HIST_CONCAT(                   \
      topogen_hist_scope_, __LINE__)(                                \
      ::topogen::obs::HistEnabled()                                  \
          ? &::topogen::obs::Stats::GetHistogram(name)               \
          : nullptr)

}  // namespace topogen::obs
