#include "obs/histogram.h"

#include <cmath>

namespace topogen::obs {

void Histogram::MergeFrom(const Histogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t omin = other.min_.load(std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (omin < cur &&
         !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  const std::uint64_t omax = other.max_.load(std::memory_order_relaxed);
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::ValueAtQuantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= target) {
      // Never report past the observed max: the top occupied bucket's
      // upper bound can overshoot a single-sample tail considerably.
      const std::uint64_t ub = BucketUpperBound(i);
      const std::uint64_t mx = max();
      return ub < mx ? ub : mx;
    }
  }
  return max();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = ValueAtQuantile(0.50);
  s.p90 = ValueAtQuantile(0.90);
  s.p99 = ValueAtQuantile(0.99);
  return s;
}

std::vector<std::uint64_t> Histogram::BucketCountsForTesting() const {
  std::vector<std::uint64_t> out(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::ResetForTesting() {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kNoMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace topogen::obs
