#include "obs/env.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace topogen::obs {

namespace detail {

std::atomic<int> g_flags{kFlagsUnresolved};

int ResolveFlags() {
  const Env& env = Env::Get();
  int f = 0;
  if (env.trace_enabled()) f |= kTraceBit;
  if (env.stats_enabled()) f |= kStatsBit;
  if (env.outdir_set()) f |= kManifestBit;
  if (env.hist_enabled()) f |= kHistBit;
  if (env.events_enabled()) f |= kEventsBit;
  g_flags.store(f, std::memory_order_relaxed);
  return f;
}

}  // namespace detail

namespace {

std::string EnvOr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : v;
}

int EnvInt(const char* name, long max_value = 4096) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0 || parsed > max_value) return 0;
  return static_cast<int>(parsed);
}

// Like EnvInt but with a non-zero fallback for unset/unparsable values,
// so "0" stays a representable explicit choice (e.g. an ephemeral port)
// unless the variable's min_value excludes it (e.g. a queue depth, where
// 0 would reject every request).
int EnvIntOr(const char* name, int fallback, long max_value,
             long min_value = 0) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < min_value || parsed > max_value) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

// Shared boolean grammar for on/off env vars: empty, "0", "off", "false",
// and "no" are off; anything else is on.
bool Truthy(const std::string& v) {
  return !v.empty() && v != "0" && v != "off" && v != "false" && v != "no";
}

// TOPOGEN_EVENTS: truthy non-path values route to <outdir>/events.jsonl
// (or ./events.jsonl when no outdir is set); anything containing a '/' or
// ending in ".jsonl" is taken as an explicit path.
std::string ResolveEventsPath(const std::string& raw,
                              const std::string& outdir) {
  if (!Truthy(raw)) return "";
  const bool is_path = raw.find('/') != std::string::npos ||
                       (raw.size() > 6 &&
                        raw.compare(raw.size() - 6, 6, ".jsonl") == 0);
  if (is_path) return raw;
  if (outdir.empty()) return "events.jsonl";
  return outdir.back() == '/' ? outdir + "events.jsonl"
                              : outdir + "/events.jsonl";
}

std::mutex& EnvMutex() {
  static std::mutex m;
  return m;
}

Env*& EnvSlot() {
  static Env* slot = nullptr;
  return slot;
}

// The clock anchor for every trace timestamp in this process.
std::chrono::steady_clock::time_point Epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

Env::Env()
    : scale_(EnvOr("TOPOGEN_SCALE", "default")),
      outdir_(EnvOr("TOPOGEN_OUTDIR", "")),
      trace_path_(EnvOr("TOPOGEN_TRACE", "")),
      stats_path_(EnvOr("TOPOGEN_STATS", "")),
      cache_dir_(EnvOr("TOPOGEN_CACHE_DIR", "")),
      faults_(EnvOr("TOPOGEN_FAULTS", "")),
      events_path_(ResolveEventsPath(EnvOr("TOPOGEN_EVENTS", ""), outdir_)),
      threads_override_(EnvInt("TOPOGEN_THREADS")),
      cache_max_mb_(EnvInt("TOPOGEN_CACHE_MAX_MB", 1 << 20)),
      service_port_(EnvIntOr("TOPOGEN_SERVICE_PORT", 7077, 65535)),
      service_queue_(
          EnvIntOr("TOPOGEN_SERVICE_QUEUE", 64, 1 << 16, /*min_value=*/1)),
      service_executors_(
          EnvIntOr("TOPOGEN_SERVICE_EXECUTORS", 2, 64, /*min_value=*/1)),
      service_max_sessions_(
          EnvIntOr("TOPOGEN_SERVICE_MAX_SESSIONS", 4, 1024, /*min_value=*/1)),
      mem_budget_mb_(EnvInt("TOPOGEN_MEM_BUDGET_MB", 1 << 20)),
      service_target_ms_(
          EnvIntOr("TOPOGEN_SERVICE_TARGET_MS", 20, 60000, /*min_value=*/1)),
      service_inflight_(
          EnvIntOr("TOPOGEN_SERVICE_INFLIGHT", 8, 4096, /*min_value=*/1)),
      service_stall_ms_(
          EnvIntOr("TOPOGEN_SERVICE_STALL_MS", 30000, 1 << 22)),
      hist_(Truthy(EnvOr("TOPOGEN_HIST", ""))) {
  Epoch();  // pin the trace epoch no later than first configuration use
}

std::span<const EnvVarInfo> Env::RegisteredVars() {
  // Every TOPOGEN_* variable the toolchain reads, in the order the docs
  // table presents them. TOPOGEN_BENCH_JSON is parsed by bench_perf (not
  // here) but registered so the docs table stays complete.
  static constexpr EnvVarInfo kVars[] = {
      {"TOPOGEN_SCALE", "figure sizing tier: small | default | full"},
      {"TOPOGEN_THREADS", "worker threads; 0/unset = hardware concurrency"},
      {"TOPOGEN_TRACE", "write a Chrome trace_event JSON to <file> at exit"},
      {"TOPOGEN_STATS", "write the counter/gauge/timer dump to <file>"},
      {"TOPOGEN_OUTDIR",
       "figure export dir (+ manifest.json, journal.log, events.jsonl)"},
      {"TOPOGEN_CACHE_DIR", "persistent content-addressed artifact cache"},
      {"TOPOGEN_CACHE_MAX_MB", "prune the cache to n MiB at exit; 0 = never"},
      {"TOPOGEN_FAULTS",
       "deterministic fault-injection spec (fault-point builds only)"},
      {"TOPOGEN_HIST", "latency histograms (p50/p90/p99/max) at hot seams"},
      {"TOPOGEN_EVENTS", "JSONL event log; 1 = events.jsonl under outdir"},
      {"TOPOGEN_BENCH_JSON", "bench_perf/bench_service BENCH.json output path"},
      {"TOPOGEN_SERVICE_PORT", "topogend TCP port; 0 = ephemeral (default 7077)"},
      {"TOPOGEN_SERVICE_QUEUE",
       "topogend admission-queue depth (default 64, minimum 1)"},
      {"TOPOGEN_SERVICE_EXECUTORS",
       "topogend executor lanes; session-affine (default 2, minimum 1)"},
      {"TOPOGEN_SERVICE_MAX_SESSIONS",
       "resident sessions per topogend executor lane (default 4)"},
      {"TOPOGEN_MEM_BUDGET_MB",
       "resident-memory ceiling; on pressure topogend sheds sessions "
       "and degrades to sampled estimators (0 = off)"},
      {"TOPOGEN_SERVICE_TARGET_MS",
       "topogend queue-sojourn shedding target in ms (default 20)"},
      {"TOPOGEN_SERVICE_INFLIGHT",
       "per-connection in-flight request cap (default 8, minimum 1)"},
      {"TOPOGEN_SERVICE_STALL_MS",
       "topogend lane-watchdog stall threshold in ms; 0 = off "
       "(default 30000)"},
  };
  return kVars;
}

const Env& Env::Get() {
  std::lock_guard<std::mutex> lock(EnvMutex());
  Env*& slot = EnvSlot();
  if (slot == nullptr) slot = new Env();  // leaked: outlives all singletons
  return *slot;
}

void Env::ResetForTesting() {
  {
    std::lock_guard<std::mutex> lock(EnvMutex());
    Env*& slot = EnvSlot();
    delete slot;
    slot = new Env();
  }
  detail::ResolveFlags();
}

const std::string& ProcessName() {
  static const std::string name = [] {
    std::ifstream comm("/proc/self/comm");
    std::string n;
    if (comm.is_open()) std::getline(comm, n);
    return n.empty() ? std::string("topogen") : n;
  }();
  return name;
}

std::int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Epoch())
      .count();
}

int CurrentThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace topogen::obs
