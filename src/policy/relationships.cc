#include "policy/relationships.h"

#include <algorithm>

namespace topogen::policy {

std::vector<Relationship> InferRelationshipsByDegree(const graph::Graph& g,
                                                     double peer_ratio) {
  std::vector<Relationship> rel(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edges()[e];
    const double du = static_cast<double>(g.degree(ed.u));
    const double dv = static_cast<double>(g.degree(ed.v));
    if (std::max(du, dv) <= peer_ratio * std::min(du, dv)) {
      rel[e] = Relationship::kPeerPeer;
    } else if (du > dv) {
      rel[e] = Relationship::kProviderCustomer;
    } else {
      rel[e] = Relationship::kCustomerProvider;
    }
  }
  return rel;
}

}  // namespace topogen::policy
