// AS business relationships (paper Section 3.2.1 and Appendix E).
//
// Policy ("valley-free") routing is defined over edges annotated with the
// commercial relationship between their endpoints: provider-customer,
// peer-peer, or sibling-sibling (Gao [18]). The paper infers these
// annotations from BGP data; our synthetic AS model assigns them by degree
// order, which is exactly the heuristic core of Gao's algorithm (the
// higher-degree AS of an edge is, overwhelmingly, the provider).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace topogen::policy {

enum class Relationship : std::uint8_t {
  kProviderCustomer,  // edges()[e].u is the provider of edges()[e].v
  kCustomerProvider,  // edges()[e].u is the customer of edges()[e].v
  kPeerPeer,
  kSiblingSibling,    // mutual transit (also used for intra-AS router links)
};

// Gao-style degree heuristic: for each edge the higher-degree endpoint is
// the provider; endpoints whose degrees are within peer_ratio of each
// other peer. Returns one annotation per canonical edge of g.
std::vector<Relationship> InferRelationshipsByDegree(const graph::Graph& g,
                                                     double peer_ratio = 1.25);

// Direction of edge e when traversed from `from`: the traversal class the
// valley-free automaton consumes.
enum class Traversal : std::uint8_t { kUp, kDown, kPeer, kSibling };

inline Traversal TraversalFrom(const graph::Graph& g,
                               std::span<const Relationship> rel,
                               graph::EdgeId e, graph::NodeId from) {
  switch (rel[e]) {
    case Relationship::kPeerPeer:
      return Traversal::kPeer;
    case Relationship::kSiblingSibling:
      return Traversal::kSibling;
    case Relationship::kProviderCustomer:
      // u is provider: going u -> v descends, v -> u ascends.
      return g.edges()[e].u == from ? Traversal::kDown : Traversal::kUp;
    case Relationship::kCustomerProvider:
      return g.edges()[e].u == from ? Traversal::kUp : Traversal::kDown;
  }
  return Traversal::kSibling;  // unreachable; placate the compiler
}

}  // namespace topogen::policy
