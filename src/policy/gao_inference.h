// AS relationship inference from routing paths (Gao [18]).
//
// The paper annotates the measured AS graph by running Gao's algorithm
// over BGP table paths. We implement the same algorithm over simulated
// path advertisements (valley-free paths extracted from an annotated
// graph), which lets the library (a) reproduce the paper's tooling
// end-to-end and (b) quantify inference accuracy against ground truth --
// something the paper could not do on real data.
//
// Algorithm (Gao's basic heuristic): every BGP path is valley-free, so it
// climbs to a unique "top provider" and descends. For each observed path,
// take the highest-degree AS as the top; every edge before it gives a
// customer->provider vote, every edge after a provider->customer vote.
// Edges with votes in both directions above a tolerance become siblings;
// edges that only ever appear AT the top of paths (never providing
// transit below it) become peers.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "policy/relationships.h"

namespace topogen::policy {

struct GaoOptions {
  // An edge with minority-direction votes above this fraction of its
  // total votes is classified sibling-sibling (mutual transit).
  double sibling_vote_fraction = 0.25;
  // Peer candidates must additionally have endpoint degrees within this
  // ratio (Gao's phase-3 comparability test): a customer edge hanging
  // directly off a path's top provider also shows apex-only usage, but
  // its endpoint degrees are lopsided.
  double peer_degree_ratio = 1.5;
};

// Infers one relationship per canonical edge of g from the given paths
// (each a node sequence, as ExtractPolicyPath returns). Edges never seen
// in any path fall back to the degree heuristic.
std::vector<Relationship> InferRelationshipsFromPaths(
    const graph::Graph& g,
    std::span<const std::vector<graph::NodeId>> paths,
    const GaoOptions& options = {});

// Fraction of edges whose inferred relationship matches `truth`
// (orientation-sensitive for provider-customer edges). Helper for
// validation experiments.
double RelationshipAgreement(std::span<const Relationship> truth,
                             std::span<const Relationship> inferred);

}  // namespace topogen::policy
