#include "policy/gao_inference.h"

#include <algorithm>

namespace topogen::policy {

std::vector<Relationship> InferRelationshipsFromPaths(
    const graph::Graph& g,
    std::span<const std::vector<graph::NodeId>> paths,
    const GaoOptions& options) {
  const std::size_t m = g.num_edges();
  // Votes that canonical edge e's u-endpoint is the provider / customer,
  // and appearances of e as a path's top edge.
  std::vector<std::uint32_t> u_provider(m, 0), u_customer(m, 0);
  std::vector<std::uint32_t> top_edge(m, 0), transit_edge(m, 0);
  std::vector<std::uint32_t> interior_top_edge(m, 0);

  for (const std::vector<graph::NodeId>& path : paths) {
    if (path.size() < 2) continue;
    // Top provider: the highest-degree AS on the path.
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (g.degree(path[i]) > g.degree(path[top])) top = i;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const graph::EdgeId e = g.edge_id(path[i], path[i + 1]);
      if (e == graph::kInvalidEdge) continue;  // stale path
      const bool u_is_left = g.edges()[e].u == path[i];
      // Uphill: path[i+1] provides for path[i]. Downhill: path[i] does.
      const bool left_provides = i + 1 > top;  // downhill segment
      if ((left_provides && u_is_left) || (!left_provides && !u_is_left)) {
        ++u_provider[e];
      } else {
        ++u_customer[e];
      }
      // Peer detection bookkeeping: the single edge spanning the top of
      // the path (entered at top-1, left at top) is a candidate peer
      // crossing; every other position is transit evidence.
      if (i + 1 == top || i == top) {
        ++top_edge[e];
        // Interior apex usage: the path continues on both sides of the
        // edge, i.e. traffic is transiting between the two endpoints'
        // customer cones -- the defining behaviour of a peering.
        if (i > 0 && i + 2 < path.size()) ++interior_top_edge[e];
      } else {
        ++transit_edge[e];
      }
    }
  }

  // Fall back to the degree heuristic for unseen edges.
  std::vector<Relationship> rel = InferRelationshipsByDegree(g);
  for (graph::EdgeId e = 0; e < m; ++e) {
    const std::uint32_t total = u_provider[e] + u_customer[e];
    if (total == 0) continue;  // unseen: keep degree fallback
    // Apex-only edges with interior (through-traffic) usage are peer
    // links: they carry traffic between both endpoints' customer cones
    // but never provide transit below the apex. Tested before the
    // sibling rule because apex-position bookkeeping can split direction
    // votes. Terminal apex edges (a stub hanging directly off a path's
    // top provider) are NOT peers -- the interior-usage requirement is
    // what separates the two.
    const double du = static_cast<double>(g.degree(g.edges()[e].u));
    const double dv = static_cast<double>(g.degree(g.edges()[e].v));
    const bool comparable =
        std::max(du, dv) <= options.peer_degree_ratio * std::min(du, dv);
    if (transit_edge[e] == 0 && interior_top_edge[e] > 0 && comparable) {
      rel[e] = Relationship::kPeerPeer;
      continue;
    }
    const std::uint32_t minority = std::min(u_provider[e], u_customer[e]);
    if (static_cast<double>(minority) >
        options.sibling_vote_fraction * static_cast<double>(total)) {
      rel[e] = Relationship::kSiblingSibling;
      continue;
    }
    rel[e] = u_provider[e] >= u_customer[e]
                 ? Relationship::kProviderCustomer
                 : Relationship::kCustomerProvider;
  }
  return rel;
}

double RelationshipAgreement(std::span<const Relationship> truth,
                             std::span<const Relationship> inferred) {
  if (truth.empty() || truth.size() != inferred.size()) return 0.0;
  std::size_t match = 0;
  for (std::size_t e = 0; e < truth.size(); ++e) {
    match += truth[e] == inferred[e];
  }
  return static_cast<double>(match) / static_cast<double>(truth.size());
}

}  // namespace topogen::policy
