// Valley-free ("policy") shortest paths.
//
// The paper's policy model (Section 3.2.1): the policy path between two
// nodes is the shortest path that never violates provider-customer
// relationships -- once a path steps down from a provider to a customer
// (or across a peer link), it may never climb back up. Formally a valid
// path is (up | sibling)* (peer)? (down | sibling)*.
//
// We compute policy distances with a BFS over the product of the graph and
// the two-state valley-free automaton:
//
//   phase UP (still ascending):  may take up, sibling (stay UP) or
//                                peer, down (switch to DOWN)
//   phase DOWN (descending):     may take down, sibling only
//
// Policy distances are symmetric (reversing a valley-free path yields a
// valley-free path), >= plain shortest-path distances, and possibly
// infinite even on a connected graph (two customers of disjoint provider
// trees with no peering may be policy-unreachable).
#pragma once

#include <span>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "policy/relationships.h"

namespace topogen::policy {

// The valley-free automaton's phases.
inline constexpr unsigned kPhaseUp = 0;
inline constexpr unsigned kPhaseDown = 1;

// One automaton step: whether a traversal of class t is allowed from
// `phase`, and which phase it lands in. The transition table implements
// (up | sibling)* (peer | down) (down | sibling)*.
bool PolicyStep(unsigned phase, Traversal t, unsigned& next_phase);

// Policy distance from src to every node (kUnreachable where no
// valley-free path exists or beyond max_depth).
std::vector<graph::Dist> PolicyDistances(
    const graph::Graph& g, std::span<const Relationship> rel,
    graph::NodeId src, graph::Dist max_depth = graph::kUnreachable);

// Per-state policy BFS: distances to states (node, phase); phase 0 = UP,
// phase 1 = DOWN. dist_up[v] / dist_down[v]; the policy distance of v is
// the min of the two. Exposed so the ball and hierarchy engines can walk
// the shortest-policy-path DAG.
struct PolicyBfs {
  std::vector<graph::Dist> dist_up;
  std::vector<graph::Dist> dist_down;
  // (node, phase) pairs in BFS order; phase packed in the LSB.
  std::vector<std::uint64_t> order;

  graph::Dist DistanceTo(graph::NodeId v) const {
    return std::min(dist_up[v], dist_down[v]);
  }
};

PolicyBfs RunPolicyBfs(const graph::Graph& g, std::span<const Relationship> rel,
                       graph::NodeId src,
                       graph::Dist max_depth = graph::kUnreachable);

// In-place variant: overwrites `out`, reusing its buffer capacity so a
// caller sweeping many sources (policy expansion, policy balls, the
// policy hierarchy kernel) allocates at most once per thread.
void RunPolicyBfsInto(const graph::Graph& g, std::span<const Relationship> rel,
                      graph::NodeId src, graph::Dist max_depth,
                      PolicyBfs& out);

// One shortest valley-free path from src to dst as a node sequence
// (src first), or empty when dst is policy-unreachable. Used to simulate
// BGP path advertisements for relationship inference.
std::vector<graph::NodeId> ExtractPolicyPath(
    const graph::Graph& g, std::span<const Relationship> rel,
    graph::NodeId src, graph::NodeId dst);

// Average policy path length over policy-reachable pairs, sampled at
// `samples` sources. The paper's path-inflation work [42] reports policy
// paths run a little longer than shortest paths; this is the knob our
// tests use to check that.
double AveragePolicyPathLength(const graph::Graph& g,
                               std::span<const Relationship> rel,
                               std::size_t samples = 128);

// Annotates a router-level graph from its AS overlay: intra-AS links are
// sibling links (free transit inside an AS); inter-AS links inherit the AS
// edge's relationship. This folds the paper's two-stage RL policy-path
// method (AS-level policy path, then router paths within the AS sequence)
// into a single automaton run on the router graph.
std::vector<Relationship> AnnotateRouterLinks(
    const graph::Graph& rl, std::span<const std::uint32_t> as_of,
    const graph::Graph& as_graph, std::span<const Relationship> as_rel);

}  // namespace topogen::policy
