#include "policy/policy_ball.h"

#include <algorithm>

#include "parallel/scratch_pool.h"

namespace topogen::policy {

using graph::Dist;
using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

PolicyBall GrowPolicyBall(const Graph& g, std::span<const Relationship> rel,
                          NodeId center, Dist radius) {
  PolicyBall out;
  // Pool the product-automaton BFS state: policy balls are grown radius
  // by radius from the same centers, so the up/down distance arrays are
  // hot enough to keep per lane.
  auto lease = parallel::ScratchPool<PolicyBfs>::Acquire();
  PolicyBfs& bfs = *lease;
  RunPolicyBfsInto(g, rel, center, radius, bfs);

  // "Useful" states lie on some shortest policy path from the center to a
  // node inside the ball. Seed with every state that realizes a node's
  // policy distance, then propagate backwards through the state DAG
  // (processing states in reverse BFS order guarantees successors are
  // settled first).
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> useful_up(n, 0), useful_down(n, 0);
  auto dist_of = [&](NodeId v, unsigned phase) {
    return phase == 0 ? bfs.dist_up[v] : bfs.dist_down[v];
  };
  auto useful_of = [&](NodeId v,
                       unsigned phase) -> std::uint8_t& {
    return phase == 0 ? useful_up[v] : useful_down[v];
  };
  for (NodeId v = 0; v < n; ++v) {
    const Dist best = std::min(bfs.dist_up[v], bfs.dist_down[v]);
    if (best > radius) continue;
    if (bfs.dist_up[v] == best) useful_up[v] = 1;
    if (bfs.dist_down[v] == best) useful_down[v] = 1;
  }

  std::vector<std::uint8_t> edge_included(g.num_edges(), 0);
  std::vector<std::uint8_t> node_included(n, 0);
  for (std::size_t i = bfs.order.size(); i-- > 0;) {
    const NodeId u = static_cast<NodeId>(bfs.order[i] >> 1);
    const unsigned phase = static_cast<unsigned>(bfs.order[i] & 1);
    const Dist du = dist_of(u, phase);
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const Traversal t = TraversalFrom(g, rel, eids[k], u);
      // Re-run the automaton step (cheap) to find the successor phase.
      unsigned next_phase;
      if (!PolicyStep(phase, t, next_phase)) continue;
      const NodeId v = nbrs[k];
      if (dist_of(v, next_phase) != du + 1) continue;  // not a DAG edge
      if (!useful_of(v, next_phase)) continue;
      useful_of(u, phase) = 1;
      edge_included[eids[k]] = 1;
      node_included[u] = 1;
      node_included[v] = 1;
    }
  }
  node_included[center] = 1;

  // Remap the included nodes and build the subgraph over included edges.
  std::vector<NodeId> remap(n, graph::kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (node_included[v]) {
      remap[v] = static_cast<NodeId>(out.subgraph.original_id.size());
      out.subgraph.original_id.push_back(v);
      out.policy_dist.push_back(std::min(bfs.dist_up[v], bfs.dist_down[v]));
    }
  }
  std::vector<Edge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_included[e]) {
      edges.push_back({remap[g.edges()[e].u], remap[g.edges()[e].v]});
    }
  }
  out.subgraph.graph = Graph::FromEdges(
      static_cast<NodeId>(out.subgraph.original_id.size()), std::move(edges));
  return out;
}

std::vector<std::size_t> PolicyReachableCounts(
    const Graph& g, std::span<const Relationship> rel, NodeId src,
    Dist max_depth) {
  // Single fused sweep: run the product-automaton BFS on a pooled
  // workspace and bin min(dist_up, dist_down) per level directly, instead
  // of materializing a distance vector and re-scanning it twice.
  auto lease = parallel::ScratchPool<PolicyBfs>::Acquire();
  PolicyBfs& bfs = *lease;
  RunPolicyBfsInto(g, rel, src, max_depth, bfs);
  std::vector<std::size_t> counts(1, 0);  // counts[0] covers radius 0
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Dist d = std::min(bfs.dist_up[v], bfs.dist_down[v]);
    if (d == kUnreachable) continue;
    if (counts.size() <= d) counts.resize(static_cast<std::size_t>(d) + 1, 0);
    ++counts[d];
  }
  for (std::size_t h = 1; h < counts.size(); ++h) counts[h] += counts[h - 1];
  return counts;
}

}  // namespace topogen::policy
