// Policy-induced ball growing (paper Appendix E).
//
// A policy ball of radius h around a center contains every node whose
// *policy* path from the center is at most h, and only the links that lie
// on policy-compliant shortest paths to those nodes. This is the
// subgraph the paper feeds to its metrics for the AS(Policy) and
// RL(Policy) curves.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "policy/paths.h"
#include "policy/relationships.h"

namespace topogen::policy {

struct PolicyBall {
  // The induced policy subgraph; original_id maps back to parent ids.
  graph::Subgraph subgraph;
  // Policy distance of each subgraph node from the center (parallel to
  // subgraph.original_id).
  std::vector<graph::Dist> policy_dist;
};

PolicyBall GrowPolicyBall(const graph::Graph& g,
                          std::span<const Relationship> rel,
                          graph::NodeId center, graph::Dist radius);

// Per-radius policy reachable-set sizes from src: result[h] = number of
// nodes whose policy distance is <= h (the policy analogue of
// graph::ReachableCounts, used for the Expansion(Policy) curves).
std::vector<std::size_t> PolicyReachableCounts(
    const graph::Graph& g, std::span<const Relationship> rel,
    graph::NodeId src, graph::Dist max_depth = graph::kUnreachable);

}  // namespace topogen::policy
