#include "policy/paths.h"

#include <algorithm>

namespace topogen::policy {

using graph::Dist;
using graph::EdgeId;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

namespace {
constexpr unsigned kUp = kPhaseUp;
constexpr unsigned kDown = kPhaseDown;
}  // namespace

bool PolicyStep(unsigned phase, Traversal t, unsigned& next_phase) {
  if (phase == kUp) {
    switch (t) {
      case Traversal::kUp:
      case Traversal::kSibling:
        next_phase = kUp;
        return true;
      case Traversal::kPeer:
      case Traversal::kDown:
        next_phase = kDown;
        return true;
    }
  } else {
    switch (t) {
      case Traversal::kDown:
      case Traversal::kSibling:
        next_phase = kDown;
        return true;
      case Traversal::kUp:
      case Traversal::kPeer:
        return false;
    }
  }
  return false;
}

PolicyBfs RunPolicyBfs(const Graph& g, std::span<const Relationship> rel,
                       NodeId src, Dist max_depth) {
  PolicyBfs out;
  RunPolicyBfsInto(g, rel, src, max_depth, out);
  return out;
}

void RunPolicyBfsInto(const Graph& g, std::span<const Relationship> rel,
                      NodeId src, Dist max_depth, PolicyBfs& out) {
  out.dist_up.assign(g.num_nodes(), kUnreachable);
  out.dist_down.assign(g.num_nodes(), kUnreachable);
  out.order.clear();
  if (src >= g.num_nodes()) return;
  auto dist_of = [&](NodeId v, unsigned phase) -> Dist& {
    return phase == kUp ? out.dist_up[v] : out.dist_down[v];
  };
  out.dist_up[src] = 0;
  out.order.push_back(static_cast<std::uint64_t>(src) << 1 | kUp);
  for (std::size_t head = 0; head < out.order.size(); ++head) {
    const NodeId u = static_cast<NodeId>(out.order[head] >> 1);
    const unsigned phase = static_cast<unsigned>(out.order[head] & 1);
    const Dist du = dist_of(u, phase);
    if (du >= max_depth) continue;
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Traversal t = TraversalFrom(g, rel, eids[i], u);
      unsigned next_phase;
      if (!PolicyStep(phase, t, next_phase)) continue;
      Dist& dv = dist_of(nbrs[i], next_phase);
      if (dv == kUnreachable) {
        dv = du + 1;
        out.order.push_back(static_cast<std::uint64_t>(nbrs[i]) << 1 |
                            next_phase);
      }
    }
  }
}

std::vector<Dist> PolicyDistances(const Graph& g,
                                  std::span<const Relationship> rel,
                                  NodeId src, Dist max_depth) {
  const PolicyBfs bfs = RunPolicyBfs(g, rel, src, max_depth);
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    dist[v] = std::min(bfs.dist_up[v], bfs.dist_down[v]);
  }
  return dist;
}

std::vector<NodeId> ExtractPolicyPath(const Graph& g,
                                      std::span<const Relationship> rel,
                                      NodeId src, NodeId dst) {
  std::vector<NodeId> path;
  if (src >= g.num_nodes() || dst >= g.num_nodes()) return path;
  if (src == dst) return {src};
  const PolicyBfs bfs = RunPolicyBfs(g, rel, src);
  auto dist_of = [&](NodeId v, unsigned phase) {
    return phase == kUp ? bfs.dist_up[v] : bfs.dist_down[v];
  };
  const Dist best = std::min(bfs.dist_up[dst], bfs.dist_down[dst]);
  if (best == kUnreachable) return path;

  // Walk the state DAG backwards from dst's optimal state.
  NodeId v = dst;
  unsigned phase = bfs.dist_up[dst] == best ? kUp : kDown;
  path.push_back(dst);
  while (v != src || phase != kUp) {
    const Dist dv = dist_of(v, phase);
    bool stepped = false;
    const auto nbrs = g.neighbors(v);
    const auto eids = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size() && !stepped; ++i) {
      const NodeId x = nbrs[i];
      const Traversal t = TraversalFrom(g, rel, eids[i], x);
      for (const unsigned px : {kUp, kDown}) {
        unsigned landed;
        if (!PolicyStep(px, t, landed) || landed != phase) continue;
        if (dist_of(x, px) != kUnreachable && dist_of(x, px) + 1 == dv) {
          path.push_back(x);
          v = x;
          phase = px;
          stepped = true;
          break;
        }
      }
    }
    if (!stepped) return {};  // should not happen on a consistent BFS
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double AveragePolicyPathLength(const Graph& g,
                               std::span<const Relationship> rel,
                               std::size_t samples) {
  const NodeId n = g.num_nodes();
  if (n < 2) return 0.0;
  const std::size_t use = std::min<std::size_t>(samples, n);
  const std::size_t stride = (n + use - 1) / use;
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId src = 0; src < n; src += static_cast<NodeId>(stride)) {
    const std::vector<Dist> dist = PolicyDistances(g, rel, src);
    for (NodeId v = 0; v < n; ++v) {
      if (v != src && dist[v] != kUnreachable) {
        total += dist[v];
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

std::vector<Relationship> AnnotateRouterLinks(
    const Graph& rl, std::span<const std::uint32_t> as_of,
    const Graph& as_graph, std::span<const Relationship> as_rel) {
  std::vector<Relationship> rel(rl.num_edges(),
                                Relationship::kSiblingSibling);
  for (EdgeId e = 0; e < rl.num_edges(); ++e) {
    const graph::Edge& ed = rl.edges()[e];
    const std::uint32_t au = as_of[ed.u];
    const std::uint32_t av = as_of[ed.v];
    if (au == av) continue;  // intra-AS: sibling
    const EdgeId as_edge = as_graph.edge_id(au, av);
    if (as_edge == graph::kInvalidEdge) continue;  // overlay gap: sibling
    const Relationship r = as_rel[as_edge];
    // Reorient: as_rel is expressed for the canonical AS edge (min AS id
    // first); the router edge's canonical orientation may differ.
    const bool same_orientation = as_graph.edges()[as_edge].u == au;
    if (r == Relationship::kPeerPeer) {
      rel[e] = r;
    } else if (same_orientation) {
      rel[e] = r;
    } else {
      rel[e] = r == Relationship::kProviderCustomer
                   ? Relationship::kCustomerProvider
                   : Relationship::kProviderCustomer;
    }
  }
  return rel;
}

}  // namespace topogen::policy
