// Protocol-performance experiments over topologies.
//
// The paper's premise is that large-scale structure, not local detail,
// drives protocol *scaling* (Section 1). These experiments make that
// concrete, one per related-work thread the paper cites:
//
//   * FloodSpread   -- epidemic/flooding reach over time with exponential
//                      per-link delays: the dynamic face of expansion.
//   * MulticastState -- Wong & Katz [48]: how much forwarding state
//                      multicast trees deposit on routers, and how
//                      unevenly, as the receiver set grows.
//   * FailoverStretch -- path stretch and disconnection under random link
//                      failures: the dynamic face of resilience.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/rng.h"
#include "metrics/series.h"

namespace topogen::sim {

struct FloodOptions {
  std::size_t trials = 16;  // (source, delay-draw) repetitions
  std::uint64_t seed = 31;
};

// x = time (exponential unit-rate link delays), y = mean fraction of
// nodes reached by a flood started at a random source. Reported at the
// deciles of reach (0.1 .. 1.0) averaged over trials.
metrics::Series FloodSpread(const graph::Graph& g,
                            const FloodOptions& options = {});

struct MulticastStateOptions {
  std::size_t max_receivers = 256;
  std::size_t trials_per_size = 8;
  std::uint64_t seed = 37;
};

struct MulticastStateResult {
  // x = receiver count m, y = mean number of routers holding forwarding
  // state (on-tree, non-leaf-of-tree routers).
  metrics::Series routers_with_state;
  // x = receiver count m, y = max state entries (tree children) at any
  // single router -- the hot-spot measure that differs across topologies.
  metrics::Series max_state;
};

MulticastStateResult MulticastState(const graph::Graph& g,
                                    const MulticastStateOptions& options = {});

struct FailoverOptions {
  double max_link_failure_fraction = 0.20;
  double step = 0.04;
  std::size_t path_samples = 96;  // sampled (source, dest) pairs
  std::uint64_t seed = 41;
};

struct FailoverResult {
  // x = failed link fraction, y = mean stretch (post/pre hops) over pairs
  // still connected.
  metrics::Series stretch;
  // x = failed link fraction, y = fraction of sampled pairs disconnected.
  metrics::Series disconnected;
};

FailoverResult FailoverStretch(const graph::Graph& g,
                               const FailoverOptions& options = {});

}  // namespace topogen::sim
