// Weighted shortest paths with random link weights (Dijkstra).
//
// The substrate for the protocol-performance experiments in src/sim. Van
// Mieghem et al. [44] (paper Section 2) model the Internet's hop-count
// distribution as the hop count of shortest paths in a random graph with
// uniformly or exponentially distributed link weights; a message flooding
// a network with exponential per-link delays reaches nodes in exactly the
// order of these weighted distances.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/rng.h"

namespace topogen::sim {

enum class WeightModel {
  kUnit,         // every link weight 1 (plain BFS distances)
  kUniform,      // U(0, 1)
  kExponential,  // Exp(1)
};

// One independent weight per canonical edge.
std::vector<double> SampleLinkWeights(const graph::Graph& g,
                                      WeightModel model, graph::Rng& rng);

struct WeightedPathResult {
  std::vector<double> distance;       // weighted distance; +inf unreachable
  std::vector<std::uint32_t> hops;    // hop count of the min-weight path
  std::vector<graph::NodeId> parent;  // predecessor on that path
};

// Dijkstra from src under the given per-edge weights.
WeightedPathResult WeightedShortestPaths(const graph::Graph& g,
                                         std::span<const double> weight,
                                         graph::NodeId src);

// Hop-count histogram of min-weight paths from sampled sources:
// result[h] = fraction of sampled reachable pairs whose min-weight path
// has h hops.
std::vector<double> HopCountDistribution(const graph::Graph& g,
                                         WeightModel model,
                                         std::size_t sources,
                                         graph::Rng& rng);

}  // namespace topogen::sim
