#include "sim/protocols.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "graph/trees.h"
#include "metrics/multicast.h"
#include "sim/weighted_paths.h"

namespace topogen::sim {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

metrics::Series FloodSpread(const Graph& g, const FloodOptions& options) {
  metrics::Series s;
  s.name = "flood-spread";
  const NodeId n = g.num_nodes();
  if (n < 2) return s;
  Rng rng(options.seed);
  // Reach deciles, averaged across trials.
  constexpr int kDeciles = 10;
  std::vector<double> decile_time(kDeciles, 0.0);
  std::size_t valid_trials = 0;
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const auto src = static_cast<NodeId>(rng.NextIndex(n));
    const std::vector<double> weight =
        SampleLinkWeights(g, WeightModel::kExponential, rng);
    const WeightedPathResult paths = WeightedShortestPaths(g, weight, src);
    std::vector<double> arrivals;
    arrivals.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!std::isinf(paths.distance[v])) arrivals.push_back(paths.distance[v]);
    }
    if (arrivals.size() < 2) continue;
    std::sort(arrivals.begin(), arrivals.end());
    for (int d = 1; d <= kDeciles; ++d) {
      const std::size_t index = std::min(
          arrivals.size() - 1, arrivals.size() * d / kDeciles);
      decile_time[d - 1] += arrivals[index];
    }
    ++valid_trials;
  }
  if (valid_trials == 0) return s;
  for (int d = 1; d <= kDeciles; ++d) {
    s.Add(decile_time[d - 1] / static_cast<double>(valid_trials),
          static_cast<double>(d) / kDeciles);
  }
  // Reorder into (time, fraction) with time on x: already so; ensure
  // monotone x (deciles of the same averaged run are sorted).
  return s;
}

MulticastStateResult MulticastState(const Graph& g,
                                    const MulticastStateOptions& options) {
  MulticastStateResult out;
  out.routers_with_state.name = "multicast-state-routers";
  out.max_state.name = "multicast-state-max";
  const NodeId n = g.num_nodes();
  if (n < 4) return out;
  Rng rng(options.seed);
  const std::size_t cap =
      std::min<std::size_t>(options.max_receivers, n - 1);
  for (std::size_t m = 2; m <= cap; m *= 2) {
    double routers_sum = 0.0, max_sum = 0.0;
    for (std::size_t trial = 0; trial < options.trials_per_size; ++trial) {
      const auto src = static_cast<NodeId>(rng.NextIndex(n));
      const graph::SpanningTree tree = graph::BfsTree(g, src);
      // Mark on-tree nodes by walking each receiver's parent chain; count
      // per-node children in the multicast tree = forwarding entries.
      std::vector<std::uint16_t> entries(n, 0);
      std::vector<std::uint8_t> on_tree(n, 0);
      on_tree[src] = 1;
      for (std::size_t r = 0; r < m; ++r) {
        NodeId cur = static_cast<NodeId>(rng.NextIndex(n));
        if (tree.parent[cur] == graph::kInvalidNode) continue;
        while (!on_tree[cur]) {
          on_tree[cur] = 1;
          ++entries[tree.parent[cur]];
          cur = tree.parent[cur];
        }
      }
      std::size_t with_state = 0;
      std::uint16_t max_entries = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (entries[v] > 0) ++with_state;
        max_entries = std::max(max_entries, entries[v]);
      }
      routers_sum += static_cast<double>(with_state);
      max_sum += static_cast<double>(max_entries);
    }
    const auto trials = static_cast<double>(options.trials_per_size);
    out.routers_with_state.Add(static_cast<double>(m), routers_sum / trials);
    out.max_state.Add(static_cast<double>(m), max_sum / trials);
  }
  return out;
}

FailoverResult FailoverStretch(const Graph& g,
                               const FailoverOptions& options) {
  FailoverResult out;
  out.stretch.name = "failover-stretch";
  out.disconnected.name = "failover-disconnected";
  const NodeId n = g.num_nodes();
  if (n < 2 || g.num_edges() == 0) return out;
  Rng rng(options.seed);

  // Fixed sample of pairs with their pre-failure distances.
  struct Pair {
    NodeId s, t;
    graph::Dist before;
  };
  std::vector<Pair> pairs;
  {
    graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
    for (std::size_t i = 0; i < options.path_samples * 3 &&
                            pairs.size() < options.path_samples;
         ++i) {
      const auto s = static_cast<NodeId>(rng.NextIndex(n));
      const auto t = static_cast<NodeId>(rng.NextIndex(n));
      if (s == t) continue;
      graph::BfsDistancesInto(g, s, *scratch);
      const graph::Dist d = scratch->dist(t);
      if (d == graph::kUnreachable) continue;
      pairs.push_back({s, t, d});
    }
  }
  if (pairs.empty()) return out;

  // Progressive failure: one random permutation of edges, failed in
  // prefix order so each fraction extends the previous.
  std::vector<graph::EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  for (double f = options.step; f <= options.max_link_failure_fraction + 1e-9;
       f += options.step) {
    const auto failed_count =
        static_cast<std::size_t>(f * static_cast<double>(g.num_edges()));
    std::vector<std::uint8_t> failed(g.num_edges(), 0);
    for (std::size_t i = 0; i < failed_count; ++i) failed[order[i]] = 1;
    // Surviving graph.
    std::vector<graph::Edge> edges;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!failed[e]) edges.push_back(g.edges()[e]);
    }
    const Graph survivor = Graph::FromEdges(n, std::move(edges));
    double stretch_sum = 0.0;
    std::size_t connected = 0, lost = 0;
    graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
    for (const Pair& p : pairs) {
      graph::BfsDistancesInto(survivor, p.s, *scratch);
      const graph::Dist d = scratch->dist(p.t);
      if (d == graph::kUnreachable) {
        ++lost;
      } else {
        stretch_sum += static_cast<double>(d) /
                       static_cast<double>(p.before);
        ++connected;
      }
    }
    out.stretch.Add(f, connected == 0
                           ? 0.0
                           : stretch_sum / static_cast<double>(connected));
    out.disconnected.Add(
        f, static_cast<double>(lost) / static_cast<double>(pairs.size()));
  }
  return out;
}

}  // namespace topogen::sim
