#include "sim/weighted_paths.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace topogen::sim {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

std::vector<double> SampleLinkWeights(const Graph& g, WeightModel model,
                                      Rng& rng) {
  std::vector<double> weight(g.num_edges(), 1.0);
  switch (model) {
    case WeightModel::kUnit:
      break;
    case WeightModel::kUniform:
      for (double& w : weight) w = rng.NextDouble();
      break;
    case WeightModel::kExponential:
      for (double& w : weight) {
        w = -std::log(1.0 - rng.NextDouble());
      }
      break;
  }
  return weight;
}

WeightedPathResult WeightedShortestPaths(const Graph& g,
                                         std::span<const double> weight,
                                         NodeId src) {
  const NodeId n = g.num_nodes();
  WeightedPathResult out;
  out.distance.assign(n, std::numeric_limits<double>::infinity());
  out.hops.assign(n, 0);
  out.parent.assign(n, graph::kInvalidNode);
  if (src >= n) return out;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  out.distance[src] = 0.0;
  out.parent[src] = src;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > out.distance[u]) continue;  // stale
    const auto nbrs = g.neighbors(u);
    const auto eids = g.incident_edges(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      const double nd = d + weight[eids[i]];
      if (nd < out.distance[v]) {
        out.distance[v] = nd;
        out.hops[v] = out.hops[u] + 1;
        out.parent[v] = u;
        heap.push({nd, v});
      }
    }
  }
  return out;
}

std::vector<double> HopCountDistribution(const Graph& g, WeightModel model,
                                         std::size_t sources, Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<std::size_t> histogram;
  std::size_t pairs = 0;
  const std::size_t use = std::min<std::size_t>(sources, n);
  for (std::size_t i = 0; i < use; ++i) {
    const auto src = static_cast<NodeId>(rng.NextIndex(n));
    // Fresh weights per source: the model is an ensemble over weight
    // draws, not one fixed weighting.
    const std::vector<double> weight = SampleLinkWeights(g, model, rng);
    const WeightedPathResult paths = WeightedShortestPaths(g, weight, src);
    for (NodeId v = 0; v < n; ++v) {
      if (v == src || std::isinf(paths.distance[v])) continue;
      if (paths.hops[v] >= histogram.size()) {
        histogram.resize(paths.hops[v] + 1, 0);
      }
      ++histogram[paths.hops[v]];
      ++pairs;
    }
  }
  std::vector<double> out(histogram.size(), 0.0);
  for (std::size_t h = 0; h < histogram.size(); ++h) {
    out[h] = pairs == 0 ? 0.0
                        : static_cast<double>(histogram[h]) /
                              static_cast<double>(pairs);
  }
  return out;
}

}  // namespace topogen::sim
