#include "store/artifact.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "obs/obs.h"
#include "store/hash.h"
#include "store/serialize.h"

namespace topogen::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'T', 'G', 'A', 'R', 'T', 'v', '0', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;  // magic, ver, size, sum

}  // namespace

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (!fs::is_directory(root_)) {
    throw std::runtime_error("ArtifactStore: cannot create cache root '" +
                             root_ + "'");
  }
}

std::string ArtifactStore::PathFor(std::string_view kind,
                                   const Key& key) const {
  const std::string hex = key.Hex();
  return (fs::path(root_) / kind / hex.substr(0, 2) / (hex + ".art"))
      .string();
}

bool ArtifactStore::Contains(std::string_view kind, const Key& key) const {
  std::error_code ec;
  return fs::is_regular_file(PathFor(kind, key), ec);
}

bool ArtifactStore::Load(std::string_view kind, const Key& key,
                         std::string& payload) {
  TOPOGEN_HIST_SCOPE("store.load_ns");
  const std::string path = PathFor(kind, key);
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;  // plain miss: nothing stored yet
  std::string file((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  if (TOPOGEN_FAULT_HIT("store.read.corrupt", path)) {
    // Flip one body byte before validation; the checksum below must catch
    // it and demote the load to a miss, never hand back wrong bytes.
    if (file.size() > kHeaderSize) {
      file[kHeaderSize + (file.size() - kHeaderSize) / 2] ^= 0x01;
    } else if (!file.empty()) {
      file.back() ^= 0x01;
    }
  }
  // The entry exists; from here on any mismatch is corruption/staleness,
  // reported as a miss plus a store.corrupt bump so a flaky disk or a
  // format bump is visible in stats.
  const auto corrupt = [&] {
    TOPOGEN_COUNT("store.corrupt");
    if (obs::EventsEnabled()) {
      obs::Event("cache").Str("kind", kind).Str("op", "corrupt").Str("path",
                                                                     path);
    }
    return false;
  };
  if (file.size() < kHeaderSize) return corrupt();
  if (std::string_view(file.data(), 8) != std::string_view(kMagic, 8)) {
    return corrupt();
  }
  ByteReader header(std::string_view(file).substr(8));
  const std::uint32_t version = header.U32();
  const std::uint64_t size = header.U64();
  const std::uint64_t checksum = header.U64();
  if (!header.ok() || version != kStoreFormatVersion) return corrupt();
  if (file.size() - kHeaderSize != size) return corrupt();
  const std::string_view body = std::string_view(file).substr(kHeaderSize);
  if (Checksum64(body) != checksum) return corrupt();
  payload.assign(body);
  TOPOGEN_COUNT_N("store.bytes_read", file.size());
  return true;
}

bool ArtifactStore::Store(std::string_view kind, const Key& key,
                          std::string_view payload) {
  TOPOGEN_HIST_SCOPE("store.store_ns");
  const std::string path = PathFor(kind, key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (TOPOGEN_FAULT_HIT("store.write.enospc", path)) {
    // As if the temp-file write hit a full disk: nothing lands, the
    // caller sees an ordinary store failure and carries on uncached.
    TOPOGEN_COUNT("store.write_failed");
    return false;
  }
  // Injected write perversions: a torn write truncates the body but still
  // renames (a crashed writer whose rename survived), a corrupt write
  // flips one body byte after the checksum was taken. Either way the
  // header describes the true payload, so Load() must detect the damage.
  std::string_view body = payload;
  std::string corrupted;
  if (TOPOGEN_FAULT_HIT("store.write.corrupt", path)) {
    corrupted.assign(payload);
    if (!corrupted.empty()) corrupted[corrupted.size() / 2] ^= 0x01;
    body = corrupted;
  }
  std::size_t body_len = body.size();
  if (TOPOGEN_FAULT_HIT("store.write.torn", path)) {
    body_len = body.size() / 2;
  }
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) return false;
    std::string header;
    header.append(kMagic, 8);
    ByteWriter w(header);
    w.U32(kStoreFormatVersion);
    w.U64(payload.size());
    w.U64(Checksum64(payload));
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    os.write(body.data(), static_cast<std::streamsize>(body_len));
    if (!os.good()) {
      os.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  TOPOGEN_COUNT_N("store.bytes_written", kHeaderSize + payload.size());
  return true;
}

std::size_t ArtifactStore::Prune(std::uint64_t max_bytes) {
  // Prune runs at session teardown (a destructor path) over a cache other
  // processes may be mutating or deleting concurrently. It must never
  // throw: a vanished directory or file is someone else's prune winning
  // the race, counted under store.prune_races and otherwise ignored.
  try {
    return PruneImpl(max_bytes);
  } catch (const std::exception&) {
    TOPOGEN_COUNT("store.prune_races");
    return 0;
  }
}

std::size_t ArtifactStore::PruneImpl(std::uint64_t max_bytes) {
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  // A missing root reads as an empty cache: the iterator constructor sets
  // ec and compares equal to end, so the loop body never runs.
  for (auto it = fs::recursive_directory_iterator(
           root_, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() != ".art") continue;
    const std::uint64_t size = it->file_size(ec);
    if (ec) continue;
    entries.push_back({p, it->last_write_time(ec), size});
    total += size;
  }
  if (total <= max_bytes) return 0;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::size_t removed = 0;
  for (const Entry& e : entries) {
    if (total <= max_bytes) break;
    TOPOGEN_FAULT_POINT_D("store.prune.race", e.path.string());
    if (fs::remove(e.path, ec); !ec) {
      total -= e.size;
      ++removed;
    } else {
      // Delete failed under the iterator -- a concurrent process owns
      // this slot now. Keep going; the entry no longer counts against us.
      TOPOGEN_COUNT("store.prune_races");
      total -= e.size;
    }
  }
  TOPOGEN_COUNT_N("store.evicted", removed);
  return removed;
}

}  // namespace topogen::store
