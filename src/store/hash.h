// Content-addressed cache keys (docs/CACHING.md).
//
// Artifacts in the store are addressed by a 128-bit structural hash of
// everything that determines their bytes: a domain string ("topology",
// "metrics"), the store schema version, the code epoch, and every
// option field the producing computation reads. The hasher is streaming
// and *structural*: each absorbed value carries a type tag and strings
// carry their length, so ("ab", "c") and ("a", "bc") hash differently.
//
// This is a cache key, not a cryptographic commitment: 2x64-bit FNV-1a
// lanes with splitmix finalization give collision odds far below disk
// corruption odds for the few hundred artifacts a figure suite produces,
// at zero dependency cost. Payload *integrity* is separately guarded by
// Checksum64 over the artifact bytes (store/artifact.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace topogen::store {

struct Key {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  // 32 lowercase hex chars; the artifact's file name.
  std::string Hex() const;

  friend bool operator==(const Key&, const Key&) = default;
  friend auto operator<=>(const Key&, const Key&) = default;
};

class KeyHasher {
 public:
  KeyHasher& Mix(std::string_view s);
  // Without this overload a string literal would take the pointer->bool
  // standard conversion over the user-defined one to string_view and hash
  // as `true`.
  KeyHasher& Mix(const char* s) { return Mix(std::string_view(s)); }
  KeyHasher& Mix(std::uint64_t v);
  KeyHasher& Mix(std::int64_t v) { return Mix(static_cast<std::uint64_t>(v)); }
  KeyHasher& Mix(int v) { return Mix(static_cast<std::uint64_t>(v)); }
  KeyHasher& Mix(bool v);
  // Doubles are hashed by bit pattern: two RosterOptions differing in the
  // last ulp are two different cache entries, never a wrong hit.
  KeyHasher& Mix(double v);

  Key Finish() const;

 private:
  void Absorb(const void* data, std::size_t len);
  void Tag(std::uint8_t tag);

  std::uint64_t a_ = 0xcbf29ce484222325ULL;   // FNV-1a offset basis
  std::uint64_t b_ = 0x6c62272e07bb0142ULL;   // FNV-1a 128 basis (high half)
};

// FNV-1a over a byte span; the artifact payload checksum.
std::uint64_t Checksum64(std::string_view bytes);

}  // namespace topogen::store
