// Byte-level serialization primitives for cache artifacts.
//
// Cached results must be *byte-identical* to fresh computation, so every
// value is written in its exact in-memory width: doubles go out as their
// 8-byte bit pattern (never through text formatting, which rounds), and
// integers as fixed-width little-endian words. The format is
// host-endian-local by design -- the artifact store is a per-machine
// cache, not an interchange format (docs/CACHING.md); a big-endian host
// would simply produce its own equally-valid cache.
//
// ByteReader is bounds-checked everywhere and never throws: a truncated
// or garbage payload turns into ok() == false, which the store layer
// treats as a cache miss to recompute, not an error to surface.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace topogen::store {

class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Str(std::string_view s) {
    U64(s.size());
    out_.append(s.data(), s.size());
  }
  // Vectors of trivially-copyable scalars, length-prefixed.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

 private:
  void Raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view blob) : blob_(blob) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return off_; }
  bool AtEnd() const { return ok_ && off_ == blob_.size(); }

  std::uint8_t U8() {
    std::uint8_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::string Str() {
    const std::uint64_t n = U64();
    if (!Ensure(n)) return {};
    std::string s(blob_.substr(off_, n));
    off_ += n;
    return s;
  }
  template <typename T>
  std::vector<T> Vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = U64();
    if (n > blob_.size() / sizeof(T) || !Ensure(n * sizeof(T))) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(n);
    std::memcpy(v.data(), blob_.data() + off_, n * sizeof(T));
    off_ += n * sizeof(T);
    return v;
  }

 private:
  bool Ensure(std::uint64_t n) {
    if (!ok_ || n > blob_.size() - off_) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void Raw(void* p, std::size_t n) {
    if (!Ensure(n)) return;
    std::memcpy(p, blob_.data() + off_, n);
    off_ += n;
  }

  std::string_view blob_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace topogen::store
