#include "store/journal.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "fault/fault.h"
#include "obs/obs.h"

namespace topogen::store {

namespace {

// One complete journal line -> job id, or empty when the line is not a
// well-formed completion record (garbage, partial write, future schema).
std::string_view ParseDoneLine(std::string_view line) {
  constexpr std::string_view kPrefix = "v1 done ";
  if (!line.starts_with(kPrefix)) return {};
  line.remove_prefix(kPrefix.size());
  const std::size_t space = line.find(' ');
  if (space == 0 || space == std::string_view::npos) return {};
  // The artifact hex after the job id must be present and non-empty.
  if (space + 1 >= line.size()) return {};
  return line.substr(0, space);
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::error_code ec;
  const auto parent = std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ifstream is(path_);
  if (!is.is_open()) return;
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  // Only lines terminated by '\n' count: a crash mid-append leaves a
  // partial final line, which must read as "not done".
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string_view job =
        ParseDoneLine(std::string_view(content).substr(start, nl - start));
    if (!job.empty()) done_.insert(std::string(job));
    start = nl + 1;
  }
  resumed_count_ = done_.size();
  seal_partial_line_ = !content.empty() && content.back() != '\n';
  TOPOGEN_COUNT_N("store.journal_loaded", resumed_count_);
}

bool Journal::IsDone(std::string_view job_id) const {
  return done_.find(job_id) != done_.end();
}

void Journal::MarkDone(std::string_view job_id, std::string_view artifact_hex) {
  if (path_.empty()) return;
  if (!done_.insert(std::string(job_id)).second) return;
  std::ofstream os(path_, std::ios::app);
  if (!os.is_open()) return;
  if (seal_partial_line_) {
    os << "\n";
    seal_partial_line_ = false;
  }
  std::string line = "v1 done ";
  line.append(job_id).append(" ").append(artifact_hex).append("\n");
  if (const auto inj = TOPOGEN_FAULT_HIT("store.journal.append", job_id)) {
    // Tear the record mid-line: a prefix with no terminator lands on
    // disk. kind=abort additionally kills the process right there (the
    // crash-recovery tests' guillotine); any other kind is an in-process
    // torn write, so later appends must seal this line first, and the
    // record reads as not-done on resume.
    const std::string torn = line.substr(0, line.size() / 2);
    os.write(torn.data(), static_cast<std::streamsize>(torn.size()));
    os.flush();
    if (inj->kind == fault::Kind::kAbort) {
      // _Exit skips every static destructor, so the trace buffer, stats
      // dump, and event log would vanish with the process. Flush them
      // now -- a crashed run must still leave parseable artifacts.
      obs::Event("crash").Str("point", "store.journal.append").Str("job",
                                                                   job_id);
      obs::FlushRunArtifacts();
      std::_Exit(fault::kCrashExitCode);
    }
    seal_partial_line_ = true;
    TOPOGEN_COUNT("store.journal_torn");
    return;
  }
  os << line;
  os.flush();
  TOPOGEN_COUNT("store.journal_appends");
}

}  // namespace topogen::store
