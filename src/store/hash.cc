#include "store/hash.h"

#include <cstring>

namespace topogen::store {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// splitmix64 finalizer: FNV's avalanche is weak in the high bits, so the
// final key runs both lanes through a strong mixer.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string Key::Hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const auto byte = static_cast<std::uint8_t>(word >> shift);
    out[2 * i] = kDigits[byte >> 4];
    out[2 * i + 1] = kDigits[byte & 0xf];
  }
  return out;
}

void KeyHasher::Absorb(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    a_ = (a_ ^ p[i]) * kFnvPrime;
    // The second lane sees the same bytes offset by the first lane's
    // running state, so the two lanes stay decorrelated.
    b_ = (b_ ^ p[i] ^ (a_ >> 57)) * kFnvPrime;
  }
}

void KeyHasher::Tag(std::uint8_t tag) { Absorb(&tag, 1); }

KeyHasher& KeyHasher::Mix(std::string_view s) {
  Tag(0x01);
  const std::uint64_t len = s.size();
  Absorb(&len, sizeof len);
  Absorb(s.data(), s.size());
  return *this;
}

KeyHasher& KeyHasher::Mix(std::uint64_t v) {
  Tag(0x02);
  Absorb(&v, sizeof v);
  return *this;
}

KeyHasher& KeyHasher::Mix(bool v) {
  Tag(0x04);
  const std::uint8_t byte = v ? 1 : 0;
  Absorb(&byte, 1);
  return *this;
}

KeyHasher& KeyHasher::Mix(double v) {
  Tag(0x03);
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  Absorb(&bits, sizeof bits);
  return *this;
}

Key KeyHasher::Finish() const {
  return {Mix64(a_ ^ Mix64(b_)), Mix64(b_ ^ Mix64(a_ + 0x9e3779b97f4a7c15ULL))};
}

std::uint64_t Checksum64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h;
}

}  // namespace topogen::store
