// Append-only run journal (docs/CACHING.md).
//
// When TOPOGEN_OUTDIR is set, a Session journals every completed job --
// topology builds, metric suites, link-value passes -- as one text line
// flushed immediately:
//
//   v1 done <job-id> <artifact-key-hex>
//
// Job ids embed the artifact's content key, so a journal entry is only
// honored when it refers to exactly the work this run would do: change a
// seed, an option, or the code epoch and the old entries simply never
// match. A crashed or interrupted suite resumes by reloading the
// journal: jobs already marked done are served from the artifact store
// without recomputation (Session counts them under
// session.journal_skips).
//
// Loading is truncation-tolerant by construction: a crash mid-append
// leaves at most one partial final line, and the parser only honors
// complete, well-formed "v1 done ..." lines -- everything else is
// ignored, never fatal.
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace topogen::store {

class Journal {
 public:
  // Opens (creating if missing) the journal at `path` and loads the
  // completed-job set from any prior run. An empty path disables the
  // journal (all queries return false, MarkDone is a no-op).
  explicit Journal(std::string path);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  // True when a prior (or this) run journaled the job as complete.
  bool IsDone(std::string_view job_id) const;

  // Appends and flushes a completion record; idempotent per job id.
  void MarkDone(std::string_view job_id, std::string_view artifact_hex);

  // Jobs loaded from the file at construction (i.e. completed by a
  // previous run) -- the resume baseline.
  std::size_t resumed_count() const { return resumed_count_; }
  std::size_t done_count() const { return done_.size(); }

 private:
  std::string path_;
  std::set<std::string, std::less<>> done_;
  std::size_t resumed_count_ = 0;
  // The prior run crashed mid-append (file ends without '\n'): the first
  // MarkDone seals the partial line so the new record starts clean.
  bool seal_partial_line_ = false;
};

}  // namespace topogen::store
