// Persistent content-addressed artifact store (docs/CACHING.md).
//
// Layout under the root (TOPOGEN_CACHE_DIR):
//
//   <root>/<kind>/<hex[0:2]>/<hex>.art
//
// where <kind> names the artifact family ("topology", "metrics",
// "linkvalue") and <hex> is the 128-bit content key. Every file carries
// a fixed header -- magic, store format version, payload size, payload
// checksum -- and Load() re-verifies all four, so a truncated, corrupted,
// or stale-format entry reads as a *miss* (the caller recomputes and
// overwrites), never as trusted data. Writes go through a temp file +
// rename, so a crash mid-write leaves either the old entry or a stray
// .tmp, not a torn artifact.
//
// The store is a cache, not a database: single-writer per process (the
// Session serializes access), safe to delete wholesale at any time.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace topogen::store {

struct Key;

// Bump when the artifact header or any payload encoding changes shape;
// old entries then read as misses and are rewritten.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

class ArtifactStore {
 public:
  // Creates the root directory (and parents) if needed; throws
  // std::runtime_error when the path exists but is not a directory.
  explicit ArtifactStore(std::string root);

  const std::string& root() const { return root_; }

  // True plus the payload bytes when a valid entry exists. Invalid
  // entries (bad magic/version/size/checksum) bump store.corrupt and
  // return false.
  bool Load(std::string_view kind, const Key& key, std::string& payload);

  // Writes (or atomically replaces) the entry. Returns false on I/O
  // failure -- callers treat that as "cache unavailable", not an error.
  bool Store(std::string_view kind, const Key& key, std::string_view payload);

  bool Contains(std::string_view kind, const Key& key) const;

  std::string PathFor(std::string_view kind, const Key& key) const;

  // Eviction: deletes least-recently-modified artifacts until the total
  // size of *.art files under root is <= max_bytes. Returns the number
  // of files deleted. Safe to run on a live cache (a concurrently read
  // entry simply becomes a miss next run). Never throws: the cache is
  // shared, so another process deleting files -- or the whole root --
  // mid-prune is an expected race, counted under store.prune_races.
  std::size_t Prune(std::uint64_t max_bytes);

 private:
  std::size_t PruneImpl(std::uint64_t max_bytes);

  std::string root_;
};

}  // namespace topogen::store
