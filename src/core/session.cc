#include "core/session.h"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/memory_budget.h"
#include "fault/fault.h"
#include "graph/components.h"
#include "graph/io.h"
#include "graph/rng.h"
#include "obs/obs.h"
#include "store/artifact.h"
#include "store/journal.h"
#include "store/serialize.h"

namespace topogen::core {

namespace {

// Bump whenever a generator, metric kernel, or classifier changes the
// bytes it produces for unchanged options: every existing cache entry
// then misses and is transparently recomputed (docs/CACHING.md).
// 2: bounded TS connect retries + degree-sequence realization wrappers.
constexpr std::uint64_t kCodeEpoch = 2;

// Generation attempts per roster slot before the slot degrades; retries
// reseed with a derived stream, so attempt 0 is byte-identical to the
// unhardened path (docs/ROBUSTNESS.md).
constexpr int kMaxGenAttempts = 3;

std::atomic<std::uint64_t>& TotalDegradedCounter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

constexpr std::string_view kKnownIds[] = {
    "Tree",  "Mesh", "Random", "TS",   "Tiers", "Waxman", "PLRG",
    "B-A",   "Brite", "BT",    "Inet", "AS",    "RL",     "RL.core",
};

std::string JobId(std::string_view kind, const store::Key& key) {
  std::string id(kind);
  id += '/';
  id += key.Hex();
  return id;
}

// A cache entry that passed the store checksum but failed payload decode
// (schema drift between code epochs) was just demoted to a miss; make the
// transition visible in counters and the event log.
void NoteDemoted(std::string_view kind, const store::Key& key) {
  TOPOGEN_COUNT("session.cache_demoted");
  if (obs::EventsEnabled()) {
    obs::Event("cache")
        .Str("kind", kind)
        .Str("op", "demoted")
        .Str("key", key.Hex());
  }
}

RlArtifacts Wrap(Topology t) {
  RlArtifacts a;
  a.topology = std::move(t);
  return a;
}

// Fresh build of a roster topology by id; "RL.core" is handled by the
// caller (it derives from RL rather than a generator).
RlArtifacts MakeById(std::string_view id, const RosterOptions& ro) {
  if (id == "Tree") return Wrap(MakeTree(ro));
  if (id == "Mesh") return Wrap(MakeMesh(ro));
  if (id == "Random") return Wrap(MakeRandom(ro));
  if (id == "TS") return Wrap(MakeTransitStub(ro));
  if (id == "Tiers") return Wrap(MakeTiers(ro));
  if (id == "Waxman") return Wrap(MakeWaxman(ro));
  if (id == "PLRG") return Wrap(MakePlrg(ro));
  if (id == "B-A") return Wrap(MakeBa(ro));
  if (id == "Brite") return Wrap(MakeBrite(ro));
  if (id == "BT") return Wrap(MakeBt(ro));
  if (id == "Inet") return Wrap(MakeInet(ro));
  if (id == "AS") return Wrap(MakeAs(ro));
  if (id == "RL") return MakeRl(ro);
  throw std::invalid_argument("Session: unknown topology id '" +
                              std::string(id) + "'");
}

// MakeById plus post-generation validation and a bounded retry loop.
// Attempt 0 runs with the caller's options untouched; each retry reseeds
// with graph::DeriveStream(seed, attempt), so a slot that needed retries
// still generates deterministically while the zero-failure path stays
// byte-identical to a bare MakeById call. Only typed core::Exception
// failures are retried; programming errors propagate immediately.
RlArtifacts MakeByIdChecked(std::string_view id, const RosterOptions& ro) {
  Error last;
  for (int attempt = 0; attempt < kMaxGenAttempts; ++attempt) {
    RosterOptions attempt_ro = ro;
    if (attempt > 0) {
      attempt_ro.seed =
          graph::DeriveStream(ro.seed, static_cast<std::uint64_t>(attempt));
      TOPOGEN_COUNT("gen.retries");
    }
    try {
      // Armed, this point fails every attempt -- the forced path into
      // retry exhaustion.
      TOPOGEN_FAULT_POINT_D("gen.retry.exhausted", id);
      RlArtifacts made = MakeById(id, attempt_ro);
      TOPOGEN_FAULT_POINT_D("gen.validate", id);
      const graph::Graph& g = made.topology.graph;
      if (g.num_nodes() == 0 || g.num_edges() == 0) {
        throw Exception(ErrorCode::kValidationFailed,
                        "generated topology '" + std::string(id) +
                            "' is empty (" + std::to_string(g.num_nodes()) +
                            " nodes, " + std::to_string(g.num_edges()) +
                            " edges)");
      }
      if (attempt > 0) obs::Manifest::AddRetry(id, attempt);
      return made;
    } catch (const Exception& e) {
      last = e.error();
      last.attempts = attempt + 1;
    }
  }
  throw Exception(ErrorCode::kRetryExhausted,
                  "generation of '" + std::string(id) + "' failed " +
                      std::to_string(kMaxGenAttempts) +
                      " attempts (last: " + last.message + ")",
                  last.fail_point, kMaxGenAttempts);
}

// The paper's footnote-29 core: degree>=2 subgraph of RL with the policy
// relationships remapped onto the surviving edges.
RlArtifacts DeriveRlCore(const RlArtifacts& rl) {
  graph::Subgraph core = graph::CoreGraph(rl.topology.graph);
  std::vector<policy::Relationship> rel;
  rel.reserve(core.graph.num_edges());
  for (const graph::Edge& e : core.graph.edges()) {
    const graph::NodeId ou = core.original_id[e.u];
    const graph::NodeId ov = core.original_id[e.v];
    rel.push_back(
        rl.topology.relationship[rl.topology.graph.edge_id(ou, ov)]);
  }
  RlArtifacts out;
  out.topology = {"RL.core", Category::kMeasured, std::move(core.graph),
                  std::move(rel), "RL degree>=2 core (footnote 29)"};
  return out;
}

// --- artifact payload encodings (store format version kStoreFormatVersion;
// all fixed-width binary so cached bytes equal fresh bytes exactly) ---

void EncodeTopology(std::string& out, const RlArtifacts& t) {
  store::ByteWriter w(out);
  w.Str(t.topology.name);
  w.U8(static_cast<std::uint8_t>(t.topology.category));
  w.Str(t.topology.comment);
  w.Vec(t.topology.relationship);
  w.Vec(t.as_of);
  graph::AppendCsr(out, t.topology.graph);
}

bool DecodeTopology(std::string_view blob, RlArtifacts& t) {
  store::ByteReader r(blob);
  t.topology.name = r.Str();
  t.topology.category = static_cast<Category>(r.U8());
  t.topology.comment = r.Str();
  t.topology.relationship = r.Vec<policy::Relationship>();
  t.as_of = r.Vec<std::uint32_t>();
  if (!r.ok()) return false;
  std::size_t off = r.offset();
  try {
    t.topology.graph = graph::ParseCsr(blob, off);
  } catch (const std::exception&) {
    return false;
  }
  return off == blob.size();
}

void EncodeSeries(store::ByteWriter& w, const metrics::Series& s) {
  w.Str(s.name);
  w.Vec(s.x);
  w.Vec(s.y);
}

metrics::Series DecodeSeries(store::ByteReader& r) {
  metrics::Series s;
  s.name = r.Str();
  s.x = r.Vec<double>();
  s.y = r.Vec<double>();
  return s;
}

void EncodeMetrics(std::string& out, const BasicMetrics& m) {
  store::ByteWriter w(out);
  EncodeSeries(w, m.expansion);
  EncodeSeries(w, m.resilience);
  EncodeSeries(w, m.distortion);
  w.U8(static_cast<std::uint8_t>(m.signature.expansion));
  w.U8(static_cast<std::uint8_t>(m.signature.resilience));
  w.U8(static_cast<std::uint8_t>(m.signature.distortion));
}

bool DecodeMetrics(std::string_view blob, BasicMetrics& m) {
  store::ByteReader r(blob);
  m.expansion = DecodeSeries(r);
  m.resilience = DecodeSeries(r);
  m.distortion = DecodeSeries(r);
  m.signature.expansion = static_cast<metrics::Level>(r.U8());
  m.signature.resilience = static_cast<metrics::Level>(r.U8());
  m.signature.distortion = static_cast<metrics::Level>(r.U8());
  return r.AtEnd();
}

void EncodeLinkValues(std::string& out, const hierarchy::LinkValueResult& lv) {
  store::ByteWriter w(out);
  w.Vec(lv.value);
  w.U32(lv.num_nodes);
}

bool DecodeLinkValues(std::string_view blob, hierarchy::LinkValueResult& lv) {
  store::ByteReader r(blob);
  lv.value = r.Vec<double>();
  lv.num_nodes = r.U32();
  return r.AtEnd();
}

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    try {
      store_ = std::make_unique<store::ArtifactStore>(options_.cache_dir);
      obs::Manifest::SetCache(store_->root());
    } catch (const std::exception& e) {
      // A broken cache path degrades to in-memory-only, never to failure.
      std::fprintf(stderr, "# session: cache disabled: %s\n", e.what());
    }
  }
  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<store::Journal>(options_.journal_path);
  }
  RecordRunConfiguration(options_.roster);
}

Session::~Session() {
  if (store_ != nullptr && options_.cache_max_mb > 0) {
    store_->Prune(static_cast<std::uint64_t>(options_.cache_max_mb) << 20);
  }
  MemoryBudget::Get().Release(MemCategory::kTopology,
                              charged_topology_bytes_);
}

void Session::ChargeResidency(const RlArtifacts& artifacts) {
  const std::uint64_t bytes = artifacts.topology.graph.MemoryBytes();
  MemoryBudget::Get().Charge(MemCategory::kTopology, bytes);
  charged_topology_bytes_ += bytes;
}

std::span<const std::string_view> Session::KnownIds() { return kKnownIds; }

store::Key Session::TopologyKey(std::string_view id) const {
  const RosterOptions& ro = options_.roster;
  store::KeyHasher h;
  h.Mix("topology")
      .Mix(std::uint64_t{store::kStoreFormatVersion})
      .Mix(kCodeEpoch)
      .Mix(id)
      .Mix(ro.seed)
      .Mix(std::uint64_t{ro.as_nodes})
      .Mix(ro.rl_expansion_ratio)
      .Mix(std::uint64_t{ro.plrg_nodes})
      .Mix(std::uint64_t{ro.degree_based_nodes});
  return h.Finish();
}

store::Key Session::MetricsKey(std::string_view id, bool use_policy) const {
  const store::Key tk = TopologyKey(id);
  const SuiteOptions& so = options_.suite;
  store::KeyHasher h;
  h.Mix("metrics")
      .Mix(std::uint64_t{store::kStoreFormatVersion})
      .Mix(kCodeEpoch)
      .Mix(tk.hi)
      .Mix(tk.lo)
      .Mix(use_policy)
      .Mix(std::uint64_t{so.ball.max_centers})
      .Mix(std::uint64_t{so.ball.max_radius})
      .Mix(std::uint64_t{so.ball.max_ball_nodes})
      .Mix(std::uint64_t{so.ball.big_ball_threshold})
      .Mix(std::uint64_t{so.ball.big_ball_centers})
      .Mix(so.ball.seed)
      .Mix(std::uint64_t{so.expansion.max_sources})
      .Mix(so.expansion.seed)
      // Estimator-backed runs (metrics/sample.h) produce different
      // series than exhaustive ones, so the spec is part of the key; an
      // inactive spec mixes the same three constants every session.
      .Mix(std::uint64_t{so.sample.centers})
      .Mix(so.sample.seed)
      .Mix(std::uint64_t{so.sample.expansion_budget})
      .Mix(so.classifier.expansion_cap)
      .Mix(so.classifier.expansion_tail_ratio)
      .Mix(so.classifier.resilience_magnitude)
      .Mix(so.classifier.resilience_floor)
      .Mix(so.classifier.distortion_fraction);
  return h.Finish();
}

store::Key Session::LinkValueKey(std::string_view id, bool use_policy) const {
  const store::Key tk = TopologyKey(id);
  store::KeyHasher h;
  h.Mix("linkvalue")
      .Mix(std::uint64_t{store::kStoreFormatVersion})
      .Mix(kCodeEpoch)
      .Mix(tk.hi)
      .Mix(tk.lo)
      .Mix(use_policy)
      .Mix(std::uint64_t{options_.link_value.max_sources})
      .Mix(options_.link_value.seed);
  return h.Finish();
}

bool Session::LoadArtifact(std::string_view kind, const store::Key& key,
                           std::string& payload,
                           std::uint64_t CacheStats::*hits,
                           std::uint64_t CacheStats::*misses) {
  bool hit = false;
  if (store_ != nullptr) {
    TOPOGEN_HIST_SCOPE("session.cache_lookup_ns");
    hit = store_->Load(kind, key, payload);
  }
  stats_.*(hit ? hits : misses) += 1;
  if (store_ != nullptr) {
    obs::Manifest::AddCacheEvent(kind, hit);
    if (hit) {
      TOPOGEN_COUNT("session.cache_hit");
    } else {
      TOPOGEN_COUNT("session.cache_miss");
    }
    if (obs::EventsEnabled()) {
      obs::Event("cache")
          .Str("kind", kind)
          .Str("op", hit ? "hit" : "miss")
          .Str("key", key.Hex());
    }
  }
  if (hit && journal_ != nullptr && journal_->IsDone(JobId(kind, key))) {
    // This exact job was journaled complete by a previous (interrupted)
    // run: the resume path, not merely a warm cache.
    stats_.journal_skips += 1;
    TOPOGEN_COUNT("session.journal_skips");
  }
  return hit;
}

void Session::StoreArtifact(std::string_view kind, const store::Key& key,
                            std::string_view payload) {
  if (store_ != nullptr) store_->Store(kind, key, payload);
  if (journal_ != nullptr) journal_->MarkDone(JobId(kind, key), key.Hex());
}

RlArtifacts& Session::Materialize(std::string_view id) {
  if (auto it = topologies_.find(id); it != topologies_.end()) {
    return *it->second;
  }
  bool known = false;
  for (const std::string_view k : kKnownIds) known = known || k == id;
  if (!known) {
    throw std::invalid_argument("Session: unknown topology id '" +
                                std::string(id) + "'");
  }
  const store::Key key = TopologyKey(id);
  std::string payload;
  if (LoadArtifact("topology", key, payload, &CacheStats::topology_hits,
                   &CacheStats::topology_misses)) {
    auto loaded = std::make_unique<RlArtifacts>();
    if (DecodeTopology(payload, *loaded)) {
      obs::Manifest::AddTopology(loaded->topology.name,
                                 loaded->topology.graph.num_nodes(),
                                 loaded->topology.graph.num_edges(),
                                 loaded->topology.comment);
      RlArtifacts& kept =
          *topologies_.emplace(std::string(id), std::move(loaded))
               .first->second;
      ChargeResidency(kept);
      return kept;
    }
    // Valid header but undecodable payload (schema drift): demote to miss.
    stats_.topology_hits -= 1;
    stats_.topology_misses += 1;
    NoteDemoted("topology", key);
  }
  auto fresh = std::make_unique<RlArtifacts>(
      id == "RL.core" ? DeriveRlCore(Materialize("RL"))
                      : MakeByIdChecked(id, options_.roster));
  std::string encoded;
  EncodeTopology(encoded, *fresh);
  StoreArtifact("topology", key, encoded);
  RlArtifacts& kept =
      *topologies_.emplace(std::string(id), std::move(fresh)).first->second;
  ChargeResidency(kept);
  return kept;
}

const core::Topology& Session::Topology(std::string_view id) {
  return Materialize(id).topology;
}

const RlArtifacts& Session::Rl() { return Materialize("RL"); }

std::uint64_t Session::TotalDegraded() {
  return TotalDegradedCounter().load(std::memory_order_relaxed);
}

void Session::RecordDegraded(std::string_view kind, std::string_view id,
                             const Error& error) {
  degraded_.push_back({std::string(kind), std::string(id), error});
  TotalDegradedCounter().fetch_add(1, std::memory_order_relaxed);
  TOPOGEN_COUNT("session.degraded");
  obs::Manifest::AddDegraded(kind, id, error.fail_point,
                             ErrorCodeName(error.code), error.message,
                             error.attempts);
  obs::Event("degraded")
      .Str("kind", kind)
      .Str("id", id)
      .Str("code", ErrorCodeName(error.code))
      .Str("fail_point", error.fail_point)
      .I64("attempts", error.attempts);
  std::fprintf(stderr, "# session: degraded %.*s slot '%.*s': %s\n",
               static_cast<int>(kind.size()), kind.data(),
               static_cast<int>(id.size()), id.data(),
               error.message.c_str());
}

const BasicMetrics& Session::Metrics(std::string_view id, bool use_policy) {
  const BasicMetrics* m = TryMetrics(id, use_policy);
  if (m != nullptr) return *m;
  // Surface the degradation that was just recorded as a typed error.
  for (auto it = degraded_.rbegin(); it != degraded_.rend(); ++it) {
    if (it->id == id) throw Exception(it->error);
  }
  throw Exception(ErrorCode::kUnknown,
                  "metrics for '" + std::string(id) + "' unavailable");
}

const BasicMetrics* Session::TryMetrics(std::string_view id,
                                        bool use_policy) {
  const MetricsRequest request{std::string(id), use_policy};
  return MetricsBatch({&request, 1}).front();
}

std::vector<const BasicMetrics*> Session::MetricsBatch(
    std::span<const MetricsRequest> requests) {
  std::vector<const BasicMetrics*> out(requests.size(), nullptr);
  // memo hex -> request indexes still waiting on a computed result
  // (duplicate requests collapse onto one job).
  std::map<std::string, std::vector<std::size_t>> pending;
  std::vector<store::Key> keys(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    keys[i] = MetricsKey(requests[i].id, requests[i].use_policy);
    const std::string memo = keys[i].Hex();
    if (auto it = metrics_.find(memo); it != metrics_.end()) {
      out[i] = it->second.get();
      continue;
    }
    if (auto it = pending.find(memo); it != pending.end()) {
      it->second.push_back(i);
      continue;
    }
    std::string payload;
    if (LoadArtifact("metrics", keys[i], payload, &CacheStats::metrics_hits,
                     &CacheStats::metrics_misses)) {
      auto loaded = std::make_unique<BasicMetrics>();
      if (DecodeMetrics(payload, *loaded)) {
        out[i] =
            metrics_.emplace(memo, std::move(loaded)).first->second.get();
        continue;
      }
      stats_.metrics_hits -= 1;
      stats_.metrics_misses += 1;
      NoteDemoted("metrics", keys[i]);
    }
    pending[memo].push_back(i);
  }
  if (pending.empty()) return out;

  // Misses fan out through the deterministic parallel engine exactly as
  // the legacy RunBasicMetricsBatch path did, so batch results remain
  // bit-identical to the sequential loop at every TOPOGEN_THREADS. A
  // topology whose *generation* degrades is dropped from the fan-out
  // here; a job whose *metrics* degrade comes back as an error slot.
  // Either way the rest of the batch completes (docs/ROBUSTNESS.md).
  std::vector<const std::vector<std::size_t>*> job_requests;
  std::vector<SuiteJob> jobs;
  job_requests.reserve(pending.size());
  jobs.reserve(pending.size());
  std::vector<std::string> job_memos;
  std::vector<std::string> job_ids;
  job_memos.reserve(pending.size());
  job_ids.reserve(pending.size());
  for (const auto& [memo, indexes] : pending) {
    const MetricsRequest& req = requests[indexes.front()];
    SuiteOptions so = options_.suite;
    so.use_policy = req.use_policy;
    try {
      jobs.push_back({&Materialize(req.id).topology, so});
    } catch (const Exception& e) {
      RecordDegraded("topology", req.id, e.error());
      continue;  // the slots stay nullptr
    }
    job_requests.push_back(&indexes);
    job_memos.push_back(memo);
    job_ids.push_back(req.id);
  }
  std::vector<Result<BasicMetrics>> computed;
  try {
    computed = RunBasicMetricsBatchIsolated(jobs);
  } catch (const Exception& e) {
    // The pool's dispatch boundary itself failed (parallel.task): every
    // job in this batch degrades, the Session survives.
    for (const std::string& id : job_ids) {
      RecordDegraded("metrics", id, e.error());
    }
    return out;
  }
  for (std::size_t j = 0; j < computed.size(); ++j) {
    if (!computed[j].ok()) {
      RecordDegraded("metrics", job_ids[j], computed[j].error());
      continue;
    }
    const std::size_t first = job_requests[j]->front();
    std::string encoded;
    EncodeMetrics(encoded, computed[j].value());
    StoreArtifact("metrics", keys[first], encoded);
    auto owned =
        std::make_unique<BasicMetrics>(std::move(computed[j].value()));
    const BasicMetrics* stored =
        metrics_.emplace(job_memos[j], std::move(owned)).first->second.get();
    for (const std::size_t i : *job_requests[j]) out[i] = stored;
  }
  return out;
}

std::string Session::MetricsArtifactPath(std::string_view id,
                                         bool use_policy) const {
  if (store_ == nullptr) return {};
  return store_->PathFor("metrics", MetricsKey(id, use_policy));
}

std::string Session::LinkValueArtifactPath(std::string_view id,
                                           bool use_policy) const {
  if (store_ == nullptr) return {};
  return store_->PathFor("linkvalue", LinkValueKey(id, use_policy));
}

const hierarchy::LinkValueResult& Session::LinkValues(std::string_view id,
                                                      bool use_policy) {
  const hierarchy::LinkValueResult* lv = TryLinkValues(id, use_policy);
  if (lv != nullptr) return *lv;
  for (auto it = degraded_.rbegin(); it != degraded_.rend(); ++it) {
    if (it->id == id) throw Exception(it->error);
  }
  throw Exception(ErrorCode::kUnknown,
                  "link values for '" + std::string(id) + "' unavailable");
}

const hierarchy::LinkValueResult* Session::TryLinkValues(std::string_view id,
                                                         bool use_policy) {
  const store::Key key = LinkValueKey(id, use_policy);
  const std::string memo = key.Hex();
  if (auto it = linkvalues_.find(memo); it != linkvalues_.end()) {
    return it->second.get();
  }
  std::string payload;
  if (LoadArtifact("linkvalue", key, payload, &CacheStats::linkvalue_hits,
                   &CacheStats::linkvalue_misses)) {
    auto loaded = std::make_unique<hierarchy::LinkValueResult>();
    if (DecodeLinkValues(payload, *loaded)) {
      return linkvalues_.emplace(memo, std::move(loaded))
          .first->second.get();
    }
    stats_.linkvalue_hits -= 1;
    stats_.linkvalue_misses += 1;
    NoteDemoted("linkvalue", key);
  }
  try {
    const core::Topology& t = Materialize(id).topology;
    if (use_policy && !t.has_policy()) {
      // Caller bug, not a degradable pipeline failure: propagate.
      throw std::invalid_argument("Session: topology '" + std::string(id) +
                                  "' has no policy annotation");
    }
    auto computed = std::make_unique<hierarchy::LinkValueResult>(
        use_policy ? hierarchy::ComputePolicyLinkValues(
                         t.graph, t.relationship, options_.link_value)
                   : hierarchy::ComputeLinkValues(t.graph,
                                                  options_.link_value));
    std::string encoded;
    EncodeLinkValues(encoded, *computed);
    StoreArtifact("linkvalue", key, encoded);
    return linkvalues_.emplace(memo, std::move(computed))
        .first->second.get();
  } catch (const Exception& e) {
    RecordDegraded("linkvalue", id, e.error());
    return nullptr;
  }
}

}  // namespace topogen::core
