// Process-wide memory budget (docs/ROBUSTNESS.md, "Memory budgets").
//
// TOPOGEN_MEM_BUDGET_MB caps the bytes the pipeline's long-lived
// structures may keep resident: materialized CSR topologies, the BFS
// scratch pools, and Session residency in topogend's per-lane pools.
// Charging is advisory -- nothing allocates through this class -- but
// every seam that grows one of those structures reports the growth here,
// so UnderPressure() answers "would one more resident topology push the
// process past its ceiling?" without walking /proc.
//
// On pressure the service layer sheds residency (LRU Session eviction)
// and degrades new work to sampled estimators (metrics/sample.h) instead
// of letting the kernel OOM-kill the daemon; batch binaries keep running
// (the budget never fails a charge) but the pressure events make the
// overrun observable.
//
// The budget sits *below* src/graph in the library stack (topogen_mem)
// precisely so BFS scratch growth can charge it; the header keeps the
// core/ path because core::Session is its primary client.
//
// Thread-safety: all methods are safe from any thread; charges are
// relaxed atomics, the pressure edge is resolved under a CAS.
#pragma once

#include <atomic>
#include <cstdint>

namespace topogen::core {

// Who is holding the bytes. Categories are reported separately in the
// stats gauges so a pressure event names its heaviest contributor.
enum class MemCategory {
  kTopology = 0,  // CSR arrays of materialized topologies (Session-owned)
  kScratch = 1,   // BFS scratch pools (mark/order/sigma/bitmap growth)
  kOther = 2,     // anything else a seam wants accounted
};
inline constexpr int kMemCategoryCount = 3;

const char* MemCategoryName(MemCategory c);

class MemoryBudget {
 public:
  // Budget resolved from TOPOGEN_MEM_BUDGET_MB on first use; 0 = no
  // ceiling (every pressure query answers false).
  static MemoryBudget& Get();

  std::uint64_t budget_bytes() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  // Replaces the budget (bytes; 0 = unlimited) without touching charges.
  // Test-only: real processes configure via the environment.
  void SetBudgetForTesting(std::uint64_t bytes);

  void Charge(MemCategory category, std::uint64_t bytes);
  void Release(MemCategory category, std::uint64_t bytes);

  std::uint64_t charged_bytes() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t charged_bytes(MemCategory category) const {
    return by_category_[static_cast<int>(category)].load(
        std::memory_order_relaxed);
  }

  // True while a ceiling is configured and the charged total has reached
  // it. Edge transitions into and out of pressure emit mem_pressure
  // events (TOPOGEN_EVENTS) and bump mem_budget.pressure_edges.
  bool UnderPressure() const {
    const std::uint64_t budget = budget_bytes();
    return budget != 0 && charged_bytes() >= budget;
  }

  // Charges released since process start / the charged high-water mark,
  // for tests and the stats dump.
  std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  // Zeroes every charge and the peak (budget stays). Test-only.
  void ResetChargesForTesting();

 private:
  MemoryBudget();

  // Emits the edge event when `was` and `now` straddle the budget.
  void NoteEdge(std::uint64_t was, std::uint64_t now);

  std::atomic<std::uint64_t> budget_bytes_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> by_category_[kMemCategoryCount]{};
  std::atomic<bool> in_pressure_{false};
};

}  // namespace topogen::core
