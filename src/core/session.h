// Session: the suite's entry point for topologies and metric results,
// backed by a persistent content-addressed artifact cache (docs/CACHING.md).
//
// A Session replaces the ad-hoc "build the roster, run the batch, export"
// pattern every bench used to open with. Artifacts are *lazy*: nothing is
// generated until asked for, results are deduplicated in memory for the
// life of the Session, and -- when a cache directory is configured -- they
// persist across processes keyed by a structural hash of everything that
// determines their bytes (generator id, RosterOptions, seed, suite
// options, and a code epoch bumped when kernel semantics change). Because
// the metric kernels are bit-identical at every TOPOGEN_THREADS value
// (docs/PARALLELISM.md), a cached result is byte-for-byte the result a
// fresh run would compute, so warm reruns of a figure bench skip topology
// generation and every BFS while emitting identical output files.
//
// A Session with a journal (TOPOGEN_OUTDIR/journal.log by default in the
// bench harness) additionally records each completed job, so a crashed or
// interrupted suite resumes where it left off: jobs whose journal line and
// artifact both survive are served from the store without recomputation.
//
// Thread-safety: a Session is used from one thread (the bench main);
// parallelism lives *inside* the metric kernels it invokes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.h"
#include "core/roster.h"
#include "core/suite.h"
#include "hierarchy/link_value.h"
#include "store/hash.h"

namespace topogen::store {
class ArtifactStore;
class Journal;
}  // namespace topogen::store

namespace topogen::core {

struct SessionOptions {
  RosterOptions roster;
  SuiteOptions suite;  // use_policy is ignored; pass it per Metrics() call
  hierarchy::LinkValueOptions link_value;
  // Root of the persistent artifact cache; empty = in-memory only (every
  // process recomputes, but repeated requests within one Session still
  // dedupe).
  std::string cache_dir;
  // Completed-job journal for crash/interrupt resume; empty = no journal.
  std::string journal_path;
  // When > 0, prune the cache to this budget (MiB) at Session destruction.
  int cache_max_mb = 0;
};

// Per-session cache effectiveness, independent of the global obs counters
// (which are off unless TOPOGEN_TRACE/STATS/OUTDIR is set).
struct CacheStats {
  std::uint64_t topology_hits = 0;
  std::uint64_t topology_misses = 0;
  std::uint64_t metrics_hits = 0;
  std::uint64_t metrics_misses = 0;
  std::uint64_t linkvalue_hits = 0;
  std::uint64_t linkvalue_misses = 0;
  // Jobs served from the store because a previous run's journal marked
  // them done -- the resume path.
  std::uint64_t journal_skips = 0;
};

// One roster slot the Session isolated instead of aborting the run
// (docs/ROBUSTNESS.md): the artifact kind that failed, the topology id,
// and the typed error (with fail-point provenance and retry count) that
// exhausted its budget. Mirrored into the manifest's degraded[] array.
struct DegradedSlot {
  std::string kind;  // "topology" | "metrics" | "linkvalue"
  std::string id;
  Error error;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionOptions& options() const { return options_; }
  const CacheStats& cache_stats() const { return stats_; }
  bool cache_enabled() const { return store_ != nullptr; }

  // Roster slots this Session isolated after their retry budget ran out.
  // Non-empty means the run's figures are partial (docs/ROBUSTNESS.md);
  // the bench harness maps that to the partial-success exit code.
  const std::vector<DegradedSlot>& degraded() const { return degraded_; }

  // Process-wide degraded-slot count across all Sessions, so the bench
  // harness can pick its exit code without holding a Session reference.
  static std::uint64_t TotalDegraded();

  // The roster ids a Session serves, matching the display names of
  // core/roster.h's factories: "Tree", "Mesh", "Random", "TS", "Tiers",
  // "Waxman", "PLRG", "B-A", "Brite", "BT", "Inet", "AS", "RL", plus the
  // derived "RL.core" (the paper's footnote-29 degree>=2 core with
  // relationships remapped). Unknown ids throw std::invalid_argument.
  static std::span<const std::string_view> KnownIds();

  // The topology for `id`, generating (or loading) it on first use. The
  // reference is stable for the life of the Session.
  const core::Topology& Topology(std::string_view id);

  // The RL topology plus its AS-overlay artifacts (as_of). Cached like
  // any topology; the overlay rides in the same artifact.
  const RlArtifacts& Rl();

  // Basic-metrics suite (expansion, resilience, distortion, LH signature)
  // for one topology. On a cache hit this does not even materialize the
  // topology -- keys derive from options, not from graph bytes. Throws
  // core::Exception when the slot degrades past its retry budget;
  // TryMetrics is the non-throwing variant (nullptr = degraded slot,
  // recorded under degraded()).
  const BasicMetrics& Metrics(std::string_view id, bool use_policy = false);
  const BasicMetrics* TryMetrics(std::string_view id, bool use_policy = false);

  // Batched variant: misses are computed via the deterministic parallel
  // fan-out (RunBasicMetricsBatchIsolated), hits come from the cache;
  // pointers are stable and land in request order. A slot whose pipeline
  // failed past its retry budget comes back nullptr with a DegradedSlot
  // recorded -- the batch itself always returns.
  struct MetricsRequest {
    std::string id;
    bool use_policy = false;
  };
  std::vector<const BasicMetrics*> MetricsBatch(
      std::span<const MetricsRequest> requests);

  // Link-value analysis (Section 5) for one topology, plain or
  // policy-routed. Like Metrics(), a warm hit touches no BFS; TryLinkValues
  // is the non-throwing variant (nullptr = degraded slot).
  const hierarchy::LinkValueResult& LinkValues(std::string_view id,
                                               bool use_policy = false);
  const hierarchy::LinkValueResult* TryLinkValues(std::string_view id,
                                                  bool use_policy = false);

  // Absolute path the artifact for (id, use_policy) lives at under the
  // persistent cache, or "" when caching is off. Purely a key-to-path
  // mapping: the file exists only once the artifact has been computed and
  // stored (topogend returns these when a client asks for figures by
  // reference instead of inline; docs/SERVICE.md).
  std::string MetricsArtifactPath(std::string_view id,
                                  bool use_policy = false) const;
  std::string LinkValueArtifactPath(std::string_view id,
                                    bool use_policy = false) const;

 private:
  // Generate-or-load; the backbone of Topology()/Rl().
  RlArtifacts& Materialize(std::string_view id);

  store::Key TopologyKey(std::string_view id) const;
  store::Key MetricsKey(std::string_view id, bool use_policy) const;
  store::Key LinkValueKey(std::string_view id, bool use_policy) const;

  // Load-if-valid helper shared by all three artifact kinds; returns the
  // payload on a hit and maintains stats/counters/journal bookkeeping.
  bool LoadArtifact(std::string_view kind, const store::Key& key,
                    std::string& payload, std::uint64_t CacheStats::*hits,
                    std::uint64_t CacheStats::*misses);
  void StoreArtifact(std::string_view kind, const store::Key& key,
                     std::string_view payload);

  // Degraded-slot bookkeeping: local record, manifest entry, stderr note,
  // process-wide tally.
  void RecordDegraded(std::string_view kind, std::string_view id,
                      const Error& error);

  // Reports a freshly resident topology's CSR bytes to the process
  // memory budget; the total is released when the Session dies, so
  // evicting a Session (SessionPool LRU) frees budget headroom.
  void ChargeResidency(const RlArtifacts& artifacts);

  SessionOptions options_;
  CacheStats stats_;
  std::uint64_t charged_topology_bytes_ = 0;
  std::vector<DegradedSlot> degraded_;
  std::unique_ptr<store::ArtifactStore> store_;
  std::unique_ptr<store::Journal> journal_;

  // Node-based maps: references handed out stay valid as entries are added.
  std::map<std::string, std::unique_ptr<RlArtifacts>, std::less<>>
      topologies_;
  std::map<std::string, std::unique_ptr<BasicMetrics>, std::less<>> metrics_;
  std::map<std::string, std::unique_ptr<hierarchy::LinkValueResult>,
           std::less<>>
      linkvalues_;
};

}  // namespace topogen::core
