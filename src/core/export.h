// File export for figure data: .dat series files plus a gnuplot script
// per figure, so every bench's panels can be turned into actual plots.
// Benches write here when the TOPOGEN_OUTDIR environment variable is set.
#pragma once

#include <string>
#include <vector>

#include "metrics/series.h"

namespace topogen::core {

// One figure's worth of curves: writes
//   <dir>/<figure_id>.dat   (gnuplot index-separated data blocks)
//   <dir>/<figure_id>.gp    (a plot script referencing the .dat)
// Creates <dir> if needed; throws std::runtime_error on I/O failure.
void ExportFigure(const std::string& dir, const std::string& figure_id,
                  const std::string& title,
                  const std::vector<metrics::Series>& curves,
                  bool log_x = false, bool log_y = false);

// Plain CSV: header "curve,x,y", one row per point.
void ExportCsv(const std::string& path,
               const std::vector<metrics::Series>& curves);

}  // namespace topogen::core
