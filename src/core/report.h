// Figure/table output: the bench harness prints every panel as labeled
// (x, y) rows -- the exact data behind the paper's plots -- plus
// human-readable qualitative summaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "metrics/series.h"

namespace topogen::core {

// Prints one figure panel:
//   # panel <figure-id> <title>
//   # curve <name>
//   x y
//   ...
// Blank line between curves, two between panels (gnuplot "index" format).
void PrintPanel(std::ostream& os, const std::string& figure_id,
                const std::string& title,
                const std::vector<metrics::Series>& curves);

// Fixed-width table row helper for Figure-1-style rosters.
void PrintTableHeader(std::ostream& os,
                      const std::vector<std::string>& columns);
void PrintTableRow(std::ostream& os, const std::vector<std::string>& cells);

// Formats a double with trailing-zero trimming ("2.53", "0.0008").
std::string Num(double v, int precision = 4);

}  // namespace topogen::core
