// The TOPOGEN_SCALE tiers, resolved to concrete options in one place.
//
// The figure harness and topogend must agree exactly on what "small",
// "default" and "full" mean: the structural cache keys hash these values
// (docs/CACHING.md), so a daemon answering a request at the same tier as
// a batch bench run must produce the identical key -- and therefore the
// identical artifact -- or the two paths would silently diverge. The
// bench harness (bench/bench_common.h) and src/service both call these.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "core/roster.h"
#include "core/session.h"
#include "core/suite.h"

namespace topogen::core {

// Roster sizing for a scale tier ("small" | "full" | "xl" | anything
// else = default). seed = 42 at every tier. "xl" is the million-node
// tier: degree-based generators at 10^6 nodes, suite metrics switched to
// sampled estimators (metrics/sample.h).
RosterOptions ScaledRosterOptions(std::string_view scale);

// Ball-growing/expansion budgets for a scale tier. At "xl" the returned
// options carry an active SampleSpec, so every series is estimator-backed
// with CI half-widths.
SuiteOptions ScaledSuiteOptions(std::string_view scale);

// Source budget for link-value analysis (exact up to this many sources).
std::size_t ScaledLinkValueSources(std::string_view scale);

// The full scale-resolved SessionOptions: roster, suite and link-value
// budgets from the tier, cache/journal locations from the environment
// (TOPOGEN_CACHE_DIR, TOPOGEN_CACHE_MAX_MB, TOPOGEN_OUTDIR).
SessionOptions ScaledSessionOptions(std::string_view scale);

}  // namespace topogen::core
