// The comparison suite: runs the paper's three basic metrics on a topology
// and derives the Section 4.4 Low/High signature. This is the paper's core
// experimental loop, shared by benches, examples, and integration tests.
#pragma once

#include "core/topology.h"
#include "metrics/ball.h"
#include "metrics/classification.h"
#include "metrics/distortion.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"

namespace topogen::core {

struct SuiteOptions {
  metrics::BallGrowingOptions ball;
  metrics::ExpansionOptions expansion;
  metrics::ClassifierOptions classifier;
  // Evaluate the policy-routed variant (requires topology.has_policy()).
  bool use_policy = false;
};

struct BasicMetrics {
  metrics::Series expansion;
  metrics::Series resilience;
  metrics::Series distortion;
  metrics::LhSignature signature;
};

BasicMetrics RunBasicMetrics(const Topology& topology,
                             const SuiteOptions& options = {});

}  // namespace topogen::core
