// The comparison suite: runs the paper's three basic metrics on a topology
// and derives the Section 4.4 Low/High signature. This is the paper's core
// experimental loop, shared by benches, examples, and integration tests.
#pragma once

#include <span>
#include <vector>

#include "core/error.h"
#include "core/topology.h"
#include "metrics/ball.h"
#include "metrics/classification.h"
#include "metrics/distortion.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"

namespace topogen::core {

struct SuiteOptions {
  metrics::BallGrowingOptions ball;
  metrics::ExpansionOptions expansion;
  metrics::ClassifierOptions classifier;
  // Evaluate the policy-routed variant (requires topology.has_policy()).
  bool use_policy = false;
  // When active (metrics/sample.h), the spec is copied into the ball and
  // expansion options before each metric runs, switching the whole suite
  // to estimator-backed series with CI half-widths. An inactive spec (the
  // default) leaves every metric byte-identical to the historical output.
  metrics::SampleSpec sample;
};

struct BasicMetrics {
  metrics::Series expansion;
  metrics::Series resilience;
  metrics::Series distortion;
  metrics::LhSignature signature;
};

BasicMetrics RunBasicMetrics(const Topology& topology,
                             const SuiteOptions& options = {});

// One suite entry: a topology plus the options to measure it with
// (benches measure the same topology twice, plain and policy).
struct SuiteJob {
  const Topology* topology = nullptr;
  SuiteOptions options;
};

// Fans the jobs out across the parallel engine (docs/PARALLELISM.md),
// one task per topology; results land in input order. Every job computes
// exactly what RunBasicMetrics would: per-topology results are written
// to independent slots and the metric kernels below each job run
// serially when nested in the fan-out, so the batch is bit-identical to
// the sequential loop at every TOPOGEN_THREADS value. Exceptions (e.g. a
// policy job on an unannotated topology) propagate to the caller.
std::vector<BasicMetrics> RunBasicMetricsBatch(std::span<const SuiteJob> jobs);

// Per-slot isolated variant (docs/ROBUSTNESS.md): typed pipeline failures
// (core::Exception -- injected faults, corrupt inputs, validation errors)
// are caught *below* the pool's task boundary and returned as that slot's
// Error, so one failing topology degrades its own slot instead of
// poisoning the batch. Programming errors (std::invalid_argument and
// friends) still propagate, as does a failure at the pool boundary itself
// (the parallel.task fail point). The suite.metrics fail point fires once
// per job with the topology name as its detail string.
std::vector<Result<BasicMetrics>> RunBasicMetricsBatchIsolated(
    std::span<const SuiteJob> jobs);

}  // namespace topogen::core
