// An executor-affine handle over a set of resident core::Sessions.
//
// topogend keeps one Session per roster configuration (scale/seed/size
// overrides), LRU-capped. PR 7 open-coded that list inside the server;
// with an executor *pool* (docs/SERVICE.md) each executor lane owns its
// own SessionPool, so Session calls stay single-threaded by construction
// -- session affinity hashes a roster configuration to one lane, and only
// that lane ever acquires its key.
//
// Thread contract: Acquire() is called by exactly one thread (the owning
// executor). AggregateStats()/size() may be called from any thread; the
// internal mutex guards the map shape only, never the Session calls.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "core/session.h"

namespace topogen::core {

class SessionPool {
 public:
  // `capacity` = distinct roster configurations kept resident; the
  // least-recently-used Session beyond it is destroyed on insert.
  // Capacity 0 is clamped to 1 (an empty pool could serve nothing).
  explicit SessionPool(std::size_t capacity);

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  using Factory = std::function<std::unique_ptr<Session>()>;

  // The Session for `key`, created via `factory` on miss. The reference
  // stays valid until a later Acquire evicts it, so the owning executor
  // must finish with one Session before acquiring the next -- the same
  // single-threaded contract core::Session itself carries.
  Session& Acquire(const std::string& key, const Factory& factory);

  // Cache-effectiveness counters summed over every resident Session.
  // Meaningful when the owning executor is quiescent.
  CacheStats AggregateStats() const;

  std::size_t size() const;

  // Destroys least-recently-used Sessions while the process memory
  // budget (core/memory_budget.h) reports pressure, keeping at least the
  // most recent one so the lane can still serve. Returns the number
  // evicted. Same thread contract as Acquire(): only the owning executor
  // may call it, because it destroys Sessions whose references that
  // executor handed out.
  std::size_t EvictUnderPressure();

 private:
  struct Entry {
    std::string key;
    std::unique_ptr<Session> session;
  };

  mutable std::mutex mutex_;  // guards the list shape, not Session calls
  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
};

}  // namespace topogen::core
