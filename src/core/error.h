// core-facing aliases for the pipeline error taxonomy (docs/ROBUSTNESS.md).
//
// The taxonomy itself lives in topogen::fault -- the lowest layer above
// obs -- so src/gen and src/store can raise typed errors without
// depending on core. Code written against the core API uses these
// aliases; they are the same types, so a fault::Exception thrown deep in
// a generator is caught as a core::Exception at the Session seam.
#pragma once

#include "fault/error.h"

namespace topogen::core {

using ErrorCode = fault::ErrorCode;
using Error = fault::Error;
using Exception = fault::Exception;
using InjectedFault = fault::InjectedFault;

template <typename T>
using Result = fault::Result<T>;

using fault::ErrorCodeName;

}  // namespace topogen::core
