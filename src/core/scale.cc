#include "core/scale.h"

#include <filesystem>

#include "obs/obs.h"

namespace topogen::core {

RosterOptions ScaledRosterOptions(std::string_view scale) {
  RosterOptions ro;
  ro.seed = 42;
  if (scale == "small") {
    ro.as_nodes = 1500;
    ro.rl_expansion_ratio = 4.0;
    ro.plrg_nodes = 4000;
    ro.degree_based_nodes = 3000;
  } else if (scale == "xl") {
    // Million-node tier (docs/PERFORMANCE.md, "Scale tiers and sampled
    // estimators"): the degree-based generators run at 10^6 nodes on the
    // parallel paths; the measured map stays at the full-tier size (the
    // paper has no larger map to expand).
    ro.as_nodes = 10941;
    ro.rl_expansion_ratio = 15.6;
    ro.plrg_nodes = 1000000;
    ro.degree_based_nodes = 1000000;
  } else if (scale == "full") {
    ro.as_nodes = 10941;
    ro.rl_expansion_ratio = 15.6;  // -> ~170k routers, the May 2001 map
    ro.plrg_nodes = 10000;
    ro.degree_based_nodes = 10000;
  } else {
    ro.as_nodes = 4000;
    ro.rl_expansion_ratio = 6.0;
    ro.plrg_nodes = 10000;
    ro.degree_based_nodes = 8000;
  }
  return ro;
}

SuiteOptions ScaledSuiteOptions(std::string_view scale) {
  SuiteOptions so;
  if (scale == "small") {
    so.ball.max_centers = 8;
    so.ball.big_ball_centers = 3;
    so.expansion.max_sources = 500;
  } else if (scale == "xl") {
    // Exhaustive sweeps are off the table at 10^6 nodes; the whole suite
    // runs estimator-backed (metrics/sample.h): 64 sampled centers, a
    // dedicated stream, and a 200k-node budget per sweep so one BFS
    // touches at most ~20% of the graph.
    so.ball.max_centers = 16;
    so.ball.big_ball_centers = 4;
    so.expansion.max_sources = 1500;
    so.sample.centers = 64;
    so.sample.seed = 3;
    so.sample.expansion_budget = 200000;
  } else {
    so.ball.max_centers = 16;
    so.ball.big_ball_centers = 4;
    so.expansion.max_sources = 1500;
  }
  return so;
}

std::size_t ScaledLinkValueSources(std::string_view scale) {
  return scale == "small" ? 600 : 1500;
}

SessionOptions ScaledSessionOptions(std::string_view scale) {
  SessionOptions so;
  so.roster = ScaledRosterOptions(scale);
  so.suite = ScaledSuiteOptions(scale);
  so.link_value = {.max_sources = ScaledLinkValueSources(scale), .seed = 23};
  const obs::Env& env = obs::Env::Get();
  so.cache_dir = env.cache_dir();
  so.cache_max_mb = env.cache_max_mb();
  if (env.outdir_set()) {
    so.journal_path =
        (std::filesystem::path(env.outdir()) / "journal.log").string();
  }
  return so;
}

}  // namespace topogen::core
