#include "core/suite.h"

#include <stdexcept>

namespace topogen::core {

BasicMetrics RunBasicMetrics(const Topology& topology,
                             const SuiteOptions& options) {
  BasicMetrics out;
  const graph::Graph& g = topology.graph;
  if (options.use_policy) {
    if (!topology.has_policy()) {
      throw std::invalid_argument("RunBasicMetrics: topology '" +
                                  topology.name +
                                  "' has no policy annotation");
    }
    out.expansion =
        metrics::PolicyExpansion(g, topology.relationship, options.expansion);
    out.resilience =
        metrics::PolicyResilience(g, topology.relationship, options.ball);
    out.distortion =
        metrics::PolicyDistortion(g, topology.relationship, options.ball);
  } else {
    out.expansion = metrics::Expansion(g, options.expansion);
    out.resilience = metrics::Resilience(g, options.ball);
    out.distortion = metrics::Distortion(g, options.ball);
  }
  out.expansion.name = topology.name;
  out.resilience.name = topology.name;
  out.distortion.name = topology.name;
  if (options.use_policy) {
    out.expansion.name += "(Policy)";
    out.resilience.name += "(Policy)";
    out.distortion.name += "(Policy)";
  }
  out.signature = metrics::Classify(out.expansion, out.resilience,
                                    out.distortion, options.classifier);
  return out;
}

}  // namespace topogen::core
