#include "core/suite.h"

#include <stdexcept>

#include "fault/fault.h"
#include "obs/obs.h"
#include "parallel/parallel_for.h"

namespace topogen::core {

BasicMetrics RunBasicMetrics(const Topology& topology,
                             const SuiteOptions& options) {
  obs::Span suite_span("suite.basic_metrics", "core");
  suite_span.Arg("topology", topology.name)
      .Arg("policy", static_cast<std::uint64_t>(options.use_policy ? 1 : 0));
  BasicMetrics out;
  const graph::Graph& g = topology.graph;
  // A suite-level SampleSpec fans out to the per-metric options here so
  // callers flip one switch; `options` itself stays const for the span
  // args above.
  SuiteOptions opts = options;
  if (options.sample.active()) {
    opts.ball.sample = options.sample;
    opts.expansion.sample = options.sample;
  }
  if (options.use_policy) {
    if (!topology.has_policy()) {
      throw std::invalid_argument("RunBasicMetrics: topology '" +
                                  topology.name +
                                  "' has no policy annotation");
    }
    {
      obs::Span span("suite.expansion", "core");
      span.Arg("topology", topology.name);
      out.expansion = metrics::PolicyExpansion(g, topology.relationship,
                                               opts.expansion);
    }
    {
      obs::Span span("suite.resilience", "core");
      span.Arg("topology", topology.name);
      out.resilience =
          metrics::PolicyResilience(g, topology.relationship, opts.ball);
    }
    {
      obs::Span span("suite.distortion", "core");
      span.Arg("topology", topology.name);
      out.distortion =
          metrics::PolicyDistortion(g, topology.relationship, opts.ball);
    }
  } else {
    {
      obs::Span span("suite.expansion", "core");
      span.Arg("topology", topology.name);
      out.expansion = metrics::Expansion(g, opts.expansion);
    }
    {
      obs::Span span("suite.resilience", "core");
      span.Arg("topology", topology.name);
      out.resilience = metrics::Resilience(g, opts.ball);
    }
    {
      obs::Span span("suite.distortion", "core");
      span.Arg("topology", topology.name);
      out.distortion = metrics::Distortion(g, opts.ball);
    }
  }
  out.expansion.name = topology.name;
  out.resilience.name = topology.name;
  out.distortion.name = topology.name;
  if (options.use_policy) {
    out.expansion.name += "(Policy)";
    out.resilience.name += "(Policy)";
    out.distortion.name += "(Policy)";
  }
  out.signature = metrics::Classify(out.expansion, out.resilience,
                                    out.distortion, options.classifier);
  TOPOGEN_COUNT("suite.topologies_measured");
  return out;
}

std::vector<BasicMetrics> RunBasicMetricsBatch(
    std::span<const SuiteJob> jobs) {
  obs::Span span("suite.batch", "core");
  span.Arg("jobs", static_cast<std::uint64_t>(jobs.size()));
  std::vector<BasicMetrics> results(jobs.size());
  parallel::ParallelForEach(jobs.size(), [&](std::size_t i) {
    results[i] = RunBasicMetrics(*jobs[i].topology, jobs[i].options);
  });
  return results;
}

std::vector<Result<BasicMetrics>> RunBasicMetricsBatchIsolated(
    std::span<const SuiteJob> jobs) {
  obs::Span span("suite.batch", "core");
  span.Arg("jobs", static_cast<std::uint64_t>(jobs.size()));
  // Pre-fill every slot with a placeholder error; each task overwrites
  // its own slot, so a slot still holding the placeholder means the task
  // never ran (the pool stops dispatching after a boundary failure).
  std::vector<Result<BasicMetrics>> results(
      jobs.size(),
      Result<BasicMetrics>(Error{ErrorCode::kTaskFailed,
                                 "suite job was never dispatched", {}, 0}));
  parallel::ParallelForEach(jobs.size(), [&](std::size_t i) {
    try {
      TOPOGEN_FAULT_POINT_D("suite.metrics", jobs[i].topology->name);
      results[i] = RunBasicMetrics(*jobs[i].topology, jobs[i].options);
    } catch (const Exception& e) {
      results[i] = e.error();
      TOPOGEN_COUNT("suite.jobs_degraded");
    }
  });
  return results;
}

}  // namespace topogen::core
