// The paper's topology roster (Figure 1), reproducible at a configurable
// scale.
//
// Each factory builds one named instance with the paper's parameters. The
// two measured topologies are synthetic stand-ins (see gen/measured.h and
// DESIGN.md §4); `scale` shrinks the expensive instances so the full
// figure suite runs in minutes -- every claim the paper makes is about
// curve *shapes*, which are scale-robust (tests/roster_test.cc checks
// this for expansion and resilience).
#pragma once

#include <vector>

#include "core/topology.h"
#include "gen/measured.h"
#include "policy/paths.h"

namespace topogen::core {

struct RosterOptions {
  std::uint64_t seed = 42;
  // Nodes for the synthetic AS graph (paper: 10941). Everything that
  // derives from it (RL) scales along.
  graph::NodeId as_nodes = 4000;
  double rl_expansion_ratio = 6.0;  // RL nodes per AS node (paper: ~17)
  graph::NodeId plrg_nodes = 10000; // pre-largest-component (paper: 10000)
  graph::NodeId degree_based_nodes = 8000;  // BA/Brite/BT/Inet instances
};

// Records the roster configuration (seed, scale knobs) into the run
// manifest, so figures written under TOPOGEN_OUTDIR can be traced back to
// the exact options that produced them. No-op unless TOPOGEN_OUTDIR is
// set. The bench harness calls this from bench::Roster().
void RecordRunConfiguration(const RosterOptions& options);

// Canonical networks (Figure 1's last block).
Topology MakeTree(const RosterOptions& options = {});
Topology MakeMesh(const RosterOptions& options = {});
Topology MakeRandom(const RosterOptions& options = {});

// Generators (Figure 1's middle block).
Topology MakePlrg(const RosterOptions& options = {});
Topology MakeTransitStub(const RosterOptions& options = {});
Topology MakeTiers(const RosterOptions& options = {});
Topology MakeWaxman(const RosterOptions& options = {});

// Degree-based variants (Figure 2j-l / Appendix D).
Topology MakeBa(const RosterOptions& options = {});
Topology MakeBrite(const RosterOptions& options = {});
Topology MakeBt(const RosterOptions& options = {});
Topology MakeInet(const RosterOptions& options = {});

// Measured stand-ins (Figure 1's first block), with policy annotations.
Topology MakeAs(const RosterOptions& options = {});
// The RL topology carries its AS overlay so policy links can be annotated.
struct RlArtifacts {
  Topology topology;
  std::vector<std::uint32_t> as_of;
};
RlArtifacts MakeRl(const RosterOptions& options = {});

// Convenience groupings matching the figure panels.
std::vector<Topology> CanonicalRoster(const RosterOptions& options = {});
std::vector<Topology> GeneratedRoster(const RosterOptions& options = {});
std::vector<Topology> DegreeBasedRoster(const RosterOptions& options = {});

}  // namespace topogen::core
