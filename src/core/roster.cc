#include "core/roster.h"

#include "gen/ba.h"
#include "gen/brite.h"
#include "gen/canonical.h"
#include "gen/inet.h"
#include "gen/plrg.h"
#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"
#include "obs/obs.h"

namespace topogen::core {

using graph::Rng;

namespace {

Rng SeedFor(const RosterOptions& options, std::uint64_t salt) {
  return Rng(graph::SplitMix64(options.seed) ^ salt);
}

// Every roster factory funnels its product through here so the run
// manifest lists the exact instance (name, size, parameter comment) each
// figure was computed from.
Topology Finish(obs::Span& span, Topology t) {
  obs::Manifest::AddTopology(t.name, t.graph.num_nodes(), t.graph.num_edges(),
                             t.comment);
  span.Arg("nodes", static_cast<std::uint64_t>(t.graph.num_nodes()))
      .Arg("edges", static_cast<std::uint64_t>(t.graph.num_edges()));
  TOPOGEN_COUNT("roster.topologies_built");
  return t;
}

}  // namespace

void RecordRunConfiguration(const RosterOptions& options) {
  obs::RosterConfig rc;
  rc.seed = options.seed;
  rc.as_nodes = options.as_nodes;
  rc.rl_expansion_ratio = options.rl_expansion_ratio;
  rc.plrg_nodes = options.plrg_nodes;
  rc.degree_based_nodes = options.degree_based_nodes;
  obs::Manifest::SetRoster(rc);
  obs::Manifest::SetTool(obs::ProcessName());
}

Topology MakeTree(const RosterOptions&) {
  obs::Span span("roster.Tree", "roster");
  return Finish(span, {"Tree", Category::kCanonical, gen::KaryTree(3, 6), {},
                       "k=3, D=6 (1093 nodes)"});
}

Topology MakeMesh(const RosterOptions&) {
  obs::Span span("roster.Mesh", "roster");
  return Finish(span,
                {"Mesh", Category::kCanonical, gen::Mesh(30, 30), {},
                 "30x30 grid"});
}

Topology MakeRandom(const RosterOptions& options) {
  obs::Span span("roster.Random", "roster");
  Rng rng = SeedFor(options, 0x01);
  return Finish(span, {"Random", Category::kCanonical,
                       gen::ErdosRenyi(5050, 0.0008, rng), {},
                       "G(5050, 0.0008), largest component"});
}

Topology MakePlrg(const RosterOptions& options) {
  obs::Span span("roster.PLRG", "roster");
  Rng rng = SeedFor(options, 0x02);
  gen::PlrgParams p;
  p.n = options.plrg_nodes;
  p.exponent = 2.246;
  return Finish(span, {"PLRG", Category::kDegreeBased, gen::Plrg(p, rng), {},
                       "beta=2.246"});
}

Topology MakeTransitStub(const RosterOptions& options) {
  obs::Span span("roster.TS", "roster");
  Rng rng = SeedFor(options, 0x03);
  gen::TransitStubParams p;  // defaults are the paper's 1008-node instance
  return Finish(span, {"TS", Category::kStructural, gen::TransitStub(p, rng),
                       {}, "3 0 0 / 6 0.55 / 6 0.32 / 9 0.248"});
}

Topology MakeTiers(const RosterOptions& options) {
  obs::Span span("roster.Tiers", "roster");
  Rng rng = SeedFor(options, 0x04);
  gen::TiersParams p;  // defaults are the paper's 5000-node instance
  return Finish(span, {"Tiers", Category::kStructural, gen::Tiers(p, rng), {},
                       "1 50 10 / 500 40 5 / 20 20 1 / 20 1"});
}

Topology MakeWaxman(const RosterOptions& options) {
  obs::Span span("roster.Waxman", "roster");
  Rng rng = SeedFor(options, 0x05);
  gen::WaxmanParams p;  // defaults are the paper's 5000-node instance
  return Finish(span, {"Waxman", Category::kRandom, gen::Waxman(p, rng), {},
                       "5000 0.005 0.30"});
}

Topology MakeBa(const RosterOptions& options) {
  obs::Span span("roster.B-A", "roster");
  Rng rng = SeedFor(options, 0x06);
  gen::BaParams p;
  p.n = options.degree_based_nodes;
  return Finish(span, {"B-A", Category::kDegreeBased,
                       gen::BarabasiAlbert(p, rng), {}, "m=2"});
}

Topology MakeBrite(const RosterOptions& options) {
  obs::Span span("roster.Brite", "roster");
  Rng rng = SeedFor(options, 0x07);
  gen::BriteParams p;
  p.n = options.degree_based_nodes;
  return Finish(span, {"Brite", Category::kDegreeBased, gen::Brite(p, rng),
                       {}, "m=2, heavy-tailed placement"});
}

Topology MakeBt(const RosterOptions& options) {
  obs::Span span("roster.BT", "roster");
  Rng rng = SeedFor(options, 0x08);
  gen::GlpParams p;
  p.n = options.degree_based_nodes;
  return Finish(span, {"BT", Category::kDegreeBased,
                       gen::BuTowsleyGlp(p, rng), {},
                       "GLP m=1 p=0.45 beta=0.64"});
}

Topology MakeInet(const RosterOptions& options) {
  obs::Span span("roster.Inet", "roster");
  Rng rng = SeedFor(options, 0x09);
  gen::InetParams p;
  p.n = options.degree_based_nodes;
  return Finish(span, {"Inet", Category::kDegreeBased, gen::Inet(p, rng), {},
                       "beta=2.22"});
}

Topology MakeAs(const RosterOptions& options) {
  obs::Span span("roster.AS", "roster");
  Rng rng = SeedFor(options, 0x0a);
  gen::MeasuredAsParams p;
  p.n = options.as_nodes;
  gen::AsTopology as = gen::MeasuredAs(p, rng);
  return Finish(span, {"AS", Category::kMeasured, std::move(as.graph),
                       std::move(as.relationship),
                       "synthetic stand-in for route-views May 2001"});
}

RlArtifacts MakeRl(const RosterOptions& options) {
  obs::Span span("roster.RL", "roster");
  Rng rng = SeedFor(options, 0x0b);
  gen::MeasuredRlParams p;
  p.as_params.n = options.as_nodes;
  p.expansion_ratio = options.rl_expansion_ratio;
  gen::RlTopology rl = gen::MeasuredRl(p, rng);
  std::vector<policy::Relationship> rel = policy::AnnotateRouterLinks(
      rl.graph, rl.as_of, rl.as_topology.graph, rl.as_topology.relationship);
  RlArtifacts out;
  out.topology = Finish(
      span, {"RL", Category::kMeasured, std::move(rl.graph), std::move(rel),
             "synthetic stand-in for SCAN/Mercator May 2001"});
  out.as_of = std::move(rl.as_of);
  return out;
}

std::vector<Topology> CanonicalRoster(const RosterOptions& options) {
  std::vector<Topology> r;
  r.push_back(MakeTree(options));
  r.push_back(MakeMesh(options));
  r.push_back(MakeRandom(options));
  return r;
}

std::vector<Topology> GeneratedRoster(const RosterOptions& options) {
  std::vector<Topology> r;
  r.push_back(MakeTransitStub(options));
  r.push_back(MakeTiers(options));
  r.push_back(MakeWaxman(options));
  r.push_back(MakePlrg(options));
  return r;
}

std::vector<Topology> DegreeBasedRoster(const RosterOptions& options) {
  std::vector<Topology> r;
  r.push_back(MakeBa(options));
  r.push_back(MakeBrite(options));
  r.push_back(MakeBt(options));
  r.push_back(MakeInet(options));
  r.push_back(MakePlrg(options));
  return r;
}

}  // namespace topogen::core
