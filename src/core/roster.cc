#include "core/roster.h"

#include "gen/ba.h"
#include "gen/brite.h"
#include "gen/canonical.h"
#include "gen/inet.h"
#include "gen/plrg.h"
#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"

namespace topogen::core {

using graph::Rng;

namespace {

Rng SeedFor(const RosterOptions& options, std::uint64_t salt) {
  return Rng(graph::SplitMix64(options.seed) ^ salt);
}

}  // namespace

Topology MakeTree(const RosterOptions&) {
  return {"Tree", Category::kCanonical, gen::KaryTree(3, 6), {},
          "k=3, D=6 (1093 nodes)"};
}

Topology MakeMesh(const RosterOptions&) {
  return {"Mesh", Category::kCanonical, gen::Mesh(30, 30), {}, "30x30 grid"};
}

Topology MakeRandom(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x01);
  return {"Random", Category::kCanonical,
          gen::ErdosRenyi(5050, 0.0008, rng), {},
          "G(5050, 0.0008), largest component"};
}

Topology MakePlrg(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x02);
  gen::PlrgParams p;
  p.n = options.plrg_nodes;
  p.exponent = 2.246;
  return {"PLRG", Category::kDegreeBased, gen::Plrg(p, rng), {},
          "beta=2.246"};
}

Topology MakeTransitStub(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x03);
  gen::TransitStubParams p;  // defaults are the paper's 1008-node instance
  return {"TS", Category::kStructural, gen::TransitStub(p, rng), {},
          "3 0 0 / 6 0.55 / 6 0.32 / 9 0.248"};
}

Topology MakeTiers(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x04);
  gen::TiersParams p;  // defaults are the paper's 5000-node instance
  return {"Tiers", Category::kStructural, gen::Tiers(p, rng), {},
          "1 50 10 / 500 40 5 / 20 20 1 / 20 1"};
}

Topology MakeWaxman(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x05);
  gen::WaxmanParams p;  // defaults are the paper's 5000-node instance
  return {"Waxman", Category::kRandom, gen::Waxman(p, rng), {},
          "5000 0.005 0.30"};
}

Topology MakeBa(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x06);
  gen::BaParams p;
  p.n = options.degree_based_nodes;
  return {"B-A", Category::kDegreeBased, gen::BarabasiAlbert(p, rng), {},
          "m=2"};
}

Topology MakeBrite(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x07);
  gen::BriteParams p;
  p.n = options.degree_based_nodes;
  return {"Brite", Category::kDegreeBased, gen::Brite(p, rng), {},
          "m=2, heavy-tailed placement"};
}

Topology MakeBt(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x08);
  gen::GlpParams p;
  p.n = options.degree_based_nodes;
  return {"BT", Category::kDegreeBased, gen::BuTowsleyGlp(p, rng), {},
          "GLP m=1 p=0.45 beta=0.64"};
}

Topology MakeInet(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x09);
  gen::InetParams p;
  p.n = options.degree_based_nodes;
  return {"Inet", Category::kDegreeBased, gen::Inet(p, rng), {},
          "beta=2.22"};
}

Topology MakeAs(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x0a);
  gen::MeasuredAsParams p;
  p.n = options.as_nodes;
  gen::AsTopology as = gen::MeasuredAs(p, rng);
  return {"AS", Category::kMeasured, std::move(as.graph),
          std::move(as.relationship),
          "synthetic stand-in for route-views May 2001"};
}

RlArtifacts MakeRl(const RosterOptions& options) {
  Rng rng = SeedFor(options, 0x0b);
  gen::MeasuredRlParams p;
  p.as_params.n = options.as_nodes;
  p.expansion_ratio = options.rl_expansion_ratio;
  gen::RlTopology rl = gen::MeasuredRl(p, rng);
  std::vector<policy::Relationship> rel = policy::AnnotateRouterLinks(
      rl.graph, rl.as_of, rl.as_topology.graph, rl.as_topology.relationship);
  RlArtifacts out;
  out.topology = {"RL", Category::kMeasured, std::move(rl.graph),
                  std::move(rel),
                  "synthetic stand-in for SCAN/Mercator May 2001"};
  out.as_of = std::move(rl.as_of);
  return out;
}

std::vector<Topology> CanonicalRoster(const RosterOptions& options) {
  std::vector<Topology> r;
  r.push_back(MakeTree(options));
  r.push_back(MakeMesh(options));
  r.push_back(MakeRandom(options));
  return r;
}

std::vector<Topology> GeneratedRoster(const RosterOptions& options) {
  std::vector<Topology> r;
  r.push_back(MakeTransitStub(options));
  r.push_back(MakeTiers(options));
  r.push_back(MakeWaxman(options));
  r.push_back(MakePlrg(options));
  return r;
}

std::vector<Topology> DegreeBasedRoster(const RosterOptions& options) {
  std::vector<Topology> r;
  r.push_back(MakeBa(options));
  r.push_back(MakeBrite(options));
  r.push_back(MakeBt(options));
  r.push_back(MakeInet(options));
  r.push_back(MakePlrg(options));
  return r;
}

}  // namespace topogen::core
