#include "core/session_pool.h"

#include <algorithm>
#include <utility>

namespace topogen::core {

SessionPool::SessionPool(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

Session& SessionPool::Acquire(const std::string& key,
                              const Factory& factory) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key == key) {
        entries_.splice(entries_.begin(), entries_, it);
        return *entries_.front().session;
      }
    }
  }
  // Build outside the lock: Session construction reads the environment
  // and may touch the filesystem, and stats readers must not block on it.
  std::unique_ptr<Session> session = factory();
  std::unique_ptr<Session> evicted;  // destroyed outside the lock too
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_front({key, std::move(session)});
    if (entries_.size() > capacity_) {
      evicted = std::move(entries_.back().session);
      entries_.pop_back();
    }
    return *entries_.front().session;
  }
}

CacheStats SessionPool::AggregateStats() const {
  CacheStats total;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    const CacheStats& s = entry.session->cache_stats();
    total.topology_hits += s.topology_hits;
    total.topology_misses += s.topology_misses;
    total.metrics_hits += s.metrics_hits;
    total.metrics_misses += s.metrics_misses;
    total.linkvalue_hits += s.linkvalue_hits;
    total.linkvalue_misses += s.linkvalue_misses;
    total.journal_skips += s.journal_skips;
  }
  return total;
}

std::size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace topogen::core
