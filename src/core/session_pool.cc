#include "core/session_pool.h"

#include <algorithm>
#include <utility>

#include "core/memory_budget.h"
#include "obs/events.h"
#include "obs/stats.h"

namespace topogen::core {

SessionPool::SessionPool(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

Session& SessionPool::Acquire(const std::string& key,
                              const Factory& factory) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->key == key) {
        entries_.splice(entries_.begin(), entries_, it);
        return *entries_.front().session;
      }
    }
  }
  // Build outside the lock: Session construction reads the environment
  // and may touch the filesystem, and stats readers must not block on it.
  std::unique_ptr<Session> session = factory();
  std::unique_ptr<Session> evicted;  // destroyed outside the lock too
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_front({key, std::move(session)});
    if (entries_.size() > capacity_) {
      evicted = std::move(entries_.back().session);
      entries_.pop_back();
    }
    return *entries_.front().session;
  }
}

CacheStats SessionPool::AggregateStats() const {
  CacheStats total;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    const CacheStats& s = entry.session->cache_stats();
    total.topology_hits += s.topology_hits;
    total.topology_misses += s.topology_misses;
    total.metrics_hits += s.metrics_hits;
    total.metrics_misses += s.metrics_misses;
    total.linkvalue_hits += s.linkvalue_hits;
    total.linkvalue_misses += s.linkvalue_misses;
    total.journal_skips += s.journal_skips;
  }
  return total;
}

std::size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t SessionPool::EvictUnderPressure() {
  MemoryBudget& budget = MemoryBudget::Get();
  std::size_t evicted = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  // Unlike Acquire's eviction, victims are destroyed *inside* the lock:
  // the Session destructor is what releases the topology charge, and the
  // loop condition must observe that release to stop as soon as pressure
  // clears instead of draining the whole pool.
  while (entries_.size() > 1 && budget.UnderPressure()) {
    Entry victim = std::move(entries_.back());
    entries_.pop_back();
    victim.session.reset();
    ++evicted;
    TOPOGEN_COUNT("session_pool.pressure_evictions");
    if (obs::EventsEnabled()) {
      obs::Event("mem_pressure")
          .Str("edge", "evict")
          .Str("session", victim.key)
          .U64("charged_bytes", budget.charged_bytes());
    }
  }
  return evicted;
}

}  // namespace topogen::core
