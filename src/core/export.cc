#include "core/export.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace topogen::core {

namespace {

std::ofstream OpenOrThrow(const std::filesystem::path& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("ExportFigure: cannot open " + path.string());
  }
  return os;
}

}  // namespace

void ExportFigure(const std::string& dir, const std::string& figure_id,
                  const std::string& title,
                  const std::vector<metrics::Series>& curves, bool log_x,
                  bool log_y) {
  const std::filesystem::path base(dir);
  std::filesystem::create_directories(base);

  // Data: gnuplot "index" blocks (two blank lines between curves).
  // Estimator-backed curves (metrics/sample.h) carry a third column with
  // the 95% CI half-width; exact curves keep the historical two-column
  // rows so existing goldens and downstream parsers are untouched.
  {
    std::ofstream os = OpenOrThrow(base / (figure_id + ".dat"));
    for (const metrics::Series& s : curves) {
      os << "# " << s.name << "\n";
      const bool with_err = s.has_error();
      for (std::size_t i = 0; i < s.size(); ++i) {
        os << s.x[i] << " " << s.y[i];
        if (with_err) os << " " << s.yerr[i];
        os << "\n";
      }
      os << "\n\n";
    }
  }
  // Script.
  {
    std::ofstream os = OpenOrThrow(base / (figure_id + ".gp"));
    os << "set title '" << title << "'\n";
    os << "set key outside right\n";
    if (log_x) os << "set logscale x\n";
    if (log_y) os << "set logscale y\n";
    os << "set terminal pngcairo size 900,600\n";
    os << "set output '" << figure_id << ".png'\n";
    os << "plot";
    for (std::size_t i = 0; i < curves.size(); ++i) {
      if (i > 0) os << ",";
      os << " '" << figure_id << ".dat' index " << i;
      if (curves[i].has_error()) {
        os << " with yerrorlines title '" << curves[i].name << "'";
      } else {
        os << " with linespoints title '" << curves[i].name << "'";
      }
    }
    os << "\n";
  }
}

void ExportCsv(const std::string& path,
               const std::vector<metrics::Series>& curves) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("ExportCsv: cannot open " + path);
  }
  // The yerr column appears only when at least one curve is
  // estimator-backed, so exact exports keep the historical header and
  // row shape; mixed exports leave the cell empty for exact curves.
  bool any_err = false;
  for (const metrics::Series& s : curves) any_err |= s.has_error();
  os << (any_err ? "curve,x,y,yerr\n" : "curve,x,y\n");
  for (const metrics::Series& s : curves) {
    const bool with_err = s.has_error();
    for (std::size_t i = 0; i < s.size(); ++i) {
      os << s.name << "," << s.x[i] << "," << s.y[i];
      if (any_err) {
        os << ",";
        if (with_err) os << s.yerr[i];
      }
      os << "\n";
    }
  }
}

}  // namespace topogen::core
