#include "core/memory_budget.h"

#include <algorithm>
#include <cstdio>

#include "obs/events.h"
#include "obs/stats.h"

namespace topogen::core {

namespace {

const char* kCategoryNames[kMemCategoryCount] = {"topology", "scratch",
                                                 "other"};

obs::Gauge& ChargedGauge() {
  static obs::Gauge& g = obs::Stats::GetGauge("mem_budget.charged_bytes");
  return g;
}

obs::Gauge& PeakGauge() {
  static obs::Gauge& g = obs::Stats::GetGauge("mem_budget.peak_bytes");
  return g;
}

}  // namespace

const char* MemCategoryName(MemCategory c) {
  return kCategoryNames[static_cast<int>(c)];
}

MemoryBudget::MemoryBudget() {
  const int mb = obs::Env::Get().mem_budget_mb();
  budget_bytes_.store(static_cast<std::uint64_t>(mb) << 20,
                      std::memory_order_relaxed);
}

MemoryBudget& MemoryBudget::Get() {
  static MemoryBudget* instance = new MemoryBudget();  // leaked singleton
  return *instance;
}

void MemoryBudget::SetBudgetForTesting(std::uint64_t bytes) {
  budget_bytes_.store(bytes, std::memory_order_relaxed);
  // Re-resolve the pressure state against the new ceiling so the next
  // charge/release reports a correct edge.
  in_pressure_.store(bytes != 0 && charged_bytes() >= bytes,
                     std::memory_order_relaxed);
}

void MemoryBudget::NoteEdge(std::uint64_t was, std::uint64_t now) {
  const std::uint64_t budget = budget_bytes();
  if (budget == 0) return;
  const bool entering = was < budget && now >= budget;
  const bool leaving = was >= budget && now < budget;
  if (!entering && !leaving) return;
  bool expected = leaving;
  if (!in_pressure_.compare_exchange_strong(expected, entering,
                                            std::memory_order_relaxed)) {
    return;  // another thread already reported this edge
  }
  TOPOGEN_COUNT("mem_budget.pressure_edges");
  if (obs::EventsEnabled()) {
    obs::Event("mem_pressure")
        .Str("edge", entering ? "enter" : "exit")
        .U64("charged_bytes", now)
        .U64("budget_bytes", budget)
        .U64("topology_bytes", charged_bytes(MemCategory::kTopology))
        .U64("scratch_bytes", charged_bytes(MemCategory::kScratch));
  }
  if (entering) {
    std::fprintf(stderr,
                 "# mem_budget: pressure: %llu of %llu bytes charged "
                 "(topology=%llu scratch=%llu)\n",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(budget),
                 static_cast<unsigned long long>(
                     charged_bytes(MemCategory::kTopology)),
                 static_cast<unsigned long long>(
                     charged_bytes(MemCategory::kScratch)));
  }
}

void MemoryBudget::Charge(MemCategory category, std::uint64_t bytes) {
  if (bytes == 0) return;
  by_category_[static_cast<int>(category)].fetch_add(
      bytes, std::memory_order_relaxed);
  const std::uint64_t was = total_.fetch_add(bytes, std::memory_order_relaxed);
  const std::uint64_t now = was + bytes;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (obs::AnyEnabled()) {
    ChargedGauge().Set(static_cast<std::int64_t>(now));
    PeakGauge().Max(static_cast<std::int64_t>(now));
  }
  NoteEdge(was, now);
}

void MemoryBudget::Release(MemCategory category, std::uint64_t bytes) {
  if (bytes == 0) return;
  auto& cat = by_category_[static_cast<int>(category)];
  // Clamp instead of wrapping on a mismatched release: a wrong pairing is
  // a bug upstream, but an underflowed "charged" total would pin the
  // process in pressure forever, which is strictly worse.
  std::uint64_t cur = cat.load(std::memory_order_relaxed);
  std::uint64_t take;
  do {
    take = std::min(cur, bytes);
  } while (!cat.compare_exchange_weak(cur, cur - take,
                                      std::memory_order_relaxed));
  cur = total_.load(std::memory_order_relaxed);
  std::uint64_t was;
  std::uint64_t now;
  do {
    was = cur;
    now = cur - std::min(cur, take);
  } while (!total_.compare_exchange_weak(cur, now,
                                         std::memory_order_relaxed));
  if (obs::AnyEnabled()) ChargedGauge().Set(static_cast<std::int64_t>(now));
  NoteEdge(was, now);
}

void MemoryBudget::ResetChargesForTesting() {
  total_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  for (auto& c : by_category_) c.store(0, std::memory_order_relaxed);
  in_pressure_.store(false, std::memory_order_relaxed);
}

}  // namespace topogen::core
