// A named topology instance: the unit every experiment operates on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "policy/relationships.h"

namespace topogen::core {

// Paper's taxonomy (Section 3.1).
enum class Category { kMeasured, kStructural, kDegreeBased, kRandom, kCanonical };

struct Topology {
  std::string name;
  Category category = Category::kCanonical;
  graph::Graph graph;
  // Link relationships for policy routing; empty when the topology has no
  // policy annotation (everything except the measured graphs by default).
  std::vector<policy::Relationship> relationship;
  // Free-form parameter description, mirroring Figure 1's Comment column.
  std::string comment;

  bool has_policy() const { return !relationship.empty(); }
};

}  // namespace topogen::core
