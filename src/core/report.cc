#include "core/report.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/export.h"
#include "obs/obs.h"

namespace topogen::core {

void PrintPanel(std::ostream& os, const std::string& figure_id,
                const std::string& title,
                const std::vector<metrics::Series>& curves) {
  // With TOPOGEN_OUTDIR set, every panel any bench prints is also written
  // as a .dat + gnuplot script, ready to render. The directory comes from
  // the resolve-once obs::Env, not a per-call getenv.
  const obs::Env& env = obs::Env::Get();
  if (env.outdir_set()) {
    ExportFigure(env.outdir(), "fig" + figure_id, title, curves);
    obs::Manifest::AddFigure(figure_id, title);
  }
  TOPOGEN_COUNT("report.panels_printed");
  os << "# panel " << figure_id << " " << title << "\n";
  for (const metrics::Series& s : curves) {
    os << "# curve " << s.name << "\n";
    // Estimator-backed curves (metrics/sample.h) print the 95% CI
    // half-width as a third column; exact curves keep two columns.
    const bool with_err = s.has_error();
    for (std::size_t i = 0; i < s.size(); ++i) {
      os << Num(s.x[i], 6) << " " << Num(s.y[i], 6);
      if (with_err) os << " " << Num(s.yerr[i], 6);
      os << "\n";
    }
    os << "\n";
  }
  os << "\n";
}

namespace {
constexpr int kColumnWidth = 14;
}

void PrintTableHeader(std::ostream& os,
                      const std::vector<std::string>& columns) {
  for (const std::string& c : columns) {
    os << std::left << std::setw(kColumnWidth) << c;
  }
  os << "\n";
  os << std::string(columns.size() * kColumnWidth, '-') << "\n";
}

void PrintTableRow(std::ostream& os, const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    os << std::left << std::setw(kColumnWidth) << c;
  }
  os << "\n";
}

std::string Num(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << v;
  std::string s = ss.str();
  // Default formatting keeps `precision` significant digits but falls
  // back to scientific notation for small magnitudes, which breaks the
  // column-aligned tables (gnuplot copes, humans scanning cells do not).
  // Re-render those values fixed-point with the same significant digits.
  if (s.find('e') == std::string::npos && s.find('E') == std::string::npos) {
    return s;
  }
  const int magnitude =
      static_cast<int>(std::floor(std::log10(std::fabs(v))));
  const int decimals =
      std::min(60, std::max(0, precision - 1 - magnitude));
  std::ostringstream fixed;
  fixed << std::fixed << std::setprecision(decimals) << v;
  std::string f = fixed.str();
  if (f.find('.') != std::string::npos) {
    while (!f.empty() && f.back() == '0') f.pop_back();
    if (!f.empty() && f.back() == '.') f.pop_back();
  }
  return f;
}

}  // namespace topogen::core
