#include "core/report.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "core/export.h"

namespace topogen::core {

void PrintPanel(std::ostream& os, const std::string& figure_id,
                const std::string& title,
                const std::vector<metrics::Series>& curves) {
  // With TOPOGEN_OUTDIR set, every panel any bench prints is also written
  // as a .dat + gnuplot script, ready to render.
  if (const char* outdir = std::getenv("TOPOGEN_OUTDIR")) {
    ExportFigure(outdir, "fig" + figure_id, title, curves);
  }
  os << "# panel " << figure_id << " " << title << "\n";
  for (const metrics::Series& s : curves) {
    os << "# curve " << s.name << "\n";
    for (std::size_t i = 0; i < s.size(); ++i) {
      os << Num(s.x[i], 6) << " " << Num(s.y[i], 6) << "\n";
    }
    os << "\n";
  }
  os << "\n";
}

namespace {
constexpr int kColumnWidth = 14;
}

void PrintTableHeader(std::ostream& os,
                      const std::vector<std::string>& columns) {
  for (const std::string& c : columns) {
    os << std::left << std::setw(kColumnWidth) << c;
  }
  os << "\n";
  os << std::string(columns.size() * kColumnWidth, '-') << "\n";
}

void PrintTableRow(std::ostream& os, const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    os << std::left << std::setw(kColumnWidth) << c;
  }
  os << "\n";
}

std::string Num(double v, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace topogen::core
