// topogend: the topology-as-a-service daemon (docs/SERVICE.md).
//
// Serves the roster's topologies and metric figures over newline-delimited
// JSON on 127.0.0.1, protocol /1 (one response line per request) and /2
// (keep-alive, framed, out-of-order). Configuration comes from the
// TOPOGEN_* environment (scale tier, cache, observability, service
// port/queue/executors); the only flags are overrides for the service
// knobs plus --help.
//
//   TOPOGEN_SERVICE_PORT=0 TOPOGEN_CACHE_DIR=/tmp/cache topogend
//
// Startup prints exactly one line to stdout --
//   topogend: listening on 127.0.0.1:<port>
// -- so scripts can scrape the resolved (possibly ephemeral) port.
// SIGINT/SIGTERM drain the admission queue (every admitted request is
// answered) and exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs.h"
#include "service/server.h"
#include "service/supervisor.h"

namespace {

void PrintUsage() {
  std::printf(
      "topogend -- serve topogen topologies and metrics over TCP\n"
      "\n"
      "usage: topogend [--port N] [--queue N] [--executors N] [--supervise]\n"
      "                [--help]\n"
      "\n"
      "  --port N       listen port on 127.0.0.1 (0 = ephemeral); overrides\n"
      "                 TOPOGEN_SERVICE_PORT\n"
      "  --queue N      admission-queue depth (minimum 1); overrides\n"
      "                 TOPOGEN_SERVICE_QUEUE\n"
      "  --executors N  executor lanes, session-affine (minimum 1);\n"
      "                 overrides TOPOGEN_SERVICE_EXECUTORS\n"
      "  --supervise    run the daemon as a supervised worker: a parent\n"
      "                 process restarts it with capped backoff when it\n"
      "                 crashes, on the same port, warm from the artifact\n"
      "                 store (docs/ROBUSTNESS.md)\n"
      "\n"
      "protocol: one JSON request per line; /1 answers with one response\n"
      "line per request, /2 (request field \"v\":2) with streamed frames\n"
      "(docs/SERVICE.md). SIGINT/SIGTERM drain and exit.\n"
      "\n"
      "environment:\n");
  for (const topogen::obs::EnvVarInfo& var :
       topogen::obs::Env::RegisteredVars()) {
    std::printf("  %-22s %.*s\n", std::string(var.name).c_str(),
                static_cast<int>(var.summary.size()), var.summary.data());
  }
}

bool ParseIntFlag(const char* value, const char* flag, int min, int max,
                  int* out) {
  if (value == nullptr) {
    std::fprintf(stderr, "topogend: %s needs a value\n", flag);
    return false;
  }
  char* end = nullptr;
  const long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < min || n > max) {
    std::fprintf(stderr, "topogend: bad %s value '%s' (allowed %d..%d)\n",
                 flag, value, min, max);
    return false;
  }
  *out = static_cast<int>(n);
  return true;
}

// One daemon lifetime: serve until SIGINT/SIGTERM, drain, exit 0. Runs
// directly in plain mode, or as the forked worker under --supervise.
int RunDaemon(topogen::service::ServerOptions options) {
  // Block the shutdown signals before the server spawns its threads, so
  // every thread inherits the mask and sigwait below is the one receiver.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  topogen::service::Server server(options);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "topogend: %s\n", e.what());
    return 1;
  }

  std::printf("topogend: listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  int got = 0;
  sigwait(&signals, &got);
  std::fprintf(stderr, "topogend: signal %d, draining\n", got);
  server.Stop();

  const topogen::service::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "topogend: served %llu responses (%llu deduped, %llu "
               "queue-full rejections, %llu shed)\n",
               static_cast<unsigned long long>(stats.responses),
               static_cast<unsigned long long>(stats.deduped),
               static_cast<unsigned long long>(stats.rejected_queue_full),
               static_cast<unsigned long long>(stats.rejected_overloaded +
                                               stats.rejected_inflight_cap));
  topogen::obs::FlushRunArtifacts();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topogen::service::ServerOptions options =
      topogen::service::ServerOptions::FromEnv();
  int port = options.port;
  int queue = static_cast<int>(options.queue_limit);
  int executors = static_cast<int>(options.executors);
  bool supervise = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    }
    if (std::strcmp(arg, "--port") == 0) {
      if (!ParseIntFlag(i + 1 < argc ? argv[++i] : nullptr, "--port", 0,
                        65535, &port)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--queue") == 0) {
      // Unlike --port, 0 has no meaning here: a 0-depth queue would
      // reject every non-deduped request, so the minimum is 1.
      if (!ParseIntFlag(i + 1 < argc ? argv[++i] : nullptr, "--queue", 1,
                        1 << 16, &queue)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--executors") == 0) {
      if (!ParseIntFlag(i + 1 < argc ? argv[++i] : nullptr, "--executors", 1,
                        64, &executors)) {
        return 2;
      }
    } else if (std::strcmp(arg, "--supervise") == 0) {
      supervise = true;
    } else {
      std::fprintf(stderr, "topogend: unknown argument '%s' (try --help)\n",
                   arg);
      return 2;
    }
  }

  options.port = port;
  options.queue_limit = static_cast<std::size_t>(queue);
  options.executors = static_cast<std::size_t>(executors);

  if (!supervise) return RunDaemon(options);

  // Supervised: pin an ephemeral port *before* the first fork so every
  // worker generation listens on the same one and clients reconnect
  // across restarts.
  try {
    options.port = topogen::service::ResolvePort(options.port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "topogend: %s\n", e.what());
    return 1;
  }
  return topogen::service::RunSupervised(
      [options] { return RunDaemon(options); });
}
