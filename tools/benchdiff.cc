// benchdiff: the perf-regression gate behind CI's perf-gate job.
//
// Compares two BENCH.json files (schema topogen-bench/1, /2, or /3, see
// bench/bench_perf.cc) record-by-record, matched on "name". A record
// regresses when its new ns_per_op exceeds the baseline by more than the
// tolerance fraction:
//
//   new_ns_per_op > old_ns_per_op * (1 + tolerance)
//
// The gate deliberately triggers on ns_per_op only -- the p50/p90/p99
// tail columns (schema /2) are displayed for diagnosis but carry too
// much single-run noise to fail a build on. Tolerances are generous by
// design: shared CI runners jitter, so the gate catches order-of-magnitude
// mistakes (an accidental O(n^2), a dropped cache), not 5% drift.
//
//   benchdiff [options] BASELINE.json CURRENT.json
//     --tolerance=F          global tolerance fraction (default 0.30)
//     --tolerance=KERNEL:F   per-kernel override, repeatable (matches the
//                            record's "kernel" field, e.g. ball_resilience)
//     --json=PATH            also write a machine-readable verdict
//     --help
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage or
// unreadable/unparseable input. Records present on only one side are
// listed (added/removed) but never fail the gate -- renaming a benchmark
// must not break CI. A baseline record missing from the current run does
// additionally print a warning to stderr (and is counted in the verdict
// JSON's "missing_from_current"), so a silently-dropped kernel is visible
// in the job log instead of shrinking the gate's coverage unnoticed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace {

using topogen::obs::Json;
using topogen::obs::JsonEscape;
using topogen::obs::JsonNumber;

struct Options {
  double tolerance = 0.30;
  std::vector<std::pair<std::string, double>> kernel_tolerance;
  std::string json_out;
  std::string baseline_path;
  std::string current_path;
};

struct Record {
  std::string name;
  std::string kernel;
  double ns_per_op = 0.0;
  double p99_ns = 0.0;  // 0 for schema /1 baselines (field absent)
};

struct Comparison {
  Record old_rec;
  Record new_rec;
  double tolerance = 0.0;
  double ratio = 0.0;  // new / old ns_per_op
  bool regressed = false;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: benchdiff [options] BASELINE.json CURRENT.json\n"
      "  --tolerance=F         global ns/op tolerance fraction "
      "(default 0.30)\n"
      "  --tolerance=KERNEL:F  per-kernel override, repeatable\n"
      "  --json=PATH           write machine-readable verdict JSON\n"
      "exit: 0 = ok, 1 = regression, 2 = usage/parse error\n");
}

std::optional<Options> ParseArgs(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      const std::string_view spec = arg.substr(12);
      const std::size_t colon = spec.find(':');
      char* end = nullptr;
      if (colon == std::string_view::npos) {
        opt.tolerance = std::strtod(std::string(spec).c_str(), &end);
        if (spec.empty() || opt.tolerance < 0.0) return std::nullopt;
      } else {
        const std::string kernel(spec.substr(0, colon));
        const double tol =
            std::strtod(std::string(spec.substr(colon + 1)).c_str(), &end);
        if (kernel.empty() || tol < 0.0) return std::nullopt;
        opt.kernel_tolerance.emplace_back(kernel, tol);
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_out = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "benchdiff: unknown flag: %.*s\n",
                   static_cast<int>(arg.size()), arg.data());
      return std::nullopt;
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.size() != 2) return std::nullopt;
  opt.baseline_path = positional[0];
  opt.current_path = positional[1];
  return opt;
}

double NumberOr(const Json& obj, std::string_view key, double fallback) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

// Loads a BENCH.json and flattens its results array. Accepts schema
// topogen-bench/1 (no percentile fields), /2, and /3 (adds service records).
std::optional<std::vector<Record>> LoadBench(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    std::fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::optional<Json> doc = Json::Parse(buf.str());
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "benchdiff: %s is not a JSON object\n",
                 path.c_str());
    return std::nullopt;
  }
  const Json* schema = doc->Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->AsString() != "topogen-bench/1" &&
       schema->AsString() != "topogen-bench/2" &&
       schema->AsString() != "topogen-bench/3")) {
    std::fprintf(stderr, "benchdiff: %s: unsupported schema\n",
                 path.c_str());
    return std::nullopt;
  }
  const Json* results = doc->Find("results");
  if (results == nullptr || !results->is_array()) {
    std::fprintf(stderr, "benchdiff: %s: missing results array\n",
                 path.c_str());
    return std::nullopt;
  }
  std::vector<Record> records;
  for (const Json& entry : results->AsArray()) {
    if (!entry.is_object()) continue;
    const Json* name = entry.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    Record rec;
    rec.name = name->AsString();
    if (const Json* k = entry.Find("kernel");
        k != nullptr && k->is_string()) {
      rec.kernel = k->AsString();
    }
    rec.ns_per_op = NumberOr(entry, "ns_per_op", 0.0);
    rec.p99_ns = NumberOr(entry, "p99_ns", 0.0);
    records.push_back(std::move(rec));
  }
  return records;
}

double ToleranceFor(const Options& opt, const std::string& kernel) {
  for (const auto& [k, tol] : opt.kernel_tolerance) {
    if (k == kernel) return tol;
  }
  return opt.tolerance;
}

const Record* FindByName(const std::vector<Record>& records,
                         const std::string& name) {
  for (const Record& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string FormatNs(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

void PrintTable(const std::vector<Comparison>& comparisons,
                const std::vector<std::string>& added,
                const std::vector<std::string>& removed) {
  std::size_t name_w = 9;
  for (const Comparison& c : comparisons) {
    name_w = std::max(name_w, c.old_rec.name.size());
  }
  std::printf("%-*s %10s %10s %8s %10s %10s  %s\n",
              static_cast<int>(name_w), "benchmark", "old", "new", "delta",
              "old_p99", "new_p99", "status");
  for (const Comparison& c : comparisons) {
    const double pct = (c.ratio - 1.0) * 100.0;
    std::printf("%-*s %10s %10s %+7.1f%% %10s %10s  %s\n",
                static_cast<int>(name_w), c.old_rec.name.c_str(),
                FormatNs(c.old_rec.ns_per_op).c_str(),
                FormatNs(c.new_rec.ns_per_op).c_str(), pct,
                c.old_rec.p99_ns > 0 ? FormatNs(c.old_rec.p99_ns).c_str()
                                     : "-",
                c.new_rec.p99_ns > 0 ? FormatNs(c.new_rec.p99_ns).c_str()
                                     : "-",
                c.regressed ? "REGRESSED"
                            : (pct < -10.0 ? "faster" : "ok"));
  }
  for (const std::string& name : added) {
    std::printf("%-*s %s\n", static_cast<int>(name_w), name.c_str(),
                "(new benchmark, not gated)");
  }
  for (const std::string& name : removed) {
    std::printf("%-*s %s\n", static_cast<int>(name_w), name.c_str(),
                "(removed from current run)");
  }
}

bool WriteVerdictJson(const std::string& path, const Options& opt,
                      const std::vector<Comparison>& comparisons,
                      const std::vector<std::string>& added,
                      const std::vector<std::string>& removed,
                      std::size_t regressed) {
  std::ofstream os(path);
  if (!os.is_open()) return false;
  os << "{\n  \"schema\": \"topogen-benchdiff/1\",\n";
  os << "  \"baseline\": \"" << JsonEscape(opt.baseline_path) << "\",\n";
  os << "  \"current\": \"" << JsonEscape(opt.current_path) << "\",\n";
  os << "  \"tolerance\": " << JsonNumber(opt.tolerance) << ",\n";
  os << "  \"compared\": " << comparisons.size()
     << ",\n  \"regressed\": " << regressed
     << ",\n  \"missing_from_current\": " << removed.size() << ",\n";
  auto write_names = [&os](const char* key,
                           const std::vector<std::string>& names) {
    os << "  \"" << key << "\": [";
    for (std::size_t i = 0; i < names.size(); ++i) {
      os << (i == 0 ? "" : ", ") << '"' << JsonEscape(names[i]) << '"';
    }
    os << "],\n";
  };
  write_names("added", added);
  write_names("removed", removed);
  os << "  \"results\": [";
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << JsonEscape(c.old_rec.name)
       << "\", \"kernel\": \"" << JsonEscape(c.new_rec.kernel)
       << "\", \"old_ns_per_op\": " << JsonNumber(c.old_rec.ns_per_op)
       << ", \"new_ns_per_op\": " << JsonNumber(c.new_rec.ns_per_op)
       << ", \"ratio\": " << JsonNumber(c.ratio)
       << ", \"tolerance\": " << JsonNumber(c.tolerance)
       << ", \"regressed\": " << (c.regressed ? "true" : "false") << "}";
  }
  os << "\n  ],\n";
  os << "  \"verdict\": \"" << (regressed > 0 ? "regression" : "ok")
     << "\"\n}\n";
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = ParseArgs(argc, argv);
  if (!opt) {
    PrintUsage(stderr);
    return 2;
  }
  const std::optional<std::vector<Record>> baseline =
      LoadBench(opt->baseline_path);
  const std::optional<std::vector<Record>> current =
      LoadBench(opt->current_path);
  if (!baseline || !current) return 2;

  std::vector<Comparison> comparisons;
  std::vector<std::string> added;
  std::vector<std::string> removed;
  for (const Record& old_rec : *baseline) {
    const Record* new_rec = FindByName(*current, old_rec.name);
    if (new_rec == nullptr) {
      removed.push_back(old_rec.name);
      continue;
    }
    Comparison c;
    c.old_rec = old_rec;
    c.new_rec = *new_rec;
    c.tolerance = ToleranceFor(*opt, new_rec->kernel);
    c.ratio = old_rec.ns_per_op > 0.0
                  ? new_rec->ns_per_op / old_rec.ns_per_op
                  : 1.0;
    c.regressed = old_rec.ns_per_op > 0.0 &&
                  new_rec->ns_per_op >
                      old_rec.ns_per_op * (1.0 + c.tolerance);
    comparisons.push_back(std::move(c));
  }
  for (const Record& new_rec : *current) {
    if (FindByName(*baseline, new_rec.name) == nullptr) {
      added.push_back(new_rec.name);
    }
  }

  const std::size_t regressed = static_cast<std::size_t>(
      std::count_if(comparisons.begin(), comparisons.end(),
                    [](const Comparison& c) { return c.regressed; }));
  PrintTable(comparisons, added, removed);
  // A kernel the baseline gates that the candidate run never produced is
  // a coverage hole, not a regression: warn loudly, keep exit 0.
  for (const std::string& name : removed) {
    std::fprintf(stderr,
                 "benchdiff: warning: baseline benchmark '%s' missing from "
                 "current run (not gated)\n",
                 name.c_str());
  }
  std::printf("\nbenchdiff: %zu compared, %zu regressed (tolerance %.0f%%"
              "%s)\n",
              comparisons.size(), regressed, opt->tolerance * 100.0,
              opt->kernel_tolerance.empty() ? "" : " + per-kernel overrides");

  if (!opt->json_out.empty() &&
      !WriteVerdictJson(opt->json_out, *opt, comparisons, added, removed,
                        regressed)) {
    std::fprintf(stderr, "benchdiff: cannot write %s\n",
                 opt->json_out.c_str());
    return 2;
  }
  return regressed > 0 ? 1 : 0;
}
