#!/usr/bin/env python3
"""End-to-end smoke for topogend against the batch figure path.

Drives a running topogend with N concurrent clients -- half speaking
protocol /1 (one response line per request), half /2 (keep-alive,
responses reassembled from streamed frames) -- requesting the expansion
series for every curve of Figure 2, and asserts that

  * every response is status "ok" and served from cache (the daemon
    shares its artifact store with a prior batch bench run), and
  * every served series, on both protocols, matches the batch run's
    exported .dat files value for value (both sides formatted with %g,
    the formatting the .dat writer uses), so the daemon provably returns
    the same figures the paper harness printed whichever wire a client
    chose.

Usage:
  service_smoke.py --port PORT --batch-dir DIR [--clients N]

DIR is a TOPOGEN_OUTDIR populated by bench_fig2_expansion (fig2a.dat,
fig2d.dat, fig2g.dat, fig2j.dat). Exits 0 on success, 1 with a
diagnostic on any mismatch or transport error.
"""

import argparse
import json
import pathlib
import socket
import sys
import threading

# Every Figure 2 expansion curve: (topology, use_policy) -> curve name in
# the .dat files (suite.cc appends "(Policy)" for policy-routed runs).
REQUESTS = [
    ("Tree", False), ("Mesh", False), ("Random", False),
    ("RL", False), ("RL", True), ("AS", False), ("AS", True),
    ("TS", False), ("Tiers", False), ("Waxman", False), ("PLRG", False),
    ("B-A", False), ("Brite", False), ("BT", False), ("Inet", False),
]

PANELS = ["fig2a", "fig2d", "fig2g", "fig2j"]


def curve_name(topology, use_policy):
    return topology + ("(Policy)" if use_policy else "")


def parse_dat(path):
    """Parses gnuplot index blocks: '# name' then 'x y' token lines."""
    curves = {}
    name = None
    for line in path.read_text().splitlines():
        line = line.strip()
        if line.startswith("#"):
            name = line[1:].strip()
            curves[name] = []
        elif line and name is not None:
            x, y = line.split()
            curves[name].append((x, y))
    return curves


def load_batch_curves(batch_dir):
    curves = {}
    for panel in PANELS:
        path = pathlib.Path(batch_dir) / (panel + ".dat")
        if not path.is_file():
            sys.exit(f"service_smoke: missing batch figure {path}")
        for name, points in parse_dat(path).items():
            curves[name] = points
    return curves


class Client:
    """Protocol /1: one request line, one response line."""

    version = 1

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.buf = b""

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def round_trip(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        return self.read_line()


class V2Client(Client):
    """Protocol /2: keep-alive, responses reassembled from streamed
    frames. round_trip() returns the final frame with the chunked series
    stitched back into its "figures" object, so the comparison code is
    protocol-agnostic."""

    version = 2

    def round_trip(self, request):
        request = dict(request, v=2)
        self.sock.sendall((json.dumps(request) + "\n").encode())
        series = {}
        while True:
            frame = self.read_line()
            if "more" not in frame:
                raise ValueError(f"/2 response missing framing: {frame}")
            if frame["more"]:
                figure = frame["figure"]
                entry = series.setdefault(
                    figure, {"name": frame.get("name", ""), "x": [], "y": []})
                entry["x"].extend(frame["x"])
                entry["y"].extend(frame["y"])
                continue
            # Final frame: the /1 body minus the streamed series.
            frame.setdefault("figures", {}).update(series)
            return frame


def check_response(response, topology, use_policy, batch_curves, errors):
    rid = response.get("id", "?")
    if response.get("status") != "ok":
        errors.append(f"{rid}: status {response.get('status')!r}, "
                      f"response {response}")
        return
    if response.get("cached") is not True:
        errors.append(f"{rid}: expected a cache-served response "
                      f"(cached={response.get('cached')!r})")
    series = response["figures"]["expansion"]
    name = curve_name(topology, use_policy)
    if series["name"] != name:
        errors.append(f"{rid}: series name {series['name']!r} != {name!r}")
        return
    want = batch_curves.get(name)
    if want is None:
        errors.append(f"{rid}: curve {name!r} not in the batch .dat files")
        return
    got = [("%g" % x, "%g" % y) for x, y in zip(series["x"], series["y"])]
    if got != want:
        errors.append(f"{rid}: series mismatch for {name!r}:\n"
                      f"  served: {got[:5]}...\n  batch:  {want[:5]}...")


def worker(port, offset, client_class, batch_curves, errors, lock):
    try:
        client = client_class(port)
        # Each client walks the full request list from its own offset, so
        # concurrent clients hit the same keys in different orders.
        for i in range(len(REQUESTS)):
            topology, use_policy = REQUESTS[(offset + i) % len(REQUESTS)]
            request = {
                "id": f"c{offset}v{client.version}-{topology}"
                      + ("-policy" if use_policy else ""),
                "topology": topology,
                "metrics": ["expansion"],
            }
            if use_policy:
                request["use_policy"] = True
            response = client.round_trip(request)
            local = []
            check_response(response, topology, use_policy, batch_curves, local)
            if local:
                with lock:
                    errors.extend(local)
    except (OSError, ConnectionError, KeyError, ValueError) as exc:
        with lock:
            errors.append(f"client {offset} (/{client_class.version}): "
                          f"{type(exc).__name__}: {exc}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--batch-dir", required=True)
    ap.add_argument("--clients", type=int, default=8,
                    help="total concurrent clients; even slots speak /1, "
                         "odd slots /2, all against the one daemon")
    args = ap.parse_args()

    batch_curves = load_batch_curves(args.batch_dir)
    missing = [curve_name(t, p) for t, p in REQUESTS
               if curve_name(t, p) not in batch_curves]
    if missing:
        sys.exit(f"service_smoke: batch run is missing curves {missing} "
                 f"(degraded batch run?)")

    errors = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=worker,
            args=(args.port, i, Client if i % 2 == 0 else V2Client,
                  batch_curves, errors, lock))
        for i in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        sys.exit(1)
    total = args.clients * len(REQUESTS)
    v1 = (args.clients + 1) // 2
    print(f"service smoke OK: {total} responses from {v1} /1 and "
          f"{args.clients - v1} /2 concurrent clients, all cached and "
          f"identical to the batch run")


if __name__ == "__main__":
    main()
