#!/usr/bin/env python3
"""End-to-end smoke for topogend against the batch figure path.

Drives a running topogend with N concurrent clients -- half speaking
protocol /1 (one response line per request), half /2 (keep-alive,
responses reassembled from streamed frames) -- requesting the expansion
series for every curve of Figure 2, and asserts that

  * every response is status "ok" and served from cache (the daemon
    shares its artifact store with a prior batch bench run), and
  * every served series, on both protocols, matches the batch run's
    exported .dat files value for value (both sides formatted with %g,
    the formatting the .dat writer uses), so the daemon provably returns
    the same figures the paper harness printed whichever wire a client
    chose.

Every socket operation runs under a per-operation deadline
(--op-timeout), and a whole-run watchdog (--run-timeout) hard-exits with
a diagnostic if the sweep wedges -- a hung smoke is itself a daemon bug,
and it must fail loudly, not eat a CI job.

--chaos switches the sweep to the retry discipline of the overload
design (docs/ROBUSTNESS.md): transport errors (resets, torn lines,
timeouts from injected socket faults or a supervised worker restart)
reconnect and resend; "overloaded" responses honor retry_after_ms before
resending. Under chaos the assertion weakens only in *when*, never in
*what*: every request must still eventually produce a response
value-identical to the batch run, and any complete line the server sends
must parse -- a torn line may lose its tail (no newline, then EOF), but
bytes that did arrive framed are never wrong.

Usage:
  service_smoke.py --port PORT --batch-dir DIR [--clients N] [--chaos]

DIR is a TOPOGEN_OUTDIR populated by bench_fig2_expansion (fig2a.dat,
fig2d.dat, fig2g.dat, fig2j.dat). Exits 0 on success, 1 with a
diagnostic on any mismatch, transport failure, or hang.
"""

import argparse
import json
import os
import pathlib
import random
import socket
import sys
import threading
import time

# Every Figure 2 expansion curve: (topology, use_policy) -> curve name in
# the .dat files (suite.cc appends "(Policy)" for policy-routed runs).
REQUESTS = [
    ("Tree", False), ("Mesh", False), ("Random", False),
    ("RL", False), ("RL", True), ("AS", False), ("AS", True),
    ("TS", False), ("Tiers", False), ("Waxman", False), ("PLRG", False),
    ("B-A", False), ("Brite", False), ("BT", False), ("Inet", False),
]

PANELS = ["fig2a", "fig2d", "fig2g", "fig2j"]


def curve_name(topology, use_policy):
    return topology + ("(Policy)" if use_policy else "")


def parse_dat(path):
    """Parses gnuplot index blocks: '# name' then 'x y' token lines."""
    curves = {}
    name = None
    for line in path.read_text().splitlines():
        line = line.strip()
        if line.startswith("#"):
            name = line[1:].strip()
            curves[name] = []
        elif line and name is not None:
            x, y = line.split()
            curves[name].append((x, y))
    return curves


def load_batch_curves(batch_dir):
    curves = {}
    for panel in PANELS:
        path = pathlib.Path(batch_dir) / (panel + ".dat")
        if not path.is_file():
            sys.exit(f"service_smoke: missing batch figure {path}")
        for name, points in parse_dat(path).items():
            curves[name] = points
    return curves


class WrongBytes(Exception):
    """A complete (newline-framed) line from the server failed to parse:
    the one thing no injected fault is allowed to produce."""


class Client:
    """Protocol /1: one request line, one response line. Every recv/send
    runs under op_timeout; socket.timeout surfaces as a transport error
    for the chaos retry loop (and a hard failure without --chaos)."""

    version = 1

    def __init__(self, port, op_timeout):
        self.port = port
        self.op_timeout = op_timeout
        self.sock = None
        self.buf = b""
        self.reconnects = 0
        self.connect()

    def connect(self):
        if self.sock is not None:
            self.sock.close()
            self.reconnects += 1
        self.buf = b""  # a torn partial line never bleeds across sockets
        self.sock = socket.create_connection(("127.0.0.1", self.port),
                                             timeout=self.op_timeout)
        self.sock.settimeout(self.op_timeout)

    def read_json_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        try:
            return json.loads(line)
        except ValueError as exc:
            raise WrongBytes(f"unparsable framed line {line[:120]!r}: {exc}")

    def read_line_for(self, rid):
        """The next complete line for request `rid`. Lines with another
        id are server-side typed errors for bytes a read fault garbled
        (their framing stole our line's tail or vice versa); they are
        legitimate chaos outcomes for *some* line, just not an answer to
        this request, so keep reading until the deadline."""
        deadline = time.monotonic() + self.op_timeout
        while True:
            if time.monotonic() > deadline:
                raise socket.timeout(f"no response for {rid}")
            doc = self.read_json_line()
            if doc.get("id", "") == rid:
                return doc

    def round_trip(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        return self.read_line_for(request["id"])


class V2Client(Client):
    """Protocol /2: keep-alive, responses reassembled from streamed
    frames. round_trip() returns the final frame with the chunked series
    stitched back into its "figures" object, so the comparison code is
    protocol-agnostic."""

    version = 2

    def round_trip(self, request):
        request = dict(request, v=2)
        self.sock.sendall((json.dumps(request) + "\n").encode())
        series = {}
        while True:
            frame = self.read_line_for(request["id"])
            if "more" not in frame:
                raise ValueError(f"/2 response missing framing: {frame}")
            if frame["more"]:
                figure = frame["figure"]
                entry = series.setdefault(
                    figure, {"name": frame.get("name", ""), "x": [], "y": []})
                entry["x"].extend(frame["x"])
                entry["y"].extend(frame["y"])
                continue
            # Final frame: the /1 body minus the streamed series.
            frame.setdefault("figures", {}).update(series)
            return frame


def chaos_round_trip(client, request, attempts, errors):
    """The retry discipline: reconnect through transport faults, honor
    retry_after_ms through sheds, and insist on an eventual non-error
    response. Returns None (appending a diagnostic) when the attempt
    budget runs out."""
    rid = request["id"]
    for attempt in range(attempts):
        try:
            response = client.round_trip(request)
        except (OSError, ConnectionError, socket.timeout) as exc:
            # Reset, torn line, stall past deadline, worker restart: all
            # recover by reconnect + resend. /2 partial reassembly state
            # is discarded with the connection -- chunk frames of a dead
            # socket never mix into the retry's response.
            time.sleep(min(0.05 * (attempt + 1), 0.5) * random.random())
            try:
                client.connect()
            except OSError:
                time.sleep(0.2)
            continue
        error = response.get("error")
        if error:
            if error.get("code") == "overloaded":
                time.sleep(error.get("retry_after_ms", 50) / 1000.0)
                continue
            # Any other typed error for *our* id (an injected parse
            # fault swallowed this line, the lane watchdog failed it):
            # the server answered cleanly, so resending is safe.
            time.sleep(0.05)
            continue
        return response
    errors.append(f"{rid}: no usable response after {attempts} attempts "
                  f"({client.reconnects} reconnects on this client)")
    return None


def check_response(response, topology, use_policy, batch_curves, errors):
    rid = response.get("id", "?")
    if response.get("status") != "ok":
        errors.append(f"{rid}: status {response.get('status')!r}, "
                      f"response {response}")
        return
    if response.get("cached") is not True:
        errors.append(f"{rid}: expected a cache-served response "
                      f"(cached={response.get('cached')!r})")
    series = response["figures"]["expansion"]
    name = curve_name(topology, use_policy)
    if series["name"] != name:
        errors.append(f"{rid}: series name {series['name']!r} != {name!r}")
        return
    want = batch_curves.get(name)
    if want is None:
        errors.append(f"{rid}: curve {name!r} not in the batch .dat files")
        return
    got = [("%g" % x, "%g" % y) for x, y in zip(series["x"], series["y"])]
    if got != want:
        errors.append(f"{rid}: series mismatch for {name!r}:\n"
                      f"  served: {got[:5]}...\n  batch:  {want[:5]}...")


def worker(args, offset, client_class, batch_curves, errors, lock):
    try:
        client = client_class(args.port, args.op_timeout)
        # Each client walks the full request list from its own offset, so
        # concurrent clients hit the same keys in different orders.
        for i in range(len(REQUESTS)):
            topology, use_policy = REQUESTS[(offset + i) % len(REQUESTS)]
            request = {
                "id": f"c{offset}v{client.version}-{topology}"
                      + ("-policy" if use_policy else ""),
                "topology": topology,
                "metrics": ["expansion"],
            }
            if use_policy:
                request["use_policy"] = True
            local = []
            if args.chaos:
                response = chaos_round_trip(client, request, args.attempts,
                                            local)
                if response is not None:
                    check_response(response, topology, use_policy,
                                   batch_curves, local)
            else:
                response = client.round_trip(request)
                check_response(response, topology, use_policy, batch_curves,
                               local)
            if local:
                with lock:
                    errors.extend(local)
    except WrongBytes as exc:
        with lock:
            errors.append(f"client {offset} (/{client_class.version}): "
                          f"WRONG BYTES: {exc}")
    except (OSError, ConnectionError, KeyError, ValueError) as exc:
        with lock:
            errors.append(f"client {offset} (/{client_class.version}): "
                          f"{type(exc).__name__}: {exc}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--batch-dir", required=True)
    ap.add_argument("--clients", type=int, default=8,
                    help="total concurrent clients; even slots speak /1, "
                         "odd slots /2, all against the one daemon")
    ap.add_argument("--chaos", action="store_true",
                    help="retry through transport faults and sheds instead "
                         "of failing on the first one")
    ap.add_argument("--attempts", type=int, default=25,
                    help="per-request retry budget under --chaos")
    ap.add_argument("--op-timeout", type=float, default=30.0,
                    help="per-operation socket deadline, seconds")
    ap.add_argument("--run-timeout", type=float, default=600.0,
                    help="whole-run watchdog, seconds; a wedged sweep "
                         "exits 1 instead of hanging its caller")
    args = ap.parse_args()

    batch_curves = load_batch_curves(args.batch_dir)
    missing = [curve_name(t, p) for t, p in REQUESTS
               if curve_name(t, p) not in batch_curves]
    if missing:
        sys.exit(f"service_smoke: batch run is missing curves {missing} "
                 f"(degraded batch run?)")

    errors = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=worker,
            args=(args, i, Client if i % 2 == 0 else V2Client,
                  batch_curves, errors, lock),
            daemon=True)  # the watchdog's hard exit must not wait on these
        for i in range(args.clients)
    ]
    deadline = time.monotonic() + args.run_timeout
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    if any(t.is_alive() for t in threads):
        stuck = sum(1 for t in threads if t.is_alive())
        print(f"FAIL: watchdog: {stuck}/{len(threads)} clients still "
              f"running after {args.run_timeout:.0f}s; a request hung",
              file=sys.stderr)
        sys.stderr.flush()
        os._exit(1)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        sys.exit(1)
    total = args.clients * len(REQUESTS)
    v1 = (args.clients + 1) // 2
    mode = "chaos" if args.chaos else "smoke"
    print(f"service {mode} OK: {total} responses from {v1} /1 and "
          f"{args.clients - v1} /2 concurrent clients, all cached and "
          f"identical to the batch run")


if __name__ == "__main__":
    main()
