// measure_topology: run the paper's analysis on YOUR topology.
//
// Reads an edge-list file (the format make_topology writes: '#' comments,
// then "u v" per line), runs the three basic metrics, the hierarchy
// analysis, and auxiliary statistics, and prints a report. This is the
// adoption path for downstream users: feed in any simulator topology and
// learn whether it is Internet-like (HHL + moderate hierarchy) or not.
//
// Usage: measure_topology <edge-list-file>
//        make_topology plrg 4000 | measure_topology /dev/stdin
#include <cstdio>

#include "core/suite.h"
#include "graph/components.h"
#include "graph/io.h"
#include "hierarchy/link_value.h"
#include "metrics/clustering.h"
#include "metrics/degree.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (argc != 2) {
    std::fprintf(stderr, "usage: measure_topology <edge-list-file>\n");
    return 2;
  }

  graph::Graph loaded;
  try {
    loaded = graph::ReadEdgeListFile(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const graph::Subgraph largest = graph::LargestComponent(loaded);
  const graph::Graph& g = largest.graph;
  std::printf("loaded %s (largest component of %u input nodes)\n",
              g.Summary().c_str(), loaded.num_nodes());

  core::Topology t{"input", core::Category::kCanonical, g, {}, argv[1]};
  core::SuiteOptions so;
  so.ball.max_centers = 12;
  const core::BasicMetrics m = core::RunBasicMetrics(t, so);

  std::printf("\n-- the paper's three axes --\n");
  std::printf("signature: %s  (measured Internet: HHL)\n",
              m.signature.ToString().c_str());
  std::printf("  expansion:  %c  resilience: %c  distortion: %c\n",
              metrics::ToChar(m.signature.expansion),
              metrics::ToChar(m.signature.resilience),
              metrics::ToChar(m.signature.distortion));

  std::printf("\n-- hierarchy (Section 5) --\n");
  const hierarchy::LinkValueResult lv = hierarchy::ComputeLinkValues(
      g, {.max_sources = std::min<std::size_t>(1200, g.num_nodes())});
  std::printf("hierarchy class: %s  (measured Internet: moderate)\n",
              hierarchy::ToString(hierarchy::ClassifyHierarchy(lv)));
  std::printf("value/degree correlation: %.3f\n", lv.DegreeCorrelation(g));

  std::printf("\n-- local properties --\n");
  std::printf("degree: avg %.2f, max %zu, heavy-tailed: %s "
              "(fitted beta %.2f)\n",
              g.average_degree(), g.max_degree(),
              metrics::LooksHeavyTailed(g) ? "yes" : "no",
              metrics::FitPowerLawExponent(g));
  std::printf("clustering coefficient: %.4f\n",
              metrics::ClusteringCoefficient(g));
  return 0;
}
