// hierarchy_explorer: the paper's Question #2 as a program.
//
// "Do the degree-based generators produce networks with hierarchy and, if
// so, how?" -- compute link values (Section 5) for a chosen topology,
// print its backbone (the top-valued links with the degrees of their
// endpoints), its hierarchy class, and the link-value/degree correlation
// that reveals *where* the hierarchy comes from: degree (PLRG, AS) or
// deliberate construction (Tree, TS, Tiers, RL).
//
// Usage: hierarchy_explorer [tree|mesh|random|ts|tiers|waxman|plrg|as]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>

#include "core/roster.h"
#include "hierarchy/link_value.h"

int main(int argc, char** argv) {
  using namespace topogen;
  const std::string which = argc > 1 ? argv[1] : "plrg";
  core::RosterOptions ro;
  ro.as_nodes = 2000;
  ro.plrg_nodes = 4000;

  core::Topology t;
  if (which == "tree") {
    t = core::MakeTree(ro);
  } else if (which == "mesh") {
    t = core::MakeMesh(ro);
  } else if (which == "random") {
    t = core::MakeRandom(ro);
  } else if (which == "ts") {
    t = core::MakeTransitStub(ro);
  } else if (which == "tiers") {
    t = core::MakeTiers(ro);
  } else if (which == "waxman") {
    t = core::MakeWaxman(ro);
  } else if (which == "as") {
    t = core::MakeAs(ro);
  } else if (which == "plrg") {
    t = core::MakePlrg(ro);
  } else {
    std::fprintf(stderr,
                 "unknown topology '%s' (want tree|mesh|random|ts|tiers|"
                 "waxman|plrg|as)\n",
                 which.c_str());
    return 2;
  }

  std::printf("topology: %s (%s)\n", t.name.c_str(),
              t.graph.Summary().c_str());

  const hierarchy::LinkValueResult r =
      hierarchy::ComputeLinkValues(t.graph, {.max_sources = 1000});

  // The backbone: top-valued links.
  std::vector<graph::EdgeId> order(r.value.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return r.value[a] > r.value[b];
  });
  const double n = static_cast<double>(t.graph.num_nodes());
  std::printf("\ntop backbone links (value/N, endpoint degrees):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
    const graph::Edge& e = t.graph.edges()[order[i]];
    std::printf("  %.4f  deg(%zu, %zu)\n", r.value[order[i]] / n,
                t.graph.degree(e.u), t.graph.degree(e.v));
  }

  std::printf("\nhierarchy class: %s\n",
              hierarchy::ToString(hierarchy::ClassifyHierarchy(r)));
  std::printf("link-value vs min-degree correlation: Pearson %.3f, "
              "Spearman %.3f\n",
              r.DegreeCorrelation(t.graph),
              r.DegreeRankCorrelation(t.graph));
  std::printf("\nReading (paper Section 5.2): high correlation means the\n"
              "backbone emerges from the degree distribution; low means it\n"
              "was placed there by construction.\n");
  return 0;
}
