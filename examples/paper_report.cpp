// paper_report: the whole paper in one run, as a Markdown report.
//
// Builds the roster at a configurable scale, reproduces the two headline
// tables (Section 4.4 Low/High signatures, Section 5.1 hierarchy
// groupings) and the Figure 5 correlation ranking, and writes a Markdown
// document. Handy for regression-diffing a branch against the published
// qualitative results without reading sixteen bench outputs.
//
// Usage: paper_report [output.md] [as_nodes]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/roster.h"
#include "core/suite.h"
#include "hierarchy/link_value.h"

int main(int argc, char** argv) {
  using namespace topogen;
  const std::string out_path = argc > 1 ? argv[1] : "paper_report.md";
  core::RosterOptions ro;
  ro.as_nodes = argc > 2 ? static_cast<graph::NodeId>(
                               std::strtoul(argv[2], nullptr, 10))
                         : 2500;
  ro.plrg_nodes = 2 * ro.as_nodes;
  ro.degree_based_nodes = 2 * ro.as_nodes;

  std::ofstream md(out_path);
  if (!md) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  md << "# topogen paper report\n\n"
     << "Reproduction of *Network Topology Generators: Degree-Based vs. "
        "Structural* (SIGCOMM 2002) at AS scale n="
     << ro.as_nodes << ".\n\n";

  core::SuiteOptions so;
  so.ball.max_centers = 12;
  so.ball.big_ball_centers = 4;

  md << "## Section 4.4: Low/High signatures\n\n";
  md << "| Topology | Signature | Paper |\n|---|---|---|\n";
  auto sig_row = [&](const core::Topology& t, const char* paper) {
    const auto m = core::RunBasicMetrics(t, so);
    md << "| " << t.name << " | " << m.signature.ToString() << " | " << paper
       << " |\n";
    std::printf("  %-8s %s (paper %s)\n", t.name.c_str(),
                m.signature.ToString().c_str(), paper);
  };
  std::printf("signatures:\n");
  sig_row(core::MakeTree(ro), "HLL");
  sig_row(core::MakeMesh(ro), "LHH");
  sig_row(core::MakeRandom(ro), "HHH");
  sig_row(core::MakeTransitStub(ro), "HLL");
  sig_row(core::MakeTiers(ro), "LHL");
  sig_row(core::MakeWaxman(ro), "HHH");
  sig_row(core::MakePlrg(ro), "HHL");
  sig_row(core::MakeAs(ro), "HHL");
  sig_row(core::MakeRl(ro).topology, "HHL");

  md << "\n## Section 5.1: hierarchy groupings\n\n";
  md << "| Topology | Class | Paper |\n|---|---|---|\n";
  const hierarchy::LinkValueOptions lv{.max_sources = 1000, .seed = 7};
  auto h_row = [&](const core::Topology& t, const char* paper) {
    const auto r = hierarchy::ComputeLinkValues(t.graph, lv);
    md << "| " << t.name << " | "
       << hierarchy::ToString(hierarchy::ClassifyHierarchy(r)) << " | "
       << paper << " |\n";
  };
  h_row(core::MakeTree(ro), "strict");
  h_row(core::MakeTransitStub(ro), "strict");
  h_row(core::MakeTiers(ro), "strict");
  h_row(core::MakePlrg(ro), "moderate");
  h_row(core::MakeAs(ro), "moderate");
  h_row(core::MakeMesh(ro), "loose");
  h_row(core::MakeRandom(ro), "loose");
  h_row(core::MakeWaxman(ro), "loose");

  md << "\n## Figure 5: value/degree correlation\n\n";
  md << "| Topology | Pearson |\n|---|---|\n";
  auto c_row = [&](const core::Topology& t) {
    const auto r = hierarchy::ComputeLinkValues(t.graph, lv);
    md << "| " << t.name << " | " << r.DegreeCorrelation(t.graph) << " |\n";
  };
  c_row(core::MakePlrg(ro));
  c_row(core::MakeAs(ro));
  c_row(core::MakeRandom(ro));
  c_row(core::MakeTransitStub(ro));
  c_row(core::MakeTree(ro));

  md << "\nPaper reading: PLRG tops the chart, Tree sits at the bottom -- "
        "degree-driven vs constructed hierarchy.\n";
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}
