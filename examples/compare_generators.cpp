// compare_generators: the paper's Question #1 as a program.
//
// "Which generated networks most closely model the large-scale structure
// of the Internet?" -- build the synthetic AS graph and a topology from
// each generator family, measure all of them, and rank the generators by
// how many of the three qualitative axes they share with the measured
// graph. The output reproduces the paper's conclusion: the degree-based
// family matches on all three axes, the structural family does not.
//
// Usage: compare_generators [as_nodes]   (default 2500)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/roster.h"
#include "core/suite.h"

int main(int argc, char** argv) {
  using namespace topogen;
  core::RosterOptions ro;
  ro.as_nodes = argc > 1 ? static_cast<graph::NodeId>(
                               std::strtoul(argv[1], nullptr, 10))
                         : 2500;
  ro.plrg_nodes = 2 * ro.as_nodes;
  ro.degree_based_nodes = 2 * ro.as_nodes;

  core::SuiteOptions so;
  so.ball.max_centers = 12;
  so.ball.big_ball_centers = 4;

  const core::Topology as = core::MakeAs(ro);
  const core::BasicMetrics reference = core::RunBasicMetrics(as, so);
  std::printf("reference (synthetic AS, %u nodes): %s\n\n",
              as.graph.num_nodes(), reference.signature.ToString().c_str());

  struct Scored {
    std::string name;
    std::string family;
    std::string signature;
    int score;
  };
  std::vector<Scored> board;
  auto enter = [&](const core::Topology& t, const char* family) {
    const core::BasicMetrics m = core::RunBasicMetrics(t, so);
    int score = 0;
    score += m.signature.expansion == reference.signature.expansion;
    score += m.signature.resilience == reference.signature.resilience;
    score += m.signature.distortion == reference.signature.distortion;
    board.push_back({t.name, family, m.signature.ToString(), score});
  };

  enter(core::MakeWaxman(ro), "random");
  enter(core::MakeTransitStub(ro), "structural");
  enter(core::MakeTiers(ro), "structural");
  enter(core::MakePlrg(ro), "degree-based");
  enter(core::MakeBa(ro), "degree-based");
  enter(core::MakeBrite(ro), "degree-based");
  enter(core::MakeBt(ro), "degree-based");
  enter(core::MakeInet(ro), "degree-based");

  std::printf("%-8s %-14s %-10s %s\n", "name", "family", "signature",
              "axes matching the measured AS graph");
  for (const Scored& s : board) {
    std::printf("%-8s %-14s %-10s %d/3\n", s.name.c_str(), s.family.c_str(),
                s.signature.c_str(), s.score);
  }

  std::printf("\nPaper conclusion (Section 4.4): the degree-based "
              "generators match on all three axes;\nTransit-Stub misses "
              "resilience, Tiers misses expansion, Waxman misses "
              "distortion.\n");
  return 0;
}
