// make_topology: a command-line topology generator.
//
// The downstream-user tool: emit any of the library's topologies as an
// edge list (one "u v" pair per line, '#'-prefixed header) for use in
// simulators. Structural generators accept their headline parameters.
//
// Usage:
//   make_topology <kind> [options] > edges.txt
//
// Kinds and options:
//   tree   [k depth]              complete k-ary tree
//   mesh   [rows cols]            rectangular grid
//   linear [n]                    path graph
//   random [n p]                  Erdos-Renyi G(n, p), largest component
//   waxman [n alpha beta]         Waxman random graph
//   ts     [domains tnodes stubs snodes]   Transit-Stub
//   tiers  [mans lans wan man lan]         Tiers
//   plrg   [n beta]               power-law random graph
//   ba     [n m]                  Barabasi-Albert
//   glp    [n]                    Bu-Towsley GLP ("BT")
//   inet   [n beta]               Inet-style
//   as     [n]                    synthetic measured-AS stand-in
//   seed=<uint64>                 anywhere in the argument list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gen/ba.h"
#include "gen/canonical.h"
#include "gen/inet.h"
#include "gen/measured.h"
#include "gen/plrg.h"
#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"

namespace {

using namespace topogen;

void Emit(const graph::Graph& g, const std::string& description) {
  std::printf("# topogen edge list: %s\n", description.c_str());
  std::printf("# nodes %u edges %zu avg_degree %.3f\n", g.num_nodes(),
              g.num_edges(), g.average_degree());
  for (const graph::Edge& e : g.edges()) {
    std::printf("%u %u\n", e.u, e.v);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: make_topology "
               "<tree|mesh|linear|random|waxman|ts|tiers|plrg|ba|glp|inet|"
               "as> [params...] [seed=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string kind = argv[1];
  std::vector<double> args;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "seed=", 5) == 0) {
      seed = std::strtoull(argv[i] + 5, nullptr, 10);
    } else {
      args.push_back(std::strtod(argv[i], nullptr));
    }
  }
  auto arg = [&](std::size_t i, double fallback) {
    return i < args.size() ? args[i] : fallback;
  };
  graph::Rng rng(seed);

  if (kind == "tree") {
    const unsigned k = static_cast<unsigned>(arg(0, 3));
    const unsigned d = static_cast<unsigned>(arg(1, 6));
    Emit(gen::KaryTree(k, d), "tree k=" + std::to_string(k) +
                                  " depth=" + std::to_string(d));
  } else if (kind == "mesh") {
    const unsigned r = static_cast<unsigned>(arg(0, 30));
    const unsigned c = static_cast<unsigned>(arg(1, 30));
    Emit(gen::Mesh(r, c),
         "mesh " + std::to_string(r) + "x" + std::to_string(c));
  } else if (kind == "linear") {
    Emit(gen::Linear(static_cast<graph::NodeId>(arg(0, 1000))), "linear");
  } else if (kind == "random") {
    const auto n = static_cast<graph::NodeId>(arg(0, 5050));
    const double p = arg(1, 0.0008);
    Emit(gen::ErdosRenyi(n, p, rng), "erdos-renyi");
  } else if (kind == "waxman") {
    gen::WaxmanParams p;
    p.n = static_cast<graph::NodeId>(arg(0, 5000));
    p.alpha = arg(1, 0.005);
    p.beta = arg(2, 0.30);
    Emit(gen::Waxman(p, rng), "waxman");
  } else if (kind == "ts") {
    gen::TransitStubParams p;
    p.num_transit_domains = static_cast<unsigned>(arg(0, 6));
    p.nodes_per_transit_domain = static_cast<unsigned>(arg(1, 6));
    p.stubs_per_transit_node = static_cast<unsigned>(arg(2, 3));
    p.nodes_per_stub_domain = static_cast<unsigned>(arg(3, 9));
    Emit(gen::TransitStub(p, rng), "transit-stub");
  } else if (kind == "tiers") {
    gen::TiersParams p;
    p.mans_per_wan = static_cast<unsigned>(arg(0, 50));
    p.lans_per_man = static_cast<unsigned>(arg(1, 10));
    p.nodes_per_wan = static_cast<unsigned>(arg(2, 500));
    p.nodes_per_man = static_cast<unsigned>(arg(3, 40));
    p.nodes_per_lan = static_cast<unsigned>(arg(4, 5));
    Emit(gen::Tiers(p, rng), "tiers");
  } else if (kind == "plrg") {
    gen::PlrgParams p;
    p.n = static_cast<graph::NodeId>(arg(0, 10000));
    p.exponent = arg(1, 2.246);
    Emit(gen::Plrg(p, rng), "plrg beta=" + std::to_string(p.exponent));
  } else if (kind == "ba") {
    gen::BaParams p;
    p.n = static_cast<graph::NodeId>(arg(0, 10000));
    p.m = static_cast<unsigned>(arg(1, 2));
    Emit(gen::BarabasiAlbert(p, rng), "barabasi-albert");
  } else if (kind == "glp") {
    gen::GlpParams p;
    p.n = static_cast<graph::NodeId>(arg(0, 10000));
    Emit(gen::BuTowsleyGlp(p, rng), "bu-towsley glp");
  } else if (kind == "inet") {
    gen::InetParams p;
    p.n = static_cast<graph::NodeId>(arg(0, 10000));
    p.exponent = arg(1, 2.22);
    Emit(gen::Inet(p, rng), "inet-style");
  } else if (kind == "as") {
    gen::MeasuredAsParams p;
    p.n = static_cast<graph::NodeId>(arg(0, 4000));
    const gen::AsTopology as = gen::MeasuredAs(p, rng);
    Emit(as.graph, "synthetic AS stand-in");
  } else {
    return Usage();
  }
  return 0;
}
