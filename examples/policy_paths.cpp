// policy_paths: valley-free routing on the synthetic AS graph.
//
// Demonstrates the Section 3.2.1 / Appendix E policy machinery: build the
// annotated AS topology, compare shortest and policy paths, count
// policy-unreachable pairs, and grow a policy-induced ball next to a
// plain one.
//
// Usage: policy_paths [as_nodes]   (default 1500)
#include <cstdio>
#include <cstdlib>

#include "core/roster.h"
#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "policy/paths.h"
#include "policy/policy_ball.h"

int main(int argc, char** argv) {
  using namespace topogen;
  core::RosterOptions ro;
  ro.as_nodes = argc > 1 ? static_cast<graph::NodeId>(
                               std::strtoul(argv[1], nullptr, 10))
                         : 1500;
  const core::Topology as = core::MakeAs(ro);
  const graph::Graph& g = as.graph;
  std::printf("synthetic AS graph: %s\n", g.Summary().c_str());

  // Relationship census.
  std::size_t pc = 0, peer = 0;
  for (const policy::Relationship r : as.relationship) {
    if (r == policy::Relationship::kPeerPeer) {
      ++peer;
    } else {
      ++pc;
    }
  }
  std::printf("relationships: %zu provider-customer, %zu peer-peer\n", pc,
              peer);

  // Path inflation over a sample of sources. One pooled BFS workspace
  // serves every sweep (graph/bfs.h); dist() reads back per node.
  double plain_sum = 0, policy_sum = 0;
  std::size_t pairs = 0, unreachable = 0;
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  for (graph::NodeId src = 0; src < g.num_nodes(); src += 29) {
    graph::BfsDistancesInto(g, src, *scratch);
    const auto dq = policy::PolicyDistances(g, as.relationship, src);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == src) continue;
      if (dq[v] == graph::kUnreachable) {
        ++unreachable;
        continue;
      }
      plain_sum += scratch->dist(v);
      policy_sum += dq[v];
      ++pairs;
    }
  }
  std::printf("sampled pairs: %zu policy-reachable, %zu policy-unreachable\n",
              pairs, unreachable);
  std::printf("average path length: %.3f shortest vs %.3f policy "
              "(inflation %.1f%%)\n",
              plain_sum / pairs, policy_sum / pairs,
              100.0 * (policy_sum - plain_sum) / plain_sum);

  // Ball comparison around a mid-degree node.
  graph::NodeId center = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 3 && g.degree(v) <= 6) {
      center = v;
      break;
    }
  }
  std::printf("\nballs around node %u (degree %zu):\n", center,
              g.degree(center));
  std::printf("  radius   plain-ball   policy-ball\n");
  for (graph::Dist r = 1; r <= 4; ++r) {
    graph::BallInto(g, center, r, *scratch);
    const auto pol = policy::GrowPolicyBall(g, as.relationship, center, r);
    std::printf("  %6u   %10zu   %11u\n", r, scratch->order().size(),
                pol.subgraph.graph.num_nodes());
  }
  std::printf("\nThe policy ball is never larger: valley-free routing only "
              "removes paths.\n");
  return 0;
}
