// Quickstart: generate a topology, measure it, classify it.
//
// This walks the library's three layers in ~40 lines:
//   1. gen::     build a graph (here: the paper's PLRG instance),
//   2. metrics:: run the three basic ball-growing metrics,
//   3. core::    derive the paper's Low/High signature.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/suite.h"
#include "core/topology.h"
#include "gen/plrg.h"
#include "graph/rng.h"

int main() {
  using namespace topogen;

  // 1. Generate a power-law random graph (Aiello-Chung-Lu), the paper's
  //    reference degree-based topology. Every generator takes an explicit
  //    Rng so runs are reproducible.
  graph::Rng rng(/*seed=*/2002);
  gen::PlrgParams params;
  params.n = 4000;        // nodes before largest-component extraction
  params.exponent = 2.246;  // the paper's beta
  core::Topology topology{"PLRG", core::Category::kDegreeBased,
                          gen::Plrg(params, rng), {}, "quickstart"};

  std::printf("generated: %s\n", topology.graph.Summary().c_str());

  // 2+3. Run expansion / resilience / distortion and classify.
  core::SuiteOptions options;
  options.ball.max_centers = 12;  // sampled ball centers; more = smoother
  const core::BasicMetrics metrics = core::RunBasicMetrics(topology, options);

  std::printf("expansion points: %zu (E(1)=%.4f .. E(%g)=%.4f)\n",
              metrics.expansion.size(), metrics.expansion.y.front(),
              metrics.expansion.x.back(), metrics.expansion.y.back());
  std::printf("resilience at largest ball: R(%.0f) = %.1f\n",
              metrics.resilience.x.back(), metrics.resilience.y.back());
  std::printf("distortion at largest ball: D(%.0f) = %.2f\n",
              metrics.distortion.x.back(), metrics.distortion.y.back());
  std::printf("low/high signature: %s  (the Internet measures HHL)\n",
              metrics.signature.ToString().c_str());
  return 0;
}
