// Figures 3 and 4: link-value rank distributions, plus the Section 5.1
// strict/moderate/loose grouping table.
//
// The two figures plot the same data at different emphases (Figure 3:
// log-x, highlighting the top-ranked links; Figure 4: linear-x log-y,
// showing the whole distribution); we emit the full series once per
// topology, in rank order, which regenerates both.
//
// Paper shape: Tree/TS have top values above 0.3 and Tiers near 0.25 with
// sharp fall-offs (strict); AS/RL/PLRG fall off as sharply but from much
// lower tops (moderate); Mesh/Random/Waxman spread value across most
// links (loose). Policy raises the measured graphs' top values.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "linkvalue_common.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figures 3/4: link value rank distributions (scale=%s)\n",
              bench::ScaleName().c_str());

  std::vector<bench::AnalyzedTopology> canonical;
  canonical.push_back(bench::Analyze(session, "Tree"));
  canonical.push_back(bench::Analyze(session, "Mesh"));
  canonical.push_back(bench::Analyze(session, "Random"));

  std::vector<bench::AnalyzedTopology> measured;
  measured.push_back(bench::AnalyzeRl(session));
  measured.push_back(bench::Analyze(session, "AS"));

  std::vector<bench::AnalyzedTopology> generated;
  generated.push_back(bench::Analyze(session, "TS"));
  generated.push_back(bench::Analyze(session, "Tiers"));
  generated.push_back(bench::Analyze(session, "Waxman"));
  generated.push_back(bench::Analyze(session, "PLRG"));

  auto panel = [](const char* id, const char* title,
                  const std::vector<bench::AnalyzedTopology>& group,
                  bool with_policy) {
    std::vector<metrics::Series> curves;
    for (const bench::AnalyzedTopology& t : group) {
      metrics::Series s = t.plain->RankDistribution();
      s.name = t.name;
      curves.push_back(std::move(s));
      if (with_policy && t.policy != nullptr) {
        metrics::Series p = t.policy->RankDistribution();
        p.name = t.name + "(Policy)";
        curves.push_back(std::move(p));
      }
    }
    core::PrintPanel(std::cout, id, title, curves);
  };
  panel("3a", "Link values, Canonical", canonical, false);
  panel("3b", "Link values, Measured", measured, true);
  panel("3c", "Link values, Generated", generated, false);

  // Section 5.1's grouping table.
  std::printf("# Section 5.1 groupings (paper: Tree/TS/Tiers strict; "
              "AS/RL/PLRG moderate; Mesh/Random/Waxman loose)\n");
  core::PrintTableHeader(std::cout,
                         {"Topology", "TopValue", "Flatness", "Class"});
  auto row = [](const std::string& name,
                const hierarchy::LinkValueResult& r) {
    const double n = static_cast<double>(r.num_nodes);
    std::vector<double> sorted(r.value);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const double top = sorted.empty() ? 0.0 : sorted.front() / n;
    // Flatness = median / 1st-percentile value, the classifier's loose
    // criterion (see hierarchy::HierarchyClassOptions).
    const double near_top =
        sorted.empty() ? 0.0 : sorted[sorted.size() / 100] / n;
    const double median =
        sorted.empty() ? 0.0 : sorted[sorted.size() / 2] / n;
    core::PrintTableRow(
        std::cout,
        {name, core::Num(top, 3),
         core::Num(near_top > 0 ? median / near_top : 0.0, 3),
         hierarchy::ToString(hierarchy::ClassifyHierarchy(r))});
  };
  for (const auto& t : canonical) row(t.name, *t.plain);
  for (const auto& t : generated) row(t.name, *t.plain);
  for (const auto& t : measured) {
    row(t.name, *t.plain);
    if (t.policy != nullptr) row(t.name + "(Policy)", *t.policy);
  }
  return bench::Finish(0);
}
