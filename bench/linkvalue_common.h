// Shared link-value computation for the Section 5 benches (Figures 3, 4,
// 5, 14). Handles the paper's RL special case: link values are computed
// on the RL *core* (degree-1 nodes recursively removed, footnote 29),
// with relationships remapped onto the core's edges.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "graph/components.h"
#include "hierarchy/link_value.h"
#include "policy/paths.h"

namespace topogen::bench {

struct AnalyzedTopology {
  std::string name;
  graph::Graph graph;
  std::vector<policy::Relationship> relationship;  // empty: no policy run
  hierarchy::LinkValueResult plain;
  hierarchy::LinkValueResult policy;  // only when relationship nonempty
};

inline hierarchy::LinkValueOptions LinkValueOpts() {
  return {.max_sources = LinkValueSources(), .seed = 23};
}

inline AnalyzedTopology Analyze(core::Topology t) {
  AnalyzedTopology out;
  out.name = std::move(t.name);
  out.graph = std::move(t.graph);
  out.relationship = std::move(t.relationship);
  out.plain = hierarchy::ComputeLinkValues(out.graph, LinkValueOpts());
  if (!out.relationship.empty()) {
    out.policy = hierarchy::ComputePolicyLinkValues(
        out.graph, out.relationship, LinkValueOpts());
  }
  return out;
}

// The RL topology analyzed on its FULL graph with sampled sources.
//
// Deviation from the paper, documented in EXPERIMENTS.md: the paper
// pruned the real RL map to its degree->=2 core for tractability and
// observed the core's link values stay qualitatively similar (footnote
// 29). Our synthetic RL concentrates nearly all of its value skew in the
// access tier -- recursively pruning it deletes every single-router
// "stub pod" and leaves an artificially flat core -- so we analyze the
// full graph, which our sampled estimator makes affordable at bench
// scale. AnalyzeRlCore remains available for the core variant.
inline AnalyzedTopology AnalyzeRl(const core::RlArtifacts& rl);

// Above this size the estimator's descendant bitsets (O(n^2) bits, twice
// that for the policy automaton) stop fitting in memory, and we do what
// the paper did at 170k nodes: prune to the core (footnote 29).
inline constexpr graph::NodeId kFullGraphLinkValueCap = 40000;

inline AnalyzedTopology AnalyzeRlCore(const core::RlArtifacts& rl);

inline AnalyzedTopology AnalyzeRl(const core::RlArtifacts& rl) {
  if (rl.topology.graph.num_nodes() > kFullGraphLinkValueCap) {
    std::fprintf(stderr,
                 "# note: RL graph (%u nodes) exceeds the full-graph "
                 "link-value cap; analyzing the pruned core instead, as "
                 "the paper did (footnote 29)\n",
                 rl.topology.graph.num_nodes());
    return AnalyzeRlCore(rl);
  }
  AnalyzedTopology out;
  out.name = "RL";
  out.graph = rl.topology.graph;
  out.relationship = rl.topology.relationship;
  out.plain = hierarchy::ComputeLinkValues(out.graph, LinkValueOpts());
  out.policy = hierarchy::ComputePolicyLinkValues(out.graph,
                                                  out.relationship,
                                                  LinkValueOpts());
  return out;
}

// The RL graph analyzed on its core, with relationships carried over
// (the paper's footnote-29 method).
inline AnalyzedTopology AnalyzeRlCore(const core::RlArtifacts& rl) {
  AnalyzedTopology out;
  out.name = "RL.core";
  graph::Subgraph core = graph::CoreGraph(rl.topology.graph);
  out.relationship.reserve(core.graph.num_edges());
  for (const graph::Edge& e : core.graph.edges()) {
    const graph::NodeId ou = core.original_id[e.u];
    const graph::NodeId ov = core.original_id[e.v];
    const graph::EdgeId full = rl.topology.graph.edge_id(ou, ov);
    out.relationship.push_back(rl.topology.relationship[full]);
  }
  out.graph = std::move(core.graph);
  out.plain = hierarchy::ComputeLinkValues(out.graph, LinkValueOpts());
  out.policy = hierarchy::ComputePolicyLinkValues(out.graph,
                                                  out.relationship,
                                                  LinkValueOpts());
  return out;
}

}  // namespace topogen::bench
