// Shared link-value access for the Section 5 benches (Figures 3, 4, 5,
// 14), on top of the session's cached artifacts. Handles the paper's RL
// special case: link values are computed on the RL *core* (degree-1 nodes
// recursively removed, footnote 29) when the full graph is too large,
// with relationships remapped onto the core's edges (the session's
// "RL.core" topology).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "hierarchy/link_value.h"

namespace topogen::bench {

// A topology plus its (session-cached) link-value results. All pointers
// are owned by the session and stable for the life of the process.
struct AnalyzedTopology {
  std::string name;
  const core::Topology* topology = nullptr;
  const hierarchy::LinkValueResult* plain = nullptr;
  const hierarchy::LinkValueResult* policy = nullptr;  // null: no policy run

  const graph::Graph& graph() const { return topology->graph; }
};

inline AnalyzedTopology Analyze(core::Session& session, std::string_view id) {
  AnalyzedTopology out;
  out.topology = &session.Topology(id);
  out.name = out.topology->name;
  out.plain = &session.LinkValues(id);
  if (out.topology->has_policy()) {
    out.policy = &session.LinkValues(id, /*use_policy=*/true);
  }
  return out;
}

// Above this size the estimator's descendant bitsets (O(n^2) bits, twice
// that for the policy automaton) stop fitting in memory, and we do what
// the paper did at 170k nodes: prune to the core (footnote 29).
inline constexpr graph::NodeId kFullGraphLinkValueCap = 40000;

// The RL graph analyzed on its core, with relationships carried over
// (the paper's footnote-29 method).
inline AnalyzedTopology AnalyzeRlCore(core::Session& session) {
  return Analyze(session, "RL.core");
}

// The RL topology analyzed on its FULL graph with sampled sources.
//
// Deviation from the paper, documented in EXPERIMENTS.md: the paper
// pruned the real RL map to its degree->=2 core for tractability and
// observed the core's link values stay qualitatively similar (footnote
// 29). Our synthetic RL concentrates nearly all of its value skew in the
// access tier -- recursively pruning it deletes every single-router
// "stub pod" and leaves an artificially flat core -- so we analyze the
// full graph, which our sampled estimator makes affordable at bench
// scale. AnalyzeRlCore remains available for the core variant.
inline AnalyzedTopology AnalyzeRl(core::Session& session) {
  const core::Topology& rl = session.Topology("RL");
  if (rl.graph.num_nodes() > kFullGraphLinkValueCap) {
    std::fprintf(stderr,
                 "# note: RL graph (%u nodes) exceeds the full-graph "
                 "link-value cap; analyzing the pruned core instead, as "
                 "the paper did (footnote 29)\n",
                 rl.graph.num_nodes());
    return AnalyzeRlCore(session);
  }
  return Analyze(session, "RL");
}

}  // namespace topogen::bench
