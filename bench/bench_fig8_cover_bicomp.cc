// Figure 8 (Appendix B): (a-c) vertex cover of ball subgraphs; (d-f)
// biconnected components within balls.
//
// Paper shape: vertex covers of all graphs grow similarly with ball size;
// biconnectivity likewise except Mesh, Random, and Waxman (whose balls
// fuse into few biconnected components).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/cover_bicomp.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  const core::SuiteOptions so = bench::Suite();
  std::printf("# Figure 8: vertex cover and biconnectivity vs ball size "
              "(scale=%s)\n",
              bench::ScaleName().c_str());

  auto cover = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::VertexCoverSeries(t.graph, so.ball);
    s.name = t.name;
    return s;
  };
  auto bicomp = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::BiconnectivitySeries(t.graph, so.ball);
    s.name = t.name;
    return s;
  };

  std::vector<metrics::Series> c1, c2, c3, b1, b2, b3;
  for (const char* id : {"Tree", "Mesh", "Random"}) {
    c1.push_back(cover(id));
    b1.push_back(bicomp(id));
  }
  c2 = {cover("RL"), cover("AS"), cover("PLRG")};
  b2 = {bicomp("RL"), bicomp("AS"), bicomp("PLRG")};
  for (const char* id : {"TS", "Tiers", "Waxman"}) {
    c3.push_back(cover(id));
    b3.push_back(bicomp(id));
  }
  core::PrintPanel(std::cout, "8a", "Vertex cover, Canonical", c1);
  core::PrintPanel(std::cout, "8b", "Vertex cover, Measured", c2);
  core::PrintPanel(std::cout, "8c", "Vertex cover, Generated", c3);
  core::PrintPanel(std::cout, "8d", "Biconnected components, Canonical", b1);
  core::PrintPanel(std::cout, "8e", "Biconnected components, Measured", b2);
  core::PrintPanel(std::cout, "8f", "Biconnected components, Generated", b3);

  // Shape check: per Section 4.4, biconnectivity behaves alike everywhere
  // except Mesh/Random/Waxman, whose final ball has almost no cut
  // vertices. Compare final bicomp count per node.
  auto final_per_node = [](const metrics::Series& s) {
    return s.empty() ? 0.0 : s.y.back() / s.x.back();
  };
  std::printf("# Shape check: final biconnected components per ball node\n");
  for (const auto& s : b1) {
    std::printf("#   %-8s %.3f\n", s.name.c_str(), final_per_node(s));
  }
  for (const auto& s : b2) {
    std::printf("#   %-8s %.3f\n", s.name.c_str(), final_per_node(s));
  }
  for (const auto& s : b3) {
    std::printf("#   %-8s %.3f\n", s.name.c_str(), final_per_node(s));
  }
  return bench::Finish(0);
}
