// Figure 13 (Appendix D.1): B-A and Brite graphs rewired with the PLRG
// connectivity method ("modified B-A" / "modified Brite") versus the
// originals, on the three basic metrics.
//
// Paper conclusion: "what seems to determine the qualitative behavior of
// these degree-based generators is the degree distribution, not the
// connectivity method" -- the rewired graphs track the originals.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "fig2_panels.h"
#include "gen/degree_seq.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 13: PLRG-reconnected variants (scale=%s)\n",
              bench::ScaleName().c_str());

  // Originals come from the session cache; the rewired one-offs are
  // derived graphs with no roster identity, so they run directly.
  const std::vector<core::Session::MetricsRequest> requests = {
      {"B-A"}, {"Brite"}, {"BT"}};
  const std::vector<const core::BasicMetrics*> original_metrics =
      session.MetricsBatch(requests);

  std::vector<core::Topology> modified;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const core::Topology& orig = session.Topology(requests[i].id);
    graph::Rng rng(31 + i);
    core::Topology m;
    m.name = "Modified " + orig.name;
    m.category = core::Category::kDegreeBased;
    m.graph = gen::ReconnectWithPlrg(orig.graph, rng);
    m.comment = "degree sequence of " + orig.name + ", PLRG connectivity";
    modified.push_back(std::move(m));
  }
  std::vector<core::SuiteJob> jobs;
  for (const core::Topology& t : modified) {
    jobs.push_back({&t, bench::Suite()});
  }
  const std::vector<core::BasicMetrics> modified_metrics =
      core::RunBasicMetricsBatch(jobs);

  std::vector<metrics::Series> expansion, resilience, distortion;
  for (const core::BasicMetrics* b : original_metrics) {
    expansion.push_back(b->expansion);
    resilience.push_back(b->resilience);
    distortion.push_back(b->distortion);
  }
  for (const core::BasicMetrics& b : modified_metrics) {
    expansion.push_back(b.expansion);
    resilience.push_back(b.resilience);
    distortion.push_back(b.distortion);
  }
  core::PrintPanel(std::cout, "13a", "Expansion, Original vs Modified",
                   expansion);
  core::PrintPanel(std::cout, "13b", "Resilience, Original vs Modified",
                   resilience);
  core::PrintPanel(std::cout, "13c", "Distortion, Original vs Modified",
                   distortion);

  std::printf("# Shape check: every modified graph keeps its original's "
              "signature\n");
  bool ok = true;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& orig = original_metrics[i]->signature;
    const auto& mod = modified_metrics[i].signature;
    std::printf("#   %-6s %s -> %s %s\n", requests[i].id.c_str(),
                orig.ToString().c_str(), mod.ToString().c_str(),
                orig == mod ? "ok" : "MISMATCH");
    ok &= orig == mod;
  }
  return bench::Finish(ok ? 0 : 1);
}
