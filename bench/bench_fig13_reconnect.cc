// Figure 13 (Appendix D.1): B-A and Brite graphs rewired with the PLRG
// connectivity method ("modified B-A" / "modified Brite") versus the
// originals, on the three basic metrics.
//
// Paper conclusion: "what seems to determine the qualitative behavior of
// these degree-based generators is the degree distribution, not the
// connectivity method" -- the rewired graphs track the originals.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "fig2_panels.h"
#include "gen/degree_seq.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  std::printf("# Figure 13: PLRG-reconnected variants (scale=%s)\n",
              bench::ScaleName().c_str());

  std::vector<core::Topology> roster;
  roster.push_back(core::MakeBa(ro));
  roster.push_back(core::MakeBrite(ro));
  roster.push_back(core::MakeBt(ro));
  const std::size_t originals = roster.size();
  for (std::size_t i = 0; i < originals; ++i) {
    graph::Rng rng(31 + i);
    core::Topology modified;
    modified.name = "Modified " + roster[i].name;
    modified.category = core::Category::kDegreeBased;
    modified.graph = gen::ReconnectWithPlrg(roster[i].graph, rng);
    modified.comment = "degree sequence of " + roster[i].name +
                       ", PLRG connectivity";
    roster.push_back(std::move(modified));
  }

  std::vector<metrics::Series> expansion, resilience, distortion;
  for (const core::Topology& t : roster) {
    expansion.push_back(
        bench::Compute(bench::BasicMetric::kExpansion, t, false));
    resilience.push_back(
        bench::Compute(bench::BasicMetric::kResilience, t, false));
    distortion.push_back(
        bench::Compute(bench::BasicMetric::kDistortion, t, false));
  }
  core::PrintPanel(std::cout, "13a", "Expansion, Original vs Modified",
                   expansion);
  core::PrintPanel(std::cout, "13b", "Resilience, Original vs Modified",
                   resilience);
  core::PrintPanel(std::cout, "13c", "Distortion, Original vs Modified",
                   distortion);

  std::printf("# Shape check: every modified graph keeps its original's "
              "signature\n");
  bool ok = true;
  for (std::size_t i = 0; i < originals; ++i) {
    const auto orig =
        metrics::Classify(expansion[i], resilience[i], distortion[i]);
    const auto mod = metrics::Classify(expansion[originals + i],
                                       resilience[originals + i],
                                       distortion[originals + i]);
    std::printf("#   %-6s %s -> %s %s\n", roster[i].name.c_str(),
                orig.ToString().c_str(), mod.ToString().c_str(),
                orig == mod ? "ok" : "MISMATCH");
    ok &= orig == mod;
  }
  return ok ? 0 : 1;
}
