// Million-node scale harness: generation wall time at n in {1e5, 1e6}
// for the three parallelized generators (PLRG, BA, Waxman), then sampled
// expansion and ball-growing estimators (metrics/sample.h, the "xl" tier
// spec) on the million-node PLRG graph -- the regime where exhaustive
// per-source sweeps stop being feasible and the paper's metrics must come
// from confidence-interval-backed samples instead.
//
// Results merge into the same BENCH.json as bench_perf and bench_service
// (schema topogen-bench/3, path override TOPOGEN_BENCH_JSON). When
// TOPOGEN_OUTDIR is set, the sampled expansion curve is exported as a
// figure and stamped into manifest.json with its estimator metadata
// (centers, stream, budget, worst CI half-width) -- CI's scale-smoke job
// validates exactly that record.
//
//   bench_scale            full matrix: {1e5, 1e6} x {plrg, ba, waxman}
//   bench_scale --smoke    one n=1e6 PLRG + sampled metrics (CI budget)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/report.h"
#include "core/scale.h"
#include "gen/ba.h"
#include "gen/plrg.h"
#include "gen/waxman.h"
#include "graph/graph.h"
#include "graph/rng.h"
#include "metrics/ball.h"
#include "metrics/expansion.h"
#include "metrics/sample.h"
#include "obs/manifest.h"
#include "parallel/pool.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 42;

double ElapsedNs(const Clock::time_point& begin) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count());
}

// One timed kernel, `reps` repetitions; percentiles over the rep times
// (with reps=1 every percentile is the single measurement, which is the
// honest shape for a kernel too big to repeat).
template <typename Fn>
topogen::bench::JsonRecord Time(const std::string& name,
                                const std::string& kernel,
                                const std::string& family, std::int64_t n,
                                int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point begin = Clock::now();
    fn();
    times.push_back(ElapsedNs(begin));
  }
  std::sort(times.begin(), times.end());
  const auto pct = [&times](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(times.size() - 1) + 0.5);
    return times[std::min(idx, times.size() - 1)];
  };
  double sum = 0.0;
  for (const double t : times) sum += t;

  topogen::bench::JsonRecord rec;
  rec.name = name;
  rec.kernel = kernel;
  rec.family = family;
  rec.n = n;
  rec.threads = topogen::parallel::Pool::Get().threads();
  rec.ns_per_op = sum / static_cast<double>(times.size());
  rec.p50_ns = pct(0.50);
  rec.p90_ns = pct(0.90);
  rec.p99_ns = pct(0.99);
  rec.max_ns = times.back();
  std::printf("%-34s n=%-9lld %3d rep(s)  %10.1f ms/op\n", name.c_str(),
              static_cast<long long>(n), reps, rec.ns_per_op / 1e6);
  std::fflush(stdout);
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  topogen::obs::Manifest::SetTool("bench_scale");
  std::vector<topogen::bench::JsonRecord> records;

  // --- Generation matrix -------------------------------------------------
  // Waxman's alpha shrinks as 25/n so expected degree stays constant
  // across sizes (bench_perf's n=2000 point uses the same convention);
  // without it the edge count -- and the run time -- would grow as n^2.
  const std::vector<std::int64_t> sizes =
      smoke ? std::vector<std::int64_t>{1000000}
            : std::vector<std::int64_t>{100000, 1000000};
  for (const std::int64_t n : sizes) {
    const int reps = n >= 1000000 ? 1 : 3;
    const auto node_count = static_cast<topogen::graph::NodeId>(n);
    records.push_back(Time(
        "BM_ScaleGeneratePlrg/" + std::to_string(n), "generate", "plrg", n,
        reps, [node_count] {
          topogen::graph::Rng rng(kSeed);
          topogen::gen::Plrg({.n = node_count}, rng);
        }));
    if (smoke) break;  // smoke: one PLRG build, then straight to metrics
    records.push_back(Time(
        "BM_ScaleGenerateBa/" + std::to_string(n), "generate", "ba", n, reps,
        [node_count] {
          topogen::graph::Rng rng(kSeed);
          topogen::gen::BarabasiAlbert({.n = node_count}, rng);
        }));
    records.push_back(Time(
        "BM_ScaleGenerateWaxman/" + std::to_string(n), "generate", "waxman",
        n, reps, [node_count, n] {
          topogen::graph::Rng rng(kSeed);
          topogen::gen::Waxman(
              {.n = node_count, .alpha = 25.0 / static_cast<double>(n)},
              rng);
        }));
  }

  // --- Sampled estimators on the million-node PLRG -----------------------
  // The xl tier's SampleSpec: the exact configuration ScaledSuiteOptions
  // hands topogend and the figure harness at TOPOGEN_SCALE=xl.
  const topogen::metrics::SampleSpec sample =
      topogen::core::ScaledSuiteOptions("xl").sample;
  topogen::graph::Rng rng(kSeed);
  const topogen::graph::Graph g =
      topogen::gen::Plrg({.n = 1000000}, rng);
  std::printf("plrg graph: %u nodes, %zu edges (largest component)\n",
              g.num_nodes(), g.num_edges());
  topogen::obs::Manifest::AddTopology(
      "PLRG-1M", g.num_nodes(), g.num_edges(),
      "n=1000000 exponent=2.246 seed=" + std::to_string(kSeed));

  topogen::metrics::Series expansion;
  records.push_back(Time(
      "BM_ScaleExpansionSampled/1000000", "expansion", "plrg",
      static_cast<std::int64_t>(g.num_nodes()), 1, [&g, &sample, &expansion] {
        topogen::metrics::ExpansionOptions opts;
        opts.sample = sample;
        expansion = topogen::metrics::Expansion(g, opts);
      }));

  topogen::metrics::Series ball;
  records.push_back(Time(
      "BM_ScaleBallSampled/1000000", "ball", "plrg",
      static_cast<std::int64_t>(g.num_nodes()), 1, [&g, &sample, &ball] {
        topogen::metrics::BallGrowingOptions opts;
        opts.max_ball_nodes = sample.expansion_budget;
        opts.big_ball_threshold = sample.expansion_budget;
        opts.sample = sample;
        ball = topogen::metrics::BallGrowingSeries(
            g, opts,
            [](const topogen::graph::Graph& b, topogen::graph::Rng&) {
              return b.num_nodes() == 0
                         ? 0.0
                         : 2.0 * static_cast<double>(b.num_edges()) /
                               static_cast<double>(b.num_nodes());
            });
      }));

  if (!expansion.has_error() || expansion.y.empty()) {
    std::fprintf(stderr,
                 "bench_scale: sampled expansion produced no CI-backed "
                 "series\n");
    return 1;
  }
  double max_ci = 0.0;
  for (const double e : expansion.yerr) max_ci = std::max(max_ci, e);
  std::printf("sampled expansion: %zu radii, worst ci halfwidth %.3g\n",
              expansion.y.size(), max_ci);

  // Figure + estimator provenance (no-ops unless TOPOGEN_OUTDIR is set;
  // PrintPanel itself exports the figure and registers it).
  expansion.name = "PLRG 10^6 (sampled)";
  topogen::core::PrintPanel(std::cout, "scale-expansion",
                            "Expansion E(h), sampled estimator, n=10^6",
                            {expansion});
  topogen::obs::Manifest::AddEstimator("scale-expansion", "expansion",
                                       sample.centers, sample.seed,
                                       sample.expansion_budget, max_ci);
  if (ball.has_error()) {
    double ball_ci = 0.0;
    for (const double e : ball.yerr) ball_ci = std::max(ball_ci, e);
    topogen::obs::Manifest::AddEstimator("scale-expansion", "ball_avg_degree",
                                         sample.centers, sample.seed,
                                         sample.expansion_budget, ball_ci);
  }

  const std::string out = topogen::bench::BenchJsonPath();
  if (!topogen::bench::MergeIntoBenchJson(out, records)) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
