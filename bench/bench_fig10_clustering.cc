// Figure 10 (Appendix B): clustering coefficient of ball subgraphs, plus
// the whole-graph clustering comparison the Section 4.4 discussion draws
// its closing caveat from.
//
// Paper shape: under ball-growing, PLRG tracks the AS graph but not the
// RL graph; on whole graphs, PLRG's clustering coefficient differs from
// both measured graphs -- "PLRG captures the large-scale properties ...
// [but] may not capture the local properties".
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/clustering.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  const core::SuiteOptions so = bench::Suite();
  std::printf("# Figure 10: clustering coefficient vs ball size "
              "(scale=%s)\n",
              bench::ScaleName().c_str());

  auto curve = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::ClusteringSeries(t.graph, so.ball);
    s.name = t.name;
    return s;
  };

  core::PrintPanel(std::cout, "10a", "Clustering, Canonical",
                   {curve("Tree"), curve("Mesh"), curve("Random")});
  core::PrintPanel(std::cout, "10b", "Clustering, Measured",
                   {curve("RL"), curve("AS"), curve("PLRG")});
  core::PrintPanel(std::cout, "10c", "Clustering, Generated",
                   {curve("TS"), curve("Tiers"), curve("Waxman")});

  // Whole-graph coefficients (the Section 4.4 caveat).
  std::printf("# Whole-graph clustering coefficients\n");
  core::PrintTableHeader(std::cout, {"Topology", "Clustering"});
  auto row = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    core::PrintTableRow(
        std::cout,
        {t.name, core::Num(metrics::ClusteringCoefficient(t.graph), 4)});
  };
  for (const char* id : {"AS", "RL", "PLRG", "Tree", "Mesh", "Random", "TS",
                         "Tiers", "Waxman"}) {
    row(id);
  }
  return bench::Finish(0);
}
