// Figure 10 (Appendix B): clustering coefficient of ball subgraphs, plus
// the whole-graph clustering comparison the Section 4.4 discussion draws
// its closing caveat from.
//
// Paper shape: under ball-growing, PLRG tracks the AS graph but not the
// RL graph; on whole graphs, PLRG's clustering coefficient differs from
// both measured graphs -- "PLRG captures the large-scale properties ...
// [but] may not capture the local properties".
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/clustering.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  const core::SuiteOptions so = bench::Suite();
  std::printf("# Figure 10: clustering coefficient vs ball size "
              "(scale=%s)\n",
              bench::ScaleName().c_str());

  auto curve = [&](const std::string& name, const graph::Graph& g) {
    metrics::Series s = metrics::ClusteringSeries(g, so.ball);
    s.name = name;
    return s;
  };

  const core::RlArtifacts rl = core::MakeRl(ro);
  const core::Topology as = core::MakeAs(ro);
  const core::Topology plrg = core::MakePlrg(ro);

  std::vector<metrics::Series> c1;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    c1.push_back(curve(t.name, t.graph));
  }
  core::PrintPanel(std::cout, "10a", "Clustering, Canonical", c1);
  core::PrintPanel(std::cout, "10b", "Clustering, Measured",
                   {curve("RL", rl.topology.graph), curve("AS", as.graph),
                    curve("PLRG", plrg.graph)});
  std::vector<metrics::Series> c3;
  for (const core::Topology& t :
       {core::MakeTransitStub(ro), core::MakeTiers(ro),
        core::MakeWaxman(ro)}) {
    c3.push_back(curve(t.name, t.graph));
  }
  core::PrintPanel(std::cout, "10c", "Clustering, Generated", c3);

  // Whole-graph coefficients (the Section 4.4 caveat).
  std::printf("# Whole-graph clustering coefficients\n");
  core::PrintTableHeader(std::cout, {"Topology", "Clustering"});
  auto row = [](const std::string& name, const graph::Graph& g) {
    core::PrintTableRow(std::cout,
                        {name, core::Num(metrics::ClusteringCoefficient(g),
                                         4)});
  };
  row("AS", as.graph);
  row("RL", rl.topology.graph);
  row("PLRG", plrg.graph);
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    row(t.name, t.graph);
  }
  row("TS", core::MakeTransitStub(ro).graph);
  row("Tiers", core::MakeTiers(ro).graph);
  row("Waxman", core::MakeWaxman(ro).graph);
  return 0;
}
