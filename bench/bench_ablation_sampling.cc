// Ablation: methodology robustness of the ball-growing estimates.
//
// The paper samples ball centers "for larger subgraphs ... for a
// sufficiently large number of randomly chosen nodes". This bench
// quantifies how many centers the qualitative classification actually
// needs: the Section 4.4 signature of a PLRG and the AS stand-in must be
// stable from very few centers up, and the link-value classification
// stable across source subsampling -- the evidence behind the harness'
// default budgets.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/suite.h"
#include "hierarchy/link_value.h"

// The sweeps below vary sampling budgets, so each run computes directly;
// the topologies themselves still come from the session cache.
int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Ablation: sampling budgets (scale=%s)\n",
              bench::ScaleName().c_str());
  const core::Topology& plrg = session.Topology("PLRG");
  const core::Topology& as = session.Topology("AS");

  std::printf("# Signature vs ball-center budget\n");
  core::PrintTableHeader(std::cout, {"Centers", "PLRG", "AS"});
  bool stable = true;
  std::string ref_plrg, ref_as;
  for (const std::size_t centers : {4u, 8u, 16u, 32u}) {
    core::SuiteOptions so = bench::Suite();
    so.ball.max_centers = centers;
    so.ball.big_ball_centers = std::max<std::size_t>(2, centers / 4);
    const std::string sp = core::RunBasicMetrics(plrg, so).signature.ToString();
    const std::string sa = core::RunBasicMetrics(as, so).signature.ToString();
    if (ref_plrg.empty()) {
      ref_plrg = sp;
      ref_as = sa;
    }
    stable &= sp == ref_plrg && sa == ref_as;
    core::PrintTableRow(std::cout,
                        {core::Num(static_cast<double>(centers)), sp, sa});
  }

  std::printf("\n# Hierarchy class vs link-value source budget (AS)\n");
  core::PrintTableHeader(std::cout, {"Sources", "Class", "TopValue"});
  hierarchy::HierarchyClass ref_class{};
  bool first = true;
  for (const std::size_t sources : {300u, 600u, 1200u}) {
    const hierarchy::LinkValueResult lv = hierarchy::ComputeLinkValues(
        as.graph, {.max_sources = sources, .seed = 23});
    const auto cls = hierarchy::ClassifyHierarchy(lv);
    if (first) {
      ref_class = cls;
      first = false;
    }
    stable &= cls == ref_class;
    double top = 0;
    for (double v : lv.value) top = std::max(top, v);
    core::PrintTableRow(
        std::cout,
        {core::Num(static_cast<double>(sources)), hierarchy::ToString(cls),
         core::Num(top / as.graph.num_nodes(), 3)});
  }
  std::printf("\n# %s\n", stable ? "stable across budgets"
                                 : "UNSTABLE across budgets");
  return bench::Finish(stable ? 0 : 1);
}
