// Figure 5: correlation between a link's value and the lower degree of
// its endpoint nodes, for all nine topologies (plus policy variants).
//
// Paper shape: PLRG highest (its hierarchy comes entirely from the degree
// distribution); Waxman/Random/AS relatively high; Mesh/TS/Tiers/RL
// relatively low (hierarchy by construction); Tree lowest. We print
// Pearson (the paper's bar chart) and Spearman (robust to the value
// distribution's heavy tail) side by side.
#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "linkvalue_common.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 5: link value vs min endpoint degree (scale=%s)\n",
              bench::ScaleName().c_str());
  core::PrintTableHeader(std::cout, {"Topology", "Pearson", "Spearman"});

  auto row = [](const std::string& name, const graph::Graph& g,
                const hierarchy::LinkValueResult& r) {
    core::PrintTableRow(std::cout, {name, core::Num(r.DegreeCorrelation(g), 3),
                                    core::Num(r.DegreeRankCorrelation(g), 3)});
  };

  const bench::AnalyzedTopology plrg = bench::Analyze(session, "PLRG");
  row(plrg.name, plrg.graph(), *plrg.plain);
  const bench::AnalyzedTopology waxman = bench::Analyze(session, "Waxman");
  row(waxman.name, waxman.graph(), *waxman.plain);
  const bench::AnalyzedTopology random = bench::Analyze(session, "Random");
  row(random.name, random.graph(), *random.plain);
  const bench::AnalyzedTopology as = bench::Analyze(session, "AS");
  row(as.name, as.graph(), *as.plain);
  row(as.name + "(Policy)", as.graph(), *as.policy);
  const bench::AnalyzedTopology ts = bench::Analyze(session, "TS");
  row(ts.name, ts.graph(), *ts.plain);
  const bench::AnalyzedTopology mesh = bench::Analyze(session, "Mesh");
  row(mesh.name, mesh.graph(), *mesh.plain);
  const bench::AnalyzedTopology tiers = bench::Analyze(session, "Tiers");
  row(tiers.name, tiers.graph(), *tiers.plain);
  // The paper computes RL link values on the pruned core (footnote 29);
  // for THIS figure that choice is substantive, not just a cost saving:
  // on the full graph the value-1/degree-1 access tier dominates Pearson
  // and manufactures a high correlation. The core is the faithful object.
  const bench::AnalyzedTopology rl = bench::AnalyzeRlCore(session);
  row(rl.name, rl.graph(), *rl.plain);
  row(rl.name + "(Policy)", rl.graph(), *rl.policy);
  const bench::AnalyzedTopology tree = bench::Analyze(session, "Tree");
  row(tree.name, tree.graph(), *tree.plain);

  std::printf("\n# Shape check (Section 5.2): PLRG > Tree is the paper's "
              "central contrast --\n"
              "# degree-driven hierarchy correlates with degree, "
              "constructed hierarchy does not.\n");
  const double p = plrg.plain->DegreeCorrelation(plrg.graph());
  const double t = tree.plain->DegreeCorrelation(tree.graph());
  const double a = as.plain->DegreeCorrelation(as.graph());
  const double r = rl.plain->DegreeCorrelation(rl.graph());
  std::printf("# PLRG=%.3f Tree=%.3f AS=%.3f RL.core=%.3f\n", p, t, a, r);
  const bool ok = p > t && a > r;
  std::printf("# PLRG > Tree and AS > RL -> %s\n",
              ok ? "consistent with the paper" : "MISMATCH");
  return bench::Finish(ok ? 0 : 1);
}
