// Figure 11 (Appendix C): the parameter-space exploration roster for
// PLRG, Transit-Stub, Tiers, and Waxman -- node counts and average
// degrees per parameter setting -- plus the Section 4.4 robustness claim:
// the Low/High signature is stable across ordinary parameter choices and
// flips only at the extreme regimes the paper describes (a Waxman with
// severe geographic bias degenerates toward a Euclidean MST).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/suite.h"
#include "gen/plrg.h"
#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"

namespace {

using namespace topogen;

core::SuiteOptions FastSuite() {
  core::SuiteOptions so = bench::Suite();
  so.ball.max_centers = 10;
  so.ball.big_ball_centers = 3;
  so.expansion.max_sources = 600;
  return so;
}

void Row(const std::string& name, const graph::Graph& g,
         const std::string& params, bool with_signature) {
  std::string sig = "-";
  if (with_signature) {
    core::Topology t{name, core::Category::kStructural, g, {}, params};
    sig = core::RunBasicMetrics(t, FastSuite()).signature.ToString();
  }
  core::PrintTableRow(std::cout,
                      {name, core::Num(g.num_nodes()),
                       core::Num(g.average_degree(), 3), sig, params});
  std::fflush(stdout);
}

}  // namespace

// Parameter sweeps build one-off graphs per setting, so this bench keeps
// computing directly instead of going through the session's keyed cache.
int main(int argc, char** argv) {
  if (bench::HandleFlags(argc, argv)) return 0;
  std::printf("# Figure 11 / Appendix C: parameter exploration (scale=%s)\n",
              bench::ScaleName().c_str());
  core::PrintTableHeader(std::cout,
                         {"Topology", "Nodes", "AvgDeg", "Signature",
                          "Parameters"});
  const bool deep = bench::ScaleName() != "small";

  // PLRG exponents from the paper's roster.
  for (const double beta : {2.550144, 2.358213, 2.246677, 2.253182}) {
    graph::Rng rng(11);
    gen::PlrgParams p;
    p.n = 10000;
    p.exponent = beta;
    Row("PLRG", gen::Plrg(p, rng), "beta=" + core::Num(beta, 4), deep);
  }

  // Transit-Stub: the paper's base instance plus growing extra edges.
  for (const unsigned extra : {0u, 10u, 40u, 100u, 200u}) {
    graph::Rng rng(13);
    gen::TransitStubParams p;
    p.extra_transit_stub_edges = extra;
    p.extra_stub_stub_edges = 2 * extra;
    Row("TS", gen::TransitStub(p, rng),
        "extra_ts=" + core::Num(extra) + " extra_ss=" + core::Num(2 * extra),
        deep);
  }
  // TS with a large transit portion tends toward a random graph (Section
  // 4.4's extreme regime).
  {
    graph::Rng rng(13);
    gen::TransitStubParams p;
    p.stubs_per_transit_node = 1;
    p.num_transit_domains = 10;
    p.nodes_per_transit_domain = 25;
    p.nodes_per_stub_domain = 3;
    Row("TS", gen::TransitStub(p, rng), "large transit portion", deep);
  }

  // Tiers: the paper's 5000- and 10500-node instances plus a low-degree
  // regime approaching a minimum spanning tree.
  {
    graph::Rng rng(17);
    Row("Tiers", gen::Tiers({}, rng), "paper 5000-node instance", deep);
  }
  {
    graph::Rng rng(17);
    gen::TiersParams p;
    p.mans_per_wan = 100;
    p.lans_per_man = 0;
    p.nodes_per_wan = 500;
    p.nodes_per_man = 100;
    p.wan_redundancy = 6;
    p.man_redundancy = 6;
    p.man_wan_redundancy = 3;
    Row("Tiers", gen::Tiers(p, rng), "paper 10500-node instance", deep);
  }
  {
    graph::Rng rng(17);
    gen::TiersParams p;
    p.wan_redundancy = 0;
    p.man_redundancy = 0;
    Row("Tiers", gen::Tiers(p, rng), "no redundancy (MST regime)", false);
  }

  // Waxman: the paper's alpha/beta sweep.
  struct WaxRow {
    graph::NodeId n;
    double alpha, beta;
  };
  for (const WaxRow w : {WaxRow{1000, 0.050, 0.20}, WaxRow{5000, 0.005, 0.05},
                         WaxRow{5000, 0.005, 0.10}, WaxRow{5000, 0.005, 0.30},
                         WaxRow{5000, 0.010, 0.10}}) {
    graph::Rng rng(19);
    gen::WaxmanParams p{w.n, w.alpha, w.beta, true};
    Row("Waxman", gen::Waxman(p, rng),
        core::Num(w.n) + " " + core::Num(w.alpha, 3) + " " +
            core::Num(w.beta, 2),
        deep && w.beta >= 0.1);
  }
  // Extreme geographic bias: largest component degenerates toward a
  // Euclidean MST (low expansion/resilience/distortion).
  {
    graph::Rng rng(19);
    gen::WaxmanParams p{4000, 0.05, 0.02, true};
    Row("Waxman", gen::Waxman(p, rng), "extreme geographic bias", deep);
  }
  std::printf("\n# Shape check: within ordinary parameter ranges each\n"
              "# generator keeps its Section 4.4 signature (PLRG=HHL,\n"
              "# TS=HLL, Tiers=LHL, Waxman=HHH); the extreme rows above\n"
              "# are the regimes the paper flags as exceptions.\n");
  return bench::Finish(0);
}
