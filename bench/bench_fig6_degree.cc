// Figure 6 (Appendix A): complementary cumulative degree distributions
// for canonical, measured, and generated networks.
//
// Paper shape: the AS and RL CCDFs are heavy-tailed (the Faloutsos
// power law); of the generators only PLRG reproduces that; canonical and
// structural generators have narrow degree ranges.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/degree.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 6: degree CCDFs (scale=%s)\n",
              bench::ScaleName().c_str());

  auto curve = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::DegreeCcdf(t.graph);
    s.name = t.name;
    return s;
  };

  core::PrintPanel(std::cout, "6a", "Degree CCDF, Canonical",
                   {curve("Tree"), curve("Mesh"), curve("Random")});
  core::PrintPanel(std::cout, "6b", "Degree CCDF, Measured",
                   {curve("RL"), curve("AS")});
  core::PrintPanel(std::cout, "6c", "Degree CCDF, Generated",
                   {curve("TS"), curve("Tiers"), curve("Waxman"),
                    curve("PLRG")});

  // Shape check: heavy tails where the paper reports them.
  std::printf("# Shape check: heavy-tailed? (paper: AS, RL, PLRG yes; all "
              "others no)\n");
  auto check = [&](const char* id, bool expect) {
    const core::Topology& t = session.Topology(id);
    const bool got = metrics::LooksHeavyTailed(t.graph);
    // Also report the Faloutsos rank exponent Medina et al. [29] used as
    // their discriminator (about -0.8 for the 1998 AS snapshots).
    std::printf("#   %-8s %-3s (beta_fit=%.2f, rank_exp=%.2f)  %s\n",
                t.name.c_str(), got ? "yes" : "no",
                metrics::FitPowerLawExponent(t.graph),
                metrics::DegreeRankExponent(t.graph),
                got == expect ? "ok" : "MISMATCH");
    return got == expect;
  };
  bool all = true;
  all &= check("Tree", false);
  all &= check("Mesh", false);
  all &= check("Random", false);
  all &= check("TS", false);
  all &= check("Tiers", false);
  all &= check("Waxman", false);
  all &= check("PLRG", true);
  all &= check("AS", true);
  all &= check("RL", true);
  return bench::Finish(all ? 0 : 1);
}
