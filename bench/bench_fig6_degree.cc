// Figure 6 (Appendix A): complementary cumulative degree distributions
// for canonical, measured, and generated networks.
//
// Paper shape: the AS and RL CCDFs are heavy-tailed (the Faloutsos
// power law); of the generators only PLRG reproduces that; canonical and
// structural generators have narrow degree ranges.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/degree.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  std::printf("# Figure 6: degree CCDFs (scale=%s)\n",
              bench::ScaleName().c_str());

  auto curve = [](const core::Topology& t) {
    metrics::Series s = metrics::DegreeCcdf(t.graph);
    s.name = t.name;
    return s;
  };

  std::vector<metrics::Series> canonical;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    canonical.push_back(curve(t));
  }
  core::PrintPanel(std::cout, "6a", "Degree CCDF, Canonical", canonical);

  const core::RlArtifacts rl = core::MakeRl(ro);
  const core::Topology as = core::MakeAs(ro);
  core::PrintPanel(std::cout, "6b", "Degree CCDF, Measured",
                   {curve(rl.topology), curve(as)});

  std::vector<metrics::Series> generated;
  for (const core::Topology& t : core::GeneratedRoster(ro)) {
    generated.push_back(curve(t));
  }
  core::PrintPanel(std::cout, "6c", "Degree CCDF, Generated", generated);

  // Shape check: heavy tails where the paper reports them.
  std::printf("# Shape check: heavy-tailed? (paper: AS, RL, PLRG yes; all "
              "others no)\n");
  auto check = [](const core::Topology& t, bool expect) {
    const bool got = metrics::LooksHeavyTailed(t.graph);
    // Also report the Faloutsos rank exponent Medina et al. [29] used as
    // their discriminator (about -0.8 for the 1998 AS snapshots).
    std::printf("#   %-8s %-3s (beta_fit=%.2f, rank_exp=%.2f)  %s\n",
                t.name.c_str(), got ? "yes" : "no",
                metrics::FitPowerLawExponent(t.graph),
                metrics::DegreeRankExponent(t.graph),
                got == expect ? "ok" : "MISMATCH");
    return got == expect;
  };
  bool all = true;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    all &= check(t, false);
  }
  all &= check(core::MakeTransitStub(ro), false);
  all &= check(core::MakeTiers(ro), false);
  all &= check(core::MakeWaxman(ro), false);
  all &= check(core::MakePlrg(ro), true);
  all &= check(as, true);
  all &= check(rl.topology, true);
  return all ? 0 : 1;
}
