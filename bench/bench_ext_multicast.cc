// Extension experiment: multicast tree scaling (Chuang-Sirbu via
// Phillips et al. [35], the lineage of the paper's expansion metric).
//
// L(m) = links in a shortest-path multicast tree reaching m random
// receivers. Graphs with exponential neighborhood growth approximately
// obey L(m) ~ m^0.8; this bench measures the exponent per topology and
// ties the abstract Low/High expansion label to a protocol cost:
// high-expansion graphs sit near 0.8, the Mesh and Tiers drift away.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/multicast.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Extension: multicast tree scaling L(m) (scale=%s)\n",
              bench::ScaleName().c_str());

  std::vector<metrics::Series> curves;
  std::vector<std::pair<std::string, double>> exponents;
  auto run = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::MulticastScaling(t.graph);
    s.name = t.name;
    exponents.push_back({t.name, metrics::MulticastScalingExponent(t.graph)});
    curves.push_back(std::move(s));
  };
  for (const char* id : {"Tree", "Mesh", "Random", "TS", "Tiers", "Waxman",
                         "PLRG", "AS", "RL"}) {
    run(id);
  }

  core::PrintPanel(std::cout, "ext-1", "Multicast tree links vs receivers",
                   curves);
  std::printf("# Chuang-Sirbu exponents (law: ~0.8 for Internet-like "
              "expansion)\n");
  core::PrintTableHeader(std::cout, {"Topology", "Exponent"});
  for (const auto& [name, k] : exponents) {
    core::PrintTableRow(std::cout, {name, core::Num(k, 3)});
  }
  return bench::Finish(0);
}
