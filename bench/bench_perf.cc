// Micro-performance benchmarks (google-benchmark) for the library's hot
// paths: generation, BFS, balanced bisection, spanning-tree distortion,
// and link-value accumulation. These are engineering benchmarks, not
// paper figures -- they size the cost of the figure harness.
//
// Besides the console table, every run writes a machine-readable
// BENCH.json (schema topogen-bench/3) next to the working directory --
// override the path with TOPOGEN_BENCH_JSON. Each record carries the
// kernel id, graph family, node count, thread count, ns/op, per-iteration
// latency percentiles (p50/p90/p99/max, from a local obs::Histogram over
// the timed loop), and the bytes the BFS engine allocated per op
// (graph.bfs_alloc_bytes delta; ~0 in steady state is the zero-allocation
// contract, see docs/PERFORMANCE.md). bytes_alloc_per_op is only
// meaningful on records with "alloc_tracked": true -- kernels that never
// touch the BFS engine (generation, bisection, distortion) publish no
// delta, and their 0 means "not measured", not "allocation-free"; the
// flag keeps the two cases distinguishable. CI smoke-validates the file,
// diffs
// it against the committed baseline with tools/benchdiff (the perf-gate
// job), and archives it; BENCH_PR7.json in the repo root pins the numbers
// this schema shipped with.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/canonical.h"
#include "gen/plrg.h"
#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"
#include "graph/bfs.h"
#include "graph/partition.h"
#include "graph/trees.h"
#include "hierarchy/link_value.h"
#include "metrics/ball.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"
#include "obs/histogram.h"
#include "obs/stats.h"
#include "parallel/pool.h"

// The in-place kernel benchmarks only exist on trees that have the
// epoch-stamped workspace. Gating on the header lets this exact file be
// dropped into an older checkout to produce baseline numbers for an A/B
// comparison (the wrapper benchmarks compile everywhere).
#if __has_include("graph/bfs_scratch.h")
#include "graph/bfs_scratch.h"
#define TOPOGEN_BENCH_HAVE_BFS_SCRATCH 1
#else
#define TOPOGEN_BENCH_HAVE_BFS_SCRATCH 0
#endif

namespace {

using namespace topogen;

// Thread counts for the parallel-kernel benchmarks: serial reference,
// two lanes, and whatever the host offers.
int HostThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->Arg(1);
  if (HostThreads() >= 2) b->Arg(2);
  if (HostThreads() > 2) b->Arg(HostThreads());
}

// --- BENCH.json support ------------------------------------------------

// Kernel id and graph family per benchmark (keyed by the name before the
// first '/'). Kept next to the benchmarks so a new one is a one-line
// addition.
struct BenchMeta {
  const char* kernel;
  const char* family;
};

const BenchMeta* MetaFor(const std::string& base_name) {
  static const std::pair<const char*, BenchMeta> kTable[] = {
      {"BM_GeneratePlrg", {"generate", "plrg"}},
      {"BM_GenerateTransitStub", {"generate", "transit-stub"}},
      {"BM_GenerateTiers", {"generate", "tiers"}},
      {"BM_GenerateWaxman", {"generate", "waxman"}},
      {"BM_Bfs", {"bfs_distances", "plrg"}},
      {"BM_BfsDistancesInto", {"bfs_distances_into", "plrg"}},
      {"BM_Ball", {"ball", "plrg"}},
      {"BM_BallInto", {"ball_into", "plrg"}},
      {"BM_ReachableCounts", {"reachable_counts", "plrg"}},
      {"BM_ReachableCountsInto", {"reachable_counts_into", "plrg"}},
      {"BM_ShortestPathDag", {"sp_dag", "plrg"}},
      {"BM_ShortestPathDagInto", {"sp_dag_into", "plrg"}},
      {"BM_AveragePathLength", {"avg_path_length", "plrg"}},
      {"BM_Eccentricity", {"eccentricity", "plrg"}},
      {"BM_BfsDense", {"bfs_distances", "erdos-renyi-dense"}},
      {"BM_BalancedBisection", {"bisection", "mesh"}},
      {"BM_BestDistortion", {"distortion", "erdos-renyi"}},
      {"BM_Expansion", {"expansion", "plrg"}},
      {"BM_ExpansionThreads", {"expansion", "plrg"}},
      {"BM_LinkValues", {"link_value", "plrg"}},
      {"BM_LinkValuesThreads", {"link_value", "plrg"}},
      {"BM_BallResilienceThreads", {"ball_resilience", "plrg"}},
  };
  for (const auto& [name, meta] : kTable) {
    if (base_name == name) return &meta;
  }
  return nullptr;
}

struct BenchRecord {
  std::string name;
  std::string kernel;
  std::string family;
  std::int64_t n = 0;
  std::int64_t threads = 1;
  double ns_per_op = 0.0;
  double bytes_alloc_per_op = 0.0;
  // True only when the benchmark published a bfs_bytes delta
  // (ReportBfsBytes): a tracked 0 is a measured steady state, an
  // untracked 0 just means the kernel never touches the BFS engine.
  bool alloc_tracked = false;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

std::uint64_t BfsBytesNow() {
  return obs::Stats::GetCounter("graph.bfs_alloc_bytes").value();
}

// Publishes the per-op BFS-engine allocation volume for the timed loop
// that started at `bytes_before`. kAvgIterations divides by iterations,
// so a steady-state kernel reports ~0 (only warm-up growth remains).
void ReportBfsBytes(benchmark::State& state, std::uint64_t bytes_before) {
  state.counters["bfs_bytes"] =
      benchmark::Counter(static_cast<double>(BfsBytesNow() - bytes_before),
                         benchmark::Counter::kAvgIterations);
}

// Per-iteration latency distribution: BENCH_TIMED_LOOP drops every
// timed-loop pass into a local log-bucketed histogram, and the
// destructor lifts p50/p90/p99/max into counters the JSON reporter
// carries into BENCH.json -- the tail behavior a mean-only ns/op column
// cannot show, and what the perf gate's percentile columns diff against
// the baseline. google-benchmark calls the function repeatedly while
// estimating the iteration count; each call rebuilds the histogram, so
// the counters that survive describe the final (reported) run.
class IterLatency {
 public:
  explicit IterLatency(benchmark::State& state) : state_(state) {}
  ~IterLatency() {
    if (hist.count() == 0) return;
    state_.counters["p50_ns"] =
        static_cast<double>(hist.ValueAtQuantile(0.50));
    state_.counters["p90_ns"] =
        static_cast<double>(hist.ValueAtQuantile(0.90));
    state_.counters["p99_ns"] =
        static_cast<double>(hist.ValueAtQuantile(0.99));
    state_.counters["max_ns"] = static_cast<double>(hist.max());
  }
  obs::Histogram hist;

 private:
  benchmark::State& state_;
};

// Drop-in replacement for `for (auto _ : state)` that also records each
// iteration's wall time (two steady_clock reads per pass, tens of ns --
// noise next to the microsecond-scale kernels benchmarked here).
#define BENCH_TIMED_LOOP(state)                              \
  IterLatency topogen_iter_latency(state);                   \
  for (auto _ : state)                                       \
    if (::topogen::obs::ScopedTimer topogen_iter_timer(      \
            &topogen_iter_latency.hist);                     \
        true)

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      BenchRecord rec;
      rec.name = run.benchmark_name();
      const std::string base = rec.name.substr(0, rec.name.find('/'));
      if (const BenchMeta* meta = MetaFor(base)) {
        rec.kernel = meta->kernel;
        rec.family = meta->family;
      } else {
        rec.kernel = base.rfind("BM_", 0) == 0 ? base.substr(3) : base;
      }
      const std::size_t tpos = rec.name.find("/threads:");
      if (tpos != std::string::npos) {
        rec.threads = std::atoll(rec.name.c_str() + tpos + 9);
      }
      if (auto it = run.counters.find("n"); it != run.counters.end()) {
        rec.n = static_cast<std::int64_t>(it->second.value);
      }
      if (auto it = run.counters.find("bfs_bytes");
          it != run.counters.end()) {
        rec.bytes_alloc_per_op = it->second.value;
        rec.alloc_tracked = true;
      }
      // Per-iteration latency percentiles published by BENCH_TIMED_LOOP.
      // Already in ns (IterLatency records raw nanoseconds), so no time
      // unit normalization applies.
      const std::pair<const char*, double BenchRecord::*> kLatency[] = {
          {"p50_ns", &BenchRecord::p50_ns},
          {"p90_ns", &BenchRecord::p90_ns},
          {"p99_ns", &BenchRecord::p99_ns},
          {"max_ns", &BenchRecord::max_ns},
      };
      for (const auto& [key, field] : kLatency) {
        if (auto it = run.counters.find(key); it != run.counters.end()) {
          rec.*field = it->second.value;
        }
      }
      // Runs report in their declared time unit; normalize to ns.
      double to_ns = 1.0;
      switch (run.time_unit) {
        case benchmark::kNanosecond:
          to_ns = 1.0;
          break;
        case benchmark::kMicrosecond:
          to_ns = 1e3;
          break;
        case benchmark::kMillisecond:
          to_ns = 1e6;
          break;
        case benchmark::kSecond:
          to_ns = 1e9;
          break;
      }
      rec.ns_per_op = run.GetAdjustedRealTime() * to_ns;
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream os(path);
    if (!os.is_open()) return false;
    os << "{\n  \"schema\": \"topogen-bench/3\",\n";
    os << "  \"created_unix\": " << static_cast<long long>(std::time(nullptr))
       << ",\n";
    os << "  \"host_threads\": " << HostThreads() << ",\n";
    os << "  \"results\": [";
    bool first = true;
    for (const BenchRecord& r : records_) {
      os << (first ? "\n" : ",\n");
      os << "    {\"name\": \"" << r.name << "\", \"kernel\": \"" << r.kernel
         << "\", \"family\": \"" << r.family << "\", \"n\": " << r.n
         << ", \"threads\": " << r.threads << ", \"ns_per_op\": "
         << r.ns_per_op << ", \"bytes_alloc_per_op\": "
         << r.bytes_alloc_per_op << ", \"alloc_tracked\": "
         << (r.alloc_tracked ? "true" : "false")
         << ",\n     \"p50_ns\": " << r.p50_ns
         << ", \"p90_ns\": " << r.p90_ns << ", \"p99_ns\": " << r.p99_ns
         << ", \"max_ns\": " << r.max_ns << "}";
      first = false;
    }
    os << "\n  ]\n}\n";
    return os.good();
  }

  bool empty() const { return records_.empty(); }

 private:
  std::vector<BenchRecord> records_;
};

// --- generation -------------------------------------------------------

void BM_GeneratePlrg(benchmark::State& state) {
  BENCH_TIMED_LOOP(state) {
    graph::Rng rng(1);
    gen::PlrgParams p;
    p.n = static_cast<graph::NodeId>(state.range(0));
    benchmark::DoNotOptimize(gen::Plrg(p, rng).num_edges());
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GeneratePlrg)->Arg(2000)->Arg(10000);

void BM_GenerateTransitStub(benchmark::State& state) {
  BENCH_TIMED_LOOP(state) {
    graph::Rng rng(1);
    benchmark::DoNotOptimize(gen::TransitStub({}, rng).num_edges());
  }
  // Default-parameter generators take no size Arg; report the node count
  // the defaults actually produce (deterministic at seed 1) so the
  // BENCH.json record carries a real n instead of 0.
  graph::Rng rng(1);
  state.counters["n"] =
      static_cast<double>(gen::TransitStub({}, rng).num_nodes());
}
BENCHMARK(BM_GenerateTransitStub);

void BM_GenerateTiers(benchmark::State& state) {
  BENCH_TIMED_LOOP(state) {
    graph::Rng rng(1);
    benchmark::DoNotOptimize(gen::Tiers({}, rng).num_edges());
  }
  graph::Rng rng(1);
  state.counters["n"] = static_cast<double>(gen::Tiers({}, rng).num_nodes());
}
BENCHMARK(BM_GenerateTiers);

void BM_GenerateWaxman(benchmark::State& state) {
  BENCH_TIMED_LOOP(state) {
    graph::Rng rng(1);
    gen::WaxmanParams p;
    p.n = 2000;
    p.alpha = 0.0125;
    benchmark::DoNotOptimize(gen::Waxman(p, rng).num_edges());
  }
  state.counters["n"] = 2000;
}
BENCHMARK(BM_GenerateWaxman);

// --- BFS kernels ------------------------------------------------------

graph::Graph MakeBenchPlrg(graph::NodeId n, std::uint64_t seed) {
  graph::Rng rng(seed);
  gen::PlrgParams p;
  p.n = n;
  return gen::Plrg(p, rng);
}

// One-shot sweeps: lease + kernel + fresh result vector per call. The
// library's value-returning wrappers are gone, but BM_Bfs/BM_BfsDense/
// BM_Ball/BM_ReachableCounts/BM_ShortestPathDag keep measuring the
// allocate-per-sweep shape their committed baselines were recorded
// under, so ns/op stays comparable across PRs. On an older tree without
// the workspace header these forward to the wrappers it still has.
#if TOPOGEN_BENCH_HAVE_BFS_SCRATCH
std::vector<graph::Dist> OneShotBfsDistances(const graph::Graph& g,
                                             graph::NodeId src) {
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::BfsDistancesInto(g, src, *scratch);
  std::vector<graph::Dist> dist(g.num_nodes(), graph::kUnreachable);
  for (const graph::NodeId v : scratch->order()) dist[v] = scratch->dist(v);
  return dist;
}

std::vector<graph::NodeId> OneShotBall(const graph::Graph& g,
                                       graph::NodeId center,
                                       graph::Dist radius) {
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::BallInto(g, center, radius, *scratch);
  const auto order = scratch->order();
  return {order.begin(), order.end()};
}

std::vector<std::size_t> OneShotReachableCounts(const graph::Graph& g,
                                                graph::NodeId src) {
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  std::vector<std::size_t> counts;
  graph::ReachableCountsInto(g, src, *scratch, counts);
  return counts;
}

struct OneShotDag {
  std::vector<graph::Dist> dist;
  std::vector<double> sigma;
  std::vector<graph::NodeId> order;
};

OneShotDag OneShotShortestPathDag(const graph::Graph& g, graph::NodeId src) {
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::BuildShortestPathDagInto(g, src, *scratch);
  OneShotDag dag;
  dag.dist.assign(g.num_nodes(), graph::kUnreachable);
  dag.sigma.assign(g.num_nodes(), 0.0);
  const auto order = scratch->order();
  dag.order.assign(order.begin(), order.end());
  for (const graph::NodeId v : order) {
    dag.dist[v] = scratch->dist(v);
    dag.sigma[v] = scratch->sigma(v);
  }
  return dag;
}
#else   // older tree: the wrappers still exist in the library
std::vector<graph::Dist> OneShotBfsDistances(const graph::Graph& g,
                                             graph::NodeId src) {
  return graph::BfsDistances(g, src);
}
std::vector<graph::NodeId> OneShotBall(const graph::Graph& g,
                                       graph::NodeId center,
                                       graph::Dist radius) {
  return graph::Ball(g, center, radius);
}
std::vector<std::size_t> OneShotReachableCounts(const graph::Graph& g,
                                                graph::NodeId src) {
  return graph::ReachableCounts(g, src);
}
graph::ShortestPathDag OneShotShortestPathDag(const graph::Graph& g,
                                              graph::NodeId src) {
  return graph::BuildShortestPathDag(g, src);
}
#endif  // TOPOGEN_BENCH_HAVE_BFS_SCRATCH

void BM_Bfs(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(OneShotBfsDistances(g, src));
    src = (src + 17) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_Bfs)->Arg(10000)->Arg(50000);

#if TOPOGEN_BENCH_HAVE_BFS_SCRATCH
void BM_BfsDistancesInto(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    graph::BfsDistancesInto(g, src, *scratch);
    benchmark::DoNotOptimize(scratch->reached());
    src = (src + 17) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_BfsDistancesInto)->Arg(10000)->Arg(50000);
#endif  // TOPOGEN_BENCH_HAVE_BFS_SCRATCH

// Dense regime: the direction-optimizing crossover flips to bottom-up on
// the core levels (the golden tests pin the flip; this times it). Uses
// the one-shot shape so the baseline tree runs the same benchmark.
void BM_BfsDense(benchmark::State& state) {
  graph::Rng rng(11);
  const graph::Graph g = gen::ErdosRenyi(
      static_cast<graph::NodeId>(state.range(0)),
      64.0 / static_cast<double>(state.range(0)), rng);
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(OneShotBfsDistances(g, src));
    src = (src + 17) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_BfsDense)->Arg(4000);

// Radius-h balls on a 50k-node graph: the old engine paid an O(n)
// distance fill per ball; the epoch reset makes this O(|ball|).
void BM_Ball(benchmark::State& state) {
  const graph::Graph g = MakeBenchPlrg(50000, 2);
  const auto radius = static_cast<graph::Dist>(state.range(0));
  graph::NodeId center = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(OneShotBall(g, center, radius).size());
    center = (center + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_Ball)->ArgName("radius")->Arg(2)->Arg(4);

#if TOPOGEN_BENCH_HAVE_BFS_SCRATCH
void BM_BallInto(benchmark::State& state) {
  const graph::Graph g = MakeBenchPlrg(50000, 2);
  const auto radius = static_cast<graph::Dist>(state.range(0));
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::NodeId center = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    graph::BallInto(g, center, radius, *scratch);
    benchmark::DoNotOptimize(scratch->reached());
    center = (center + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_BallInto)->ArgName("radius")->Arg(2)->Arg(4);
#endif  // TOPOGEN_BENCH_HAVE_BFS_SCRATCH

void BM_ReachableCounts(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(OneShotReachableCounts(g, src).size());
    src = (src + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_ReachableCounts)->Arg(10000);

#if TOPOGEN_BENCH_HAVE_BFS_SCRATCH
void BM_ReachableCountsInto(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  std::vector<std::size_t> counts;
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    graph::ReachableCountsInto(g, src, *scratch, counts);
    benchmark::DoNotOptimize(counts.size());
    src = (src + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_ReachableCountsInto)->Arg(10000);
#endif  // TOPOGEN_BENCH_HAVE_BFS_SCRATCH

void BM_ShortestPathDag(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(OneShotShortestPathDag(g, src).order.size());
    src = (src + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_ShortestPathDag)->Arg(10000);

#if TOPOGEN_BENCH_HAVE_BFS_SCRATCH
void BM_ShortestPathDagInto(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    graph::BuildShortestPathDagInto(g, src, *scratch);
    benchmark::DoNotOptimize(scratch->reached());
    src = (src + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_ShortestPathDagInto)->Arg(10000);
#endif  // TOPOGEN_BENCH_HAVE_BFS_SCRATCH

void BM_AveragePathLength(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(graph::AveragePathLength(g, 64));
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_AveragePathLength)->Arg(10000);

void BM_Eccentricity(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 2);
  graph::NodeId src = 0;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(graph::Eccentricity(g, src));
    src = (src + 17) % g.num_nodes();
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_Eccentricity)->Arg(10000);

// --- composite kernels ------------------------------------------------

void BM_BalancedBisection(benchmark::State& state) {
  const auto side = static_cast<unsigned>(state.range(0));
  const graph::Graph g = gen::Mesh(side, side);
  BENCH_TIMED_LOOP(state) {
    graph::Rng rng(3);
    benchmark::DoNotOptimize(graph::BalancedMinCut(g, rng));
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_BalancedBisection)->Arg(16)->Arg(48)->Arg(96);

void BM_BestDistortion(benchmark::State& state) {
  graph::Rng grng(4);
  const graph::Graph g =
      gen::ErdosRenyi(static_cast<graph::NodeId>(state.range(0)),
                      8.0 / static_cast<double>(state.range(0)), grng);
  BENCH_TIMED_LOOP(state) {
    graph::Rng rng(5);
    benchmark::DoNotOptimize(graph::BestDistortion(g, rng, 32));
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
}
BENCHMARK(BM_BestDistortion)->Arg(500)->Arg(2000);

void BM_Expansion(benchmark::State& state) {
  const graph::Graph g = MakeBenchPlrg(8000, 6);
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(
        metrics::Expansion(g, {.max_sources = 200, .seed = 11, .sample = {}})
            .size());
  }
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_Expansion);

void BM_LinkValues(benchmark::State& state) {
  const graph::Graph g =
      MakeBenchPlrg(static_cast<graph::NodeId>(state.range(0)), 7);
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(
        hierarchy::ComputeLinkValues(g, {.max_sources = 300}).value.size());
  }
  state.SetLabel(g.Summary());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
}
BENCHMARK(BM_LinkValues)->Arg(1000)->Arg(4000);

// Parallel-engine variants: the same kernels at threads = {1, 2, host}.
// The determinism contract (docs/PARALLELISM.md) makes these directly
// comparable -- every thread count computes bit-identical results, so
// the only difference being measured is wall-clock.

void BM_LinkValuesThreads(benchmark::State& state) {
  parallel::Pool::SetThreadCountForTesting(
      static_cast<int>(state.range(0)));
  const graph::Graph g = MakeBenchPlrg(4000, 7);
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(
        hierarchy::ComputeLinkValues(g, {.max_sources = 300}).value.size());
  }
  state.SetLabel(g.Summary());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
  parallel::Pool::SetThreadCountForTesting(0);
}
BENCHMARK(BM_LinkValuesThreads)->Apply(ThreadArgs);

void BM_BallResilienceThreads(benchmark::State& state) {
  parallel::Pool::SetThreadCountForTesting(
      static_cast<int>(state.range(0)));
  const graph::Graph g = MakeBenchPlrg(8000, 8);
  metrics::BallGrowingOptions opts;
  opts.max_centers = 16;
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(metrics::Resilience(g, opts).size());
  }
  state.SetLabel(g.Summary());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
  parallel::Pool::SetThreadCountForTesting(0);
}
BENCHMARK(BM_BallResilienceThreads)->Apply(ThreadArgs);

void BM_ExpansionThreads(benchmark::State& state) {
  parallel::Pool::SetThreadCountForTesting(
      static_cast<int>(state.range(0)));
  const graph::Graph g = MakeBenchPlrg(8000, 6);
  const std::uint64_t bytes = BfsBytesNow();
  BENCH_TIMED_LOOP(state) {
    benchmark::DoNotOptimize(
        metrics::Expansion(g, {.max_sources = 200, .seed = 11, .sample = {}})
            .size());
  }
  state.SetLabel(g.Summary());
  state.counters["n"] = static_cast<double>(g.num_nodes());
  ReportBfsBytes(state, bytes);
  parallel::Pool::SetThreadCountForTesting(0);
}
BENCHMARK(BM_ExpansionThreads)->Apply(ThreadArgs);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!reporter.empty()) {
    const char* path = std::getenv("TOPOGEN_BENCH_JSON");
    reporter.WriteJson(path != nullptr && *path != '\0' ? path
                                                        : "BENCH.json");
  }
  return 0;
}
