// Micro-performance benchmarks (google-benchmark) for the library's hot
// paths: generation, BFS, balanced bisection, spanning-tree distortion,
// and link-value accumulation. These are engineering benchmarks, not
// paper figures -- they size the cost of the figure harness.
#include <benchmark/benchmark.h>

#include <thread>

#include "gen/canonical.h"
#include "gen/plrg.h"
#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"
#include "graph/bfs.h"
#include "graph/partition.h"
#include "graph/trees.h"
#include "hierarchy/link_value.h"
#include "metrics/ball.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"
#include "parallel/pool.h"

namespace {

using namespace topogen;

// Thread counts for the parallel-kernel benchmarks: serial reference,
// two lanes, and whatever the host offers.
int HostThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->Arg(1);
  if (HostThreads() >= 2) b->Arg(2);
  if (HostThreads() > 2) b->Arg(HostThreads());
}

void BM_GeneratePlrg(benchmark::State& state) {
  for (auto _ : state) {
    graph::Rng rng(1);
    gen::PlrgParams p;
    p.n = static_cast<graph::NodeId>(state.range(0));
    benchmark::DoNotOptimize(gen::Plrg(p, rng).num_edges());
  }
}
BENCHMARK(BM_GeneratePlrg)->Arg(2000)->Arg(10000);

void BM_GenerateTransitStub(benchmark::State& state) {
  for (auto _ : state) {
    graph::Rng rng(1);
    benchmark::DoNotOptimize(gen::TransitStub({}, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateTransitStub);

void BM_GenerateTiers(benchmark::State& state) {
  for (auto _ : state) {
    graph::Rng rng(1);
    benchmark::DoNotOptimize(gen::Tiers({}, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateTiers);

void BM_GenerateWaxman(benchmark::State& state) {
  for (auto _ : state) {
    graph::Rng rng(1);
    gen::WaxmanParams p;
    p.n = 2000;
    p.alpha = 0.0125;
    benchmark::DoNotOptimize(gen::Waxman(p, rng).num_edges());
  }
}
BENCHMARK(BM_GenerateWaxman);

void BM_Bfs(benchmark::State& state) {
  graph::Rng rng(2);
  gen::PlrgParams p;
  p.n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = gen::Plrg(p, rng);
  graph::NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BfsDistances(g, src));
    src = (src + 17) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(10000)->Arg(50000);

void BM_BalancedBisection(benchmark::State& state) {
  const auto side = static_cast<unsigned>(state.range(0));
  const graph::Graph g = gen::Mesh(side, side);
  for (auto _ : state) {
    graph::Rng rng(3);
    benchmark::DoNotOptimize(graph::BalancedMinCut(g, rng));
  }
}
BENCHMARK(BM_BalancedBisection)->Arg(16)->Arg(48)->Arg(96);

void BM_BestDistortion(benchmark::State& state) {
  graph::Rng grng(4);
  const graph::Graph g =
      gen::ErdosRenyi(static_cast<graph::NodeId>(state.range(0)),
                      8.0 / static_cast<double>(state.range(0)), grng);
  for (auto _ : state) {
    graph::Rng rng(5);
    benchmark::DoNotOptimize(graph::BestDistortion(g, rng, 32));
  }
}
BENCHMARK(BM_BestDistortion)->Arg(500)->Arg(2000);

void BM_Expansion(benchmark::State& state) {
  graph::Rng rng(6);
  gen::PlrgParams p;
  p.n = 8000;
  const graph::Graph g = gen::Plrg(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::Expansion(g, {.max_sources = 200}).size());
  }
}
BENCHMARK(BM_Expansion);

void BM_LinkValues(benchmark::State& state) {
  graph::Rng rng(7);
  gen::PlrgParams p;
  p.n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = gen::Plrg(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hierarchy::ComputeLinkValues(g, {.max_sources = 300}).value.size());
  }
  state.SetLabel(g.Summary());
}
BENCHMARK(BM_LinkValues)->Arg(1000)->Arg(4000);

// Parallel-engine variants: the same kernels at threads = {1, 2, host}.
// The determinism contract (docs/PARALLELISM.md) makes these directly
// comparable -- every thread count computes bit-identical results, so
// the only difference being measured is wall-clock.

void BM_LinkValuesThreads(benchmark::State& state) {
  parallel::Pool::SetThreadCountForTesting(
      static_cast<int>(state.range(0)));
  graph::Rng rng(7);
  gen::PlrgParams p;
  p.n = 4000;
  const graph::Graph g = gen::Plrg(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hierarchy::ComputeLinkValues(g, {.max_sources = 300}).value.size());
  }
  state.SetLabel(g.Summary());
  parallel::Pool::SetThreadCountForTesting(0);
}
BENCHMARK(BM_LinkValuesThreads)->Apply(ThreadArgs);

void BM_BallResilienceThreads(benchmark::State& state) {
  parallel::Pool::SetThreadCountForTesting(
      static_cast<int>(state.range(0)));
  graph::Rng rng(8);
  gen::PlrgParams p;
  p.n = 8000;
  const graph::Graph g = gen::Plrg(p, rng);
  metrics::BallGrowingOptions opts;
  opts.max_centers = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::Resilience(g, opts).size());
  }
  state.SetLabel(g.Summary());
  parallel::Pool::SetThreadCountForTesting(0);
}
BENCHMARK(BM_BallResilienceThreads)->Apply(ThreadArgs);

void BM_ExpansionThreads(benchmark::State& state) {
  parallel::Pool::SetThreadCountForTesting(
      static_cast<int>(state.range(0)));
  graph::Rng rng(6);
  gen::PlrgParams p;
  p.n = 8000;
  const graph::Graph g = gen::Plrg(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::Expansion(g, {.max_sources = 200}).size());
  }
  state.SetLabel(g.Summary());
  parallel::Pool::SetThreadCountForTesting(0);
}
BENCHMARK(BM_ExpansionThreads)->Apply(ThreadArgs);

}  // namespace

BENCHMARK_MAIN();
