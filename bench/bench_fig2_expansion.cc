// Figure 2 (a, d, g, j): expansion E(h) for canonical, measured,
// generated, and degree-based topologies.
//
// Paper shape: Tree, Random, TS, Waxman, PLRG, AS, RL and every
// degree-based generator expand exponentially; Mesh and Tiers expand
// qualitatively slower; policy routing does not change the picture.
#include "fig2_panels.h"

#include "metrics/classification.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  bench::EmitFigure2Row(bench::BasicMetric::kExpansion, "2a", "2d", "2g",
                        "2j");

  // Shape summary: the Section 4.1 low/high split, straight from the
  // session's cached suite signatures.
  core::Session& session = bench::Session();
  std::printf("# Shape check (paper Section 4.1: Mesh and Tiers low, all "
              "others high)\n");
  auto level = [&](const char* id) {
    return metrics::ToChar(session.Metrics(id).signature.expansion);
  };
  for (const char* id : {"Tree", "Mesh", "Random", "TS", "Tiers", "Waxman",
                         "PLRG", "AS", "RL"}) {
    std::printf("#   %-8s %c\n", id, level(id));
  }
  return bench::Finish(0);
}
