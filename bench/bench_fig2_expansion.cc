// Figure 2 (a, d, g, j): expansion E(h) for canonical, measured,
// generated, and degree-based topologies.
//
// Paper shape: Tree, Random, TS, Waxman, PLRG, AS, RL and every
// degree-based generator expand exponentially; Mesh and Tiers expand
// qualitatively slower; policy routing does not change the picture.
#include "fig2_panels.h"

#include "metrics/classification.h"

int main() {
  using namespace topogen;
  bench::EmitFigure2Row(bench::BasicMetric::kExpansion, "2a", "2d", "2g",
                        "2j");

  // Shape summary: the Section 4.1 low/high split.
  const core::RosterOptions ro = bench::Roster();
  std::printf("# Shape check (paper Section 4.1: Mesh and Tiers low, all "
              "others high)\n");
  auto level = [&](const core::Topology& t) {
    const metrics::Series e =
        bench::Compute(bench::BasicMetric::kExpansion, t, false);
    return metrics::ToChar(metrics::ClassifyExpansion(e));
  };
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    std::printf("#   %-8s %c\n", t.name.c_str(), level(t));
  }
  for (const core::Topology& t : core::GeneratedRoster(ro)) {
    std::printf("#   %-8s %c\n", t.name.c_str(), level(t));
  }
  std::printf("#   %-8s %c\n", "AS", level(core::MakeAs(ro)));
  std::printf("#   %-8s %c\n", "RL", level(core::MakeRl(ro).topology));
  return 0;
}
