// Extension experiment: protocol performance across topologies.
//
// The paper's opening claim is that topology drives protocol *scaling*;
// its related work cites three concrete instances. This bench runs all
// three on the roster and checks the qualitative orderings:
//
//   * hop-count distributions under exponential link weights
//     (van Mieghem et al. [44]) -- the AS stand-in's distribution is
//     bell-shaped like a weighted random graph's;
//   * Wong-Katz multicast state [48] -- hub topologies concentrate
//     forwarding state far more than geometric ones;
//   * flood spread -- high-expansion graphs disseminate faster;
//   * failover -- tree-like graphs disconnect, resilient graphs stretch.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "sim/protocols.h"
#include "sim/weighted_paths.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Extension: protocol performance experiments (scale=%s)\n",
              bench::ScaleName().c_str());

  const core::Topology& as = session.Topology("AS");
  const core::Topology& plrg = session.Topology("PLRG");
  const core::Topology& mesh = session.Topology("Mesh");
  const core::Topology& tree = session.Topology("Tree");
  const core::Topology& random = session.Topology("Random");
  const core::Topology& tiers = session.Topology("Tiers");
  const core::Topology& ts = session.Topology("TS");

  // Panel 1: hop-count distributions (van Mieghem).
  {
    graph::Rng rng(51);
    std::vector<metrics::Series> curves;
    for (const core::Topology* t : {&as, &plrg, &random, &mesh}) {
      const auto dist = sim::HopCountDistribution(
          t->graph, sim::WeightModel::kExponential, 12, rng);
      metrics::Series s;
      s.name = t->name;
      for (std::size_t h = 0; h < dist.size(); ++h) {
        s.Add(static_cast<double>(h), dist[h]);
      }
      curves.push_back(std::move(s));
    }
    core::PrintPanel(std::cout, "ext-3a",
                     "Hop count distribution, exponential link weights",
                     curves);
  }

  // Panel 2: multicast state.
  {
    std::vector<metrics::Series> routers, max_state;
    for (const core::Topology* t : {&as, &plrg, &mesh, &tiers, &ts}) {
      sim::MulticastStateResult r = sim::MulticastState(t->graph);
      r.routers_with_state.name = t->name;
      r.max_state.name = t->name;
      routers.push_back(std::move(r.routers_with_state));
      max_state.push_back(std::move(r.max_state));
    }
    core::PrintPanel(std::cout, "ext-3b", "Routers holding multicast state",
                     routers);
    core::PrintPanel(std::cout, "ext-3c", "Max state at a single router",
                     max_state);
  }

  // Panel 3: flood spread.
  std::vector<metrics::Series> floods;
  for (const core::Topology* t : {&as, &plrg, &mesh, &tiers, &tree}) {
    metrics::Series s = sim::FloodSpread(t->graph);
    s.name = t->name;
    floods.push_back(std::move(s));
  }
  core::PrintPanel(std::cout, "ext-3d", "Flood reach vs time", floods);

  // Panel 4: failover.
  std::vector<metrics::Series> stretch, lost;
  for (const core::Topology* t : {&as, &plrg, &mesh, &tree, &ts}) {
    sim::FailoverResult r = sim::FailoverStretch(t->graph);
    r.stretch.name = t->name;
    r.disconnected.name = t->name;
    stretch.push_back(std::move(r.stretch));
    lost.push_back(std::move(r.disconnected));
  }
  core::PrintPanel(std::cout, "ext-3e", "Failover path stretch", stretch);
  core::PrintPanel(std::cout, "ext-3f", "Disconnected pair fraction", lost);

  // Qualitative checks.
  bool ok = true;
  {
    // Meshes/Tiers flood slower than the AS stand-in (expansion at work).
    const double as_t90 = floods[0].x[8];
    const double mesh_t90 = floods[2].x[8];
    std::printf("# flood t90: AS %.2f vs Mesh %.2f -> %s\n", as_t90, mesh_t90,
                as_t90 < mesh_t90 ? "expansion ordering holds" : "MISMATCH");
    ok &= as_t90 < mesh_t90;
  }
  {
    // Trees shed pairs under failure far faster than the AS stand-in
    // (resilience at work).
    const double as_lost = lost[0].y.back();
    const double tree_lost = lost[3].y.back();
    std::printf("# disconnected at max failures: AS %.2f vs Tree %.2f -> "
                "%s\n",
                as_lost, tree_lost,
                as_lost < tree_lost ? "resilience ordering holds"
                                    : "MISMATCH");
    ok &= as_lost < tree_lost;
  }
  return bench::Finish(ok ? 0 : 1);
}
