// Multi-client stress bench for topogend's server core: an in-process
// Server on an ephemeral loopback port, driven by concurrent client
// threads sending tiny-roster requests over real sockets. Measures what
// the figure benches cannot -- end-to-end *serving* latency: framing,
// admission, in-flight dedup, the executor's cache lookups, and response
// serialization.
//
// Results merge into the same BENCH.json the micro-benchmarks write
// (schema topogen-bench/3; override the path with TOPOGEN_BENCH_JSON),
// one record per thread count with QPS and per-request latency
// percentiles, so CI's perf-gate diffs serving latency against the
// committed baseline exactly like kernel ns/op.
//
// The workload is warm: a priming pass computes each distinct request
// once, so the timed phase measures the service plumbing, not PLRG
// generation (whose cost bench_perf already gates).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "service/server.h"

namespace {

using Clock = std::chrono::steady_clock;
using topogen::service::Server;
using topogen::service::ServerOptions;

// Three distinct structural keys (all tiny), cycled per request: warm
// cache hits with occasional in-flight collisions between threads --
// the daemon's steady state, not a single-key microloop.
const char* const kRequests[] = {
    R"({"topology":"Tree","metrics":["expansion","signature"],)"
    R"("scale":"small","as_nodes":300})",
    R"({"topology":"Mesh","metrics":["expansion","signature"],)"
    R"("scale":"small","as_nodes":300})",
    R"({"topology":"Random","metrics":["resilience","signature"],)"
    R"("scale":"small","as_nodes":300})",
};
constexpr int kNumRequests = 3;

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  // One request, one response; returns false on any transport failure.
  bool RoundTrip(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    if (::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(framed.size())) {
      return false;
    }
    for (;;) {
      if (buffer_.find('\n') != std::string::npos) {
        buffer_.erase(0, buffer_.find('\n') + 1);
        return true;
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct PhaseResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double wall_ns = 0.0;
  double qps = 0.0;
  double ns_per_op = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

double Percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

// `threads` clients, each `per_thread` sequential round trips cycling the
// request mix; per-request wall latency pooled across threads.
PhaseResult RunPhase(int port, int threads, int per_thread) {
  std::vector<std::vector<std::uint64_t>> latencies(threads);
  std::vector<std::uint64_t> errors(threads, 0);
  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([port, t, per_thread, &latencies, &errors] {
      Client client(port);
      if (!client.ok()) {
        errors[t] = static_cast<std::uint64_t>(per_thread);
        return;
      }
      latencies[t].reserve(static_cast<std::size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const std::string request = kRequests[(t + i) % kNumRequests];
        const Clock::time_point begin = Clock::now();
        const bool ok = client.RoundTrip(request);
        const Clock::time_point end = Clock::now();
        if (!ok) {
          ++errors[t];
          continue;
        }
        latencies[t].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());

  std::vector<std::uint64_t> pooled;
  PhaseResult r;
  for (int t = 0; t < threads; ++t) {
    pooled.insert(pooled.end(), latencies[t].begin(), latencies[t].end());
    r.errors += errors[t];
  }
  std::sort(pooled.begin(), pooled.end());
  r.requests = pooled.size();
  r.wall_ns = wall_ns;
  if (r.requests > 0 && wall_ns > 0) {
    r.qps = static_cast<double>(r.requests) / (wall_ns / 1e9);
    r.ns_per_op = wall_ns / static_cast<double>(r.requests);
  }
  r.p50_ns = Percentile(pooled, 0.50);
  r.p90_ns = Percentile(pooled, 0.90);
  r.p99_ns = Percentile(pooled, 0.99);
  r.max_ns = pooled.empty() ? 0.0 : static_cast<double>(pooled.back());
  return r;
}

// Converts a timed phase into the shared BENCH.json record shape
// (bench/bench_json.h); the merge itself is shared with bench_scale.
topogen::bench::JsonRecord ToJsonRecord(const std::string& name, int threads,
                                        const PhaseResult& p) {
  topogen::bench::JsonRecord rec;
  rec.name = name;
  rec.kernel = "service_request";
  rec.family = "service";
  rec.n = static_cast<std::int64_t>(p.requests);
  rec.threads = threads;
  rec.ns_per_op = p.ns_per_op;
  rec.qps = p.qps;
  rec.p50_ns = p.p50_ns;
  rec.p90_ns = p.p90_ns;
  rec.p99_ns = p.p99_ns;
  rec.max_ns = p.max_ns;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  int per_thread = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--requests=", 0) == 0) {
      per_thread = std::atoi(arg.c_str() + 11);
    } else {
      std::fprintf(stderr, "usage: %s [--requests=N]\n", argv[0]);
      return 2;
    }
  }

  Server server(ServerOptions{.queue_limit = 1024});
  server.Start();
  const int port = server.port();

  // Priming pass: compute each distinct request once so the timed phases
  // measure serving, not generation.
  {
    Client primer(port);
    if (!primer.ok()) {
      std::fprintf(stderr, "bench_service: cannot connect to 127.0.0.1:%d\n",
                   port);
      return 1;
    }
    for (const char* request : kRequests) {
      if (!primer.RoundTrip(request)) {
        std::fprintf(stderr, "bench_service: priming round trip failed\n");
        return 1;
      }
    }
  }

  std::vector<topogen::bench::JsonRecord> records;
  for (const int threads : {1, 8}) {
    const std::string name =
        "BM_ServiceRoundTrip/threads:" + std::to_string(threads);
    const PhaseResult phase = RunPhase(port, threads, per_thread);
    if (phase.errors > 0) {
      std::fprintf(stderr, "bench_service: %llu transport errors at %d "
                           "threads\n",
                   static_cast<unsigned long long>(phase.errors), threads);
      return 1;
    }
    std::printf(
        "%-30s %8llu req  %10.0f qps  p50 %8.0fns  p90 %8.0fns  "
        "p99 %8.0fns\n",
        name.c_str(), static_cast<unsigned long long>(phase.requests),
        phase.qps, phase.p50_ns, phase.p90_ns, phase.p99_ns);
    records.push_back(ToJsonRecord(name, threads, phase));
  }
  server.Stop();

  const topogen::service::ServerStats stats = server.stats();
  std::printf("server: %llu responses, %llu deduped, %llu queue-full\n",
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.deduped),
              static_cast<unsigned long long>(stats.rejected_queue_full));

  const std::string out = topogen::bench::BenchJsonPath();
  if (!topogen::bench::MergeIntoBenchJson(out, records)) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
