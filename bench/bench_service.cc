// Multi-client stress bench for topogend's server core: an in-process
// Server on an ephemeral loopback port, driven by concurrent client
// threads sending tiny-roster requests over real sockets. Measures what
// the figure benches cannot -- end-to-end *serving* latency: framing,
// admission, in-flight dedup, the executor's cache lookups, and response
// serialization.
//
// Results merge into the same BENCH.json the micro-benchmarks write
// (schema topogen-bench/3; override the path with TOPOGEN_BENCH_JSON),
// one record per thread count with QPS and per-request latency
// percentiles, so CI's perf-gate diffs serving latency against the
// committed baseline exactly like kernel ns/op.
//
// The workload is warm: a priming pass computes each distinct request
// once, so the timed phase measures the service plumbing, not PLRG
// generation (whose cost bench_perf already gates).
//
// Three phase families:
//   BM_ServiceRoundTrip/threads:N    protocol /1, one line per response
//   BM_ServiceRoundTripV2/threads:N  protocol /2 keep-alive, responses
//                                    reassembled from streamed frames
//   BM_ServiceMixedLoad/executors:N  head-of-line probe: one cold
//                                    linkvalue request pinned (via
//                                    LaneForKey) to a different lane than
//                                    a stream of small requests;
//                                    ns_per_op is the smalls' p99, which
//                                    collapses once a second executor
//                                    lane absorbs the heavy request.
//   BM_ServiceOverloadGoodput/...    overload probe: 4 closed-loop
//                                    clients against one executor lane
//                                    (4x its capacity), each request a
//                                    fresh structural key, driven through
//                                    service::Client so sheds are
//                                    absorbed by the documented retry
//                                    discipline; ns_per_op is the p99 of
//                                    the *goodput* latency (first attempt
//                                    to final success). A paired
//                                    BM_ServiceOverloadShed record puts
//                                    the shed rate (sheds per 1000
//                                    attempts) under the same gate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace {

using Clock = std::chrono::steady_clock;
using topogen::service::Server;
using topogen::service::ServerOptions;

// Three distinct structural keys (all tiny), cycled per request: warm
// cache hits with occasional in-flight collisions between threads --
// the daemon's steady state, not a single-key microloop.
const char* const kRequests[] = {
    R"({"topology":"Tree","metrics":["expansion","signature"],)"
    R"("scale":"small","as_nodes":300})",
    R"({"topology":"Mesh","metrics":["expansion","signature"],)"
    R"("scale":"small","as_nodes":300})",
    R"({"topology":"Random","metrics":["resilience","signature"],)"
    R"("scale":"small","as_nodes":300})",
};
constexpr int kNumRequests = 3;

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    return ::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(framed.size());
  }

  // Blocks until one full response line arrived (and consumes it).
  bool AwaitLine() {
    std::string line;
    return NextLine(line);
  }

  // One request, one response; returns false on any transport failure.
  bool RoundTrip(const std::string& line) {
    return Send(line) && AwaitLine();
  }

  // Protocol /2: one request, then frames until the closing more:false
  // frame. The connection stays open (keep-alive), so a phase runs many
  // of these back to back on one socket.
  bool RoundTripV2(const std::string& line) {
    if (!Send(line)) return false;
    for (;;) {
      std::string frame;
      if (!NextLine(frame)) return false;
      if (frame.find("\"more\":false") != std::string::npos) return true;
    }
  }

 private:
  bool NextLine(std::string& line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

struct PhaseResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double wall_ns = 0.0;
  double qps = 0.0;
  double ns_per_op = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

double Percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

// Rewrites a /1 request literal as its /2 twin (same fields plus "v":2).
std::string V2Request(const char* request) {
  return std::string("{\"v\":2,") + (request + 1);
}

// `threads` clients, each `per_thread` sequential round trips cycling the
// request mix; per-request wall latency pooled across threads. `version`
// picks the wire protocol (2 = keep-alive framed responses).
PhaseResult RunPhase(int port, int threads, int per_thread, int version = 1) {
  std::vector<std::vector<std::uint64_t>> latencies(threads);
  std::vector<std::uint64_t> errors(threads, 0);
  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([port, t, per_thread, version, &latencies,
                          &errors] {
      Client client(port);
      if (!client.ok()) {
        errors[t] = static_cast<std::uint64_t>(per_thread);
        return;
      }
      latencies[t].reserve(static_cast<std::size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const char* base = kRequests[(t + i) % kNumRequests];
        const Clock::time_point begin = Clock::now();
        const bool ok = version == 2 ? client.RoundTripV2(V2Request(base))
                                     : client.RoundTrip(base);
        const Clock::time_point end = Clock::now();
        if (!ok) {
          ++errors[t];
          continue;
        }
        latencies[t].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());

  std::vector<std::uint64_t> pooled;
  PhaseResult r;
  for (int t = 0; t < threads; ++t) {
    pooled.insert(pooled.end(), latencies[t].begin(), latencies[t].end());
    r.errors += errors[t];
  }
  std::sort(pooled.begin(), pooled.end());
  r.requests = pooled.size();
  r.wall_ns = wall_ns;
  if (r.requests > 0 && wall_ns > 0) {
    r.qps = static_cast<double>(r.requests) / (wall_ns / 1e9);
    r.ns_per_op = wall_ns / static_cast<double>(r.requests);
  }
  r.p50_ns = Percentile(pooled, 0.50);
  r.p90_ns = Percentile(pooled, 0.90);
  r.p99_ns = Percentile(pooled, 0.99);
  r.max_ns = pooled.empty() ? 0.0 : static_cast<double>(pooled.back());
  return r;
}

// The heavy request for the head-of-line probe: a cold link-value
// computation (~1s at small scale) on a seed-distinct roster, so it
// shares no Session -- and under 2 executors no lane -- with the smalls.
std::string HeavyRequest(std::uint64_t seed) {
  return "{\"topology\":\"PLRG\",\"metrics\":[\"linkvalue\"],"
         "\"scale\":\"small\",\"seed\":" +
         std::to_string(seed) + "}";
}

// Picks the heavy request's seed so its SessionKey provably hashes to a
// different lane than the smalls' at `lanes` executors. LaneForKey is
// deterministic and exported for exactly this: a bench (or test) can
// construct keys that collide or diverge on purpose.
std::uint64_t PickHeavySeed(std::size_t lanes) {
  // SessionKey prefix of kRequests[0]: scale small, default seed (0),
  // as_nodes 300, no other overrides.
  const std::size_t small_lane =
      topogen::service::LaneForKey("small|0|300|0|0|", lanes);
  for (std::uint64_t seed = 1;; ++seed) {
    const std::string prefix = "small|" + std::to_string(seed) + "|0|0|0|";
    if (topogen::service::LaneForKey(prefix, lanes) != small_lane) {
      return seed;
    }
  }
}

// Head-of-line probe: admit the heavy request, give it a grace period to
// start executing, then run timed small round trips on a second
// connection. With one executor every small queues behind the ~1s heavy
// job; with two, session affinity routes the heavy job to the other lane
// and the smalls' p99 collapses by orders of magnitude. ns_per_op
// reports the smalls' p99 -- the head-of-line latency the perf gate
// diffs.
PhaseResult RunMixedPhase(std::size_t executors, std::uint64_t heavy_seed,
                          int small_count) {
  PhaseResult r;
  Server server(ServerOptions{.queue_limit = 1024, .executors = executors});
  server.Start();
  const int port = server.port();
  {
    Client primer(port);
    if (!primer.ok() || !primer.RoundTrip(kRequests[0])) {
      r.errors = 1;
      return r;
    }
  }
  Client heavy_client(port);
  Client small_client(port);
  if (!heavy_client.ok() || !small_client.ok() ||
      !heavy_client.Send(HeavyRequest(heavy_seed))) {
    r.errors = 1;
    return r;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<std::uint64_t> lat;
  lat.reserve(static_cast<std::size_t>(small_count));
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < small_count; ++i) {
    const Clock::time_point begin = Clock::now();
    if (!small_client.RoundTrip(kRequests[0])) {
      ++r.errors;
      continue;
    }
    lat.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             begin)
            .count()));
  }
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  if (!heavy_client.AwaitLine()) ++r.errors;
  server.Stop();

  std::sort(lat.begin(), lat.end());
  r.requests = lat.size();
  if (r.requests > 0 && r.wall_ns > 0) {
    r.qps = static_cast<double>(r.requests) / (r.wall_ns / 1e9);
  }
  r.p50_ns = Percentile(lat, 0.50);
  r.p90_ns = Percentile(lat, 0.90);
  r.p99_ns = Percentile(lat, 0.99);
  r.max_ns = lat.empty() ? 0.0 : static_cast<double>(lat.back());
  r.ns_per_op = r.p99_ns;  // the head-of-line figure under the gate
  return r;
}

// Overload probe (docs/ROBUSTNESS.md, "Overload control"): `threads`
// closed-loop clients against a server with ONE executor lane, so the
// offered load is `threads`x what the lane can serve. Every request uses
// a fresh as_nodes (a fresh structural key), so each one really computes
// -- no dedup attach, no cache hit -- and the lane's EWMA reflects true
// service time. Clients go through service::Client, the documented retry
// discipline: sheds are absorbed (sleep retry_after_ms + jittered
// backoff, resend), and the recorded latency is per-*successful*-request
// wall time from first attempt to final response -- goodput, the number
// a well-behaved client actually experiences under overload.
struct OverloadResult {
  PhaseResult phase;
  std::uint64_t attempts = 0;
  std::uint64_t sheds = 0;
  std::uint64_t give_ups = 0;
  double shed_per_1000 = 0.0;
};

// One cold small-tier request: unique roster size = unique key.
std::string ColdRequest(int as_nodes) {
  return "{\"topology\":\"Tree\",\"metrics\":[\"signature\"],"
         "\"scale\":\"small\",\"as_nodes\":" +
         std::to_string(as_nodes) + "}";
}

OverloadResult RunOverloadPhase(int port, int threads, int per_thread,
                                int as_nodes_base) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> attempts(threads, 0), sheds(threads, 0),
      give_ups(threads, 0);
  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([port, t, per_thread, as_nodes_base, &latencies,
                          &attempts, &sheds, &give_ups] {
      topogen::service::Client client(
          {.port = port,
           .op_timeout_ms = 30000,
           .max_attempts = 16,
           .backoff_initial_ms = 1,
           .backoff_max_ms = 64,
           .jitter_seed = static_cast<std::uint64_t>(t + 1)});
      latencies[t].reserve(static_cast<std::size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        // Distinct per thread and per iteration; never collides with the
        // warm keys (as_nodes 300) or another thread's (or the other
        // offered-load phase's) range.
        const int as_nodes = as_nodes_base + t * 100 + i;
        const Clock::time_point begin = Clock::now();
        const topogen::service::ClientResult r =
            client.Call(ColdRequest(as_nodes));
        const Clock::time_point end = Clock::now();
        attempts[t] += static_cast<std::uint64_t>(r.attempts);
        sheds[t] += static_cast<std::uint64_t>(r.sheds);
        if (!r.ok()) {
          ++give_ups[t];
          continue;
        }
        latencies[t].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());

  OverloadResult r;
  std::vector<std::uint64_t> pooled;
  for (int t = 0; t < threads; ++t) {
    pooled.insert(pooled.end(), latencies[t].begin(), latencies[t].end());
    r.attempts += attempts[t];
    r.sheds += sheds[t];
    r.give_ups += give_ups[t];
  }
  std::sort(pooled.begin(), pooled.end());
  r.phase.requests = pooled.size();
  r.phase.errors = r.give_ups;
  r.phase.wall_ns = wall_ns;
  if (r.phase.requests > 0 && wall_ns > 0) {
    r.phase.qps = static_cast<double>(r.phase.requests) / (wall_ns / 1e9);
  }
  r.phase.p50_ns = Percentile(pooled, 0.50);
  r.phase.p90_ns = Percentile(pooled, 0.90);
  r.phase.p99_ns = Percentile(pooled, 0.99);
  r.phase.max_ns = pooled.empty() ? 0.0 : static_cast<double>(pooled.back());
  r.phase.ns_per_op = r.phase.p99_ns;  // goodput p99 is the gated figure
  if (r.attempts > 0) {
    r.shed_per_1000 = 1000.0 * static_cast<double>(r.sheds) /
                      static_cast<double>(r.attempts);
  }
  return r;
}

// Converts a timed phase into the shared BENCH.json record shape
// (bench/bench_json.h); the merge itself is shared with bench_scale.
topogen::bench::JsonRecord ToJsonRecord(const std::string& name, int threads,
                                        const PhaseResult& p,
                                        const char* kernel = "service_request") {
  topogen::bench::JsonRecord rec;
  rec.name = name;
  rec.kernel = kernel;
  rec.family = "service";
  rec.n = static_cast<std::int64_t>(p.requests);
  rec.threads = threads;
  rec.ns_per_op = p.ns_per_op;
  rec.qps = p.qps;
  rec.p50_ns = p.p50_ns;
  rec.p90_ns = p.p90_ns;
  rec.p99_ns = p.p99_ns;
  rec.max_ns = p.max_ns;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  int per_thread = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--requests=", 0) == 0) {
      per_thread = std::atoi(arg.c_str() + 11);
    } else {
      std::fprintf(stderr, "usage: %s [--requests=N]\n", argv[0]);
      return 2;
    }
  }

  Server server(ServerOptions{.queue_limit = 1024});
  server.Start();
  const int port = server.port();

  // Priming pass: compute each distinct request once so the timed phases
  // measure serving, not generation.
  {
    Client primer(port);
    if (!primer.ok()) {
      std::fprintf(stderr, "bench_service: cannot connect to 127.0.0.1:%d\n",
                   port);
      return 1;
    }
    for (const char* request : kRequests) {
      if (!primer.RoundTrip(request)) {
        std::fprintf(stderr, "bench_service: priming round trip failed\n");
        return 1;
      }
    }
  }

  std::vector<topogen::bench::JsonRecord> records;
  for (const int threads : {1, 8}) {
    const std::string name =
        "BM_ServiceRoundTrip/threads:" + std::to_string(threads);
    const PhaseResult phase = RunPhase(port, threads, per_thread);
    if (phase.errors > 0) {
      std::fprintf(stderr, "bench_service: %llu transport errors at %d "
                           "threads\n",
                   static_cast<unsigned long long>(phase.errors), threads);
      return 1;
    }
    std::printf(
        "%-30s %8llu req  %10.0f qps  p50 %8.0fns  p90 %8.0fns  "
        "p99 %8.0fns\n",
        name.c_str(), static_cast<unsigned long long>(phase.requests),
        phase.qps, phase.p50_ns, phase.p90_ns, phase.p99_ns);
    records.push_back(ToJsonRecord(name, threads, phase));
  }

  // Same workload over the /2 keep-alive wire: every response arrives as
  // streamed frames, so this measures the chunking overhead relative to
  // the /1 single-line phases above (same sessions, already warm).
  for (const int threads : {1, 8}) {
    const std::string name =
        "BM_ServiceRoundTripV2/threads:" + std::to_string(threads);
    const PhaseResult phase = RunPhase(port, threads, per_thread,
                                       /*version=*/2);
    if (phase.errors > 0) {
      std::fprintf(stderr, "bench_service: %llu transport errors at %d "
                           "threads (/2)\n",
                   static_cast<unsigned long long>(phase.errors), threads);
      return 1;
    }
    std::printf(
        "%-30s %8llu req  %10.0f qps  p50 %8.0fns  p90 %8.0fns  "
        "p99 %8.0fns\n",
        name.c_str(), static_cast<unsigned long long>(phase.requests),
        phase.qps, phase.p50_ns, phase.p90_ns, phase.p99_ns);
    records.push_back(ToJsonRecord(name, threads, phase, "service_request_v2"));
  }
  server.Stop();

  const topogen::service::ServerStats stats = server.stats();
  std::printf("server: %llu responses, %llu deduped, %llu queue-full\n",
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.deduped),
              static_cast<unsigned long long>(stats.rejected_queue_full));

  // Head-of-line probe: one ~1s request in flight, small requests timed
  // behind it. The heavy request's seed is chosen so that at 2 executors
  // it provably lands on the other lane.
  const std::uint64_t heavy_seed = PickHeavySeed(2);
  double mixed_p99[2] = {0, 0};
  for (const std::size_t executors : {std::size_t{1}, std::size_t{2}}) {
    const std::string name =
        "BM_ServiceMixedLoad/executors:" + std::to_string(executors);
    const PhaseResult phase = RunMixedPhase(executors, heavy_seed,
                                            /*small_count=*/32);
    if (phase.errors > 0) {
      std::fprintf(stderr,
                   "bench_service: %llu errors in mixed phase (%zu "
                   "executors)\n",
                   static_cast<unsigned long long>(phase.errors), executors);
      return 1;
    }
    std::printf(
        "%-30s %8llu req  %10.0f qps  p50 %8.0fns  p90 %8.0fns  "
        "p99 %8.0fns\n",
        name.c_str(), static_cast<unsigned long long>(phase.requests),
        phase.qps, phase.p50_ns, phase.p90_ns, phase.p99_ns);
    mixed_p99[executors - 1] = phase.p99_ns;
    records.push_back(ToJsonRecord(name, static_cast<int>(executors), phase,
                                   "service_mixed"));
  }
  if (mixed_p99[0] > 0) {
    std::printf("mixed-load small-request p99: %.0fns (1 executor) -> %.0fns "
                "(2 executors), %.1fx\n",
                mixed_p99[0], mixed_p99[1], mixed_p99[0] / mixed_p99[1]);
  }

  // Overload probe: one executor lane, cold unique-key requests (~80ms
  // each -- the cost is the fresh Session, not the roster size), offered
  // at 1x (uncontended reference) and 4x (four closed-loop clients) the
  // lane's capacity. target_ms=60 puts the estimate trigger (4x target =
  // 240ms of estimated wait) at queue depth ~3 for this workload:
  // shedding engages under the 4x load but a retry that catches the
  // queue short still lands, which is the operating point the goodput
  // number is about.
  {
    Server overload_server(ServerOptions{.queue_limit = 1024,
                                         .executors = 1,
                                         .target_ms = 60,
                                         .overload_interval_ms = 100});
    overload_server.Start();
    const int oport = overload_server.port();
    const int per_thread = 32;
    double goodput_p99[2] = {0, 0};
    for (const int threads : {1, 4}) {
      const std::string name = "BM_ServiceOverloadGoodput/offered:" +
                               std::to_string(threads) + "x";
      const OverloadResult o = RunOverloadPhase(
          oport, threads, per_thread, /*as_nodes_base=*/threads == 1 ? 400 : 1000);
      if (o.give_ups > 0) {
        std::fprintf(stderr,
                     "bench_service: %llu requests exhausted their retry "
                     "budget at %dx offered load\n",
                     static_cast<unsigned long long>(o.give_ups), threads);
        return 1;
      }
      std::printf(
          "%-30s %8llu req  %10.0f qps  p50 %8.0fns  p90 %8.0fns  "
          "p99 %8.0fns  shed %llu/%llu\n",
          name.c_str(), static_cast<unsigned long long>(o.phase.requests),
          o.phase.qps, o.phase.p50_ns, o.phase.p90_ns, o.phase.p99_ns,
          static_cast<unsigned long long>(o.sheds),
          static_cast<unsigned long long>(o.attempts));
      goodput_p99[threads == 1 ? 0 : 1] = o.phase.p99_ns;
      records.push_back(
          ToJsonRecord(name, threads, o.phase, "service_overload"));
      if (threads == 4) {
        // The shed rate rides the same gate: ns_per_op = sheds per 1000
        // attempts. A collapse to ~0 (controller stopped engaging) or an
        // explosion (shedding the whole offered load) both show up as a
        // ratio shift in benchdiff.
        PhaseResult shed_phase;
        shed_phase.requests = o.attempts;
        shed_phase.ns_per_op = o.shed_per_1000;
        shed_phase.qps = o.phase.qps;
        records.push_back(ToJsonRecord("BM_ServiceOverloadShed/offered:4x",
                                       threads, shed_phase,
                                       "service_overload_shed"));
      }
    }
    overload_server.Stop();
    const topogen::service::ServerStats ostats = overload_server.stats();
    if (goodput_p99[0] > 0) {
      std::printf(
          "overload goodput p99: %.2fms uncontended -> %.2fms at 4x "
          "(%.1fx); server shed %llu, inflight-capped %llu\n",
          goodput_p99[0] / 1e6, goodput_p99[1] / 1e6,
          goodput_p99[1] / goodput_p99[0],
          static_cast<unsigned long long>(ostats.rejected_overloaded),
          static_cast<unsigned long long>(ostats.rejected_inflight_cap));
    }
  }

  const std::string out = topogen::bench::BenchJsonPath();
  if (!topogen::bench::MergeIntoBenchJson(out, records)) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
