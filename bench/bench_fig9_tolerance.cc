// Figure 9 (Appendix B): attack tolerance (a-c) and error tolerance (d-f)
// -- average path length of the largest surviving component as nodes are
// removed in decreasing-degree order (attack) or uniformly (error).
//
// Paper shape: error curves are flat-ish for every topology; attack
// curves are *peaked* for the measured networks, PLRG, and Tiers.
// Following the paper, the RL topology is attacked on its core (the
// session's derived "RL.core" artifact).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/tolerance.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 9: attack and error tolerance (scale=%s)\n",
              bench::ScaleName().c_str());

  metrics::ToleranceOptions opts;
  opts.path_samples = bench::ScaleName() == "small" ? 64 : 128;

  auto attack = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::AttackTolerance(t.graph, opts);
    s.name = std::string(id) + ".att";
    return s;
  };
  auto error = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::ErrorTolerance(t.graph, opts);
    s.name = std::string(id) + ".err";
    return s;
  };

  std::vector<metrics::Series> a1, a2, a3, e1, e2, e3;
  for (const char* id : {"Tree", "Mesh", "Random"}) {
    a1.push_back(attack(id));
    e1.push_back(error(id));
  }
  a2 = {attack("RL.core"), attack("AS"), attack("PLRG")};
  e2 = {error("RL.core"), error("AS"), error("PLRG")};
  for (const char* id : {"TS", "Tiers", "Waxman"}) {
    a3.push_back(attack(id));
    e3.push_back(error(id));
  }

  core::PrintPanel(std::cout, "9a", "Attack tolerance, Canonical", a1);
  core::PrintPanel(std::cout, "9b", "Attack tolerance, Measured", a2);
  core::PrintPanel(std::cout, "9c", "Attack tolerance, Generated", a3);
  core::PrintPanel(std::cout, "9d", "Error tolerance, Canonical", e1);
  core::PrintPanel(std::cout, "9e", "Error tolerance, Measured", e2);
  core::PrintPanel(std::cout, "9f", "Error tolerance, Generated", e3);

  // Shape check: peakedness = max/mean of the attack curve; the paper
  // calls out AS, RL, PLRG (and Tiers) as peaked.
  auto peakedness = [](const metrics::Series& s) {
    if (s.empty()) return 0.0;
    double max = *std::max_element(s.y.begin(), s.y.end());
    double mean = 0;
    for (double y : s.y) mean += y;
    mean /= static_cast<double>(s.size());
    return max / mean;
  };
  std::printf("# Shape check: attack peakedness (max/mean; paper: AS, RL, "
              "PLRG, Tiers peaked)\n");
  for (const auto* group : {&a1, &a2, &a3}) {
    for (const auto& s : *group) {
      std::printf("#   %-10s %.2f\n", s.name.c_str(), peakedness(s));
    }
  }
  return bench::Finish(0);
}
