// Figure 9 (Appendix B): attack tolerance (a-c) and error tolerance (d-f)
// -- average path length of the largest surviving component as nodes are
// removed in decreasing-degree order (attack) or uniformly (error).
//
// Paper shape: error curves are flat-ish for every topology; attack
// curves are *peaked* for the measured networks, PLRG, and Tiers.
// Following the paper, the RL topology is attacked on its core.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "graph/components.h"
#include "metrics/tolerance.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  std::printf("# Figure 9: attack and error tolerance (scale=%s)\n",
              bench::ScaleName().c_str());

  metrics::ToleranceOptions opts;
  opts.path_samples = bench::ScaleName() == "small" ? 64 : 128;

  auto attack = [&](const std::string& name, const graph::Graph& g) {
    metrics::Series s = metrics::AttackTolerance(g, opts);
    s.name = name + ".att";
    return s;
  };
  auto error = [&](const std::string& name, const graph::Graph& g) {
    metrics::Series s = metrics::ErrorTolerance(g, opts);
    s.name = name + ".err";
    return s;
  };

  const core::RlArtifacts rl = core::MakeRl(ro);
  const graph::Subgraph rl_core = graph::CoreGraph(rl.topology.graph);
  const core::Topology as = core::MakeAs(ro);
  const core::Topology plrg = core::MakePlrg(ro);

  std::vector<metrics::Series> a1, a2, a3, e1, e2, e3;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    a1.push_back(attack(t.name, t.graph));
    e1.push_back(error(t.name, t.graph));
  }
  a2 = {attack("RL.core", rl_core.graph), attack("AS", as.graph),
        attack("PLRG", plrg.graph)};
  e2 = {error("RL.core", rl_core.graph), error("AS", as.graph),
        error("PLRG", plrg.graph)};
  for (const core::Topology& t :
       {core::MakeTransitStub(ro), core::MakeTiers(ro),
        core::MakeWaxman(ro)}) {
    a3.push_back(attack(t.name, t.graph));
    e3.push_back(error(t.name, t.graph));
  }

  core::PrintPanel(std::cout, "9a", "Attack tolerance, Canonical", a1);
  core::PrintPanel(std::cout, "9b", "Attack tolerance, Measured", a2);
  core::PrintPanel(std::cout, "9c", "Attack tolerance, Generated", a3);
  core::PrintPanel(std::cout, "9d", "Error tolerance, Canonical", e1);
  core::PrintPanel(std::cout, "9e", "Error tolerance, Measured", e2);
  core::PrintPanel(std::cout, "9f", "Error tolerance, Generated", e3);

  // Shape check: peakedness = max/mean of the attack curve; the paper
  // calls out AS, RL, PLRG (and Tiers) as peaked.
  auto peakedness = [](const metrics::Series& s) {
    if (s.empty()) return 0.0;
    double max = *std::max_element(s.y.begin(), s.y.end());
    double mean = 0;
    for (double y : s.y) mean += y;
    mean /= static_cast<double>(s.size());
    return max / mean;
  };
  std::printf("# Shape check: attack peakedness (max/mean; paper: AS, RL, "
              "PLRG, Tiers peaked)\n");
  for (const auto* group : {&a1, &a2, &a3}) {
    for (const auto& s : *group) {
      std::printf("#   %-10s %.2f\n", s.name.c_str(), peakedness(s));
    }
  }
  return 0;
}
