// Ablation: node-connectivity methods over one fixed degree sequence
// (extends Appendix D.1).
//
// The paper's conclusion: "what seems to determine the qualitative
// behavior of these degree-based generators is the degree distribution,
// not the connectivity method ... so long as that method incorporates
// some notion of random connectivity." This bench wires a single
// power-law degree sequence six ways and classifies each. Every
// random-ish method should land on HHL; the deterministic method is the
// paper's counterexample.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/suite.h"
#include "gen/degree_seq.h"
#include "metrics/degree.h"

// One-off ablation graphs have no roster identity, so this bench computes
// directly instead of going through the session cache.
int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  std::printf("# Ablation: connectivity methods on one degree sequence "
              "(scale=%s)\n",
              bench::ScaleName().c_str());
  graph::Rng seq_rng(7);
  gen::PowerLawDegreeParams dp;
  dp.n = bench::ScaleName() == "small" ? 3000 : 8000;
  dp.exponent = 2.246;
  const std::vector<std::uint32_t> degrees =
      gen::SamplePowerLawDegrees(dp, seq_rng);

  core::SuiteOptions so = bench::Suite();
  so.ball.max_centers = 10;
  so.ball.big_ball_centers = 3;

  struct MethodRow {
    const char* name;
    gen::ConnectMethod method;
    bool random_ish;
  };
  const MethodRow methods[] = {
      {"plrg-matching", gen::ConnectMethod::kPlrgMatching, true},
      {"random-pairs", gen::ConnectMethod::kRandomNodePairs, true},
      {"prop-highest", gen::ConnectMethod::kProportionalHighestFirst, true},
      {"unsat-prop", gen::ConnectMethod::kUnsatisfiedProportionalHighestFirst,
       true},
      {"uniform-highest", gen::ConnectMethod::kUniformHighestFirst, true},
      {"deterministic", gen::ConnectMethod::kDeterministicHighestFirst,
       false},
  };

  core::PrintTableHeader(std::cout, {"Method", "Nodes", "AvgDeg", "MaxDeg",
                                     "Signature", "HeavyTail"});
  bool ok = true;
  for (const MethodRow& row : methods) {
    graph::Rng rng(11);
    core::Topology t{row.name, core::Category::kDegreeBased,
                     gen::ConnectDegreeSequence(degrees, row.method, rng),
                     {}, ""};
    const core::BasicMetrics m = core::RunBasicMetrics(t, so);
    const std::string sig = m.signature.ToString();
    core::PrintTableRow(std::cout,
                        {row.name, core::Num(t.graph.num_nodes()),
                         core::Num(t.graph.average_degree(), 3),
                         core::Num(static_cast<double>(t.graph.max_degree())),
                         sig,
                         metrics::LooksHeavyTailed(t.graph) ? "yes" : "no"});
    if (row.random_ish) ok &= sig == "HHL";
  }
  std::printf("\n# Expected: every random-ish method classifies HHL; the\n"
              "# deterministic method may differ (Appendix D.1: 'quite\n"
              "# different from the PLRG').\n# %s\n",
              ok ? "confirmed" : "MISMATCH");
  return bench::Finish(ok ? 0 : 1);
}
