// Shared setup for the figure-regeneration harness.
//
// Every bench binary prints the rows/series behind one of the paper's
// tables or figures (gnuplot-style "# panel / # curve / x y" blocks, see
// core/report.h) followed by a qualitative shape summary that
// EXPERIMENTS.md records as paper-vs-measured.
//
// Scale is controlled by the TOPOGEN_SCALE environment variable:
//   small   - quick smoke runs (CI-sized, ~seconds per bench)
//   default - the scale EXPERIMENTS.md reports (minutes for the suite)
//   full    - paper-sized where feasible (AS at 10941 nodes etc.)
#pragma once

#include <string>

#include "core/roster.h"
#include "core/suite.h"
#include "hierarchy/link_value.h"
#include "obs/obs.h"

namespace topogen::bench {

inline const std::string& ScaleName() {
  // Resolved once per process by obs::Env (alongside TOPOGEN_TRACE etc.),
  // not re-read from the environment on every call.
  return obs::Env::Get().scale();
}

inline core::RosterOptions Roster() {
  // One process-wide span covering the whole bench run; it opens on the
  // first Roster() call and closes at exit, so the trace timeline has a
  // top-level bar the per-phase spans nest under.
  static obs::Span run_span("bench.run", "bench");
  core::RosterOptions ro;
  ro.seed = 42;
  const std::string scale = ScaleName();
  if (scale == "small") {
    ro.as_nodes = 1500;
    ro.rl_expansion_ratio = 4.0;
    ro.plrg_nodes = 4000;
    ro.degree_based_nodes = 3000;
  } else if (scale == "full") {
    ro.as_nodes = 10941;
    ro.rl_expansion_ratio = 15.6;  // -> ~170k routers, the May 2001 map
    ro.plrg_nodes = 10000;
    ro.degree_based_nodes = 10000;
  } else {
    ro.as_nodes = 4000;
    ro.rl_expansion_ratio = 6.0;
    ro.plrg_nodes = 10000;
    ro.degree_based_nodes = 8000;
  }
  core::RecordRunConfiguration(ro);
  return ro;
}

inline core::SuiteOptions Suite() {
  core::SuiteOptions so;
  const std::string scale = ScaleName();
  if (scale == "small") {
    so.ball.max_centers = 8;
    so.ball.big_ball_centers = 3;
    so.expansion.max_sources = 500;
  } else {
    so.ball.max_centers = 16;
    so.ball.big_ball_centers = 4;
    so.expansion.max_sources = 1500;
  }
  return so;
}

// Source budget for link-value analysis (exact up to this many sources).
inline std::size_t LinkValueSources() {
  return ScaleName() == "small" ? 600 : 1500;
}

}  // namespace topogen::bench
