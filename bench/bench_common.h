// Shared setup for the figure-regeneration harness.
//
// Every bench binary prints the rows/series behind one of the paper's
// tables or figures (gnuplot-style "# panel / # curve / x y" blocks, see
// core/report.h) followed by a qualitative shape summary that
// EXPERIMENTS.md records as paper-vs-measured.
//
// Benches obtain topologies and metric results through one process-wide
// core::Session (bench::Session()), which lazily builds, deduplicates,
// and -- when TOPOGEN_CACHE_DIR is set -- persists them in the artifact
// store, so a warm rerun of a figure bench recomputes nothing
// (docs/CACHING.md).
//
// Environment knobs (also dumped by `<bench> --help`):
//   TOPOGEN_SCALE        small | default | full   figure harness sizing
//   TOPOGEN_THREADS      worker threads (0/unset = hardware concurrency)
//   TOPOGEN_TRACE        <file>  Chrome trace_event JSON at exit
//   TOPOGEN_STATS        <file>  counter/timer dump at exit
//   TOPOGEN_OUTDIR       <dir>   figure export dir + manifest.json +
//                                the resumable run journal (journal.log)
//   TOPOGEN_CACHE_DIR    <dir>   persistent artifact cache (off if unset)
//   TOPOGEN_CACHE_MAX_MB <n>     prune cache to n MiB at exit (0 = never)
//   TOPOGEN_FAULTS       <spec>  deterministic fault injection
//                                (docs/ROBUSTNESS.md)
//   TOPOGEN_HIST         1       latency histograms (p50/p90/p99/max) in
//                                the stats dump and manifest
//   TOPOGEN_EVENTS       <file|1> JSONL runtime event log; 1 = events.jsonl
//                                under TOPOGEN_OUTDIR
//
// Exit codes: 0 = success, 1 = figure/paper mismatch, 75 = partial
// success (some roster slots degraded; see bench::Finish and
// docs/ROBUSTNESS.md), 113 = injected crash (kind=abort).
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>

#include "core/roster.h"
#include "core/scale.h"
#include "core/session.h"
#include "core/suite.h"
#include "fault/fault.h"
#include "hierarchy/link_value.h"
#include "obs/obs.h"

namespace topogen::bench {

inline const std::string& ScaleName() {
  // Resolved once per process by obs::Env (alongside TOPOGEN_TRACE etc.),
  // not re-read from the environment on every call.
  return obs::Env::Get().scale();
}

inline core::RosterOptions Roster() {
  // One process-wide span covering the whole bench run; it opens on the
  // first Roster() call and closes at exit, so the trace timeline has a
  // top-level bar the per-phase spans nest under.
  static obs::Span run_span("bench.run", "bench");
  // The tier values live in core/scale.h so topogend resolves the
  // identical roster (and therefore identical cache keys) as the benches.
  core::RosterOptions ro = core::ScaledRosterOptions(ScaleName());
  core::RecordRunConfiguration(ro);
  return ro;
}

inline core::SuiteOptions Suite() {
  return core::ScaledSuiteOptions(ScaleName());
}

// Source budget for link-value analysis (exact up to this many sources).
inline std::size_t LinkValueSources() {
  return core::ScaledLinkValueSources(ScaleName());
}

// The scale-resolved session configuration every bench shares: roster and
// suite options from the TOPOGEN_SCALE tier, cache and journal locations
// from the environment. Benches needing a custom roster (e.g.
// bench_ext_gao's small AS graph) copy this and adjust before opening
// their own Session.
inline core::SessionOptions SessionConfig() {
  Roster();  // open the run span + record the manifest configuration
  return core::ScaledSessionOptions(ScaleName());
}

// The process-wide session. All figure benches pull topologies
// (Session().Topology("PLRG")), metric suites (Session().Metrics("AS")),
// and link values through this single instance.
inline core::Session& Session() {
  static core::Session session(SessionConfig());
  return session;
}

// Prints the environment-knob table with this process's resolved values.
inline void PrintEnvHelp(const char* argv0) {
  const obs::Env& env = obs::Env::Get();
  std::printf("usage: %s [--help]\n\n", argv0);
  std::printf(
      "Regenerates one paper figure/table on stdout. Configuration is\n"
      "via TOPOGEN_* environment variables (resolved value in [ ]):\n\n");
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_SCALE",
              "small | default | full figure sizing", env.scale().c_str());
  std::printf("  %-21s %s [%d]\n", "TOPOGEN_THREADS",
              "worker threads; 0 = hardware concurrency",
              env.threads_override());
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_TRACE",
              "write Chrome trace JSON to <file> at exit",
              env.trace_enabled() ? env.trace_path().c_str() : "off");
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_STATS",
              "write counter/timer dump to <file> at exit",
              env.stats_enabled() ? env.stats_path().c_str() : "off");
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_OUTDIR",
              "figure export dir (+ manifest.json, journal.log)",
              env.outdir_set() ? env.outdir().c_str() : "off");
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_CACHE_DIR",
              "persistent topology/metric artifact cache",
              env.cache_enabled() ? env.cache_dir().c_str() : "off");
  std::printf("  %-21s %s [%d]\n", "TOPOGEN_CACHE_MAX_MB",
              "prune cache to this many MiB at exit; 0 = never",
              env.cache_max_mb());
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_FAULTS",
              fault::CompiledIn()
                  ? "deterministic fault injection spec"
                  : "fault injection (needs -DTOPOGEN_FAULT_POINTS=ON)",
              env.faults_set() ? env.faults().c_str() : "off");
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_HIST",
              "latency histograms in stats dump + manifest",
              env.hist_enabled() ? "on" : "off");
  std::printf("  %-21s %s [%s]\n", "TOPOGEN_EVENTS",
              "JSONL event log (1 = events.jsonl under outdir)",
              env.events_enabled() ? env.events_path().c_str() : "off");
  std::printf(
      "\nSee docs/CACHING.md, docs/OBSERVABILITY.md, docs/ROBUSTNESS.md.\n");
}

// Standard flag handling for every bench main(): returns true when the
// process should exit (after printing --help).
inline bool HandleFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintEnvHelp(argv[0]);
      return true;
    }
  }
  return false;
}

// Exit code for a run whose figures are real but incomplete: one or more
// roster slots degraded past their retry budget and were isolated
// (docs/ROBUSTNESS.md). 75 is EX_TEMPFAIL in sysexits terms -- rerunning
// may succeed -- and distinct from 1 (figure/paper mismatch) and 113
// (injected crash).
inline constexpr int kPartialSuccessExitCode = 75;

// Every bench main ends with `return bench::Finish(rc)`: a clean rc with
// degraded slots recorded becomes the partial-success code; a real
// failure rc always wins. Reads the process-wide tally, so benches that
// never opened a Session pass through untouched.
inline int Finish(int rc) {
  const std::uint64_t degraded = core::Session::TotalDegraded();
  int out = rc;
  if (degraded > 0) {
    std::fprintf(stderr,
                 "# bench: %llu roster slot(s) degraded; figures are "
                 "partial (exit %d)\n",
                 static_cast<unsigned long long>(degraded),
                 kPartialSuccessExitCode);
    if (rc == 0) out = kPartialSuccessExitCode;
  }
  obs::Event("run_end").I64("exit", out).U64("degraded", degraded);
  if (degraded > 0) {
    // A partial-success run must leave complete artifacts even if exit
    // handlers are later disturbed; flush trace/stats/events here, not
    // only from static destructors.
    obs::FlushRunArtifacts();
  }
  return out;
}

}  // namespace topogen::bench
