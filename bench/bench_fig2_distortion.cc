// Figure 2 (c, f, i, l): distortion D(n) for canonical, measured,
// generated, and degree-based topologies.
//
// Paper shape: Tree at exactly 1; Mesh, Random, and Waxman climb like
// log n; the measured graphs and every degree-based generator stay low
// (more so under policy).
#include "fig2_panels.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  bench::EmitFigure2Row(bench::BasicMetric::kDistortion, "2c", "2f", "2i",
                        "2l");

  const metrics::Series& tree = bench::Session().Metrics("Tree").distortion;
  std::printf("# Shape check: Tree distortion stays at %.3f (paper: "
              "exactly 1)\n",
              tree.empty() ? 0.0 : tree.y.back());
  return bench::Finish(0);
}
