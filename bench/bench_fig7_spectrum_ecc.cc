// Figure 7 (Appendix B): (a-c) adjacency eigenvalues vs rank; (d-f) node
// diameter (eccentricity) distributions.
//
// Paper shape: PLRG is the only generator whose eigenvalue-rank curve is
// power-law like the AS graph's; eccentricity distributions are
// bell-shaped around the mean for every topology except the one-sided
// Tree. (The paper skipped the RL spectrum for size; we do too at
// default scale.)
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/eccentricity.h"
#include "metrics/laplacian.h"
#include "metrics/spectrum.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  std::printf("# Figure 7: eigenvalue spectra and eccentricity "
              "distributions (scale=%s)\n",
              bench::ScaleName().c_str());

  const metrics::SpectrumOptions spec{.top_k = 48, .seed = 13};
  auto eigen_curve = [&](const core::Topology& t) {
    metrics::Series s = metrics::EigenvalueRank(t.graph, spec);
    s.name = t.name;
    return s;
  };
  auto ecc_curve = [](const core::Topology& t) {
    metrics::Series s = metrics::EccentricityDistribution(t.graph);
    s.name = t.name;
    return s;
  };

  std::vector<metrics::Series> canonical_eig;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    canonical_eig.push_back(eigen_curve(t));
  }
  core::PrintPanel(std::cout, "7a", "Eigenvalues vs rank, Canonical",
                   canonical_eig);

  const core::Topology as = core::MakeAs(ro);
  const core::Topology plrg = core::MakePlrg(ro);
  core::PrintPanel(std::cout, "7b", "Eigenvalues vs rank, Measured",
                   {eigen_curve(as), eigen_curve(plrg)});

  std::vector<metrics::Series> generated_eig;
  generated_eig.push_back(eigen_curve(core::MakeTransitStub(ro)));
  generated_eig.push_back(eigen_curve(core::MakeTiers(ro)));
  generated_eig.push_back(eigen_curve(core::MakeWaxman(ro)));
  core::PrintPanel(std::cout, "7c", "Eigenvalues vs rank, Generated",
                   generated_eig);

  std::vector<metrics::Series> canonical_ecc;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    canonical_ecc.push_back(ecc_curve(t));
  }
  core::PrintPanel(std::cout, "7d", "Eccentricity distribution, Canonical",
                   canonical_ecc);

  const core::RlArtifacts rl = core::MakeRl(ro);
  core::PrintPanel(std::cout, "7e", "Eccentricity distribution, Measured",
                   {ecc_curve(rl.topology), ecc_curve(as), ecc_curve(plrg)});

  std::vector<metrics::Series> generated_ecc;
  generated_ecc.push_back(ecc_curve(core::MakeTransitStub(ro)));
  generated_ecc.push_back(ecc_curve(core::MakeTiers(ro)));
  generated_ecc.push_back(ecc_curve(core::MakeWaxman(ro)));
  core::PrintPanel(std::cout, "7f", "Eccentricity distribution, Generated",
                   generated_ecc);

  // Shape check: AS and PLRG share a power-law-ish eigenvalue decay that
  // the structural generators lack.
  const double as_slope = metrics::EigenvaluePowerLawSlope(as.graph, spec);
  const double plrg_slope =
      metrics::EigenvaluePowerLawSlope(plrg.graph, spec);
  const core::Topology mesh = core::MakeMesh(ro);
  const double mesh_slope =
      metrics::EigenvaluePowerLawSlope(mesh.graph, spec);
  std::printf("# Shape check: eigen slope AS=%.3f PLRG=%.3f Mesh=%.3f "
              "(paper: AS and PLRG decay alike; Mesh nearly flat)\n",
              as_slope, plrg_slope, mesh_slope);

  // Companion local-spectrum metric (Vukadinovic et al. [45], Section 2):
  // normalized-Laplacian eigenvalue-1 mass separates AS graphs from grids
  // and trees.
  std::printf("# Laplacian eigenvalue-1 fraction (Vukadinovic et al.)\n");
  core::PrintTableHeader(std::cout, {"Topology", "Ev1Fraction"});
  auto lap_row = [](const core::Topology& t) {
    core::PrintTableRow(std::cout,
                        {t.name,
                         core::Num(metrics::Eigenvalue1Fraction(t.graph),
                                   4)});
  };
  lap_row(as);
  lap_row(rl.topology);
  lap_row(plrg);
  lap_row(mesh);
  lap_row(core::MakeTree(ro));
  lap_row(core::MakeRandom(ro));
  return 0;
}
