// Figure 7 (Appendix B): (a-c) adjacency eigenvalues vs rank; (d-f) node
// diameter (eccentricity) distributions.
//
// Paper shape: PLRG is the only generator whose eigenvalue-rank curve is
// power-law like the AS graph's; eccentricity distributions are
// bell-shaped around the mean for every topology except the one-sided
// Tree. (The paper skipped the RL spectrum for size; we do too at
// default scale.)
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/eccentricity.h"
#include "metrics/laplacian.h"
#include "metrics/spectrum.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 7: eigenvalue spectra and eccentricity "
              "distributions (scale=%s)\n",
              bench::ScaleName().c_str());

  const metrics::SpectrumOptions spec{.top_k = 48, .seed = 13};
  auto eigen_curve = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::EigenvalueRank(t.graph, spec);
    s.name = t.name;
    return s;
  };
  auto ecc_curve = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series s = metrics::EccentricityDistribution(t.graph);
    s.name = t.name;
    return s;
  };

  core::PrintPanel(std::cout, "7a", "Eigenvalues vs rank, Canonical",
                   {eigen_curve("Tree"), eigen_curve("Mesh"),
                    eigen_curve("Random")});
  core::PrintPanel(std::cout, "7b", "Eigenvalues vs rank, Measured",
                   {eigen_curve("AS"), eigen_curve("PLRG")});
  core::PrintPanel(std::cout, "7c", "Eigenvalues vs rank, Generated",
                   {eigen_curve("TS"), eigen_curve("Tiers"),
                    eigen_curve("Waxman")});

  core::PrintPanel(std::cout, "7d", "Eccentricity distribution, Canonical",
                   {ecc_curve("Tree"), ecc_curve("Mesh"),
                    ecc_curve("Random")});
  core::PrintPanel(std::cout, "7e", "Eccentricity distribution, Measured",
                   {ecc_curve("RL"), ecc_curve("AS"), ecc_curve("PLRG")});
  core::PrintPanel(std::cout, "7f", "Eccentricity distribution, Generated",
                   {ecc_curve("TS"), ecc_curve("Tiers"),
                    ecc_curve("Waxman")});

  // Shape check: AS and PLRG share a power-law-ish eigenvalue decay that
  // the structural generators lack.
  const graph::Graph& as = session.Topology("AS").graph;
  const graph::Graph& plrg = session.Topology("PLRG").graph;
  const graph::Graph& mesh = session.Topology("Mesh").graph;
  const double as_slope = metrics::EigenvaluePowerLawSlope(as, spec);
  const double plrg_slope = metrics::EigenvaluePowerLawSlope(plrg, spec);
  const double mesh_slope = metrics::EigenvaluePowerLawSlope(mesh, spec);
  std::printf("# Shape check: eigen slope AS=%.3f PLRG=%.3f Mesh=%.3f "
              "(paper: AS and PLRG decay alike; Mesh nearly flat)\n",
              as_slope, plrg_slope, mesh_slope);

  // Companion local-spectrum metric (Vukadinovic et al. [45], Section 2):
  // normalized-Laplacian eigenvalue-1 mass separates AS graphs from grids
  // and trees.
  std::printf("# Laplacian eigenvalue-1 fraction (Vukadinovic et al.)\n");
  core::PrintTableHeader(std::cout, {"Topology", "Ev1Fraction"});
  auto lap_row = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    core::PrintTableRow(std::cout,
                        {t.name,
                         core::Num(metrics::Eigenvalue1Fraction(t.graph),
                                   4)});
  };
  lap_row("AS");
  lap_row("RL");
  lap_row("PLRG");
  lap_row("Mesh");
  lap_row("Tree");
  lap_row("Random");
  return bench::Finish(0);
}
