// Panel builder shared by the three Figure 2 benches (expansion,
// resilience, distortion). Figure 2 is a 4x3 grid: rows = metric, columns
// = {canonical, measured, generated, degree-based}. Each bench emits one
// row's four panels.
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/distortion.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"

namespace topogen::bench {

enum class BasicMetric { kExpansion, kResilience, kDistortion };

inline const char* Name(BasicMetric m) {
  switch (m) {
    case BasicMetric::kExpansion:
      return "Expansion";
    case BasicMetric::kResilience:
      return "Resilience";
    case BasicMetric::kDistortion:
      return "Distortion";
  }
  return "?";
}

inline metrics::Series Compute(BasicMetric m, const core::Topology& t,
                               bool use_policy) {
  core::SuiteOptions so = Suite();
  const auto& g = t.graph;
  metrics::Series s;
  if (use_policy) {
    switch (m) {
      case BasicMetric::kExpansion:
        s = metrics::PolicyExpansion(g, t.relationship, so.expansion);
        break;
      case BasicMetric::kResilience:
        s = metrics::PolicyResilience(g, t.relationship, so.ball);
        break;
      case BasicMetric::kDistortion:
        s = metrics::PolicyDistortion(g, t.relationship, so.ball);
        break;
    }
    s.name = t.name + "(Policy)";
  } else {
    switch (m) {
      case BasicMetric::kExpansion:
        s = metrics::Expansion(g, so.expansion);
        break;
      case BasicMetric::kResilience:
        s = metrics::Resilience(g, so.ball);
        break;
      case BasicMetric::kDistortion:
        s = metrics::Distortion(g, so.ball);
        break;
    }
    s.name = t.name;
  }
  return s;
}

// Emits the four Figure 2 panels for one metric row. `panel_ids` names the
// paper's sub-figures, e.g. {"2a", "2d", "2g", "2j"} for expansion.
inline void EmitFigure2Row(BasicMetric m, const char* id_canonical,
                           const char* id_measured, const char* id_generated,
                           const char* id_degree_based) {
  const core::RosterOptions ro = Roster();
  std::printf("# Figure 2 row: %s (scale=%s)\n", Name(m),
              ScaleName().c_str());

  std::vector<metrics::Series> canonical;
  for (const core::Topology& t : core::CanonicalRoster(ro)) {
    canonical.push_back(Compute(m, t, false));
  }
  core::PrintPanel(std::cout, id_canonical,
                   std::string(Name(m)) + ", Canonical", canonical);

  std::vector<metrics::Series> measured;
  {
    const core::RlArtifacts rl = core::MakeRl(ro);
    measured.push_back(Compute(m, rl.topology, false));
    measured.push_back(Compute(m, rl.topology, true));
    const core::Topology as = core::MakeAs(ro);
    measured.push_back(Compute(m, as, false));
    measured.push_back(Compute(m, as, true));
  }
  core::PrintPanel(std::cout, id_measured,
                   std::string(Name(m)) + ", Measured", measured);

  std::vector<metrics::Series> generated;
  for (const core::Topology& t : core::GeneratedRoster(ro)) {
    generated.push_back(Compute(m, t, false));
  }
  core::PrintPanel(std::cout, id_generated,
                   std::string(Name(m)) + ", Generated", generated);

  std::vector<metrics::Series> degree_based;
  for (const core::Topology& t : core::DegreeBasedRoster(ro)) {
    degree_based.push_back(Compute(m, t, false));
  }
  core::PrintPanel(std::cout, id_degree_based,
                   std::string(Name(m)) + ", Degree-Based Generators",
                   degree_based);
}

}  // namespace topogen::bench
