// Panel builder shared by the three Figure 2 benches (expansion,
// resilience, distortion). Figure 2 is a 4x3 grid: rows = metric, columns
// = {canonical, measured, generated, degree-based}. Each bench emits one
// row's four panels.
//
// All series come from the session's BasicMetrics artifacts: the three
// row benches share one cached suite result per topology, so regenerating
// the whole figure computes each topology's metrics exactly once -- and a
// warm rerun computes nothing at all.
#pragma once

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/report.h"

namespace topogen::bench {

enum class BasicMetric { kExpansion, kResilience, kDistortion };

inline const char* Name(BasicMetric m) {
  switch (m) {
    case BasicMetric::kExpansion:
      return "Expansion";
    case BasicMetric::kResilience:
      return "Resilience";
    case BasicMetric::kDistortion:
      return "Distortion";
  }
  return "?";
}

inline const metrics::Series& MetricSeries(BasicMetric m,
                                           const core::BasicMetrics& b) {
  switch (m) {
    case BasicMetric::kResilience:
      return b.resilience;
    case BasicMetric::kDistortion:
      return b.distortion;
    case BasicMetric::kExpansion:
      break;
  }
  return b.expansion;
}

// Emits the four Figure 2 panels for one metric row. `panel_ids` names the
// paper's sub-figures, e.g. {"2a", "2d", "2g", "2j"} for expansion.
inline void EmitFigure2Row(BasicMetric m, const char* id_canonical,
                           const char* id_measured, const char* id_generated,
                           const char* id_degree_based) {
  core::Session& session = Session();
  std::printf("# Figure 2 row: %s (scale=%s)\n", Name(m),
              ScaleName().c_str());

  // One batch for the full roster: cold runs fan the misses out across
  // the parallel engine; warm runs serve everything from the store.
  const std::vector<core::Session::MetricsRequest> requests = {
      {"Tree"},        {"Mesh"},  {"Random"},       // canonical
      {"RL"},          {"RL", true},                // measured
      {"AS"},          {"AS", true},
      {"TS"},          {"Tiers"}, {"Waxman"}, {"PLRG"},  // generated
      {"B-A"},         {"Brite"}, {"BT"},     {"Inet"},  // degree-based
  };
  const std::vector<const core::BasicMetrics*> results =
      session.MetricsBatch(requests);

  // Degraded roster slots come back as nullptr (docs/ROBUSTNESS.md): the
  // panel still prints with that curve missing, and bench::Finish turns
  // the run's exit code into partial-success.
  auto slice = [&](std::size_t first, std::size_t count) {
    std::vector<metrics::Series> group;
    for (std::size_t i = first; i < first + count; ++i) {
      if (results[i] == nullptr) continue;
      group.push_back(MetricSeries(m, *results[i]));
    }
    return group;
  };
  core::PrintPanel(std::cout, id_canonical,
                   std::string(Name(m)) + ", Canonical", slice(0, 3));
  core::PrintPanel(std::cout, id_measured,
                   std::string(Name(m)) + ", Measured", slice(3, 4));
  core::PrintPanel(std::cout, id_generated,
                   std::string(Name(m)) + ", Generated", slice(7, 4));
  std::vector<metrics::Series> degree_based = slice(11, 4);
  if (results[10] != nullptr) {
    degree_based.push_back(MetricSeries(m, *results[10]));  // PLRG again
  }
  core::PrintPanel(std::cout, id_degree_based,
                   std::string(Name(m)) + ", Degree-Based Generators",
                   degree_based);
}

}  // namespace topogen::bench
