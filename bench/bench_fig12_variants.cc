// Figure 12 (Appendix D.1): the degree-based generator variants -- B-A,
// Brite, BT (GLP), Inet, PLRG -- compared on (a) degree CCDF and
// (b-d) the three basic metrics.
//
// Paper shape: all five are heavy-tailed and classify together
// (high expansion, high resilience, low distortion); B-A/Brite/BT sit
// slightly apart on distortion because their tails carry fewer low-degree
// and extreme-degree nodes.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "fig2_panels.h"
#include "metrics/degree.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 12: degree-based variants (scale=%s)\n",
              bench::ScaleName().c_str());

  const std::vector<core::Session::MetricsRequest> requests = {
      {"B-A"}, {"Brite"}, {"BT"}, {"Inet"}};

  std::vector<metrics::Series> ccdfs;
  for (const auto& r : requests) {
    const core::Topology& t = session.Topology(r.id);
    metrics::Series s = metrics::DegreeCcdf(t.graph);
    s.name = t.name;
    ccdfs.push_back(std::move(s));
  }
  core::PrintPanel(std::cout, "12a", "Degree CCDF, Variants", ccdfs);

  const std::vector<const core::BasicMetrics*> results =
      session.MetricsBatch(requests);
  std::vector<metrics::Series> expansion, resilience, distortion;
  for (const core::BasicMetrics* b : results) {
    expansion.push_back(b->expansion);
    resilience.push_back(b->resilience);
    distortion.push_back(b->distortion);
  }
  core::PrintPanel(std::cout, "12b", "Expansion, Variants", expansion);
  core::PrintPanel(std::cout, "12c", "Resilience, Variants", resilience);
  core::PrintPanel(std::cout, "12d", "Distortion, Variants", distortion);

  std::printf("# Shape check: all variants heavy-tailed and classified "
              "HHL\n");
  bool ok = true;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const core::Topology& t = session.Topology(requests[i].id);
    const std::string sig = results[i]->signature.ToString();
    const bool heavy = metrics::LooksHeavyTailed(t.graph);
    std::printf("#   %-6s heavy=%-3s sig=%s\n", t.name.c_str(),
                heavy ? "yes" : "no", sig.c_str());
    ok &= heavy && sig == "HHL";
  }
  return bench::Finish(ok ? 0 : 1);
}
