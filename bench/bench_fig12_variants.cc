// Figure 12 (Appendix D.1): the degree-based generator variants -- B-A,
// Brite, BT (GLP), Inet, PLRG -- compared on (a) degree CCDF and
// (b-d) the three basic metrics.
//
// Paper shape: all five are heavy-tailed and classify together
// (high expansion, high resilience, low distortion); B-A/Brite/BT sit
// slightly apart on distortion because their tails carry fewer low-degree
// and extreme-degree nodes.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "fig2_panels.h"
#include "metrics/degree.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  std::printf("# Figure 12: degree-based variants (scale=%s)\n",
              bench::ScaleName().c_str());

  const std::vector<core::Topology> roster = core::DegreeBasedRoster(ro);

  std::vector<metrics::Series> ccdfs;
  for (const core::Topology& t : roster) {
    metrics::Series s = metrics::DegreeCcdf(t.graph);
    s.name = t.name;
    ccdfs.push_back(std::move(s));
  }
  core::PrintPanel(std::cout, "12a", "Degree CCDF, Variants", ccdfs);

  std::vector<metrics::Series> expansion, resilience, distortion;
  for (const core::Topology& t : roster) {
    expansion.push_back(
        bench::Compute(bench::BasicMetric::kExpansion, t, false));
    resilience.push_back(
        bench::Compute(bench::BasicMetric::kResilience, t, false));
    distortion.push_back(
        bench::Compute(bench::BasicMetric::kDistortion, t, false));
  }
  core::PrintPanel(std::cout, "12b", "Expansion, Variants", expansion);
  core::PrintPanel(std::cout, "12c", "Resilience, Variants", resilience);
  core::PrintPanel(std::cout, "12d", "Distortion, Variants", distortion);

  std::printf("# Shape check: all variants heavy-tailed and classified "
              "HHL\n");
  bool ok = true;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    const auto sig = metrics::Classify(expansion[i], resilience[i],
                                       distortion[i]);
    const bool heavy = metrics::LooksHeavyTailed(roster[i].graph);
    std::printf("#   %-6s heavy=%-3s sig=%s\n", roster[i].name.c_str(),
                heavy ? "yes" : "no", sig.ToString().c_str());
    ok &= heavy && sig.ToString() == "HHL";
  }
  return ok ? 0 : 1;
}
