// Ablation: geographic vs random inter-tier attachment in Tiers.
//
// DESIGN.md calls out one load-bearing implementation decision in our
// Tiers reimplementation: child networks attach to *nearby* parent nodes.
// This ablation shows why it matters -- with uniformly random attachment
// the inter-tier links act as small-world shortcuts, the WAN's geometry
// stops bottlenecking paths, and Tiers' expansion flips from the paper's
// Mesh-like Low to High, breaking the published LHL signature.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/suite.h"
#include "gen/tiers.h"
#include "graph/bfs.h"

// One-off ablation graphs have no roster identity, so this bench computes
// directly instead of going through the session cache.
int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  std::printf("# Ablation: Tiers inter-tier attachment (scale=%s)\n",
              bench::ScaleName().c_str());
  core::PrintTableHeader(std::cout, {"Attachment", "Nodes", "AvgDeg",
                                     "Diameter~", "Signature"});
  core::SuiteOptions so = bench::Suite();
  so.ball.max_centers = 10;
  so.ball.big_ball_centers = 3;

  std::string geo_sig, rand_sig;
  for (const bool geographic : {true, false}) {
    graph::Rng rng(5);
    gen::TiersParams p;
    p.geographic_attachment = geographic;
    core::Topology t{"Tiers", core::Category::kStructural,
                     gen::Tiers(p, rng), {},
                     geographic ? "geographic" : "random"};
    const core::BasicMetrics m = core::RunBasicMetrics(t, so);
    const std::string sig = m.signature.ToString();
    (geographic ? geo_sig : rand_sig) = sig;
    core::PrintTableRow(
        std::cout,
        {geographic ? "geographic" : "random",
         core::Num(t.graph.num_nodes()), core::Num(t.graph.average_degree(), 3),
         core::Num(static_cast<double>(graph::Eccentricity(t.graph, 0))),
         sig});
  }
  std::printf("\n# Expected: geographic = LHL (the paper's Tiers), random "
              "flips expansion to High.\n");
  const bool ok = geo_sig == "LHL" && rand_sig[0] == 'H';
  std::printf("# %s\n", ok ? "confirmed" : "MISMATCH");
  return bench::Finish(ok ? 0 : 1);
}
