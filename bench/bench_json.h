// Shared BENCH.json merge support (schema topogen-bench/3).
//
// bench_perf writes the file through its google-benchmark reporter;
// bench_service and bench_scale are standalone harnesses that must land
// their records in the *same* file without clobbering whatever already
// ran. MergeIntoBenchJson re-reads the file, keeps every existing record
// whose name is not being replaced, and rewrites the document -- so the
// three binaries can run in any order against one BENCH.json and CI's
// perf gate diffs them all.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace topogen::bench {

struct JsonRecord {
  std::string name;
  std::string kernel;
  std::string family;
  std::int64_t n = 0;
  std::int64_t threads = 1;
  double ns_per_op = 0.0;
  // Service-only field: requests per second. Emitted only when >= 0, so
  // kernel records keep the exact shape bench_perf writes.
  double qps = -1.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

// Merges `records` into the BENCH.json at `path`: existing results are
// kept (same-name records replaced), the schema is stamped /3.
inline bool MergeIntoBenchJson(const std::string& path,
                               const std::vector<JsonRecord>& records) {
  using topogen::obs::Json;
  std::vector<std::string> kept;
  std::ifstream is(path);
  if (is.is_open()) {
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::optional<Json> doc = Json::Parse(buf.str());
    if (doc.has_value() && doc->is_object()) {
      if (const Json* results = doc->Find("results");
          results != nullptr && results->is_array()) {
        for (const Json& entry : results->AsArray()) {
          const Json* name = entry.Find("name");
          if (name == nullptr || !name->is_string()) continue;
          bool replaced = false;
          for (const JsonRecord& r : records) {
            if (r.name == name->AsString()) replaced = true;
          }
          if (replaced) continue;
          // Re-serialize the record we are keeping.
          std::string line = "    {";
          bool first = true;
          for (const auto& [key, value] : entry.AsObject()) {
            if (!first) line += ", ";
            first = false;
            line += "\"" + key + "\": ";
            if (value.is_string()) {
              line += "\"" + topogen::obs::JsonEscape(value.AsString()) +
                      "\"";
            } else if (value.is_number()) {
              line += topogen::obs::JsonNumber(value.AsDouble());
            } else if (value.is_bool()) {
              line += value.AsBool() ? "true" : "false";
            } else {
              line += "null";
            }
          }
          line += "}";
          kept.push_back(std::move(line));
        }
      }
    }
  }
  is.close();

  const unsigned hw = std::thread::hardware_concurrency();
  std::ofstream os(path);
  if (!os.is_open()) return false;
  os << "{\n  \"schema\": \"topogen-bench/3\",\n";
  os << "  \"created_unix\": " << static_cast<long long>(std::time(nullptr))
     << ",\n";
  os << "  \"host_threads\": " << (hw > 0 ? hw : 1) << ",\n";
  os << "  \"results\": [";
  bool first = true;
  for (const std::string& line : kept) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  }
  for (const JsonRecord& r : records) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << topogen::obs::JsonEscape(r.name)
       << "\", \"kernel\": \"" << topogen::obs::JsonEscape(r.kernel)
       << "\", \"family\": \"" << topogen::obs::JsonEscape(r.family)
       << "\", \"n\": " << r.n << ", \"threads\": " << r.threads
       << ", \"ns_per_op\": " << r.ns_per_op;
    if (r.qps >= 0.0) os << ", \"qps\": " << r.qps;
    os << ",\n     \"p50_ns\": " << r.p50_ns << ", \"p90_ns\": " << r.p90_ns
       << ", \"p99_ns\": " << r.p99_ns << ", \"max_ns\": " << r.max_ns
       << "}";
  }
  os << "\n  ]\n}\n";
  return os.good();
}

// The BENCH.json output path: TOPOGEN_BENCH_JSON or ./BENCH.json.
inline std::string BenchJsonPath() {
  const char* path = std::getenv("TOPOGEN_BENCH_JSON");
  return path != nullptr && *path != '\0' ? path : "BENCH.json";
}

}  // namespace topogen::bench
