// Section 4.4's summary table: the Low/High signature of every topology
// on the three basic metrics, checked against the paper's published
// grouping. This is the paper's headline result ("Only the PLRG matches
// the measured graphs in all three metrics").
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;

  const std::map<std::string, std::string> paper{
      {"Mesh", "LHH"},   {"Random", "HHH"}, {"Tree", "HLL"},
      {"AS", "HHL"},     {"RL", "HHL"},     {"PLRG", "HHL"},
      {"Tiers", "LHL"},  {"TS", "HLL"},     {"Waxman", "HHH"},
      {"AS(Policy)", "HHL"}, {"RL(Policy)", "HHL"},
      {"B-A", "HHL"},    {"Brite", "HHL"},  {"BT", "HHL"},
      {"Inet", "HHL"},
  };

  std::printf("# Section 4.4 table: Low/High classification (scale=%s)\n",
              bench::ScaleName().c_str());

  // One batch over the roster (plus policy reruns): cold runs fan the
  // misses across the parallel engine, warm runs come from the store.
  core::Session& session = bench::Session();
  std::vector<core::Session::MetricsRequest> requests;
  std::vector<std::string> names;
  for (std::string_view id : core::Session::KnownIds()) {
    if (id == "RL.core") continue;
    requests.push_back({std::string(id)});
    names.push_back(std::string(id));
    // Peeking at the topology here can itself fail when its generator is
    // degraded; the batch below records the slot, this loop just skips
    // the policy rerun it can no longer ask about.
    try {
      if (session.Topology(id).has_policy()) {
        requests.push_back({std::string(id), /*use_policy=*/true});
        names.push_back(std::string(id) + "(Policy)");
      }
    } catch (const core::Exception&) {
    }
  }
  const std::vector<const core::BasicMetrics*> results =
      session.MetricsBatch(requests);

  core::PrintTableHeader(std::cout, {"Topology", "Expansion", "Resilience",
                                     "Distortion", "Signature", "Paper",
                                     "Match"});
  int matches = 0, total = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string& name = names[i];
    if (results[i] == nullptr) {
      // Degraded slot: print a placeholder row, score neither match nor
      // mismatch; bench::Finish reports the run as partial (exit 75).
      core::PrintTableRow(std::cout, {name, "-", "-", "-", "-", "-",
                                      "degraded"});
      continue;
    }
    const std::string sig = results[i]->signature.ToString();
    const auto it = paper.find(name);
    const std::string expect = it == paper.end() ? "-" : it->second;
    const bool ok = expect == "-" || expect == sig;
    matches += ok ? 1 : 0;
    ++total;
    core::PrintTableRow(
        std::cout,
        {name, std::string(1, sig[0]), std::string(1, sig[1]),
         std::string(1, sig[2]), sig, expect, ok ? "yes" : "NO"});
  }

  std::printf("\n# %d/%d signatures match the paper's table\n", matches,
              total);
  return bench::Finish(matches == total ? 0 : 1);
}
