// Section 4.4's summary table: the Low/High signature of every topology
// on the three basic metrics, checked against the paper's published
// grouping. This is the paper's headline result ("Only the PLRG matches
// the measured graphs in all three metrics").
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/report.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  const core::SuiteOptions so = bench::Suite();

  const std::map<std::string, std::string> paper{
      {"Mesh", "LHH"},   {"Random", "HHH"}, {"Tree", "HLL"},
      {"AS", "HHL"},     {"RL", "HHL"},     {"PLRG", "HHL"},
      {"Tiers", "LHL"},  {"TS", "HLL"},     {"Waxman", "HHH"},
      {"AS(Policy)", "HHL"}, {"RL(Policy)", "HHL"},
      {"B-A", "HHL"},    {"Brite", "HHL"},  {"BT", "HHL"},
      {"Inet", "HHL"},
  };

  std::printf("# Section 4.4 table: Low/High classification (scale=%s)\n",
              bench::ScaleName().c_str());

  // Build the whole roster first, then fan the suite out across the
  // parallel engine (one task per topology row; TOPOGEN_THREADS workers)
  // and print the table in roster order from the gathered results.
  std::vector<core::Topology> topologies;
  for (core::Topology& t : core::CanonicalRoster(ro)) {
    topologies.push_back(std::move(t));
  }
  for (core::Topology& t : core::GeneratedRoster(ro)) {
    topologies.push_back(std::move(t));
  }
  for (core::Topology& t : core::DegreeBasedRoster(ro)) {
    topologies.push_back(std::move(t));
  }
  topologies.push_back(core::MakeAs(ro));
  topologies.push_back(core::MakeRl(ro).topology);

  std::vector<core::SuiteJob> jobs;
  std::vector<std::string> names;
  for (const core::Topology& t : topologies) {
    core::SuiteOptions opts = so;
    jobs.push_back({&t, opts});
    names.push_back(t.name);
    if (t.has_policy()) {
      opts.use_policy = true;
      jobs.push_back({&t, opts});
      names.push_back(t.name + "(Policy)");
    }
  }
  const std::vector<core::BasicMetrics> results =
      core::RunBasicMetricsBatch(jobs);

  core::PrintTableHeader(std::cout, {"Topology", "Expansion", "Resilience",
                                     "Distortion", "Signature", "Paper",
                                     "Match"});
  int matches = 0, total = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string& name = names[i];
    const std::string sig = results[i].signature.ToString();
    const auto it = paper.find(name);
    const std::string expect = it == paper.end() ? "-" : it->second;
    const bool ok = expect == "-" || expect == sig;
    matches += ok ? 1 : 0;
    ++total;
    core::PrintTableRow(
        std::cout,
        {name, std::string(1, sig[0]), std::string(1, sig[1]),
         std::string(1, sig[2]), sig, expect, ok ? "yes" : "NO"});
  }

  std::printf("\n# %d/%d signatures match the paper's table\n", matches,
              total);
  return matches == total ? 0 : 1;
}
