// Section 4.4's summary table: the Low/High signature of every topology
// on the three basic metrics, checked against the paper's published
// grouping. This is the paper's headline result ("Only the PLRG matches
// the measured graphs in all three metrics").
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "bench_common.h"
#include "core/report.h"

int main() {
  using namespace topogen;
  const core::RosterOptions ro = bench::Roster();
  const core::SuiteOptions so = bench::Suite();

  const std::map<std::string, std::string> paper{
      {"Mesh", "LHH"},   {"Random", "HHH"}, {"Tree", "HLL"},
      {"AS", "HHL"},     {"RL", "HHL"},     {"PLRG", "HHL"},
      {"Tiers", "LHL"},  {"TS", "HLL"},     {"Waxman", "HHH"},
      {"AS(Policy)", "HHL"}, {"RL(Policy)", "HHL"},
      {"B-A", "HHL"},    {"Brite", "HHL"},  {"BT", "HHL"},
      {"Inet", "HHL"},
  };

  std::printf("# Section 4.4 table: Low/High classification (scale=%s)\n",
              bench::ScaleName().c_str());
  core::PrintTableHeader(std::cout, {"Topology", "Expansion", "Resilience",
                                     "Distortion", "Signature", "Paper",
                                     "Match"});
  int matches = 0, total = 0;
  auto row = [&](const core::Topology& t, bool use_policy) {
    core::SuiteOptions opts = so;
    opts.use_policy = use_policy;
    const core::BasicMetrics m = core::RunBasicMetrics(t, opts);
    const std::string name = use_policy ? t.name + "(Policy)" : t.name;
    const std::string sig = m.signature.ToString();
    const auto it = paper.find(name);
    const std::string expect = it == paper.end() ? "-" : it->second;
    const bool ok = expect == "-" || expect == sig;
    matches += ok ? 1 : 0;
    ++total;
    core::PrintTableRow(
        std::cout,
        {name, std::string(1, sig[0]), std::string(1, sig[1]),
         std::string(1, sig[2]), sig, expect, ok ? "yes" : "NO"});
  };

  for (const core::Topology& t : core::CanonicalRoster(ro)) row(t, false);
  for (const core::Topology& t : core::GeneratedRoster(ro)) row(t, false);
  for (const core::Topology& t : core::DegreeBasedRoster(ro)) row(t, false);
  const core::Topology as = core::MakeAs(ro);
  row(as, false);
  row(as, true);
  const core::RlArtifacts rl = core::MakeRl(ro);
  row(rl.topology, false);
  row(rl.topology, true);

  std::printf("\n# %d/%d signatures match the paper's table\n", matches,
              total);
  return matches == total ? 0 : 1;
}
