// Extension experiment: the paper's thesis as a single experiment.
//
// Section 1 argues local and global properties are separable, and
// Section 6 concludes that the Internet's large-scale structure follows
// from its degree distribution plus "fairly random connection of nodes".
// The sharpest test: take the measured (stand-in) AS graph, randomize it
// with Maslov-Sneppen degree-preserving rewiring -- every node keeps its
// exact degree, everything else is destroyed -- and re-measure.
//
// Expected: the L/H signature (HHL) and the moderate hierarchy survive
// the rewiring (they are carried by the degree sequence), while the
// clustering coefficient (a local property the paper's Section 4.4
// closing paragraph says PLRG misses) collapses.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/suite.h"
#include "gen/degree_seq.h"
#include "hierarchy/link_value.h"
#include "metrics/clustering.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Extension: degree-preserving rewiring of the AS graph "
              "(scale=%s)\n",
              bench::ScaleName().c_str());

  // The AS baseline comes from the session cache; the rewired graph is a
  // one-off derivation and runs directly.
  const core::Topology& as = session.Topology("AS");
  graph::Rng rng(61);
  core::Topology rewired{"AS-rewired", core::Category::kMeasured,
                         gen::DegreePreservingRewire(as.graph, rng), {},
                         "Maslov-Sneppen, 3 swaps/edge"};

  core::SuiteOptions so = bench::Suite();
  const hierarchy::LinkValueOptions lv{
      .max_sources = bench::LinkValueSources(), .seed = 23};

  core::PrintTableHeader(std::cout, {"Graph", "Signature", "Hierarchy",
                                     "Clustering", "AvgDeg"});
  std::string sig[2];
  hierarchy::HierarchyClass cls[2];
  double clust[2];
  const core::Topology* graphs[2] = {&as, &rewired};
  for (int i = 0; i < 2; ++i) {
    const core::BasicMetrics& m =
        i == 0 ? session.Metrics("AS") : core::RunBasicMetrics(rewired, so);
    const hierarchy::LinkValueResult& r =
        i == 0 ? session.LinkValues("AS")
               : hierarchy::ComputeLinkValues(rewired.graph, lv);
    sig[i] = m.signature.ToString();
    cls[i] = hierarchy::ClassifyHierarchy(r);
    clust[i] = metrics::ClusteringCoefficient(graphs[i]->graph);
    core::PrintTableRow(std::cout,
                        {graphs[i]->name, sig[i], hierarchy::ToString(cls[i]),
                         core::Num(clust[i], 4),
                         core::Num(graphs[i]->graph.average_degree(), 3)});
  }

  const bool structure_survives = sig[0] == sig[1] && cls[0] == cls[1];
  // Rewiring cannot reduce clustering below the configuration-model
  // baseline a heavy-tailed degree sequence carries intrinsically (hub
  // co-neighbors stay likely to be linked); what it destroys is the
  // *planted* excess. Expect a clear drop, not annihilation.
  const bool local_drops = clust[1] < 0.8 * clust[0];
  std::printf("\n# Large-scale structure survives rewiring: %s "
              "(signature %s->%s, hierarchy %s->%s)\n",
              structure_survives ? "yes" : "NO", sig[0].c_str(),
              sig[1].c_str(), hierarchy::ToString(cls[0]),
              hierarchy::ToString(cls[1]));
  std::printf("# Planted clustering excess destroyed: %s (%.4f -> %.4f; "
              "the remainder is the degree sequence's intrinsic "
              "configuration-model clustering)\n",
              local_drops ? "yes" : "NO", clust[0], clust[1]);
  std::printf("# -> %s\n",
              structure_survives && local_drops
                  ? "the paper's thesis, in one experiment"
                  : "MISMATCH");
  return bench::Finish(structure_survives && local_drops ? 0 : 1);
}
