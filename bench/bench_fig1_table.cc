// Figure 1: the roster of network topologies -- type, node count, average
// degree, parameters. Prints our instances next to the paper's reported
// values so the calibration is auditable.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"

namespace {

struct PaperRow {
  const char* name;
  double nodes;
  double avg_degree;
};

// Figure 1's published numbers.
constexpr PaperRow kPaper[] = {
    {"RL", 170589, 2.53},  {"AS", 10941, 4.13},   {"PLRG", 9230, 4.46},
    {"TS", 1008, 2.78},    {"Tiers", 5000, 2.83}, {"Waxman", 5000, 7.22},
    {"Mesh", 900, 3.87},   {"Random", 5018, 4.18}, {"Tree", 1093, 2.00},
};

const PaperRow* Lookup(const std::string& name) {
  for (const PaperRow& row : kPaper) {
    if (name == row.name) return &row;
  }
  return nullptr;
}

void Row(const topogen::core::Topology& t) {
  using topogen::core::Num;
  const PaperRow* paper = Lookup(t.name);
  topogen::core::PrintTableRow(
      std::cout,
      {t.name, Num(static_cast<double>(t.graph.num_nodes())),
       Num(t.graph.average_degree(), 3),
       paper ? Num(paper->nodes) : "-",
       paper ? Num(paper->avg_degree, 3) : "-", t.comment});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  std::printf("# Figure 1: table of network topologies (scale=%s)\n",
              bench::ScaleName().c_str());
  core::PrintTableHeader(std::cout, {"Topology", "Nodes", "AvgDeg",
                                     "Paper-N", "Paper-Deg", "Comment"});
  core::Session& session = bench::Session();
  for (const char* id : {"RL", "AS", "PLRG", "TS", "Tiers", "Waxman", "Mesh",
                         "Random", "Tree"}) {
    Row(session.Topology(id));
  }
  std::printf(
      "\n# Shape check: canonical/structural instances match the paper's\n"
      "# (N, avg degree) exactly or within sampling noise; the measured\n"
      "# stand-ins are calibrated to the paper's average degrees at the\n"
      "# configured scale (see DESIGN.md section 4).\n");
  return bench::Finish(0);
}
