// Figure 2 (b, e, h, k): resilience R(n) for canonical, measured,
// generated, and degree-based topologies.
//
// Paper shape: Tree and TS low; Mesh grows ~sqrt(n); Random, Waxman,
// PLRG, AS, RL high; policy halves the RL graph's resilience but leaves
// the qualitative behavior unchanged.
#include "fig2_panels.h"

#include <algorithm>

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  bench::EmitFigure2Row(bench::BasicMetric::kResilience, "2b", "2e", "2h",
                        "2k");

  // Shape check: policy reduces RL resilience (paper: "by almost a factor
  // of two").
  core::Session& session = bench::Session();
  const metrics::Series& plain = session.Metrics("RL").resilience;
  const metrics::Series& policy = session.Metrics("RL", true).resilience;
  const double plain_max =
      plain.empty() ? 0 : *std::max_element(plain.y.begin(), plain.y.end());
  const double policy_max =
      policy.empty() ? 0
                     : *std::max_element(policy.y.begin(), policy.y.end());
  std::printf("# Shape check: RL max resilience %.0f -> %.0f under policy "
              "(paper reports a ~2x drop)\n",
              plain_max, policy_max);
  return bench::Finish(0);
}
